//! # collopt — optimization rules for programming with collective operations
//!
//! A Rust reproduction of
//!
//! > S. Gorlatch, C. Wedler, C. Lengauer. *Optimization Rules for
//! > Programming with Collective Operations.* IPPS 1999.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`machine`] — the simulated SPMD message-passing machine
//!   (thread-per-rank runtime + deterministic `ts`/`tw` cost clock);
//! * [`collectives`] — butterfly/binomial implementations of broadcast,
//!   reduction, scan, gather/scatter, plus the paper's special collectives
//!   (`reduce_balanced`, `scan_balanced`, comcast);
//! * [`cost`] — the Table-1 cost calculus with per-rule improvement
//!   predicates and crossover solvers;
//! * [`core`] — the formal framework: program terms, operator algebra,
//!   the eleven fusion rules, the cost-guided rewrite engine, and the
//!   machine executor;
//! * [`analysis`] — the static soundness analyzer: operator-property
//!   auditing with counterexample shrinking, rewrite-certificate
//!   validation, and the `collopt lint` pipeline linter;
//! * [`fuzz`] — coverage-guided differential fuzzing of all of the above:
//!   a seeded pipeline generator, four oracles (rewrite soundness,
//!   cross-engine identity, defense-layer unanimity on planted law lies,
//!   saturation-vs-brute-force optimality agreement), a greedy shrinker
//!   and the pinned-regression corpus;
//! * [`serve`] — optimization as a service: a JSON-lines-over-TCP
//!   server with a canonicalizing LRU optimization cache and batched
//!   dispatch (`collopt serve` / `collopt submit`).
//!
//! See `examples/quickstart.rs` for a guided tour, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the paper-vs-measured record
//! of every table and figure.
//!
//! ```
//! use collopt::prelude::*;
//!
//! // The paper's Example program: map f ; scan(⊗) ; reduce(⊕) ; map g ; bcast.
//! let program = Program::new()
//!     .map("f", 1.0, |v| Value::Int(v.as_int() + 1))
//!     .scan(ops::mul())
//!     .reduce(ops::add())
//!     .map("g", 1.0, |v| Value::Int(v.as_int() * 2))
//!     .bcast();
//!
//! // Optimize for a latency-bound 64-processor machine, 1-word blocks.
//! let params = MachineParams::parsytec_like(64);
//! let optimized = Rewriter::cost_guided(params, 1.0).optimize(&program);
//! assert_eq!(optimized.steps.len(), 1); // SR2-Reduction fires
//! assert!(program_cost(&optimized.program, &params, 1.0)
//!     < program_cost(&program, &params, 1.0));
//! ```

pub use collopt_analysis as analysis;
pub use collopt_collectives as collectives;
pub use collopt_core as core;
pub use collopt_cost as cost;
pub use collopt_fuzz as fuzz;
pub use collopt_machine as machine;
pub use collopt_serve as serve;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use collopt_collectives::{
        allgather, allreduce, bcast_binomial, gather_binomial, reduce_binomial, scan_butterfly,
        scatter_binomial, Combine,
    };
    pub use collopt_core::op::lib as ops;
    pub use collopt_core::rewrite::{program_cost, Rewriter};
    pub use collopt_core::semantics::eval_program;
    pub use collopt_core::{execute, BinOp, ExecOutcome, Program, Rule, Stage, Value};
    pub use collopt_cost::{MachineParams, PhaseCost, Rule as CostRule};
    pub use collopt_machine::{ClockParams, Ctx, Machine};
}
