//! `collopt` — command-line pipeline optimizer.
//!
//! Parse a collective pipeline, optimize it for a machine, and report the
//! rewrite log and cost estimates:
//!
//! ```text
//! $ collopt "map f ; scan(mul) ; reduce(add) ; map g ; bcast" --p 64 --ts 200 --tw 2 --m 32
//! original : map f ; scan(mul) ; reduce(add) ; map g ; bcast
//! applied  : SR2-Reduction at stage 1 (saving 1200)
//! optimized: map f;pair ; reduce(op_sr2[mul,add]) ; map pi1;g ; bcast
//! cost     : 4296 -> 3096 time units (27.9% saved)
//! ```
//!
//! Options:
//!
//! * `--p N`    processors (default 64)
//! * `--ts X`   message start-up time (default 200)
//! * `--tw X`   per-word transfer time (default 2)
//! * `--m X`    block size in words (default 32)
//! * `--exhaustive`  ignore the cost model, fuse everything fusible
//! * `--optimal`     equality saturation over all rule orders: provably
//!   the cheapest reachable plan under the cost model (see `saturate`)
//! * `--all-ranks`   only apply rules preserving every processor's value
//! * `--report`      emit a full Markdown report instead of the summary
//! * `--profile`     run both pipelines on the simulated machine and show
//!   where the time goes (per-stage busy/idle tables + critical path)
//! * `--faults SPEC` run both pipelines under a deterministic fault plan
//!   and show how gracefully they degrade, e.g.
//!   `--faults "seed=42,straggler=3x2.5,link=0-1x2+50,drop=0.05/3"`
//! * `--engine E`    simulation engine for `--profile`/`--faults`:
//!   `legacy` and `pooled` run one OS thread per rank (p ≤ 4096), `des`
//!   is the single-threaded discrete-event scheduler whose `p` is bounded
//!   by memory only. Default: `pooled`, or the `COLLOPT_ENGINE` variable.
//! * `--table1`      also print the analytic Table 1 and exit
//! * `--json`        emit the byte-stable optimization JSON (the core of
//!   the serve response schema) instead of the human summary
//!
//! Serve mode — the long-running optimization service and its client:
//!
//! ```text
//! $ collopt serve --addr 127.0.0.1:7071 &
//! $ collopt submit "scan(mul) ; reduce(add)" --p 64 --m 32
//! $ collopt submit --op stats
//! $ collopt submit --op shutdown
//! ```
//!
//! `serve` speaks JSON lines over TCP (one request object per line; see
//! `collopt_serve::request`) with a canonicalizing LRU optimization
//! cache and batched dispatch. `submit` builds one request from the
//! usual flags (`--p/--ts/--tw/--m`, `--all-ranks`, `--no-lint`,
//! `--simulate`, `--engine`), sends it, and prints the response line;
//! `--line '<json>'` submits a raw request verbatim.
//!
//! Lint mode — static soundness and performance diagnostics:
//!
//! ```text
//! $ collopt lint "map f ; scan(mul) ; reduce(add)" --p 64 --m 32
//! $ collopt lint --file examples/pipelines/lints/missed_fusion.pipeline --json
//! ```
//!
//! * `--json`            emit byte-stable JSON instead of the human report
//! * `--deny warnings`   exit nonzero on warnings too (CI gate)
//! * `--p/--ts/--tw/--m` machine model for the cost judgements (as above)
//! * `--file PATH`       read the pipeline from a file instead of argv
//!
//! Check mode — the static communication-schedule verifier:
//!
//! ```text
//! $ collopt check --p 16 --m 97            # verify every shipped lowering
//! $ collopt check --planted                # every planted bug must be caught
//! $ collopt check "scan(mul) ; reduce(add)" --deny warnings
//! ```
//!
//! With no pipeline, `check` symbolically extracts the per-rank schedule
//! of every shipped collective lowering at `(p, m)` and abstractly
//! executes it: deadlock-freedom (`COL008`), message-match completeness
//! (`COL009`), and round counts against the cost model's closed forms
//! and the `⌈log₂ p⌉` lower bounds (`COL010`). With a pipeline it runs
//! the full lint battery including the distribution-state dataflow
//! lints (`COL007`/`COL011`/`COL012`). Flags and the exit contract match
//! `lint`; `--planted` drills the verifier on known-bad lowerings.
//!
//! Saturate mode — equality-saturation search with the cost deltas:
//!
//! ```text
//! $ collopt saturate "scan(add) ; scan(add) ; reduce(add)" --p 64 --ts 100 --tw 2 --m 8
//! ```
//!
//! Builds the e-graph of every program reachable by the 11 rules plus
//! the enabling normalizations, extracts the cost-optimal one, and
//! prints it next to the greedy (priority-window) result with both cost
//! deltas and the e-graph statistics.
//!
//! * `--p/--ts/--tw/--m` machine model (as above)
//! * `--budget N`        e-graph node budget (default 10000)
//! * `--all-ranks`       only apply rules preserving every processor's value
//!
//! Fuzz mode — differential fuzzing of the whole stack:
//!
//! ```text
//! $ collopt fuzz --iters 500 --seed 42
//! $ collopt fuzz --replay "v1|seed=7|p=2|m=1|engine=legacy|domain=table|..."
//! ```
//!
//! * `--iters N`        cases to generate and check (default 500)
//! * `--seed N`         base seed (default 0xC0110)
//! * `--pmax N, --m N`  generator shape limits (defaults 9, 4)
//! * `--replay "SPEC"`  re-run one pinned case from its spec string
//!
//! Exit codes: 0 clean (notes allowed), 1 errors (or warnings under
//! `--deny warnings`), 2 usage or parse errors.

use std::sync::Arc;

use collopt::analysis::{lint_source, LintConfig, Severity};
use collopt::core::egraph::{saturate_program, SaturateConfig};
use collopt::core::exec::ExecConfig;
use collopt::core::parser::parse_pipeline;
use collopt::core::report::{
    degradation_section_with, optimization_report, optimize_result_json, profile_section_with,
};
use collopt::core::rewrite::{program_cost, Rewriter};
use collopt::core::value::Value;
use collopt::cost::table1::render_table1;
use collopt::cost::MachineParams;
use collopt::fuzz::{run_campaign, run_case, CampaignConfig, CaseSpec, CoverageLedger, GenConfig};
use collopt::machine::{ClockParams, ExecEngine, FaultPlan, Json};
use collopt::serve::{Server, ServerConfig, Service, DEFAULT_CACHE_CAPACITY};

/// Default address for `collopt serve` / `collopt submit`.
const DEFAULT_ADDR: &str = "127.0.0.1:7071";

/// `collopt serve` — run the optimization service until a `shutdown`
/// request arrives.
fn serve_main(args: Vec<String>) -> ! {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut cache = DEFAULT_CACHE_CAPACITY;
    let mut config = ServerConfig::default();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = grab("--addr"),
            "--cache" => cache = grab("--cache").parse().expect("--cache expects an integer"),
            "--workers" => {
                config.workers = grab("--workers")
                    .parse()
                    .expect("--workers expects an integer")
            }
            "--batch" => {
                config.batch_limit = grab("--batch").parse().expect("--batch expects an integer")
            }
            other => {
                eprintln!("unknown serve option {other}");
                eprintln!(
                    "usage: collopt serve [--addr HOST:PORT] [--cache N] [--workers N] [--batch N]"
                );
                std::process::exit(2);
            }
        }
    }

    let service = Arc::new(Service::new(cache));
    let server = match Server::bind(&addr, service, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(2);
        }
    };
    match server.local_addr() {
        Ok(a) => eprintln!("collopt serve: listening on {a} (JSON lines; op=shutdown to stop)"),
        Err(e) => eprintln!("collopt serve: listening ({e})"),
    }
    match server.run() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("server error: {e}");
            std::process::exit(1);
        }
    }
}

/// `collopt submit` — send one request to a running server and print the
/// response line.
fn submit_main(args: Vec<String>) -> ! {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut pipeline: Option<String> = None;
    let mut raw: Option<String> = None;
    let mut op: Option<String> = None;
    let mut id: f64 = 0.0;
    let mut p = 64f64;
    let mut ts = 200.0f64;
    let mut tw = 2.0f64;
    let mut m = 32.0f64;
    let mut all_ranks = false;
    let mut lint = true;
    let mut simulate = false;
    let mut engine: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = grab("--addr"),
            "--line" => raw = Some(grab("--line")),
            "--op" => op = Some(grab("--op")),
            "--id" => id = grab("--id").parse().expect("--id expects a number"),
            "--p" => p = grab("--p").parse().expect("--p expects an integer"),
            "--ts" => ts = grab("--ts").parse().expect("--ts expects a number"),
            "--tw" => tw = grab("--tw").parse().expect("--tw expects a number"),
            "--m" => m = grab("--m").parse().expect("--m expects a number"),
            "--all-ranks" => all_ranks = true,
            "--no-lint" => lint = false,
            "--simulate" => simulate = true,
            "--engine" => engine = Some(grab("--engine")),
            other if other.starts_with("--") => {
                eprintln!("unknown submit option {other}");
                std::process::exit(2);
            }
            other => {
                if pipeline.replace(other.to_string()).is_some() {
                    eprintln!("multiple pipeline arguments");
                    std::process::exit(2);
                }
            }
        }
    }

    let line = if let Some(raw) = raw {
        raw
    } else if let Some(op) = op {
        Json::Obj(vec![
            ("id".into(), Json::Num(id)),
            ("op".into(), Json::Str(op)),
        ])
        .render()
    } else if let Some(pipeline) = pipeline {
        let mut options = vec![
            ("all_ranks".into(), Json::Bool(all_ranks)),
            ("lint".into(), Json::Bool(lint)),
            ("simulate".into(), Json::Bool(simulate)),
        ];
        if let Some(engine) = engine {
            options.push(("engine".into(), Json::Str(engine)));
        }
        Json::Obj(vec![
            ("id".into(), Json::Num(id)),
            ("pipeline".into(), Json::Str(pipeline)),
            ("p".into(), Json::Num(p)),
            ("ts".into(), Json::Num(ts)),
            ("tw".into(), Json::Num(tw)),
            ("m".into(), Json::Num(m)),
            ("options".into(), Json::Obj(options)),
        ])
        .render()
    } else {
        eprintln!(
            "usage: collopt submit \"<pipeline>\" [--addr HOST:PORT] [--id N] \
             [--p N] [--ts X] [--tw X] [--m X] [--all-ranks] [--no-lint] \
             [--simulate] [--engine E] | --op ping|stats|shutdown | --line '<json>'"
        );
        std::process::exit(2);
    };

    match collopt::serve::submit(&addr, &line) {
        Ok(response) => {
            println!("{response}");
            let ok = response.contains("\"ok\":true");
            std::process::exit(if ok { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("cannot reach {addr}: {e}");
            std::process::exit(2);
        }
    }
}

/// `collopt lint` — parse, analyze, report, and gate.
fn lint_main(args: Vec<String>) -> ! {
    let mut pipeline: Option<String> = None;
    let mut file: Option<String> = None;
    let mut json = false;
    let mut deny_warnings = false;
    let mut p = 64usize;
    let mut ts = 200.0f64;
    let mut tw = 2.0f64;
    let mut m = 32.0f64;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--p" => p = grab("--p").parse().expect("--p expects an integer"),
            "--ts" => ts = grab("--ts").parse().expect("--ts expects a number"),
            "--tw" => tw = grab("--tw").parse().expect("--tw expects a number"),
            "--m" => m = grab("--m").parse().expect("--m expects a number"),
            "--json" => json = true,
            "--file" => file = Some(grab("--file")),
            "--deny" => {
                let what = grab("--deny");
                if what != "warnings" {
                    eprintln!("--deny only supports 'warnings', got '{what}'");
                    std::process::exit(2);
                }
                deny_warnings = true;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown lint option {other}");
                std::process::exit(2);
            }
            other => {
                if pipeline.replace(other.to_string()).is_some() {
                    eprintln!("multiple pipeline arguments");
                    std::process::exit(2);
                }
            }
        }
    }
    let src = match (pipeline, file) {
        (Some(_), Some(_)) => {
            eprintln!("give a pipeline argument or --file, not both");
            std::process::exit(2);
        }
        (Some(src), None) => src,
        (None, Some(path)) => match std::fs::read_to_string(&path) {
            Ok(text) => text.trim().to_string(),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        },
        (None, None) => {
            eprintln!("usage: collopt lint \"<pipeline>\" | --file PATH [--json] [--deny warnings] [--p N] [--ts X] [--tw X] [--m X]");
            std::process::exit(2);
        }
    };

    let cfg = LintConfig {
        params: MachineParams::new(p, ts, tw),
        block: m,
        ..LintConfig::default()
    };
    let report = match lint_source(&src, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("{}", e.render(&src));
            std::process::exit(2);
        }
    };
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human(Some(&src)));
    }
    let gate = report.errors() > 0 || (deny_warnings && report.warnings() > 0);
    std::process::exit(if gate { 1 } else { 0 });
}

/// `collopt check` — static communication-schedule verification.
///
/// With no pipeline, verifies every shipped collective lowering's
/// symbolic schedule at `(p, m)`: deadlock-freedom, message-match
/// completeness, barrier consistency, and round counts against the cost
/// model's closed forms and the `⌈log₂ p⌉` lower bounds. With a pipeline
/// (or `--file`), runs the full lint analysis — the distribution-state
/// dataflow lints (COL007/COL011/COL012) included — under the same exit
/// contract as `collopt lint`. `--planted` instead checks that every
/// planted-bug lowering is rejected with its expected code (the CI
/// drill).
fn check_main(args: Vec<String>) -> ! {
    let mut pipeline: Option<String> = None;
    let mut file: Option<String> = None;
    let mut json = false;
    let mut deny_warnings = false;
    let mut planted = false;
    let mut p = 64usize;
    let mut ts = 200.0f64;
    let mut tw = 2.0f64;
    let mut m = 32.0f64;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--p" => p = grab("--p").parse().expect("--p expects an integer"),
            "--ts" => ts = grab("--ts").parse().expect("--ts expects a number"),
            "--tw" => tw = grab("--tw").parse().expect("--tw expects a number"),
            "--m" => m = grab("--m").parse().expect("--m expects a number"),
            "--json" => json = true,
            "--file" => file = Some(grab("--file")),
            "--planted" => planted = true,
            "--deny" => {
                let what = grab("--deny");
                if what != "warnings" {
                    eprintln!("--deny only supports 'warnings', got '{what}'");
                    std::process::exit(2);
                }
                deny_warnings = true;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown check option {other}");
                eprintln!(
                    "usage: collopt check [\"<pipeline>\" | --file PATH] [--planted] [--json] \
                     [--deny warnings] [--p N] [--ts X] [--tw X] [--m X]"
                );
                std::process::exit(2);
            }
            other => {
                if pipeline.replace(other.to_string()).is_some() {
                    eprintln!("multiple pipeline arguments");
                    std::process::exit(2);
                }
            }
        }
    }

    let words = m.max(0.0) as u64;
    if planted {
        // Drill mode: every planted-bug lowering must be rejected with
        // its expected code — a verifier that goes blind fails loudly.
        let mut clean = true;
        for (report, expected) in collopt::analysis::verify_planted(p, words) {
            let caught = report.diagnostics.iter().any(|d| d.code == expected);
            let got: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
            println!(
                "  {}  {:<36} expects {expected}, got {got:?}",
                if caught { "ok  " } else { "FAIL" },
                report.variant
            );
            clean &= caught;
        }
        std::process::exit(if clean { 0 } else { 1 });
    }

    let src = match (pipeline, file) {
        (Some(_), Some(_)) => {
            eprintln!("give a pipeline argument or --file, not both");
            std::process::exit(2);
        }
        (Some(src), None) => Some(src),
        (None, Some(path)) => match std::fs::read_to_string(&path) {
            Ok(text) => Some(text.trim().to_string()),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        },
        (None, None) => None,
    };

    let (errors, warnings) = if let Some(src) = src {
        // Pipeline mode: the whole lint battery, distribution-state
        // dataflow included, on one program.
        let cfg = LintConfig {
            params: MachineParams::new(p, ts, tw),
            block: m,
            ..LintConfig::default()
        };
        let report = match lint_source(&src, &cfg) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("{}", e.render(&src));
                std::process::exit(2);
            }
        };
        if json {
            println!("{}", report.render_json());
        } else {
            print!("{}", report.render_human(Some(&src)));
        }
        (report.errors(), report.warnings())
    } else {
        // Registry mode: verify every shipped lowering at (p, m).
        let reports = collopt::analysis::verify_registry(p, words);
        if json {
            println!(
                "{}",
                collopt::analysis::render_reports_json(&reports, p, words)
            );
        } else {
            print!("{}", collopt::analysis::render_reports_human(&reports));
        }
        let count = |sev: Severity| {
            reports
                .iter()
                .flat_map(|r| &r.diagnostics)
                .filter(|d| d.severity == sev)
                .count()
        };
        (count(Severity::Error), count(Severity::Warning))
    };
    let gate = errors > 0 || (deny_warnings && warnings > 0);
    std::process::exit(if gate { 1 } else { 0 });
}

/// `collopt saturate` — equality-saturation search, greedy comparison,
/// and e-graph statistics for one pipeline.
fn saturate_main(args: Vec<String>) -> ! {
    let mut pipeline: Option<String> = None;
    let mut p = 64usize;
    let mut ts = 200.0f64;
    let mut tw = 2.0f64;
    let mut m = 32.0f64;
    let mut budget: Option<usize> = None;
    let mut all_ranks = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--p" => p = grab("--p").parse().expect("--p expects an integer"),
            "--ts" => ts = grab("--ts").parse().expect("--ts expects a number"),
            "--tw" => tw = grab("--tw").parse().expect("--tw expects a number"),
            "--m" => m = grab("--m").parse().expect("--m expects a number"),
            "--budget" => {
                budget = Some(
                    grab("--budget")
                        .parse()
                        .expect("--budget expects an integer"),
                )
            }
            "--all-ranks" => all_ranks = true,
            other if other.starts_with("--") => {
                eprintln!("unknown saturate option {other}");
                std::process::exit(2);
            }
            other => {
                if pipeline.replace(other.to_string()).is_some() {
                    eprintln!("multiple pipeline arguments");
                    std::process::exit(2);
                }
            }
        }
    }
    let Some(src) = pipeline else {
        eprintln!(
            "usage: collopt saturate \"<pipeline>\" [--p N] [--ts X] [--tw X] [--m X] \
             [--budget N] [--all-ranks]"
        );
        std::process::exit(2);
    };
    let prog = match parse_pipeline(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}", e.render(&src));
            std::process::exit(2);
        }
    };

    let params = MachineParams::new(p, ts, tw);
    let mut cfg = SaturateConfig::new(params, m).allow_rank0_rules(!all_ranks);
    if let Some(b) = budget {
        cfg = cfg.node_budget(b);
    }
    let outcome = saturate_program(&prog, &cfg);
    let greedy = Rewriter::cost_guided(params, m)
        .allow_rank0_rules(!all_ranks)
        .optimize(&prog);

    let before = program_cost(&prog, &params, m);
    let greedy_cost = program_cost(&greedy.program, &params, m);
    let optimal_cost = program_cost(&outcome.result.program, &params, m);
    println!("machine  : p={p}, ts={ts}, tw={tw}, block m={m}");
    println!("original : {prog}");
    println!(
        "greedy   : {}  (cost {before:.0} -> {greedy_cost:.0}, {} step(s))",
        greedy.program,
        greedy.steps.len()
    );
    println!(
        "optimal  : {}  (cost {before:.0} -> {optimal_cost:.0}, {} step(s))",
        outcome.result.program,
        outcome.result.steps.len()
    );
    for step in &outcome.result.steps {
        match step.saving {
            Some(s) => println!(
                "applied  : {} at stage {} (saving {s:.0})",
                step.rule, step.at
            ),
            None => println!("applied  : {} at stage {}", step.rule, step.at),
        }
    }
    for n in &outcome.result.normalizations {
        println!("normalize: {n:?}");
    }
    let stats = outcome.stats;
    println!(
        "e-graph  : {} nodes, {} classes, {} rule firings, {} unions{}",
        stats.nodes,
        stats.classes,
        stats.rule_applications,
        stats.unions,
        if stats.budget_exhausted {
            " (node budget exhausted)"
        } else {
            ""
        }
    );
    if optimal_cost < greedy_cost {
        println!(
            "delta    : saturation beats greedy by {:.0} time units ({:.1}%)",
            greedy_cost - optimal_cost,
            100.0 * (greedy_cost - optimal_cost) / greedy_cost
        );
    } else {
        println!("delta    : saturation matches greedy (greedy was already optimal)");
    }
    std::process::exit(0);
}

/// `collopt fuzz` — run a differential fuzz campaign or replay one case.
fn fuzz_main(args: Vec<String>) -> ! {
    let mut iters = 500u64;
    let mut seed = 0xC0110u64;
    let mut pmax = 9usize;
    let mut mmax = 4usize;
    let mut replay: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--iters" => iters = grab("--iters").parse().expect("--iters expects an integer"),
            "--seed" => seed = grab("--seed").parse().expect("--seed expects an integer"),
            "--pmax" => pmax = grab("--pmax").parse().expect("--pmax expects an integer"),
            "--m" => mmax = grab("--m").parse().expect("--m expects an integer"),
            "--replay" => replay = Some(grab("--replay")),
            other => {
                eprintln!("unknown fuzz option {other}");
                eprintln!(
                    "usage: collopt fuzz [--iters N] [--seed N] [--pmax N] [--m N] \
                     [--replay \"<spec>\"]"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(spec) = replay {
        let case = match CaseSpec::parse(&spec) {
            Ok(case) => case,
            Err(e) => {
                eprintln!("bad case spec: {e}");
                std::process::exit(2);
            }
        };
        println!("replaying: {}", case.render());
        let mut ledger = CoverageLedger::new();
        let failures = run_case(&case, &mut ledger);
        if failures.is_empty() {
            println!("OK: all oracles clean");
            std::process::exit(0);
        }
        for f in &failures {
            eprintln!("  [{}] {f}", f.oracle.label());
        }
        std::process::exit(1);
    }

    let result = run_campaign(&CampaignConfig {
        seed,
        iters,
        gen: GenConfig { pmax, mmax },
        workers: None,
    });
    println!("{}", result.ledger.summary());
    for f in &result.failures {
        eprintln!("  [{}] {f}", f.oracle.label());
    }
    let missing = result.ledger.missing_rules();
    if !missing.is_empty() {
        eprintln!("rules never fired: {missing:?}");
    }
    std::process::exit(if result.passed() { 0 } else { 1 });
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "lint") {
        lint_main(args.split_off(1));
    }
    if args.first().is_some_and(|a| a == "check") {
        check_main(args.split_off(1));
    }
    if args.first().is_some_and(|a| a == "fuzz") {
        fuzz_main(args.split_off(1));
    }
    if args.first().is_some_and(|a| a == "saturate") {
        saturate_main(args.split_off(1));
    }
    if args.first().is_some_and(|a| a == "serve") {
        serve_main(args.split_off(1));
    }
    if args.first().is_some_and(|a| a == "submit") {
        submit_main(args.split_off(1));
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: collopt \"<pipeline>\" [--p N] [--ts X] [--tw X] [--m X] \
             [--exhaustive] [--all-ranks] [--report] [--profile] \
             [--faults SPEC] [--engine legacy|pooled|des] [--table1]"
        );
        eprintln!("  pipeline: e.g. \"map f ; scan(mul) ; reduce(add) ; bcast\"");
        eprintln!("  operators: add mul max min and or fadd fmul maxplus");
        eprintln!(
            "  engines : legacy/pooled run p<={} rank threads; des is the \
             single-threaded\n            discrete-event scheduler (p bounded by memory)",
            ExecEngine::THREAD_MAX_P
        );
        eprintln!("  lint mode: collopt lint \"<pipeline>\" [--json] [--deny warnings]");
        eprintln!(
            "  check    : collopt check [\"<pipeline>\" | --file PATH] [--planted] [--json] \
             [--deny warnings] [--p N] [--m X]"
        );
        eprintln!(
            "  saturate : collopt saturate \"<pipeline>\" [--p N] [--ts X] [--tw X] [--m X] \
             [--budget N]"
        );
        eprintln!(
            "  fuzz mode: collopt fuzz [--iters N] [--seed N] [--pmax N] [--m N] \
             [--replay \"<spec>\"]"
        );
        eprintln!("  serve    : collopt serve [--addr HOST:PORT] [--cache N] [--workers N]");
        eprintln!(
            "  submit   : collopt submit \"<pipeline>\" [--addr HOST:PORT] [--simulate] \
             | --op ping|stats|shutdown"
        );
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--table1") {
        print!("{}", render_table1());
        return;
    }

    let mut pipeline = None;
    let mut p = 64usize;
    let mut ts = 200.0f64;
    let mut tw = 2.0f64;
    let mut m = 32.0f64;
    let mut exhaustive = false;
    let mut all_ranks = false;
    let mut report = false;
    let mut optimal = false;
    let mut profile = false;
    let mut json = false;
    let mut faults: Option<FaultPlan> = None;
    let mut engine: Option<ExecEngine> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--p" => p = grab("--p").parse().expect("--p expects an integer"),
            "--ts" => ts = grab("--ts").parse().expect("--ts expects a number"),
            "--tw" => tw = grab("--tw").parse().expect("--tw expects a number"),
            "--m" => m = grab("--m").parse().expect("--m expects a number"),
            "--exhaustive" => exhaustive = true,
            "--all-ranks" => all_ranks = true,
            "--report" => report = true,
            "--optimal" => optimal = true,
            "--profile" => profile = true,
            "--json" => json = true,
            "--faults" => {
                let spec = grab("--faults");
                match FaultPlan::parse(&spec) {
                    Ok(plan) => faults = Some(plan),
                    Err(e) => {
                        eprintln!("bad --faults spec: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--engine" => match grab("--engine").parse() {
                Ok(e) => engine = Some(e),
                Err(e) => {
                    eprintln!("bad --engine: {e}");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
            other => {
                if pipeline.replace(other.to_string()).is_some() {
                    eprintln!("multiple pipeline arguments");
                    std::process::exit(2);
                }
            }
        }
    }
    let Some(src) = pipeline else {
        eprintln!("no pipeline given");
        std::process::exit(2);
    };

    let prog = match parse_pipeline(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}", e.render(&src));
            std::process::exit(1);
        }
    };

    let params = MachineParams::new(p, ts, tw);
    let rewriter = if exhaustive {
        Rewriter::exhaustive()
    } else {
        Rewriter::cost_guided(params, m)
    }
    .allow_rank0_rules(!all_ranks);

    // Simulation engine for --profile/--faults: the flag wins, then the
    // process-wide default (`COLLOPT_ENGINE`, else pooled). The thread
    // engines have a hard rank ceiling — refuse oversized machines up
    // front with a pointer at the DES engine rather than failing
    // mid-spawn.
    let engine = engine.unwrap_or_else(ExecEngine::process_default);
    let engine_desc = match engine.max_p() {
        Some(cap) => format!("{} (p <= {cap})", engine.name()),
        None => format!("{} (p memory-bound)", engine.name()),
    };
    let simulating = profile || faults.is_some();
    if simulating {
        if let Some(cap) = engine.max_p().filter(|&cap| p > cap) {
            eprintln!(
                "p={p} exceeds the {} engine's {cap}-rank thread ceiling; \
                 rerun with --engine des (p bounded by memory only)",
                engine.name()
            );
            std::process::exit(2);
        }
    }
    let exec_config = ExecConfig {
        engine: Some(engine),
        ..ExecConfig::default()
    };

    // Deterministic synthetic input: `m` words per rank, small positive
    // ints (safe for every parser operator; floats coerce from ints).
    let profile_inputs = |p: usize, m: f64| -> Vec<Value> {
        let words = m.clamp(0.0, 1e6) as usize;
        (0..p)
            .map(|r| Value::int_list((0..words).map(|j| ((r * 7 + j) % 5 + 1) as i64)))
            .collect()
    };

    if report {
        let (result, md) = optimization_report(&prog, &rewriter, &params, m);
        print!("{md}");
        if profile {
            let inputs = profile_inputs(p, m);
            let clock = ClockParams::new(ts, tw);
            println!("\n## Where the time goes\n");
            println!("Simulated on the `{engine_desc}` engine.\n\n### Original\n");
            print!(
                "{}",
                profile_section_with(&prog, &inputs, clock, exec_config)
            );
            println!("\n### Optimized\n");
            print!(
                "{}",
                profile_section_with(&result.program, &inputs, clock, exec_config)
            );
        }
        if let Some(plan) = &faults {
            let inputs = profile_inputs(p, m);
            let clock = ClockParams::new(ts, tw);
            println!("\n## Degradation under faults\n");
            println!("Simulated on the `{engine_desc}` engine.\n\n### Original\n\n```text");
            print!(
                "{}",
                degradation_section_with(&prog, &inputs, clock, exec_config, plan)
            );
            println!("```\n\n### Optimized\n\n```text");
            print!(
                "{}",
                degradation_section_with(&result.program, &inputs, clock, exec_config, plan)
            );
            println!("```");
        }
        return;
    }

    if json {
        // The machine-readable path: the same byte-stable document the
        // serve front end returns (sans lint/simulation sections).
        let result = if optimal {
            rewriter.optimize_optimal(&prog, &params, m)
        } else {
            rewriter.optimize(&prog)
        };
        println!(
            "{}",
            optimize_result_json(&prog, &result, &params, m).render()
        );
        return;
    }

    println!("machine  : p={p}, ts={ts}, tw={tw}, block m={m}");
    if simulating {
        println!("engine   : {engine_desc}");
    }
    println!("original : {prog}");
    let before = program_cost(&prog, &params, m);
    let result = if optimal {
        rewriter.optimize_optimal(&prog, &params, m)
    } else {
        rewriter.optimize(&prog)
    };
    for step in &result.steps {
        match step.saving {
            Some(s) => println!(
                "applied  : {} at stage {} (predicted saving {s:.0})",
                step.rule, step.at
            ),
            None => println!("applied  : {} at stage {}", step.rule, step.at),
        }
    }
    for n in &result.normalizations {
        println!("normalize: {n:?}");
    }
    if result.steps.is_empty() {
        println!("applied  : (no rule pays off on this machine)");
    }
    println!("optimized: {}", result.program);
    let after = program_cost(&result.program, &params, m);
    if before > 0.0 {
        println!(
            "cost     : {before:.0} -> {after:.0} time units ({:+.1}%)",
            100.0 * (after - before) / before
        );
    }
    if profile {
        let inputs = profile_inputs(p, m);
        let clock = ClockParams::new(ts, tw);
        println!("\n-- original: where the time goes --");
        print!(
            "{}",
            profile_section_with(&prog, &inputs, clock, exec_config)
        );
        println!("\n-- optimized: where the time goes --");
        print!(
            "{}",
            profile_section_with(&result.program, &inputs, clock, exec_config)
        );
    }
    if let Some(plan) = &faults {
        let inputs = profile_inputs(p, m);
        let clock = ClockParams::new(ts, tw);
        println!("\n-- original: degradation under faults --");
        print!(
            "{}",
            degradation_section_with(&prog, &inputs, clock, exec_config, plan)
        );
        println!("\n-- optimized: degradation under faults --");
        print!(
            "{}",
            degradation_section_with(&result.program, &inputs, clock, exec_config, plan)
        );
    }
}
