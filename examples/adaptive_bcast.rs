//! Model-driven algorithm selection: the cost calculus choosing a
//! broadcast implementation per machine and message size.
//!
//! The paper's Section 4 uses the `ts`/`tw` calculus to decide whether an
//! *algebraic* rewrite pays off; the same calculus arbitrates between
//! *implementations* of a single collective (its reference [17],
//! van de Geijn, is the classic source for the large-message algorithms):
//!
//! * binomial tree — `log p` start-ups, `log p · m·tw` volume;
//! * chain pipeline — `~2S + p` start-ups, `~m·tw` volume per hop;
//! * scatter + ring allgather (van de Geijn) — `~p` start-ups, `~2m·tw`
//!   volume.
//!
//! `bcast_auto` evaluates all three analytically and runs the winner.
//!
//! Run with `cargo run --release --example adaptive_bcast`.

use collopt::collectives::{
    bcast_auto, bcast_binomial, bcast_pipelined, bcast_scatter_allgather, choose_bcast,
    optimal_segments,
};
use collopt::prelude::{ClockParams, Machine};

fn measure(p: usize, mw: usize, clock: ClockParams) -> (f64, f64, f64, f64, &'static str) {
    let machine = Machine::new(p, clock);
    let tree = machine.run(move |ctx| {
        let v = (ctx.rank() == 0).then(|| vec![1u8; mw]);
        bcast_binomial(ctx, 0, v, mw as u64).len()
    });
    let segments = optimal_segments(p, mw as u64, clock.ts, clock.tw);
    let chain = machine.run(move |ctx| {
        let v = (ctx.rank() == 0).then(|| vec![1u8; mw]);
        bcast_pipelined(ctx, 0, v, 1, segments).len()
    });
    let vdg = machine.run(move |ctx| {
        let v = (ctx.rank() == 0).then(|| vec![1u8; mw]);
        bcast_scatter_allgather(ctx, v, 1).len()
    });
    let auto = machine.run(move |ctx| {
        let v = (ctx.rank() == 0).then(|| vec![1u8; mw]);
        bcast_auto(ctx, v, 1).len()
    });
    // Everyone must have received the full block.
    for r in [&tree, &chain, &vdg, &auto] {
        assert!(r.results.iter().all(|&len| len == mw));
    }
    let choice = match choose_bcast(p, mw as u64, &clock) {
        collopt::collectives::BcastChoice::Binomial => "binomial",
        collopt::collectives::BcastChoice::ChainPipeline => "chain",
        collopt::collectives::BcastChoice::ScatterAllgather => "vdGeijn",
    };
    (
        tree.makespan,
        chain.makespan,
        vdg.makespan,
        auto.makespan,
        choice,
    )
}

fn main() {
    let clock = ClockParams::parsytec_like();
    let p = 16;
    println!(
        "broadcast on p = {p}, ts = {}, tw = {} (simulated units)",
        clock.ts, clock.tw
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}  model picks",
        "block m", "binomial", "chain", "vdGeijn", "auto"
    );
    for mw in [4usize, 64, 1000, 8000, 32_000, 128_000] {
        let (tree, chain, vdg, auto, choice) = measure(p, mw, clock);
        println!(
            "{:<10} {:>12.0} {:>12.0} {:>12.0} {:>12.0}  {}",
            mw, tree, chain, vdg, auto, choice
        );
        // The auto version must be within the length-preamble of the best
        // fixed strategy.
        let best = tree.min(chain).min(vdg);
        let preamble = collopt_machine::topology::ceil_log2(p) as f64 * (clock.ts + clock.tw) + 1.0;
        assert!(
            auto <= best + preamble,
            "m={mw}: auto {auto} must track the best fixed strategy {best}"
        );
    }
    println!("\nat small m the tree's log p start-ups win; at large m the");
    println!("bandwidth-optimal algorithms take over — the same ts-vs-m·tw");
    println!("trade the paper's Table 1 formalizes for the fusion rules.");
}
