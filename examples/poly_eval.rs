//! The paper's case study (Section 5): polynomial evaluation.
//!
//! Evaluate `a1·x + a2·x² + … + an·xⁿ` at `m` points `y1…ym`, with
//! coefficient `ai` on processor `i` and the point list on processor 0.
//!
//! The obvious program (eq. 18) uses three collective operations:
//!
//! ```text
//! PolyEval_1 = bcast ; scan(×) ; map2(×) as ; reduce(+)
//! ```
//!
//! `bcast` ships the points everywhere; `scan(×)` leaves `y^(i+1)` on
//! processor `i` (elementwise over the block of `m` points); the local
//! stage multiplies by `ai`; `reduce(+)` sums elementwise into processor 0.
//!
//! Rule BS-Comcast — an *always* rule per Table 1 — fuses the first two
//! stages into a broadcast followed by a logarithmic local `repeat`
//! (eq. 19/20):
//!
//! ```text
//! PolyEval_3 = bcast ; map2#(op_new as) ; reduce(+)
//! ```
//!
//! Run with `cargo run --example poly_eval`.

use std::sync::Arc;

use collopt::prelude::*;

/// Sequential Horner-style reference: `Σ_i a_i · y^i` for `i = 1..n`.
fn reference(coeffs: &[f64], ys: &[f64]) -> Vec<f64> {
    ys.iter()
        .map(|&y| {
            let mut power = 1.0;
            let mut acc = 0.0;
            for &a in coeffs {
                power *= y;
                acc += a * power;
            }
            acc
        })
        .collect()
}

fn main() {
    let n = 16; // polynomial degree = processor count
    let m = 256; // number of evaluation points (the block size)
    let coeffs: Vec<f64> = (1..=n).map(|i| 1.0 / i as f64).collect();
    let points: Vec<f64> = (0..m).map(|j| 0.2 + 0.9 * (j as f64) / m as f64).collect();
    let expected = reference(&coeffs, &points);

    // Distributed input: processor 0 holds the point block, the rest don't
    // care (the paper's `[ys, _, …, _]`).
    let mut input = vec![Value::list(vec![Value::Float(0.0); m]); n];
    input[0] = Value::list(points.iter().map(|&y| Value::Float(y)).collect());

    // PolyEval_1 = bcast ; scan(×) ; map2(×) as ; reduce(+).
    let cs = Arc::new(coeffs.clone());
    let poly_eval_1 = Program::new()
        .bcast()
        .scan(ops::fmul())
        .map_indexed("mul_coeff", 1.0, {
            let cs = cs.clone();
            move |rank, v| {
                let a = cs[rank];
                v.map_block(&|x| Value::Float(a * x.as_float()))
            }
        })
        .reduce(ops::fadd());
    println!("PolyEval_1 = {poly_eval_1}");

    // Optimization: BS-Comcast always improves (Table 1), so cost-guided
    // rewriting fires it for any machine.
    let params = MachineParams::parsytec_like(n);
    let opt = Rewriter::cost_guided(params, m as f64).optimize(&poly_eval_1);
    assert_eq!(opt.steps.len(), 1);
    assert_eq!(opt.steps[0].rule.to_string(), "BS-Comcast");
    println!("PolyEval_3 = {}", opt.program);

    // Correctness of both versions against the sequential reference.
    let clock = ClockParams::new(params.ts, params.tw);
    let before = execute(&poly_eval_1, &input, clock);
    let after = execute(&opt.program, &input, clock);
    for (version, out) in [("PolyEval_1", &before), ("PolyEval_3", &after)] {
        let got: Vec<f64> = out.outputs[0]
            .as_list()
            .iter()
            .map(Value::as_float)
            .collect();
        let max_err = got
            .iter()
            .zip(&expected)
            .map(|(g, e)| (g - e).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-9, "{version}: max error {max_err}");
        println!("{version}: {m} points evaluated, max |err| = {max_err:.2e}");
    }

    // The speedup the paper measures in Figures 7–8.
    println!(
        "simulated time: {:.0} -> {:.0} units ({:.1}% saved)",
        before.makespan,
        after.makespan,
        100.0 * (1.0 - after.makespan / before.makespan)
    );
    assert!(after.makespan < before.makespan);

    // Sample values for the curious.
    let sample: Vec<f64> = before.outputs[0].as_list()[..4.min(m)]
        .iter()
        .map(Value::as_float)
        .collect();
    println!("first values: {sample:?}");
}
