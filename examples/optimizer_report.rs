//! Performance-directed programming report: which rule fires where.
//!
//! Sweeps a suite of collective pipelines across machine presets and block
//! sizes, and prints which optimization rules the cost-guided rewriter
//! applies — a working demonstration of the paper's central claim that
//! rule application must be *machine-dependent* (Section 4). Ends with the
//! analytic Table 1.
//!
//! Run with `cargo run --example optimizer_report`.

use collopt::cost::table1::render_table1;
use collopt::prelude::*;

fn suite() -> Vec<(&'static str, Program)> {
    vec![
        (
            "scan(*);allreduce(+)",
            Program::new().scan(ops::mul()).allreduce(ops::add()),
        ),
        (
            "scan(+);allreduce(+)",
            Program::new().scan(ops::add()).allreduce(ops::add()),
        ),
        (
            "scan(*);scan(+)",
            Program::new().scan(ops::mul()).scan(ops::add()),
        ),
        (
            "scan(+);scan(+)",
            Program::new().scan(ops::add()).scan(ops::add()),
        ),
        ("bcast;scan(+)", Program::new().bcast().scan(ops::add())),
        (
            "bcast;scan(*);scan(+)",
            Program::new().bcast().scan(ops::mul()).scan(ops::add()),
        ),
        (
            "bcast;scan(+);scan(+)",
            Program::new().bcast().scan(ops::add()).scan(ops::add()),
        ),
        ("bcast;reduce(+)", Program::new().bcast().reduce(ops::add())),
        (
            "bcast;allreduce(+)",
            Program::new().bcast().allreduce(ops::add()),
        ),
        (
            "bcast;scan(*);reduce(+)",
            Program::new().bcast().scan(ops::mul()).reduce(ops::add()),
        ),
        (
            "bcast;scan(+);reduce(+)",
            Program::new().bcast().scan(ops::add()).reduce(ops::add()),
        ),
    ]
}

fn main() {
    let p = 64;
    let machines = [
        (
            "parsytec-like (ts=200, tw=2)",
            MachineParams::parsytec_like(p),
        ),
        ("low-latency  (ts=4, tw=0.5)", MachineParams::low_latency(p)),
    ];
    let blocks = [1.0_f64, 32.0, 1024.0, 32768.0];

    for (mname, params) in machines {
        println!("=== machine: {mname}, p = {p} ===");
        println!(
            "{:<26} {:>8} {:>8} {:>8} {:>8}",
            "pipeline \\ block m", 1, 32, 1024, 32768
        );
        for (pname, prog) in suite() {
            let mut cells = Vec::new();
            for &m in &blocks {
                let res = Rewriter::cost_guided(params, m).optimize(&prog);
                let cell = if res.steps.is_empty() {
                    "-".to_string()
                } else {
                    res.steps
                        .iter()
                        .map(|s| short(&s.rule.to_string()))
                        .collect::<Vec<_>>()
                        .join("+")
                };
                cells.push(format!("{cell:>8}"));
            }
            println!("{:<26} {}", pname, cells.join(" "));
        }
        println!();
    }

    println!("=== Table 1 (analytic, per log p phase) ===");
    print!("{}", render_table1());

    // Sanity: the "always" rules fire in every cell of their row.
    for &m in &blocks {
        for (_, params) in machines {
            let prog = Program::new().scan(ops::mul()).allreduce(ops::add());
            assert_eq!(
                Rewriter::cost_guided(params, m).optimize(&prog).steps.len(),
                1,
                "SR2 must always fire"
            );
        }
    }
}

/// Compress rule names for the table cells.
fn short(name: &str) -> String {
    name.replace("-Reduction", "")
        .replace("-Comcast", "c")
        .replace("-Local", "l")
        .replace("-Scan", "s")
        .replace("-Alllocal", "al")
}
