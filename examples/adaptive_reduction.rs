//! Model-driven algorithm selection for reductions: butterfly vs
//! Rabenseifner's reduce-scatter + allgather vs the ring, arbitrated by
//! the same `ts`/`tw` calculus the paper uses for its rewrite rules.
//!
//! * butterfly — `log p` start-ups, `log p · m(tw+c)` volume;
//! * Rabenseifner — `2 log p` start-ups, `m(1−1/p)(2tw+c)` volume;
//! * ring — `~2p` start-ups, bandwidth-optimal volume, commutative only.
//!
//! `allreduce_auto` evaluates the candidates analytically and runs the
//! winner; `ExecConfig::adaptive_reduction` plumbs the selector into
//! whole-program execution.
//!
//! Run with `cargo run --release --example adaptive_reduction`.

use collopt::collectives::{
    allreduce_auto, allreduce_butterfly, allreduce_rabenseifner, choose_allreduce, Combine,
};
use collopt::core::exec::{execute, execute_with, ExecConfig};
use collopt::prelude::{ops, ClockParams, Machine, Program, Value};

type Block = Vec<i64>;

fn measure(p: usize, mw: usize, clock: ClockParams) -> (f64, f64, f64, &'static str) {
    let machine = Machine::new(p, clock);
    let run_with = |which: usize| {
        machine.run(move |ctx| {
            let f =
                |a: &Block, b: &Block| -> Block { a.iter().zip(b).map(|(x, y)| x + y).collect() };
            let op = Combine::new(&f).assume_commutative();
            let v: Block = vec![ctx.rank() as i64; mw];
            let out = match which {
                0 => allreduce_butterfly(ctx, v, mw as u64, &op),
                1 => allreduce_rabenseifner(ctx, v, 1, &op),
                _ => allreduce_auto(ctx, v, 1, &op),
            };
            // Every rank must hold the full reduced block.
            assert!(out.len() == mw && out.iter().all(|&x| x == (p * (p - 1) / 2) as i64));
        })
    };
    let choice = choose_allreduce(p, mw as u64, 1.0, true, &clock);
    (
        run_with(0).makespan,
        run_with(1).makespan,
        run_with(2).makespan,
        choice.name(),
    )
}

fn main() {
    let p = 16usize;
    let clock = ClockParams::parsytec_like();
    println!("allreduce on p = {p}, ts = {}, tw = {}", clock.ts, clock.tw);
    println!(
        "{:>8} {:>12} {:>14} {:>12}  chosen",
        "m", "butterfly", "rabenseifner", "auto"
    );
    for mw in [16usize, 64, 109, 110, 256, 4096, 32_768] {
        let (butterfly, raben, auto, choice) = measure(p, mw, clock);
        println!("{mw:>8} {butterfly:>12.0} {raben:>14.0} {auto:>12.0}  {choice}");
        // The model is exact when p | m; right at the crossover a block
        // with ragged p-segments can make the predicted winner lose by a
        // sliver (m = 110: 2122 vs 2120), so allow near-ties.
        assert!(auto <= 1.01 * butterfly.min(raben));
    }

    // The same selector, driven from whole-program execution: the fused
    // scan;allreduce (rule SR-Reduction) switches its balanced butterfly
    // to halving/doubling when the model predicts a win.
    let mw = 2_000usize;
    let prog = Program::new().scan(ops::add()).allreduce(ops::add());
    let opt = collopt::prelude::Rewriter::exhaustive()
        .allow_rank0_rules(false)
        .optimize(&prog)
        .program;
    let input: Vec<Value> = (0..p)
        .map(|r| Value::list(vec![Value::Int(r as i64); mw]))
        .collect();
    let fixed = execute(&opt, &input, clock);
    let adaptive = execute_with(
        &opt,
        &input,
        clock,
        ExecConfig {
            adaptive_reduction: true,
            ..ExecConfig::default()
        },
    );
    assert_eq!(fixed.outputs, adaptive.outputs);
    println!("\nfused `{opt}` at m = {mw}:");
    println!("  balanced butterfly : {:>8.0} time units", fixed.makespan);
    println!(
        "  halving/doubling   : {:>8.0} time units ({:.1}% saved)",
        adaptive.makespan,
        100.0 * (1.0 - adaptive.makespan / fixed.makespan)
    );
}
