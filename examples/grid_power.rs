//! Power iteration on a 2-D processor grid — collective operations over
//! communicators (the PLAPACK-style pattern the paper's introduction
//! cites as the success story of collective programming).
//!
//! An `n × n` matrix is block-distributed over a `g × g` processor grid:
//! processor `(i, j)` owns block `A_ij`. One power-method step is built
//! entirely from collectives over *row* and *column* communicators:
//!
//! 1. local block mat-vec: `t = A_ij · x_j`;
//! 2. **row allreduce(+)** of the partials: every processor in row `i`
//!    obtains `y_i = Σ_j A_ij x_j`;
//! 3. **column allreduce(max)** of `max|y_i|`: the ∞-norm, consistent
//!    everywhere (each column sees every row segment);
//! 4. normalize locally, then **column bcast** from the diagonal
//!    processor `(j, j)` gives everyone in column `j` its new `x_j`.
//!
//! The dominant eigenvalue estimate is checked against a sequential
//! power iteration on the same matrix.
//!
//! Run with `cargo run --example grid_power`.

use std::sync::Arc;

use collopt::collectives::{Combine, Comm};
use collopt::prelude::{ClockParams, Machine};

/// Deterministic test matrix: diagonally dominant so the power method
/// converges quickly and the dominant eigenvalue is well separated.
fn matrix(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        4.0 + (i as f64) * 0.5
                    } else {
                        0.3 / (1.0 + (i as f64 - j as f64).abs())
                    }
                })
                .collect()
        })
        .collect()
}

/// Sequential reference: `iters` power steps, returns the Rayleigh-free
/// eigenvalue estimate `‖Ax‖∞ / ‖x‖∞`.
fn sequential_power(a: &[Vec<f64>], iters: usize) -> f64 {
    let n = a.len();
    let mut x = vec![1.0f64; n];
    let mut lambda = 0.0;
    for _ in 0..iters {
        let y: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[i][j] * x[j]).sum())
            .collect();
        lambda = y.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        x = y.iter().map(|v| v / lambda).collect();
    }
    lambda
}

fn main() {
    let g = 4usize; // grid side: g x g processors
    let b = 8usize; // block side: each processor owns a b x b block
    let n = g * b;
    let iters = 20;

    let a = Arc::new(matrix(n));
    let expected = sequential_power(&a, iters);

    let machine = Machine::new(g * g, ClockParams::parsytec_like());
    let a2 = a.clone();
    let run = machine.run(move |ctx| {
        let rank = ctx.rank();
        let (row, col) = (rank / g, rank % g);
        // Local block A_ij and the initial segment x_j = 1.
        let block: Vec<Vec<f64>> = (0..b)
            .map(|bi| (0..b).map(|bj| a2[row * b + bi][col * b + bj]).collect())
            .collect();
        let mut x_seg = vec![1.0f64; b];
        let mut lambda = 0.0f64;

        let add =
            |u: &Vec<f64>, v: &Vec<f64>| u.iter().zip(v).map(|(a, b)| a + b).collect::<Vec<f64>>();
        let fmax = |u: &f64, v: &f64| u.max(*v);

        for _ in 0..iters {
            // 1. local partial product t = A_ij * x_j.
            let t: Vec<f64> = (0..b)
                .map(|bi| (0..b).map(|bj| block[bi][bj] * x_seg[bj]).sum())
                .collect();
            // 2. row allreduce: y_i on every processor of row `row`.
            let y_seg = {
                let mut row_comm = Comm::split(ctx, |r| (r / g) as u64);
                row_comm.allreduce(t, b as u64, &Combine::new(&add))
            };
            // 3. column allreduce(max) of the segment ∞-norms — every
            // column contains one processor of each row, so the result is
            // the global ∞-norm, identical everywhere.
            let local_max = y_seg.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            lambda = {
                let mut col_comm = Comm::split(ctx, |r| (r % g) as u64);
                col_comm.allreduce(local_max, 1, &Combine::new(&fmax))
            };
            // 4. the diagonal processor (col, col) of this column holds
            // the y-segment this column needs as its next x; normalize
            // and broadcast it down the column.
            let mut col_comm = Comm::split(ctx, |r| (r % g) as u64);
            let root_group_rank = col; // group rank r in column = machine row r
            let value =
                (row == col).then(|| y_seg.iter().map(|v| v / lambda).collect::<Vec<f64>>());
            x_seg = col_comm.bcast(root_group_rank, value, b as u64);
        }
        (lambda, x_seg)
    });

    let (lambda, _) = &run.results[0];
    println!("grid      : {g} x {g} processors, {b} x {b} blocks, n = {n}");
    println!("estimate  : λ ≈ {lambda:.9} (distributed, {iters} iterations)");
    println!("reference : λ ≈ {expected:.9} (sequential)");
    println!("makespan  : {:.0} simulated units", run.makespan);
    let err = (lambda - expected).abs();
    assert!(
        err < 1e-9,
        "distributed and sequential estimates must agree: err = {err}"
    );
    // Every processor converged to the same estimate.
    for (r, (l, _)) in run.results.iter().enumerate() {
        assert!((l - expected).abs() < 1e-9, "rank {r}");
    }
    println!("all {} processors agree to 1e-9 ✓", g * g);
}
