//! Maximum segment sum — collective programming with a non-commutative
//! tuple operator.
//!
//! The classic workload of the skeleton/homomorphism literature the paper
//! builds on (Gorlatch's scan/reduce derivations): the maximum sum of a
//! contiguous segment of a distributed sequence is an `allreduce` with the
//! 4-tuple operator
//!
//! ```text
//! (mss, mps, mts, ts) ⊙ (mss', mps', mts', ts') =
//!     (max(mss, mss', mts + mps'),   -- best segment anywhere
//!      max(mps, ts + mps'),          -- best prefix
//!      max(mts', mts + ts'),         -- best suffix
//!      ts + ts')                     -- total sum
//! ```
//!
//! `⊙` is associative but **not** commutative — exactly the kind of
//! operator for which the rewrite rules' side conditions matter. This
//! example shows:
//!
//! 1. the operator expressed as a [`BinOp`] with randomized property
//!    *verification* (associativity passes, commutativity fails);
//! 2. the MSS pipeline running on the simulated machine, validated
//!    against a sequential Kadane reference;
//! 3. the rewriter correctly *refusing* to fuse `scan(⊙); reduce(⊙)`
//!    (no commutativity), while a follow-up phase with commutative `+`
//!    does fuse.
//!
//! Run with `cargo run --example mss`.

use collopt::prelude::*;

/// The MSS combine on 4-tuples (values are nonempty-segment sums).
fn op_mss() -> BinOp {
    BinOp::new("mss", |x, y| {
        let (mss1, mps1, mts1, ts1) = (
            x.proj(0).as_int(),
            x.proj(1).as_int(),
            x.proj(2).as_int(),
            x.proj(3).as_int(),
        );
        let (mss2, mps2, mts2, ts2) = (
            y.proj(0).as_int(),
            y.proj(1).as_int(),
            y.proj(2).as_int(),
            y.proj(3).as_int(),
        );
        Value::Tuple(vec![
            Value::Int(mss1.max(mss2).max(mts1 + mps2)),
            Value::Int(mps1.max(ts1 + mps2)),
            Value::Int(mts2.max(mts1 + ts2)),
            Value::Int(ts1 + ts2),
        ])
    })
    .with_cost(8.0)
    .with_width(4.0)
}

/// Sequential Kadane's algorithm (nonempty segments).
fn kadane(xs: &[i64]) -> i64 {
    let mut best = i64::MIN;
    let mut cur = 0i64;
    for &x in xs {
        cur = x.max(cur + x);
        best = best.max(cur);
    }
    best
}

fn main() {
    // ---- 1. Verify the operator's algebra before trusting it. ----
    let op = op_mss();
    let samples: Vec<Value> = [-3i64, -1, 0, 2, 5]
        .iter()
        .map(|&v| Value::Tuple(vec![v.into(), v.into(), v.into(), v.into()]))
        .collect();
    assert!(op.check_associative(&samples), "op_mss must be associative");
    assert!(!op.check_commutative(&samples), "op_mss is NOT commutative");
    println!("op_mss: associative = yes, commutative = no (verified on samples)");

    // ---- 2. The distributed MSS pipeline. ----
    let p = 16;
    let data: Vec<i64> = (0..p as i64)
        .map(|i| [3, -5, 4, -1, 2, -7, 6, -2][i as usize % 8])
        .collect();
    let expected = kadane(&data);

    let mss = Program::new()
        .map("embed", 0.0, |v| {
            // x ↦ (x, x, x, x): a single element is its own best segment,
            // prefix, suffix and total.
            Value::Tuple(vec![v.clone(), v.clone(), v.clone(), v.clone()])
        })
        .allreduce(op_mss())
        .map("pi1", 0.0, |v| v.proj(0));
    println!("pipeline: {mss}");

    let input: Vec<Value> = data.iter().map(|&x| Value::Int(x)).collect();
    let run = execute(&mss, &input, ClockParams::parsytec_like());
    assert!(run.outputs.iter().all(|v| v.as_int() == expected));
    println!("maximum segment sum of {data:?}\n        = {expected} (every processor agrees)");

    // ---- 3. The rules respect the missing commutativity. ----
    let tempting = Program::new().scan(op_mss()).reduce(op_mss());
    let res = Rewriter::exhaustive().optimize(&tempting);
    assert!(
        res.steps.is_empty(),
        "SR-Reduction must not fire: op_mss is not commutative"
    );
    println!("scan(mss); reduce(mss): no rule applies (needs commutativity) — correct");

    // A follow-up phase on plain sums fuses as usual.
    let followup = Program::new().bcast().scan(ops::add()).reduce(ops::add());
    let res = Rewriter::exhaustive().optimize(&followup);
    assert_eq!(res.steps.len(), 1);
    println!(
        "bcast; scan(+); reduce(+): {} fires -> {}",
        res.steps[0].rule, res.program
    );
}
