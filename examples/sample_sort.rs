//! Distributed sample sort — a classic all-collective algorithm
//! (Deng & Gu's "good programming style on multiprocessors", the paper's
//! reference [5], is exactly about expressing such algorithms with
//! collective operations only).
//!
//! Steps, each a collective from this library — no raw send/recv:
//!
//! 1. local sort of each rank's block;
//! 2. **gather** a regular sample of `p−1` candidates per rank to rank 0;
//! 3. rank 0 picks `p−1` splitters, **bcast**s them;
//! 4. partition the local block by splitter, **alltoall** the pieces;
//! 5. local merge; **allreduce(+)** of the counts verifies no element
//!    was lost.
//!
//! Run with `cargo run --example sample_sort`.

use collopt::collectives::{alltoall, bcast_binomial, gather_binomial, Combine};
use collopt::prelude::{ClockParams, Machine};

fn main() {
    let p = 8usize;
    let n_per_rank = 64usize;

    let machine = Machine::new(p, ClockParams::parsytec_like());
    let run = machine.run(move |ctx| {
        let rank = ctx.rank();
        let p = ctx.size();
        // Deterministic pseudo-random block.
        let mut block: Vec<i64> = (0..n_per_rank)
            .map(|j| (((rank * 7919 + j * 104729) % 10_007) as i64) - 5000)
            .collect();
        // 1. local sort
        block.sort_unstable();

        // 2. regular sample: p-1 evenly spaced candidates per rank.
        let sample: Vec<i64> = (1..p).map(|k| block[k * n_per_rank / p]).collect();
        let gathered = gather_binomial(ctx, sample, (p - 1) as u64);

        // 3. rank 0 sorts all candidates and picks global splitters.
        let splitters: Vec<i64> = {
            let chosen = gathered.map(|samples| {
                let mut all: Vec<i64> = samples.into_iter().flatten().collect();
                all.sort_unstable();
                // Every p-1-th candidate: p-1 splitters.
                (1..p).map(|k| all[k * (p - 1) - 1]).collect::<Vec<i64>>()
            });
            bcast_binomial(ctx, 0, chosen, (p - 1) as u64)
        };

        // 4. partition the local block into p pieces by splitter …
        let mut pieces: Vec<Vec<i64>> = vec![Vec::new(); p];
        for &x in &block {
            let dest = splitters.partition_point(|&s| s < x);
            pieces[dest].push(x);
        }
        // … and exchange: piece d goes to rank d.
        let received = alltoall(ctx, pieces, n_per_rank as u64);

        // 5. local merge (concatenate + sort; pieces are sorted already).
        let mut mine: Vec<i64> = received.into_iter().flatten().collect();
        mine.sort_unstable();

        // Global count check: nothing lost, nothing duplicated.
        let add = |a: &i64, b: &i64| a + b;
        let total = collopt::collectives::allreduce(ctx, mine.len() as i64, 1, &Combine::new(&add));
        assert_eq!(total as usize, p * n_per_rank);
        mine
    });

    // Verify: concatenation of per-rank outputs equals the sorted input.
    let mut expected: Vec<i64> = (0..p)
        .flat_map(|r| {
            (0..n_per_rank).map(move |j| (((r * 7919 + j * 104729) % 10_007) as i64) - 5000)
        })
        .collect();
    expected.sort_unstable();
    let got: Vec<i64> = run.results.iter().flatten().copied().collect();
    assert_eq!(
        got, expected,
        "sample sort must produce the globally sorted sequence"
    );

    // Each rank's block is sorted and blocks are ordered across ranks.
    for w in run.results.windows(2) {
        if let (Some(last), Some(first)) = (w[0].last(), w[1].first()) {
            assert!(last <= first, "rank boundaries must be ordered");
        }
    }
    let sizes: Vec<usize> = run.results.iter().map(Vec::len).collect();
    println!("sample sort on {p} ranks x {n_per_rank} elements: OK");
    println!("per-rank output sizes: {sizes:?} (imbalance is inherent to sampling)");
    println!("simulated time: {:.0} units", run.makespan);
}
