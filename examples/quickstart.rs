//! Quickstart: the paper's running Example program, optimized and executed.
//!
//! ```text
//! Program Example (x: input, v: output);
//!     y = f(x);
//!     MPI_Scan   (y, z, count1, type, op1, comm);
//!     MPI_Reduce (z, u, count2, type, op2, root, comm);
//!     v = g(u);
//!     MPI_Bcast  (v, count3, type, root, comm);
//! ```
//!
//! In the functional framework this is
//! `example = map f ; scan (⊗) ; reduce (⊕) ; map g ; bcast` (eq. 2).
//! With `⊗ = mul` and `⊕ = add`, `⊗` distributes over `⊕`, so rule
//! SR2-Reduction fuses the scan/reduce pair into a single reduction over
//! pairs — Figure 3's "time saved".
//!
//! Run with `cargo run --example quickstart`.

use collopt::prelude::*;

fn main() {
    // ---- 1. Write the program against the collective-operation API. ----
    let example = Program::new()
        .map("f", 1.0, |v| Value::Int(v.as_int() + 1))
        .scan(ops::mul())
        .reduce(ops::add())
        .map("g", 1.0, |v| Value::Int(v.as_int() * 2))
        .bcast();
    println!("original : {example}");

    // ---- 2. Optimize for a concrete machine. ----
    let p = 16;
    let params = MachineParams::parsytec_like(p);
    let block = 1.0; // one word per processor
    let result = Rewriter::cost_guided(params, block).optimize(&example);
    for step in &result.steps {
        println!(
            "applied  : {} at stage {} (predicted saving {:.0} time units)",
            step.rule,
            step.at,
            step.saving.unwrap_or(0.0)
        );
    }
    println!("optimized: {}", result.program);

    // ---- 3. Both programs mean the same thing. ----
    let input: Vec<Value> = (0..p as i64).map(|i| Value::Int(i % 5)).collect();
    let lhs = eval_program(&example, &input);
    let rhs = eval_program(&result.program, &input);
    assert_eq!(lhs, rhs, "the rewrite must preserve semantics");
    println!("output   : {} (on every processor)", lhs[0]);

    // ---- 4. ... but the optimized one runs faster on the machine. ----
    let clock = ClockParams::new(params.ts, params.tw);
    let before = execute(&example, &input, clock);
    let after = execute(&result.program, &input, clock);
    println!(
        "simulated time: {:.0} -> {:.0} units  ({:.1}% saved, {} -> {} messages)",
        before.makespan,
        after.makespan,
        100.0 * (1.0 - after.makespan / before.makespan),
        before.total_messages,
        after.total_messages,
    );
    assert_eq!(before.outputs, after.outputs);
    assert!(after.makespan < before.makespan);

    // ---- 5. Composition exposes more fusion (Figure 1). ----
    // If the next program starts with a scan, the trailing bcast meets it:
    // bcast ; scan  →  BS-Comcast.
    let next_example = Program::new().scan(ops::add());
    let composed = example.then(next_example);
    let fused = Rewriter::cost_guided(params, block).optimize(&composed);
    println!("composed : {composed}");
    println!("fused    : {}", fused.program);
    let rules: Vec<String> = fused.steps.iter().map(|s| s.rule.to_string()).collect();
    println!("rules    : {}", rules.join(", "));
    assert!(rules.iter().any(|r| r == "BS-Comcast"));
}
