//! Clusters of SMPs: the two-level machines of the paper's Section 2.2.
//!
//! "Multithreaded computations in the symmetric multiprocessor nodes of
//! clusters of SMPs can be expressed by introducing one more level of
//! parallelism: `map (map f)` instead of `map f`." On the cost side, such
//! machines have cheap intra-node and expensive inter-node messages; this
//! example runs the same global-sum workload on:
//!
//! 1. a flat Parsytec-like network;
//! 2. a 4-nodes-of-4 cluster with block rank placement — where the flat
//!    binomial tree is *already* locality-optimal (an instructive tie);
//! 3. a 3-node cluster with cyclic rank placement — where every
//!    power-of-two stride crosses the network and the two-level
//!    algorithms win decisively.
//!
//! Run with `cargo run --example smp_cluster`.

use collopt::collectives::{allreduce, allreduce_two_level, Combine};
use collopt::prelude::{ClockParams, Machine};

fn global_sum(
    machine: &Machine,
    two_level: Option<usize>,
    cyclic_nodes: Option<usize>,
) -> (Vec<i64>, f64) {
    let run = machine.run(move |ctx| {
        let add = |a: &i64, b: &i64| a + b;
        // Each "SMP core" contributes a locally computed partial: the
        // map (map f) pattern collapses to a per-rank value here.
        let local: i64 = (0..100).map(|i| (ctx.rank() as i64 + i) % 7).sum();
        match (two_level, cyclic_nodes) {
            (Some(node_size), None) => {
                allreduce_two_level(ctx, local, 1, &Combine::new(&add), &move |r| r / node_size)
            }
            (Some(_), Some(nodes)) | (None, Some(nodes)) => {
                allreduce_two_level(ctx, local, 1, &Combine::new(&add), &move |r| r % nodes)
            }
            (None, None) => allreduce(ctx, local, 1, &Combine::new(&add)),
        }
    });
    (run.results, run.makespan)
}

fn main() {
    let p = 12;

    // 1. Flat machine, flat algorithm — the baseline.
    let flat_machine = Machine::new(p, ClockParams::parsytec_like());
    let (flat_vals, flat_time) = global_sum(&flat_machine, None, None);
    println!(
        "flat network          : allreduce       = {:>8.0} units",
        flat_time
    );

    // 2. Block-placed cluster: 3 nodes x 4 ranks.
    let block_cluster = Machine::new(p, ClockParams::clustered(200.0, 2.0, 4, 2.0, 0.1));
    let (b_flat_vals, b_flat) = global_sum(&block_cluster, None, None);
    let (b_two_vals, b_two) = global_sum(&block_cluster, Some(4), None);
    println!(
        "block cluster (3x4)   : flat = {b_flat:>8.0}, two-level = {b_two:>8.0}  (binomial strides already stay on-node)"
    );

    // 3. Cyclically-placed cluster: ranks round-robin over 3 nodes.
    let cyclic_cluster = Machine::new(p, ClockParams::clustered_cyclic(200.0, 2.0, 3, 2.0, 0.1));
    let (c_flat_vals, c_flat) = global_sum(&cyclic_cluster, None, None);
    let (c_two_vals, c_two) = global_sum(&cyclic_cluster, None, Some(3));
    println!(
        "cyclic cluster (3 way): flat = {c_flat:>8.0}, two-level = {c_two:>8.0}  ({:.0}% faster)",
        100.0 * (1.0 - c_two / c_flat)
    );

    // All variants compute the same global sum on every rank.
    for vals in [
        &flat_vals,
        &b_flat_vals,
        &b_two_vals,
        &c_flat_vals,
        &c_two_vals,
    ] {
        assert_eq!(vals, &flat_vals, "all variants agree");
        assert!(vals.iter().all(|v| v == &vals[0]));
    }
    // The cluster runs are cheaper than the flat network (local links help)…
    assert!(b_flat < flat_time);
    // …and on the cyclic layout the two-level algorithm is the clear winner.
    assert!(c_two < c_flat, "two-level must win under cyclic placement");
    println!(
        "global sum            : {} (identical everywhere, all variants)",
        flat_vals[0]
    );
}
