//! Domain scenario: streaming statistics over distributed sensor blocks.
//!
//! Two pipelines that arise naturally when each processor holds a window
//! of sensor readings:
//!
//! 1. **Global running total** — `scan(+)` gives every processor the
//!    cumulative sum up to its window, and a final `allreduce(+)` of those
//!    prefixes yields a smoothing weight used by all. Same operator, so
//!    rule **SR-Reduction** (commutativity) fuses them into one
//!    `allreduce_balanced(op_sr)` — profitable iff `ts > m` (Table 1).
//!
//! 2. **High-watermark detection** — the largest prefix sum of a stream of
//!    deltas. In the (max, +) *tropical* algebra, `scan(+)` followed by
//!    `allreduce(max)` computes exactly `max_k Σ_{i≤k} δ_i`; since `+`
//!    distributes over `max`, rule **SR2-Reduction** fuses the pair — an
//!    *always* rule.
//!
//! Run with `cargo run --example stats_pipeline`.

use collopt::prelude::*;

fn main() {
    let p = 32;
    let m = 8; // readings per processor window

    // Synthetic sensor data: processor i, slot j holds a small signed delta.
    let input: Vec<Value> = (0..p)
        .map(|i| {
            Value::list(
                (0..m)
                    .map(|j| Value::Int(((i * 7 + j * 3) % 11) as i64 - 5))
                    .collect(),
            )
        })
        .collect();

    // ---------- Pipeline 1: running totals + global weight. ----------
    let totals = Program::new().scan(ops::add()).allreduce(ops::add());
    println!("pipeline 1: {totals}");

    // On a latency-bound machine with small windows, ts > m: SR fires.
    let latency_bound = MachineParams::parsytec_like(p); // ts = 200 >> m = 8
    let opt = Rewriter::cost_guided(latency_bound, m as f64).optimize(&totals);
    assert_eq!(opt.steps.len(), 1);
    println!(
        "  latency-bound machine: {} fires -> {}",
        opt.steps[0].rule, opt.program
    );

    // On a low-latency machine with big blocks the condition fails and the
    // cost-guided rewriter leaves the program alone.
    let fast_net = MachineParams::low_latency(p); // ts = 4 < m = 8
    let kept = Rewriter::cost_guided(fast_net, m as f64).optimize(&totals);
    assert!(kept.steps.is_empty());
    println!(
        "  low-latency machine : no rule pays off (ts = {} < m = {m})",
        fast_net.ts
    );

    // Semantics are preserved and the fused version is faster where predicted.
    let clock = ClockParams::new(latency_bound.ts, latency_bound.tw);
    let before = execute(&totals, &input, clock);
    let after = execute(&opt.program, &input, clock);
    assert_eq!(before.outputs, after.outputs);
    println!(
        "  simulated time: {:.0} -> {:.0} units ({} -> {} messages)",
        before.makespan, after.makespan, before.total_messages, after.total_messages
    );
    assert!(after.makespan < before.makespan);

    // ---------- Pipeline 2: high-watermark via (max, +). ----------
    let watermark = Program::new()
        .scan(ops::add_tropical())
        .allreduce(ops::max());
    println!("pipeline 2: {watermark}");
    let opt2 = Rewriter::cost_guided(fast_net, m as f64).optimize(&watermark);
    assert_eq!(
        opt2.steps.len(),
        1,
        "SR2 is an always-rule: fires even on fast networks"
    );
    println!(
        "  {} fires on ANY machine -> {}",
        opt2.steps[0].rule, opt2.program
    );

    let w_before = execute(
        &watermark,
        &input,
        ClockParams::new(fast_net.ts, fast_net.tw),
    );
    let w_after = execute(
        &opt2.program,
        &input,
        ClockParams::new(fast_net.ts, fast_net.tw),
    );
    assert_eq!(w_before.outputs, w_after.outputs);

    // Cross-check the watermark against a sequential computation, slot 0.
    let deltas: Vec<i64> = input.iter().map(|v| v.as_list()[0].as_int()).collect();
    let mut run = 0;
    let mut high = i64::MIN;
    for d in deltas {
        run += d;
        high = high.max(run);
    }
    assert_eq!(w_after.outputs[0].as_list()[0].as_int(), high);
    println!("  high watermark (slot 0): {high}");
    println!(
        "  simulated time: {:.0} -> {:.0} units",
        w_before.makespan, w_after.makespan
    );
}
