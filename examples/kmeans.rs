//! Distributed k-means — the canonical allreduce workload of the SMP/
//! cluster programming literature the paper cites (SIMPLE et al.).
//!
//! Each rank owns a shard of 2-D points. One Lloyd iteration is a single
//! collective: locally accumulate per-cluster coordinate sums and counts,
//! then `allreduce(+)` the accumulator block so every rank can recompute
//! identical centroids. Convergence is a second collective: an
//! `allreduce(max)` of the local centroid movement.
//!
//! The result is validated against a sequential k-means on the same data
//! with the same initialization (they must agree bit for bit — the
//! distributed sum order is fixed by the collective's rank order).
//!
//! Run with `cargo run --release --example kmeans`.

use collopt::collectives::{allreduce, Combine};
use collopt::prelude::{ClockParams, Machine};

const K: usize = 3;
const DIM: usize = 2;

fn synth_points(rank: usize, n: usize) -> Vec<[f64; DIM]> {
    // Three well-separated blobs, deterministic.
    (0..n)
        .map(|j| {
            let h = (rank * 92821 + j * 68917) % 3;
            let jitter = |s: usize| ((rank * 31 + j * 17 + s) % 100) as f64 / 250.0;
            match h {
                0 => [0.0 + jitter(0), 0.0 + jitter(1)],
                1 => [4.0 + jitter(2), 0.5 + jitter(3)],
                _ => [2.0 + jitter(4), 3.0 + jitter(5)],
            }
        })
        .collect()
}

fn nearest(c: &[[f64; DIM]; K], p: &[f64; DIM]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (k, ck) in c.iter().enumerate() {
        let d = (ck[0] - p[0]).powi(2) + (ck[1] - p[1]).powi(2);
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    best
}

fn step(points: &[[f64; DIM]], centroids: &[[f64; DIM]; K]) -> ([f64; K * DIM], [f64; K]) {
    let mut sums = [0.0; K * DIM];
    let mut counts = [0.0; K];
    for p in points {
        let k = nearest(centroids, p);
        sums[k * DIM] += p[0];
        sums[k * DIM + 1] += p[1];
        counts[k] += 1.0;
    }
    (sums, counts)
}

fn recompute(centroids: &mut [[f64; DIM]; K], sums: &[f64], counts: &[f64]) -> f64 {
    let mut moved = 0.0f64;
    for k in 0..K {
        if counts[k] > 0.0 {
            let nx = sums[k * DIM] / counts[k];
            let ny = sums[k * DIM + 1] / counts[k];
            moved = moved.max((centroids[k][0] - nx).abs() + (centroids[k][1] - ny).abs());
            centroids[k] = [nx, ny];
        }
    }
    moved
}

fn main() {
    let p = 12usize;
    let per_rank = 200usize;
    let init: [[f64; DIM]; K] = [[0.5, 0.5], [3.0, 1.0], [1.5, 2.0]];

    // ---- distributed ----
    let machine = Machine::new(p, ClockParams::parsytec_like());
    let run = machine.run(move |ctx| {
        let points = synth_points(ctx.rank(), per_rank);
        let mut centroids = init;
        let addv = |a: &Vec<f64>, b: &Vec<f64>| -> Vec<f64> {
            a.iter().zip(b).map(|(x, y)| x + y).collect()
        };
        let fmax = |a: &f64, b: &f64| a.max(*b);
        let mut iterations = 0;
        loop {
            let (sums, counts) = step(&points, &centroids);
            // One accumulator block: K*DIM sums then K counts.
            let mut acc: Vec<f64> = sums.to_vec();
            acc.extend_from_slice(&counts);
            let total = allreduce(ctx, acc, (K * DIM + K) as u64, &Combine::new(&addv));
            let moved = recompute(&mut centroids, &total[..K * DIM], &total[K * DIM..]);
            let global_moved = allreduce(ctx, moved, 1, &Combine::new(&fmax));
            iterations += 1;
            if global_moved < 1e-12 || iterations > 50 {
                break;
            }
        }
        (centroids, iterations)
    });

    // ---- sequential reference on the concatenated data ----
    let all_points: Vec<[f64; DIM]> = (0..p).flat_map(|r| synth_points(r, per_rank)).collect();
    let mut centroids = init;
    let mut ref_iters = 0;
    loop {
        let (sums, counts) = step(&all_points, &centroids);
        let moved = recompute(&mut centroids, &sums, &counts);
        ref_iters += 1;
        if moved < 1e-12 || ref_iters > 50 {
            break;
        }
    }

    let (dist_centroids, dist_iters) = &run.results[0];
    println!("k-means on {p} ranks x {per_rank} points, k = {K}");
    println!("converged in {dist_iters} iterations (sequential: {ref_iters})");
    for (k, c) in dist_centroids.iter().enumerate() {
        println!("  centroid {k}: ({:.4}, {:.4})", c[0], c[1]);
    }
    println!("simulated time: {:.0} units", run.makespan);

    // Every rank converged to identical centroids.
    for (c, _) in &run.results {
        assert_eq!(c, dist_centroids);
    }
    // Distributed == sequential up to float summation order. The
    // rank-order tree sum differs from the flat left fold in the last
    // ulps, so compare with a tolerance rather than bitwise.
    for k in 0..K {
        for d in 0..DIM {
            let err = (dist_centroids[k][d] - centroids[k][d]).abs();
            assert!(err < 1e-9, "centroid {k}[{d}] differs by {err}");
        }
    }
    println!("distributed centroids match the sequential reference ✓");
}
