//! Exact reproductions of the paper's worked figures.
//!
//! Every number asserted here is printed in the paper: Figure 2 (auxiliary
//! variables), Figure 4 (balanced reduction), Figure 5 (balanced scan) and
//! Figure 6 (broadcast + repeat comcast), all on the paper's own inputs
//! and processor counts.

use collopt::core::adjust::{pair, pi1, quadruple};
use collopt::core::rules::fused;
use collopt::core::semantics::eval_program;
use collopt::prelude::*;
use collopt_machine::topology::{BalancedStep, BalancedTree};

fn ints(vs: &[i64]) -> Vec<Value> {
    vs.iter().map(|&v| Value::Int(v)).collect()
}

fn tup(fs: &[i64]) -> Value {
    Value::Tuple(fs.iter().map(|&v| Value::Int(v)).collect())
}

/// Figure 2: `P1 = allreduce(+)` equals
/// `P2 = map pair ; allreduce(op_new) ; map π1` on input `[1,2,3,4]`,
/// where `op_new((a1,b1),(a2,b2)) = (a1+a2, b1·b2)`. The intermediate
/// reduction value is `(10, 24)` on every processor.
#[test]
fn figure2_auxiliary_variables() {
    let input = ints(&[1, 2, 3, 4]);

    let p1 = Program::new().allreduce(ops::add());
    let out1 = eval_program(&p1, &input);
    assert_eq!(out1, ints(&[10, 10, 10, 10]));

    let op_new = BinOp::new("op_new", |x, y| {
        Value::Tuple(vec![
            Value::Int(x.proj(0).as_int() + y.proj(0).as_int()),
            Value::Int(x.proj(1).as_int() * y.proj(1).as_int()),
        ])
    })
    .with_cost(2.0)
    .with_width(2.0);

    // Check the intermediate state the figure draws: after the allreduce
    // on pairs, every processor holds (10, 24).
    let upto_reduce = Program::new()
        .map("pair", 0.0, pair)
        .allreduce(op_new.clone());
    let mid = eval_program(&upto_reduce, &input);
    assert_eq!(mid, vec![tup(&[10, 24]); 4]);

    let p2 = Program::new()
        .map("pair", 0.0, pair)
        .allreduce(op_new)
        .map("pi1", 0.0, pi1);
    let out2 = eval_program(&p2, &input);
    assert_eq!(out1, out2, "P1 = P2 (Figure 2)");

    // And on the machine, for good measure.
    let m1 = execute(&p1, &input, ClockParams::free());
    let m2 = execute(&p2, &input, ClockParams::free());
    assert_eq!(m1.outputs, m2.outputs);
}

/// Figure 4: balanced reduction of `[2,5,9,1,2,6]` with `op_sr` (⊕ = +).
/// Asserts every intermediate pair the figure prints, and the final
/// `(86, 200)` at the root.
#[test]
fn figure4_balanced_reduction_full_trace() {
    let (combine, solo) = fused::op_sr(&ops::add());
    let tree = BalancedTree::new(6);
    let mut vals: Vec<Value> = [2i64, 5, 9, 1, 2, 6]
        .iter()
        .map(|&x| tup(&[x, x]))
        .collect();

    let levels = tree.schedule();
    // Level 1: (2,2)+(5,5) → (9,14), (9,9)+(1,1) → (19,20), (2,2)+(6,6) → (10,16).
    apply_level(&levels[0], &mut vals, &combine, &solo);
    assert_eq!(vals[0], tup(&[9, 14]));
    assert_eq!(vals[2], tup(&[19, 20]));
    assert_eq!(vals[4], tup(&[10, 16]));
    // Level 2: unary on proc 0 → (9,28); (19,20)+(10,16) → (49,72).
    apply_level(&levels[1], &mut vals, &combine, &solo);
    assert_eq!(vals[0], tup(&[9, 28]));
    assert_eq!(vals[2], tup(&[49, 72]));
    // Level 3 (root): (9,28)+(49,72) → (86,200).
    apply_level(&levels[2], &mut vals, &combine, &solo);
    assert_eq!(vals[0], tup(&[86, 200]));

    // 86 is indeed reduce(+) of scan(+) of the input.
    let check = eval_program(
        &Program::new().scan(ops::add()).reduce(ops::add()),
        &ints(&[2, 5, 9, 1, 2, 6]),
    );
    assert_eq!(check[0], Value::Int(86));
}

fn apply_level(
    level: &[BalancedStep],
    vals: &mut [Value],
    combine: &collopt::core::term::ValueFn2,
    solo: &collopt::core::term::ValueFn,
) {
    for step in level {
        match *step {
            BalancedStep::Combine {
                left_rep,
                right_rep,
                ..
            } => {
                vals[left_rep] = combine(&vals[left_rep], &vals[right_rep]);
            }
            BalancedStep::Unary { rep, .. } => {
                vals[rep] = solo(&vals[rep]);
            }
        }
    }
}

/// Figure 5: balanced scan of `[2,5,9,1,2,6]` with `op_ss` (⊕ = +),
/// run on the actual six-processor machine with per-phase tracing.
/// Asserts every defined quadruple the figure prints.
#[test]
fn figure5_balanced_scan_full_trace() {
    use collopt_collectives::balanced::{scan_balanced_traced, PairedOp};

    let inputs = std::sync::Arc::new(vec![2i64, 5, 9, 1, 2, 6]);
    let (combine, solo) = fused::op_ss(&ops::add());
    let machine = Machine::new(6, ClockParams::free()).with_tracing();
    let inp = inputs.clone();
    let run = machine.run(move |ctx| {
        let x = Value::Int(inp[ctx.rank()]);
        let cf = |a: &Value, b: &Value| combine(a, b);
        let sf = |v: &Value| solo(v);
        let op = PairedOp {
            combine: &cf,
            solo: &sf,
            ops_lower: 5.0,
            ops_upper: 8.0,
            ops_solo: 0.0,
            words_factor: 3,
        };
        scan_balanced_traced(ctx, quadruple(&x), 1, &op, Some(|q: &Value| q.to_string()))
    });

    // Final first components: [2, 9, 25, 42, 61, 86] — scan(scan(input)).
    let firsts: Vec<i64> = run.results.iter().map(|v| v.proj(0).as_int()).collect();
    assert_eq!(firsts, vec![2, 9, 25, 42, 61, 86]);

    let marks = run.trace.marks();
    // Phase 1 (column two of the figure).
    for want in [
        "phase1:(2,9,14,7)",
        "phase1:(9,9,14,14)",
        "phase1:(9,19,20,10)",
        "phase1:(19,19,20,20)",
        "phase1:(2,10,16,8)",
        "phase1:(10,10,16,16)",
    ] {
        assert!(marks.contains(&want), "missing {want}");
    }
    // Phase 2 (column three; processors 4 and 5 keep only their first
    // component — the paper prints (2,_,_,_) / (10,_,_,_), our solo keeps
    // the stale fields, which are provably never consumed).
    for want in [
        "phase2:(2,42,68,17)",
        "phase2:(9,42,68,34)",
        "phase2:(25,42,68,51)",
        "phase2:(42,42,68,68)",
    ] {
        assert!(marks.contains(&want), "missing {want}");
    }
    let p4_phase2: Vec<&&str> = marks
        .iter()
        .filter(|s| s.starts_with("phase2:(2,"))
        .collect();
    assert!(
        !p4_phase2.is_empty(),
        "processor 4 must keep s = 2 after phase 2"
    );
    // Phase 3 first components: 2, 9, 25, 42, 61, 86.
    for want in [
        "phase3:(2,",
        "phase3:(9,",
        "phase3:(25,",
        "phase3:(42,",
        "phase3:(61,",
        "phase3:(86,",
    ] {
        assert!(
            marks.iter().any(|s| s.starts_with(want)),
            "missing {want}..."
        );
    }
}

/// Figure 6: `bcast ; scan(+)` fused by BS-Comcast, on six processors with
/// b = 2 — result `[2,4,6,8,10,12]`, with the intermediate pairs of the
/// figure checked on three representative processors.
#[test]
fn figure6_comcast_program_level() {
    let prog = Program::new().bcast().scan(ops::add());
    let opt = Rewriter::exhaustive().optimize(&prog);
    assert_eq!(opt.steps.len(), 1);
    assert_eq!(opt.steps[0].rule.to_string(), "BS-Comcast");

    let mut input = ints(&[2, 0, 0, 0, 0, 0]);
    input[1] = Value::Int(99); // non-root values are don't-care
    let expected = ints(&[2, 4, 6, 8, 10, 12]);
    assert_eq!(eval_program(&prog, &input), expected);
    assert_eq!(eval_program(&opt.program, &input), expected);

    let run_orig = execute(&prog, &input, ClockParams::parsytec_like());
    let run_opt = execute(&opt.program, &input, ClockParams::parsytec_like());
    assert_eq!(run_orig.outputs, expected);
    assert_eq!(run_opt.outputs, expected);
    assert!(
        run_opt.makespan < run_orig.makespan,
        "BS-Comcast always improves (Table 1)"
    );

    // The figure's intermediate pairs via the pure repeat schema.
    let (e, o) = fused::bs_eo(&ops::add());
    let seed = pair(&Value::Int(2));
    let states = |k: usize| {
        let mut s = seed.clone();
        let mut trace = vec![s.to_string()];
        for j in 0..3 {
            s = if (k >> j) & 1 == 0 { e(&s) } else { o(&s) };
            trace.push(s.to_string());
        }
        trace
    };
    assert_eq!(states(0), vec!["(2,2)", "(2,4)", "(2,8)", "(2,16)"]);
    assert_eq!(states(3), vec!["(2,2)", "(4,4)", "(8,8)", "(8,16)"]);
    assert_eq!(states(5), vec!["(2,2)", "(4,4)", "(4,8)", "(12,16)"]);
}
