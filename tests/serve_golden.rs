//! Byte-pins the serve response schema: the full JSON line produced for
//! the paper's Example pipeline on the default machine must never drift
//! without a deliberate golden update.
//!
//! Regenerate `tests/golden/serve_response.json` by piping
//! `Service::handle_line` output for the request below into the file
//! (with a trailing newline) after verifying the new schema by eye.

use collopt::machine::Json;
use collopt::serve::Service;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {path}: {e}"))
}

const REQUEST: &str = r#"{"id":1,"pipeline":"map f ; scan(mul) ; reduce(add) ; map g ; bcast","p":64,"ts":200,"tw":2,"m":32,"options":{"lint":true,"simulate":false}}"#;

#[test]
fn serve_response_schema_is_byte_stable() {
    let service = Service::new(8);
    let out = service.handle_line(REQUEST).text;
    assert_eq!(format!("{out}\n"), golden("serve_response.json"));
}

#[test]
fn cache_hits_replay_the_golden_bytes() {
    let service = Service::new(8);
    let cold = service.handle_line(REQUEST).text;
    let hot = service.handle_line(REQUEST).text;
    assert_eq!(cold, hot, "cache hit must be byte-identical to cold");
    assert_eq!(format!("{hot}\n"), golden("serve_response.json"));
    // An equivalent spelling (extra whitespace, float-typed params) hits
    // the same cache entry but echoes its own id.
    let variant = r#"{"id":2,"pipeline":"map f ;  scan(mul);reduce(add) ; map g ; bcast","p":64,"ts":200.0,"tw":2.0,"m":32.0,"options":{"lint":true,"simulate":false}}"#;
    let aliased = service.handle_line(variant).text;
    assert_eq!(
        aliased.replacen("\"id\":2", "\"id\":1", 1),
        hot,
        "equivalent spec must reuse the canonical body"
    );
}

#[test]
fn golden_is_valid_compact_json_with_the_pinned_schema() {
    let text = golden("serve_response.json");
    let line = text.trim_end();
    let doc = Json::parse(line).expect("golden parses");
    // Compactness: our renderer round-trips the bytes exactly.
    assert_eq!(doc.render(), line);
    let result = doc.get("result").expect("result");
    for field in [
        "version",
        "machine",
        "original",
        "optimized",
        "cost",
        "steps",
        "normalizations",
        "rejections",
        "lint",
        "simulation",
    ] {
        assert!(result.get(field).is_some(), "schema lost field '{field}'");
    }
}
