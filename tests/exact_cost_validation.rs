//! Machine validation of the exact-cost formulas in
//! [`collopt::cost::exact`] — the same analytic-vs-measured discipline as
//! Table 1, extended to the non-phase-shaped collectives.

use collopt::collectives::{
    allgather, allgather_ring, allreduce_commutative, alltoall, bcast_scatter_allgather,
    gather_binomial, scatter_binomial, Combine,
};
use collopt::cost::exact;
use collopt::cost::MachineParams;
use collopt::prelude::{ClockParams, Machine};

fn setup(p: usize) -> (Machine, MachineParams, ClockParams) {
    let (ts, tw) = (100.0, 2.0);
    (
        Machine::new(p, ClockParams::new(ts, tw)),
        MachineParams::new(p, ts, tw),
        ClockParams::new(ts, tw),
    )
}

#[test]
fn gather_cost_is_exact_for_powers_of_two() {
    for p in [2usize, 4, 8, 16] {
        for mw in [1usize, 16, 256] {
            let (machine, params, _) = setup(p);
            let run = machine
                .run(move |ctx| gather_binomial(ctx, vec![1u8; mw], mw as u64).map(|v| v.len()));
            let predicted = exact::gather_cost(&params, mw as f64);
            assert_eq!(run.makespan, predicted, "gather p={p} m={mw}");
        }
    }
}

#[test]
fn scatter_cost_is_exact_for_powers_of_two() {
    for p in [2usize, 4, 8, 16] {
        for mw in [1usize, 16, 256] {
            let (machine, params, _) = setup(p);
            let run = machine.run(move |ctx| {
                let blocks = (ctx.rank() == 0).then(|| vec![vec![1u8; mw]; ctx.size()]);
                scatter_binomial(ctx, blocks, mw as u64).len()
            });
            let predicted = exact::scatter_cost(&params, mw as f64);
            assert_eq!(run.makespan, predicted, "scatter p={p} m={mw}");
        }
    }
}

#[test]
fn allgather_cost_is_exact_for_powers_of_two() {
    for p in [2usize, 4, 8] {
        let mw = 8usize;
        let (machine, params, _) = setup(p);
        let run = machine.run(move |ctx| allgather(ctx, vec![1u8; mw], mw as u64).len());
        let predicted = exact::allgather_cost(&params, mw as f64);
        assert_eq!(run.makespan, predicted, "allgather p={p}");
    }
}

#[test]
fn ring_allgather_cost_is_exact() {
    for p in [3usize, 5, 8, 13] {
        let mw = 12usize;
        let (machine, params, _) = setup(p);
        let run = machine.run(move |ctx| allgather_ring(ctx, vec![1u8; mw], mw as u64).len());
        let predicted = exact::allgather_ring_cost(&params, mw as f64);
        assert_eq!(run.makespan, predicted, "ring p={p}");
    }
}

#[test]
fn alltoall_cost_is_exact() {
    for p in [2usize, 3, 6, 9] {
        let mw = 5usize;
        let (machine, params, _) = setup(p);
        let run = machine.run(move |ctx| {
            let blocks: Vec<Vec<u8>> = vec![vec![1u8; mw]; ctx.size()];
            alltoall(ctx, blocks, mw as u64).len()
        });
        let predicted = exact::alltoall_cost(&params, mw as f64);
        assert_eq!(run.makespan, predicted, "alltoall p={p}");
    }
}

#[test]
fn vdg_bcast_cost_is_near_exact() {
    // Segment rounding makes piece sizes uneven for p ∤ m; allow 2%.
    for (p, mw) in [(8usize, 4000usize), (16, 32_000), (4, 1024)] {
        let (machine, params, _) = setup(p);
        let run = machine.run(move |ctx| {
            let v = (ctx.rank() == 0).then(|| vec![1u8; mw]);
            bcast_scatter_allgather(ctx, v, 1).len()
        });
        let predicted = exact::bcast_scatter_allgather_cost(&params, mw as f64);
        let err = (run.makespan - predicted).abs() / predicted;
        assert!(
            err < 0.02,
            "vdg p={p} m={mw}: measured {} vs {predicted}",
            run.makespan
        );
    }
}

#[test]
fn commutative_allreduce_cost_is_exact() {
    for p in [4usize, 5, 8, 13] {
        let mw = 10usize;
        let (machine, params, _) = setup(p);
        let run = machine.run(move |ctx| {
            let add = |a: &Vec<u64>, b: &Vec<u64>| {
                a.iter().zip(b).map(|(x, y)| x + y).collect::<Vec<u64>>()
            };
            allreduce_commutative(ctx, vec![1u64; mw], mw as u64, &Combine::new(&add))
        });
        let predicted = exact::allreduce_commutative_cost(&params, mw as f64, 1.0);
        assert_eq!(run.makespan, predicted, "allreduce_comm p={p}");
    }
}
