//! End-to-end drills for the static communication-schedule verifier.
//!
//! Three layers are tied together here:
//!
//! 1. **Breadth** — every shipped collective lowering must verify clean
//!    (no deadlocks, no orphan messages, round counts matching the cost
//!    model's closed forms) across the full p ∈ 2..=64 sweep, including
//!    non-powers-of-two and blocks smaller than the machine (`m < p`).
//! 2. **Determinism** — the verifier is a pure function of `(p, m)`;
//!    its byte-stable JSON rendering must not change between runs.
//! 3. **Ground truth** — each planted-bug lowering is rejected
//!    statically with its expected code, *and* its runnable async twin
//!    genuinely deadlocks the discrete-event engine. A verifier whose
//!    rejections don't correspond to real hangs is just a linter with
//!    opinions; these drills pin the static verdict to dynamic reality.

use collopt::analysis::schedule::{render_reports_json, verify_planted, verify_registry};
use collopt::collectives::schedule::planted;
use collopt::machine::{ClockParams, Machine};

#[test]
fn every_shipped_lowering_verifies_across_the_full_p_sweep() {
    for p in 2..=64usize {
        // m = 5 puts m < p on most of the sweep; 97 is prime (ragged
        // against every p > 1); 64 divides evenly on the pow2 points.
        for m in [1u64, 5, 64, 97] {
            for report in verify_registry(p, m) {
                assert!(
                    report.ok(),
                    "{} fails static verification at p={p} m={m}: {:#?}",
                    report.variant,
                    report.diagnostics
                );
            }
        }
    }
}

#[test]
fn verifier_output_is_deterministic() {
    for (p, m) in [(6usize, 14u64), (16, 97), (64, 5)] {
        let a = render_reports_json(&verify_registry(p, m), p, m);
        let b = render_reports_json(&verify_registry(p, m), p, m);
        assert_eq!(a, b, "verifier output must be a pure function of (p, m)");
    }
}

#[test]
fn planted_bugs_are_rejected_at_every_applicable_point() {
    for p in 2..=16usize {
        for m in [4u64, 9, 32] {
            for (report, expected) in verify_planted(p, m) {
                assert!(
                    report.diagnostics.iter().any(|d| d.code == expected),
                    "planted {} not rejected with {expected} at p={p} m={m}: {:#?}",
                    report.variant,
                    report.diagnostics
                );
            }
        }
    }
}

// The dynamic halves: each statically-rejected lowering must actually
// hang the DES engine, which detects quiescence-with-blocked-ranks and
// panics instead of spinning forever. `ClockParams::free()` keeps the
// drills instant.

#[test]
#[should_panic(expected = "DES deadlock")]
fn swapped_ring_reduce_scatter_deadlocks_dynamically() {
    let machine = Machine::new(4, ClockParams::free());
    machine.run_des(|ctx| {
        Box::pin(async move {
            let block: Vec<i64> = (0..8).collect();
            planted::swapped_ring_reduce_scatter_async(ctx, block).await
        })
    });
}

#[test]
#[should_panic(expected = "DES deadlock")]
fn dropped_barrier_deadlocks_dynamically() {
    let machine = Machine::new(5, ClockParams::free());
    machine.run_des(|ctx| Box::pin(async move { planted::dropped_barrier_async(ctx).await }));
}

// The off-by-one broadcast is rejected with COL009 (orphan message),
// not COL008: the root finishes having sent to the wrong rank, so the
// skipped rank blocks on a peer that already exited. Dynamically that
// surfaces as a disconnected-mailbox panic, not a quiescent deadlock —
// the static code and the dynamic failure mode agree.
#[test]
#[should_panic(expected = "disconnected (peer thread exited mid-run)")]
fn off_by_one_bcast_orphans_a_rank_dynamically() {
    let machine = Machine::new(8, ClockParams::free());
    machine.run_des(|ctx| {
        Box::pin(async move {
            let value = (ctx.rank() == 0).then(|| vec![7i64; 3]);
            planted::off_by_one_bcast_async(ctx, value, 3).await
        })
    });
}
