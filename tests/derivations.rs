//! Mechanized rule derivations (Section 3.4's corollary remarks).
//!
//! The paper presents BSS2-Comcast as "a corollary of two previous rules,
//! SS2-Scan and BS-Comcast", and then observes: "It would be tempting to
//! obtain also a rule BSS-Comcast as a corollary of SS-Scan and
//! BS-Comcast. Interestingly enough, this does not work: the binary
//! operation used in the SS-Scan is not associative, so that BS-Comcast
//! cannot be applied afterwards."
//!
//! This suite replays both derivations mechanically through the rewrite
//! engine and checks each claim:
//!
//! 1. applying SS2-Scan inside `bcast; scan(⊗); scan(⊕)` and then
//!    BS-Comcast (after the normalizer commutes the auxiliary `map pair`
//!    out of the way) yields a program equivalent to the direct
//!    BSS2-Comcast result;
//! 2. the direct rule is *cheaper* than the derived composition (the
//!    fused `e`/`o` of BSS2 cost 3/5 operations versus 3/6 for
//!    BS-over-`op_sr2`), which is why the paper states it as its own rule;
//! 3. after SS-Scan, the window holds a `scan_balanced` with a
//!    non-associative paired operator, and BS-Comcast does **not** match —
//!    the paper's negative result, reproduced by the matcher.

use collopt::core::rules::{try_match, window_len, Rule};
use collopt::core::semantics::eval_program;
use collopt::prelude::*;

fn apply_at(prog: &Program, rule: Rule, at: usize) -> Program {
    let rw = try_match(rule, &prog.stages()[at..])
        .unwrap_or_else(|| panic!("{rule} must match {prog} at {at}"));
    prog.splice(at, window_len(rule), rw.stages)
}

#[test]
fn bss2_is_a_corollary_of_ss2_and_bs() {
    let original = Program::new().bcast().scan(ops::mul()).scan(ops::add());

    // Derivation path: SS2-Scan on the two scans …
    let after_ss2 = apply_at(&original, Rule::Ss2Scan, 1);
    assert!(after_ss2.to_string().contains("scan(op_sr2[mul,add])"));
    // … normalize so the auxiliary `map pair` moves before the bcast …
    let (normalized, log) = collopt::core::rules::enabling::normalize(&after_ss2);
    assert!(!log.is_empty(), "bcast/map commutation must fire");
    // … and BS-Comcast on the now-adjacent bcast; scan window.
    let bcast_at = normalized
        .stages()
        .iter()
        .position(|s| matches!(s, collopt::core::Stage::Bcast))
        .expect("bcast still present");
    let derived = apply_at(&normalized, Rule::BsComcast, bcast_at);
    assert_eq!(derived.collective_count(), 1);

    // The direct rule.
    let direct = apply_at(&original, Rule::Bss2Comcast, 0);
    assert_eq!(direct.collective_count(), 1);

    // Both equal the original, on all processors, for several sizes.
    for p in [1usize, 2, 5, 8, 11] {
        let mut input = vec![Value::Int(0); p];
        input[0] = Value::Int(2);
        let want = eval_program(&original, &input);
        assert_eq!(eval_program(&derived, &input), want, "derived p={p}");
        assert_eq!(eval_program(&direct, &input), want, "direct p={p}");
        let run_derived = execute(&derived, &input, ClockParams::free());
        let run_direct = execute(&direct, &input, ClockParams::free());
        assert_eq!(run_derived.outputs, want);
        assert_eq!(run_direct.outputs, want);
    }

    // … but the direct rule is cheaper: the derived comcast pays the full
    // op_sr2 `o` (6 ops/element) where BSS2's fused `o` pays 5.
    let params = MachineParams::parsytec_like(64);
    for m in [1.0, 32.0, 1024.0] {
        let c_direct = program_cost(&direct, &params, m);
        let c_derived = program_cost(&derived, &params, m);
        assert!(
            c_direct <= c_derived,
            "direct {c_direct} must not exceed derived {c_derived} at m={m}"
        );
        if m > 1.0 {
            assert!(
                c_direct < c_derived,
                "strictly cheaper for real blocks (m={m})"
            );
        }
    }

    // The optimal search agrees: it picks the direct rule.
    let best = Rewriter::exhaustive().optimize_optimal(&original, &params, 32.0);
    assert_eq!(best.steps.len(), 1);
    assert_eq!(best.steps[0].rule, Rule::Bss2Comcast);
}

#[test]
fn bss_cannot_be_derived_from_ss_and_bs() {
    let original = Program::new().bcast().scan(ops::add()).scan(ops::add());

    // SS-Scan applies to the scan pair …
    let after_ss = apply_at(&original, Rule::SsScan, 1);
    assert!(after_ss.to_string().contains("scan_balanced"));

    // … the normalizer commutes `map quadruple` before the bcast …
    let (normalized, _) = collopt::core::rules::enabling::normalize(&after_ss);
    let bcast_at = normalized
        .stages()
        .iter()
        .position(|s| matches!(s, collopt::core::Stage::Bcast))
        .expect("bcast still present");

    // … but BS-Comcast does NOT match: the next stage is a balanced scan
    // with a non-associative paired operator, not a `scan(⊕)`.
    assert!(
        try_match(Rule::BsComcast, &normalized.stages()[bcast_at..]).is_none(),
        "the paper's negative result: BS-Comcast must not apply after SS-Scan"
    );

    // The direct BSS-Comcast rule exists precisely for this reason.
    let direct = apply_at(&original, Rule::BssComcast, 0);
    for p in [1usize, 3, 6, 8] {
        let mut input = vec![Value::Int(9); p];
        input[0] = Value::Int(3);
        assert_eq!(
            eval_program(&direct, &input),
            eval_program(&original, &input),
            "p={p}"
        );
    }
}

#[test]
fn bsr2_local_is_a_corollary_of_sr2_and_br() {
    // The paper: "The next rule is derived as a corollary of two previous
    // rules, SR2-Reduction and BR-Local." Replay it.
    let original = Program::new().bcast().scan(ops::mul()).reduce(ops::add());

    let after_sr2 = apply_at(&original, Rule::Sr2Reduction, 1);
    let (normalized, _) = collopt::core::rules::enabling::normalize(&after_sr2);
    let bcast_at = normalized
        .stages()
        .iter()
        .position(|s| matches!(s, collopt::core::Stage::Bcast))
        .expect("bcast still present");
    let derived = apply_at(&normalized, Rule::BrLocal, bcast_at);
    assert_eq!(derived.collective_count(), 0);

    let direct = apply_at(&original, Rule::Bsr2Local, 0);
    for p in [1usize, 2, 4, 7, 9] {
        let mut input = vec![Value::Int(0); p];
        input[0] = Value::Int(2);
        let want = eval_program(&original, &input)[0].clone();
        assert_eq!(eval_program(&derived, &input)[0], want, "derived p={p}");
        assert_eq!(eval_program(&direct, &input)[0], want, "direct p={p}");
    }
}

#[test]
fn bsr_local_cannot_be_derived_from_sr_and_br() {
    // "Deriving rule BSR-Local as a corollary of SR-Reduction and
    // BR-Local does not work, because the binary operation used in the
    // result of SR-Reduction is not associative."
    let original = Program::new().bcast().scan(ops::add()).reduce(ops::add());
    let after_sr = apply_at(&original, Rule::SrReduction, 1);
    let (normalized, _) = collopt::core::rules::enabling::normalize(&after_sr);
    let bcast_at = normalized
        .stages()
        .iter()
        .position(|s| matches!(s, collopt::core::Stage::Bcast))
        .expect("bcast still present");
    // The stage after bcast is a ReduceBalanced, not a Reduce: BR-Local
    // must not match.
    assert!(try_match(Rule::BrLocal, &normalized.stages()[bcast_at..]).is_none());
}
