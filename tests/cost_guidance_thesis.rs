//! The paper's central thesis, end to end: rule application must be
//! **machine-dependent**. Fusing blindly can *hurt*; the cost-guided
//! engine never does.
//!
//! Also exercises `execute_profiled`: the measured per-stage times agree
//! with the analytic stage costs on power-of-two machines.

use collopt::core::exec::execute_profiled;
use collopt::core::rewrite::stage_cost;
use collopt::prelude::*;

fn block_input(p: usize, m: usize) -> Vec<Value> {
    (0..p)
        .map(|_| Value::list(vec![Value::Int(1); m]))
        .collect()
}

#[test]
fn blind_fusion_hurts_on_fast_networks_cost_guidance_does_not() {
    // SS-Scan's condition is ts > m(tw+4): on a low-latency machine with
    // big blocks it is badly violated.
    let p = 8usize;
    let m = 256usize;
    let clock = ClockParams::low_latency(); // ts=4, tw=0.5
    let prog = Program::new().scan(ops::add()).scan(ops::add());
    let input = block_input(p, m);

    let baseline = execute(&prog, &input, clock).makespan;

    // Exhaustive (cost-blind) rewriting fuses anyway — and loses.
    let blind = Rewriter::exhaustive().optimize(&prog);
    assert_eq!(blind.steps.len(), 1);
    let blind_time = execute(&blind.program, &input, clock).makespan;
    assert!(
        blind_time > baseline,
        "blind fusion must hurt here: {blind_time} vs baseline {baseline}"
    );

    // Cost-guided rewriting leaves the program alone — never worse.
    let params = MachineParams::new(p, clock.ts, clock.tw);
    let guided = Rewriter::cost_guided(params, m as f64).optimize(&prog);
    assert!(guided.steps.is_empty());
    let guided_time = execute(&guided.program, &input, clock).makespan;
    assert_eq!(guided_time, baseline);
}

#[test]
fn cost_guidance_is_never_worse_across_a_machine_grid() {
    // For every fusible pipeline and a grid of machines, the cost-guided
    // result is never slower than the original on the simulated machine.
    let pipelines: Vec<Program> = vec![
        Program::new().scan(ops::add()).allreduce(ops::add()),
        Program::new().scan(ops::mul()).allreduce(ops::add()),
        Program::new().scan(ops::add()).scan(ops::add()),
        Program::new().scan(ops::mul()).scan(ops::add()),
        Program::new().bcast().scan(ops::add()).scan(ops::add()),
        Program::new().bcast().allreduce(ops::add()),
    ];
    let p = 8usize;
    for (ts, tw) in [(200.0, 2.0), (20.0, 1.0), (4.0, 0.5), (1.0, 0.1)] {
        for m in [1usize, 16, 256] {
            let clock = ClockParams::new(ts, tw);
            let params = MachineParams::new(p, ts, tw);
            let input = block_input(p, m);
            for prog in &pipelines {
                let baseline = execute(prog, &input, clock).makespan;
                let guided = Rewriter::cost_guided(params, m as f64).optimize(prog);
                let t = execute(&guided.program, &input, clock).makespan;
                assert!(
                    t <= baseline + 1e-9,
                    "{prog} at ts={ts} tw={tw} m={m}: guided {t} vs baseline {baseline}"
                );
            }
        }
    }
}

#[test]
fn profiled_execution_matches_analytic_stage_costs() {
    let p = 8usize;
    let m = 16usize;
    let (ts, tw) = (100.0, 2.0);
    let prog = Program::new()
        .map("f", 1.0, |v| v.clone())
        .scan(ops::add())
        .reduce(ops::add())
        .bcast();
    let input = block_input(p, m);
    let (outcome, finish) = execute_profiled(&prog, &input, ClockParams::new(ts, tw));
    assert_eq!(finish.len(), prog.len());
    // Per-stage makespans from the profile vs the analytic stage costs.
    let params = MachineParams::new(p, ts, tw);
    let mut prev = 0.0;
    for (stage, &t) in prog.stages().iter().zip(&finish) {
        let measured = t - prev;
        let predicted = stage_cost(stage, &params, m as f64);
        assert!(
            (measured - predicted).abs() < 1e-9,
            "stage `{}`: measured {measured} vs predicted {predicted}",
            stage.describe()
        );
        prev = t;
    }
    assert_eq!(*finish.last().unwrap(), outcome.makespan);
}

#[test]
fn profile_is_monotone_and_ends_at_the_makespan() {
    let prog = Program::new()
        .bcast()
        .scan(ops::add())
        .allreduce(ops::max());
    let input = block_input(6, 4);
    let (outcome, finish) = execute_profiled(&prog, &input, ClockParams::parsytec_like());
    for w in finish.windows(2) {
        assert!(w[1] >= w[0]);
    }
    assert_eq!(*finish.last().unwrap(), outcome.makespan);
}
