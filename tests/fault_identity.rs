//! The fault layer must be *observationally inert* when the plan is
//! empty.
//!
//! An identity [`FaultPlan`] (a seed but no stragglers, slow links,
//! drops or crashes) threads a live [`collopt::machine::FaultInjector`]
//! through every send/recv/exchange — every fault hook runs on every
//! event. This differential property test pins that scaffolding to zero
//! observable cost: for every collective variant in the library and
//! every machine size `p = 2..=9`, a run under the identity plan must be
//! **byte-identical** to a plain run — same results, bitwise-equal
//! makespan, event-for-event equal traces, and character-identical
//! Chrome trace exports. Any drift here (even a `x * 1.0` rounding step)
//! would silently invalidate every differential chaos oracle built on
//! top.

use collopt::collectives::{
    allgather, allgather_doubling, allgather_ring, allreduce, allreduce_auto, allreduce_balanced,
    allreduce_balanced_halving, allreduce_commutative, allreduce_rabenseifner, allreduce_ring,
    alltoall, barrier, bcast_auto, bcast_binomial, bcast_linear, bcast_pipelined,
    bcast_scatter_allgather, comcast_bcast_repeat, comcast_cost_optimal, exscan, gather_binomial,
    reduce_auto, reduce_balanced, reduce_binomial, reduce_scatter, reduce_scatter_halving,
    reduce_scatter_ring, scan_balanced, scan_butterfly, scan_sklansky, scatter_binomial,
    BalancedOp, Combine, PairedOp, RepeatOp,
};
use collopt::machine::{chrome_trace_json, ClockParams, Ctx, FaultPlan, Machine};

/// Run `f` twice — plain, and under an identity fault plan — and require
/// the two runs to be indistinguishable byte for byte.
fn check_identity<T, F>(label: &str, p: usize, f: F)
where
    T: Send + PartialEq + std::fmt::Debug,
    F: Fn(&mut Ctx) -> T + Sync,
{
    let clock = ClockParams::new(100.0, 2.0);
    let plain = Machine::new(p, clock).with_tracing().run(&f);
    let under = Machine::new(p, clock)
        .with_tracing()
        .with_faults(FaultPlan::new(0xC0FFEE))
        .run(&f);
    let tag = format!("{label} p={p}");

    assert_eq!(plain.results, under.results, "{tag}: results drifted");
    assert_eq!(
        plain.makespan.to_bits(),
        under.makespan.to_bits(),
        "{tag}: makespan not bitwise equal ({} vs {})",
        plain.makespan,
        under.makespan
    );
    assert_eq!(plain.compute_ops, under.compute_ops, "{tag}: compute ops");
    assert_eq!(plain.messages, under.messages, "{tag}: message counts");
    assert_eq!(under.total_retries(), 0, "{tag}: phantom retries");
    assert_eq!(under.total_retry_time(), 0.0, "{tag}: phantom retry time");
    assert_eq!(
        plain.trace.events(),
        under.trace.events(),
        "{tag}: traces differ"
    );
    assert_eq!(
        chrome_trace_json(&[(label, &plain.trace)]),
        chrome_trace_json(&[(label, &under.trace)]),
        "{tag}: chrome exports differ"
    );
}

fn iadd() -> impl Fn(&Vec<i64>, &Vec<i64>) -> Vec<i64> {
    |a, b| a.iter().zip(b).map(|(x, y)| x + y).collect()
}

fn block(rank: usize, m: usize) -> Vec<i64> {
    (0..m).map(|j| (rank * 31 + j) as i64 % 13 - 6).collect()
}

const M: usize = 12;

#[test]
fn bcast_variants_are_unaffected_by_the_identity_plan() {
    for p in 2..=9 {
        check_identity("bcast_binomial", p, |ctx| {
            let v = (ctx.rank() == 0).then(|| block(0, M));
            bcast_binomial(ctx, 0, v, M as u64)
        });
        check_identity("bcast_linear", p, |ctx| {
            let v = (ctx.rank() == 0).then(|| block(0, M));
            bcast_linear(ctx, 0, v, M as u64)
        });
        check_identity("bcast_pipelined", p, |ctx| {
            let v = (ctx.rank() == 0).then(|| block(0, M));
            bcast_pipelined(ctx, 0, v, 1, 3)
        });
        check_identity("bcast_scatter_allgather", p, |ctx| {
            let v = (ctx.rank() == 0).then(|| block(0, M));
            bcast_scatter_allgather(ctx, v, 1)
        });
        check_identity("bcast_auto", p, |ctx| {
            let v = (ctx.rank() == 0).then(|| block(0, M));
            bcast_auto(ctx, v, 1)
        });
    }
}

#[test]
fn reduce_and_allreduce_variants_are_unaffected_by_the_identity_plan() {
    let add = iadd();
    for p in 2..=9 {
        check_identity("reduce_binomial", p, |ctx| {
            reduce_binomial(ctx, 0, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
        check_identity("reduce_auto", p, |ctx| {
            reduce_auto(ctx, block(ctx.rank(), M), 1, &Combine::new(&add))
        });
        check_identity("allreduce_butterfly", p, |ctx| {
            allreduce(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
        check_identity("allreduce_commutative", p, |ctx| {
            allreduce_commutative(
                ctx,
                block(ctx.rank(), M),
                M as u64,
                &Combine::new(&add).assume_commutative(),
            )
        });
        check_identity("allreduce_ring", p, |ctx| {
            allreduce_ring(
                ctx,
                block(ctx.rank(), M),
                1,
                &Combine::new(&add).assume_commutative(),
            )
        });
        check_identity("allreduce_auto", p, |ctx| {
            allreduce_auto(
                ctx,
                block(ctx.rank(), M),
                1,
                &Combine::new(&add).assume_commutative(),
            )
        });
    }
    for p in [2usize, 4, 8] {
        check_identity("allreduce_rabenseifner", p, |ctx| {
            allreduce_rabenseifner(ctx, block(ctx.rank(), M), 1, &Combine::new(&add))
        });
        check_identity("reduce_scatter_halving", p, |ctx| {
            reduce_scatter_halving(ctx, block(ctx.rank(), M), 1, &Combine::new(&add))
        });
        check_identity("allgather_doubling", p, |ctx| {
            allgather_doubling(ctx, block(ctx.rank(), 2), 1)
        });
    }
}

#[test]
fn scan_variants_are_unaffected_by_the_identity_plan() {
    let add = iadd();
    for p in 2..=9 {
        check_identity("scan_butterfly", p, |ctx| {
            scan_butterfly(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
        check_identity("scan_sklansky", p, |ctx| {
            scan_sklansky(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
        check_identity("exscan", p, |ctx| {
            exscan(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
    }
}

#[test]
fn balanced_tree_collectives_are_unaffected_by_the_identity_plan() {
    for p in 2..=9 {
        let combine = |a: &i64, b: &i64| a + b;
        let solo = |x: &i64| x * 2;
        check_identity("reduce_balanced", p, |ctx| {
            let op = BalancedOp {
                combine: &combine,
                solo: &solo,
                ops_combine: 1.0,
                ops_solo: 1.0,
                words_factor: 1,
            };
            reduce_balanced(ctx, ctx.rank() as i64 + 1, 1, &op)
        });
        check_identity("allreduce_balanced", p, |ctx| {
            let op = BalancedOp {
                combine: &combine,
                solo: &solo,
                ops_combine: 1.0,
                ops_solo: 1.0,
                words_factor: 1,
            };
            allreduce_balanced(ctx, ctx.rank() as i64 + 1, 1, &op)
        });
        check_identity("scan_balanced", p, |ctx| {
            let paired = |a: &i64, b: &i64| (a + b, a * b);
            let op = PairedOp {
                combine: &paired,
                solo: &solo,
                ops_lower: 1.0,
                ops_upper: 1.0,
                ops_solo: 1.0,
                words_factor: 1,
            };
            scan_balanced(ctx, ctx.rank() as i64 + 1, 1, &op)
        });
    }
    for p in [2usize, 4, 8] {
        let combine = |a: &Vec<i64>, b: &Vec<i64>| -> Vec<i64> {
            a.iter().zip(b).map(|(x, y)| x + y).collect()
        };
        let solo = |x: &Vec<i64>| x.iter().map(|v| v * 2).collect::<Vec<i64>>();
        check_identity("allreduce_balanced_halving", p, |ctx| {
            let op = BalancedOp {
                combine: &combine,
                solo: &solo,
                ops_combine: 1.0,
                ops_solo: 1.0,
                words_factor: 1,
            };
            allreduce_balanced_halving(ctx, block(ctx.rank(), M), 1, &op)
        });
    }
}

#[test]
fn comcast_gather_and_alltoall_are_unaffected_by_the_identity_plan() {
    let add = iadd();
    type Pair = (i64, i64);
    let e = |s: &Pair| (s.0, 2 * s.1);
    let o = |s: &Pair| (s.0 + s.1, 2 * s.1);
    let inject = |b: &i64| (*b, *b);
    let project = |s: &Pair| s.0;
    for p in 2..=9 {
        check_identity("comcast_bcast_repeat", p, |ctx| {
            let op = RepeatOp {
                e: &e,
                o: &o,
                ops_e: 1.0,
                ops_o: 2.0,
            };
            let seed = (ctx.rank() == 0).then_some(1i64);
            comcast_bcast_repeat(ctx, 0, seed, 1, &inject, &project, &op)
        });
        check_identity("comcast_cost_optimal", p, |ctx| {
            let op = RepeatOp {
                e: &e,
                o: &o,
                ops_e: 1.0,
                ops_o: 2.0,
            };
            let seed = (ctx.rank() == 0).then_some(1i64);
            comcast_cost_optimal(ctx, 0, seed, 1, &inject, &project, &op, 2)
        });
        check_identity("gather_binomial", p, |ctx| {
            gather_binomial(ctx, block(ctx.rank(), 2), 2)
        });
        check_identity("scatter_binomial", p, |ctx| {
            let blocks = (ctx.rank() == 0).then(|| (0..ctx.size()).map(|r| block(r, 2)).collect());
            scatter_binomial(ctx, blocks, 2)
        });
        check_identity("allgather", p, |ctx| {
            allgather(ctx, block(ctx.rank(), 2), 2)
        });
        check_identity("allgather_ring", p, |ctx| {
            allgather_ring(ctx, block(ctx.rank(), 2), 2)
        });
        check_identity("alltoall", p, |ctx| {
            let blocks: Vec<i64> = (0..ctx.size() as i64).collect();
            alltoall(ctx, blocks, 1)
        });
        check_identity("reduce_scatter", p, |ctx| {
            let blocks: Vec<Vec<i64>> = (0..ctx.size()).map(|r| block(r, 2)).collect();
            reduce_scatter(ctx, blocks, 2, &Combine::new(&add))
        });
        check_identity("reduce_scatter_ring", p, |ctx| {
            reduce_scatter_ring(
                ctx,
                block(ctx.rank(), M),
                1,
                &Combine::new(&add).assume_commutative(),
            )
        });
        check_identity("barrier_ladder", p, |ctx| {
            ctx.charge((ctx.rank() + 1) as f64 * 3.0, "skew");
            barrier(ctx);
            ctx.charge(1.0, "tail");
            barrier(ctx);
        });
    }
}

#[test]
fn rule_programs_are_unaffected_by_the_identity_plan_through_the_executor() {
    use collopt::core::exec::{execute_faulted_traced, execute_traced, ExecConfig};
    use collopt::core::Rule;
    use collopt_bench::{rule_lhs, rule_rhs, varied_input};

    for rule in Rule::ALL {
        for (side, prog) in [("LHS", rule_lhs(rule)), ("RHS", rule_rhs(rule))] {
            for p in [2usize, 5, 8] {
                let tag = format!("{rule} {side} p={p}");
                let inputs = varied_input(p, 6, 7);
                let clock = ClockParams::new(100.0, 2.0);
                let plain = execute_traced(&prog, &inputs, clock);
                let under = execute_faulted_traced(
                    &prog,
                    &inputs,
                    clock,
                    ExecConfig::default(),
                    &FaultPlan::new(99),
                )
                .unwrap_or_else(|e| panic!("{tag}: identity plan failed the run: {e}"));
                assert_eq!(plain.outcome.outputs, under.outcome.outputs, "{tag}");
                assert_eq!(
                    plain.outcome.makespan.to_bits(),
                    under.outcome.makespan.to_bits(),
                    "{tag}"
                );
                assert_eq!(plain.trace.events(), under.trace.events(), "{tag}");
                assert_eq!(
                    chrome_trace_json(&[(&tag, &plain.trace)]),
                    chrome_trace_json(&[(&tag, &under.trace)]),
                    "{tag}"
                );
            }
        }
    }
}
