//! The planted-bug drill: an operator that lies about its algebra must be
//! caught by every layer of the analyzer.
//!
//! The planted operator is subtraction declared `.commutative()` — it is
//! neither associative nor commutative, so any scan/reduce fusion built on
//! it computes the wrong answer. Three independent defenses must all fire,
//! deterministically (the sample pools are seeded):
//!
//! 1. the **audited rewriter** refuses the fusion and reports a shrunk
//!    counterexample;
//! 2. the **certificate validator** refutes the certificate the trusting
//!    engine hands out;
//! 3. the **linter** reports the mis-declaration as a `COL002` error.

use collopt::analysis::{
    audit_operator, lint_program, samples_for_domain, validate_result, AuditConfig,
    CertificateIssue, Domain, LintConfig, Severity,
};
use collopt::prelude::*;

/// Subtraction, dishonestly declared commutative. Associativity is implied
/// by `BinOp::new`, so the declaration carries two lies.
fn lying_sub() -> BinOp {
    BinOp::new("sub", |a, b| Value::Int(a.as_int() - b.as_int())).commutative()
}

fn planted_program() -> Program {
    Program::new().scan(lying_sub()).reduce(lying_sub())
}

#[test]
fn trusting_engine_fuses_the_planted_bug() {
    // Baseline: declaration-trusting rewriting applies SR-Reduction on the
    // lie. This is the hole the analyzer exists to close.
    let res = Rewriter::exhaustive().optimize(&planted_program());
    assert_eq!(res.steps.len(), 1);
    assert_eq!(res.steps[0].rule, Rule::SrReduction);
}

#[test]
fn audited_rewriter_refuses_with_shrunk_counterexample() {
    let samples = samples_for_domain(Domain::Int, &AuditConfig::default());
    let res = Rewriter::exhaustive()
        .audited(samples)
        .optimize(&planted_program());
    assert!(
        res.steps.is_empty(),
        "audited engine must not fuse: {res:?}"
    );
    assert!(!res.rejections.is_empty());
    let rej = &res.rejections[0];
    assert_eq!(rej.rule, Rule::SrReduction);
    assert!(rej.law.contains("of sub"), "law: {}", rej.law);
    assert!(
        rej.counterexample.distinct_values() <= 3,
        "counterexample not shrunk: {}",
        rej.counterexample
    );
    // Refusing the fusion leaves the program semantically intact.
    assert_eq!(res.program.to_string(), planted_program().to_string());
}

#[test]
fn certificate_validator_refutes_the_trusting_engines_certificate() {
    let res = Rewriter::exhaustive().optimize(&planted_program());
    let samples = samples_for_domain(Domain::Int, &AuditConfig::default());
    let issues = validate_result(&res, &samples, &AuditConfig::default());
    assert!(
        issues
            .iter()
            .any(|i| matches!(i, CertificateIssue::LawViolated { law, .. } if law.contains("sub"))),
        "{issues:?}"
    );
}

#[test]
fn linter_reports_the_mis_declaration_as_col002() {
    // `sub` is not a builtin; the fallback domain tells the auditor what
    // to enumerate.
    let cfg = LintConfig {
        fallback_domain: Some(Domain::Int),
        ..LintConfig::default()
    };
    let report = lint_program(&planted_program(), None, &cfg);
    let col002: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "COL002")
        .collect();
    assert!(!col002.is_empty(), "{:#?}", report.diagnostics);
    for d in &col002 {
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("sub"), "{}", d.message);
    }
    assert!(report.errors() > 0);
}

#[test]
fn auditor_witnesses_are_deterministic_across_runs() {
    let cfg = AuditConfig::default();
    let a = audit_operator(&lying_sub(), Domain::Int, &[], &cfg);
    let b = audit_operator(&lying_sub(), Domain::Int, &[], &cfg);
    assert!(!a.is_sound() && !b.is_sound());
    let render = |audit: &collopt::analysis::OpAudit| {
        audit
            .over_claims
            .iter()
            .map(|c| format!("{}: {}", c.law, c.counterexample))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(render(&a), render(&b));
}

#[test]
fn honest_pipeline_passes_every_layer() {
    // Control: the same shape with a sound operator fuses, validates, and
    // lints without errors.
    let prog = Program::new().scan(ops::add()).reduce(ops::add());
    let samples = samples_for_domain(Domain::Int, &AuditConfig::default());
    let res = Rewriter::exhaustive()
        .audited(samples.clone())
        .optimize(&prog);
    assert_eq!(res.steps.len(), 1);
    assert!(res.rejections.is_empty());
    assert!(validate_result(&res, &samples, &AuditConfig::default()).is_empty());
    let report = lint_program(&prog, None, &LintConfig::default());
    assert_eq!(report.errors(), 0, "{:#?}", report.diagnostics);
}
