//! The planted-bug drill: an operator that lies about its algebra must be
//! caught by every layer of the analyzer.
//!
//! The planted operator is subtraction declared `.commutative()` — it is
//! neither associative nor commutative, so any scan/reduce fusion built on
//! it computes the wrong answer. Three independent defenses must all fire,
//! deterministically (the sample pools are seeded):
//!
//! 1. the **audited rewriter** refuses the fusion and reports a shrunk
//!    counterexample;
//! 2. the **certificate validator** refutes the certificate the trusting
//!    engine hands out;
//! 3. the **linter** reports the mis-declaration as a `COL002` error.
//!
//! The drill also runs in the *opposite* direction: an operator that
//! **withholds** a true law (min without `.commutative()`) must cost the
//! engine the fusion, be reported by the auditor as an under-claim and by
//! the linter as `COL005` — and declaring the law must unlock a fusion
//! every layer then approves. The [`collopt::fuzz`] defense oracle pins
//! the same unanimity contract on generated pipelines.

use collopt::analysis::{
    audit_operator, lint_program, samples_for_domain, validate_result, AuditConfig,
    CertificateIssue, Domain, LintConfig, Severity,
};
use collopt::prelude::*;

/// Subtraction, dishonestly declared commutative. Associativity is implied
/// by `BinOp::new`, so the declaration carries two lies.
fn lying_sub() -> BinOp {
    BinOp::new("sub", |a, b| Value::Int(a.as_int() - b.as_int())).commutative()
}

fn planted_program() -> Program {
    Program::new().scan(lying_sub()).reduce(lying_sub())
}

#[test]
fn trusting_engine_fuses_the_planted_bug() {
    // Baseline: declaration-trusting rewriting applies SR-Reduction on the
    // lie. This is the hole the analyzer exists to close.
    let res = Rewriter::exhaustive().optimize(&planted_program());
    assert_eq!(res.steps.len(), 1);
    assert_eq!(res.steps[0].rule, Rule::SrReduction);
}

#[test]
fn audited_rewriter_refuses_with_shrunk_counterexample() {
    let samples = samples_for_domain(Domain::Int, &AuditConfig::default());
    let res = Rewriter::exhaustive()
        .audited(samples)
        .optimize(&planted_program());
    assert!(
        res.steps.is_empty(),
        "audited engine must not fuse: {res:?}"
    );
    assert!(!res.rejections.is_empty());
    let rej = &res.rejections[0];
    assert_eq!(rej.rule, Rule::SrReduction);
    assert!(rej.law.contains("of sub"), "law: {}", rej.law);
    assert!(
        rej.counterexample.distinct_values() <= 3,
        "counterexample not shrunk: {}",
        rej.counterexample
    );
    // Refusing the fusion leaves the program semantically intact.
    assert_eq!(res.program.to_string(), planted_program().to_string());
}

#[test]
fn certificate_validator_refutes_the_trusting_engines_certificate() {
    let res = Rewriter::exhaustive().optimize(&planted_program());
    let samples = samples_for_domain(Domain::Int, &AuditConfig::default());
    let issues = validate_result(&res, &samples, &AuditConfig::default());
    assert!(
        issues
            .iter()
            .any(|i| matches!(i, CertificateIssue::LawViolated { law, .. } if law.contains("sub"))),
        "{issues:?}"
    );
}

#[test]
fn linter_reports_the_mis_declaration_as_col002() {
    // `sub` is not a builtin; the fallback domain tells the auditor what
    // to enumerate.
    let cfg = LintConfig {
        fallback_domain: Some(Domain::Int),
        ..LintConfig::default()
    };
    let report = lint_program(&planted_program(), None, &cfg);
    let col002: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "COL002")
        .collect();
    assert!(!col002.is_empty(), "{:#?}", report.diagnostics);
    for d in &col002 {
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("sub"), "{}", d.message);
    }
    assert!(report.errors() > 0);
}

#[test]
fn auditor_witnesses_are_deterministic_across_runs() {
    let cfg = AuditConfig::default();
    let a = audit_operator(&lying_sub(), Domain::Int, &[], &cfg);
    let b = audit_operator(&lying_sub(), Domain::Int, &[], &cfg);
    assert!(!a.is_sound() && !b.is_sound());
    let render = |audit: &collopt::analysis::OpAudit| {
        audit
            .over_claims
            .iter()
            .map(|c| format!("{}: {}", c.law, c.counterexample))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(render(&a), render(&b));
}

/// Minimum, honestly implemented but *shy*: commutativity holds on all of
/// ℤ yet is never declared. The symmetric planted case to [`lying_sub`].
fn shy_min() -> BinOp {
    BinOp::new("shymin", |a, b| Value::Int(a.as_int().min(b.as_int())))
}

fn underclaimed_program() -> Program {
    Program::new().scan(shy_min()).reduce(shy_min())
}

#[test]
fn trusting_engine_misses_the_underclaimed_fusion() {
    // The declaration is the rewriter's only evidence: withholding a true
    // law forfeits SR-Reduction, silently — no wrong answer, just the
    // paper's speedup left on the table.
    let res = Rewriter::exhaustive().optimize(&underclaimed_program());
    assert!(res.steps.is_empty(), "{res:?}");
}

#[test]
fn auditor_reports_the_withheld_law_as_under_claim() {
    let audit = audit_operator(&shy_min(), Domain::Int, &[], &AuditConfig::default());
    // No over-claims: the operator never lies...
    assert!(audit.is_sound(), "{:?}", audit.over_claims);
    // ...but the auditor names the law it left unclaimed, and the exact
    // builder call that would claim it.
    let comm = audit
        .under_claims
        .iter()
        .find(|u| u.law.contains("commutativity of shymin"))
        .unwrap_or_else(|| panic!("{:?}", audit.under_claims));
    assert!(
        comm.declaration.contains("commutative"),
        "declaration hint: {}",
        comm.declaration
    );
}

#[test]
fn linter_reports_the_withheld_law_as_col005_not_col002() {
    let cfg = LintConfig {
        fallback_domain: Some(Domain::Int),
        ..LintConfig::default()
    };
    let report = lint_program(&underclaimed_program(), None, &cfg);
    assert!(
        !report.diagnostics.iter().any(|d| d.code == "COL002"),
        "an under-claim is not an error: {:#?}",
        report.diagnostics
    );
    let col005: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "COL005" && d.message.contains("commutativity of shymin"))
        .collect();
    assert!(!col005.is_empty(), "{:#?}", report.diagnostics);
    for d in &col005 {
        assert_eq!(d.severity, Severity::Note);
    }
    assert_eq!(report.errors(), 0);
}

#[test]
fn declaring_the_withheld_law_unlocks_a_fusion_every_layer_approves() {
    let honest = BinOp::new("shymin", |a, b| Value::Int(a.as_int().min(b.as_int()))).commutative();
    let prog = Program::new().scan(honest.clone()).reduce(honest.clone());
    let samples = samples_for_domain(Domain::Int, &AuditConfig::default());
    let res = Rewriter::exhaustive()
        .audited(samples.clone())
        .optimize(&prog);
    assert_eq!(res.steps.len(), 1);
    assert_eq!(res.steps[0].rule, Rule::SrReduction);
    assert!(res.rejections.is_empty(), "{:?}", res.rejections);
    assert!(validate_result(&res, &samples, &AuditConfig::default()).is_empty());
    let cfg = LintConfig {
        fallback_domain: Some(Domain::Int),
        ..LintConfig::default()
    };
    let report = lint_program(&prog, None, &cfg);
    assert_eq!(report.errors(), 0, "{:#?}", report.diagnostics);
}

#[test]
fn fuzz_defense_oracle_is_unanimous_in_both_directions() {
    // The same contract, enforced on generated table operators by the
    // fuzz stack's defense oracle: an over-claim must be flagged by every
    // layer, an under-claim by none of the error-level ones. Both specs
    // are corpus-style and replayable via `collopt fuzz --replay`.
    use collopt::fuzz::{run_case, CaseSpec, CoverageLedger};

    // Left projection declared commutative — a lie (over-claim).
    let lie = CaseSpec::parse(
        "v1|seed=103|p=2|m=1|engine=legacy|domain=table|\
         prog=scan(t0) ; reduce(t0)|tables=t0:0000111122223333:c|plan=none|fuse=none",
    )
    .expect("over-claim spec parses");
    let mut ledger = CoverageLedger::new();
    let failures = run_case(&lie, &mut ledger);
    assert!(failures.is_empty(), "{}", failures[0]);
    assert_eq!(
        ledger.lies_caught, 1,
        "over-claim must be caught unanimously"
    );

    // Min without `.commutative()` — the truth, withheld (under-claim).
    let shy = CaseSpec::parse(
        "v1|seed=105|p=2|m=1|engine=legacy|domain=table|\
         prog=scan(t0) ; allreduce(t0)|tables=t0:0000011101220123:-|plan=none|fuse=none",
    )
    .expect("under-claim spec parses");
    let mut ledger = CoverageLedger::new();
    let failures = run_case(&shy, &mut ledger);
    assert!(failures.is_empty(), "{}", failures[0]);
    assert_eq!(ledger.under_claim_cases, 1);
    assert_eq!(ledger.lies_caught, 0, "nothing to catch: no over-claims");
}

#[test]
fn honest_pipeline_passes_every_layer() {
    // Control: the same shape with a sound operator fuses, validates, and
    // lints without errors.
    let prog = Program::new().scan(ops::add()).reduce(ops::add());
    let samples = samples_for_domain(Domain::Int, &AuditConfig::default());
    let res = Rewriter::exhaustive()
        .audited(samples.clone())
        .optimize(&prog);
    assert_eq!(res.steps.len(), 1);
    assert!(res.rejections.is_empty());
    assert!(validate_result(&res, &samples, &AuditConfig::default()).is_empty());
    let report = lint_program(&prog, None, &LintConfig::default());
    assert_eq!(report.errors(), 0, "{:#?}", report.diagnostics);
}
