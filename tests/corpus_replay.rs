//! Pinned-regression replay: every `.case` file in `tests/corpus/` is a
//! self-contained fuzz case (spec string + seed) that once failed — or
//! was hand-written to pin an interesting boundary — and must replay
//! green against all three differential oracles forever.
//!
//! `gen_fuzz` appends shrunk failures here automatically (`FUZZ_PIN=1`,
//! the default); a case can also be replayed by hand with
//! `collopt fuzz --replay "<spec>"`.

use std::path::Path;

use collopt::fuzz::{load_corpus, run_case, CoverageLedger};

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus"))
}

#[test]
fn every_corpus_case_replays_green() {
    let cases = load_corpus(corpus_dir()).expect("corpus directory loads");
    assert!(
        cases.len() >= 5,
        "corpus lost its seeded regressions: only {} cases",
        cases.len()
    );
    for entry in &cases {
        let mut ledger = CoverageLedger::new();
        let failures = run_case(&entry.case, &mut ledger);
        assert!(
            failures.is_empty(),
            "{} no longer replays green: {}",
            entry.path.display(),
            failures[0]
        );
    }
}

#[test]
fn corpus_specs_are_canonical() {
    // Each pinned spec must round-trip through render(), so a future
    // grammar change that silently reinterprets old specs fails loudly
    // here rather than quietly replaying a different case.
    for entry in load_corpus(corpus_dir()).expect("corpus directory loads") {
        let rendered = entry.case.render();
        let reparsed = collopt::fuzz::CaseSpec::parse(&rendered).expect("rendered spec reparses");
        assert_eq!(
            entry.case,
            reparsed,
            "{}: spec does not round-trip",
            entry.path.display()
        );
    }
}
