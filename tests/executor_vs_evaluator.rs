//! Random-program agreement between the two interpreters.
//!
//! The sequential evaluator ([`collopt::core::semantics`]) defines what a
//! program *means*; the machine executor ([`collopt::core::exec`]) is a
//! full message-passing implementation. This suite generates random
//! pipelines from a small grammar and random inputs (scalars and blocks,
//! any processor count) and checks the two agree bit for bit — including
//! the deliberately under-defined positions (non-root values after
//! `reduce`), where both take the same deterministic choice. Cases come
//! from a seeded [`Rng`], so every run replays the identical programs.

use collopt::core::semantics::eval_program;
use collopt::machine::Rng;
use collopt::prelude::*;

#[derive(Debug, Clone)]
enum Piece {
    MapInc,
    MapIndexedAdd,
    Bcast,
    ScanAdd,
    ScanMax,
    ReduceAdd,
    AllReduceAdd,
    AllReduceMin,
    ScanTropical,
}

const PIECES: [Piece; 9] = [
    Piece::MapInc,
    Piece::MapIndexedAdd,
    Piece::Bcast,
    Piece::ScanAdd,
    Piece::ScanMax,
    Piece::ReduceAdd,
    Piece::AllReduceAdd,
    Piece::AllReduceMin,
    Piece::ScanTropical,
];

fn random_pieces(rng: &mut Rng, min_len: usize, max_len: usize) -> Vec<Piece> {
    let len = rng.range_usize(min_len, max_len);
    (0..len)
        .map(|_| PIECES[rng.range_usize(0, PIECES.len())].clone())
        .collect()
}

fn build(pieces: &[Piece]) -> Program {
    let mut prog = Program::new();
    for p in pieces {
        prog = match p {
            Piece::MapInc => prog.map("inc", 1.0, |v| {
                v.map_block(&|x| Value::Int(x.as_int().wrapping_add(1)))
            }),
            Piece::MapIndexedAdd => prog.map_indexed("addrank", 1.0, |i, v| {
                v.map_block(&|x| Value::Int(x.as_int().wrapping_add(i as i64)))
            }),
            Piece::Bcast => prog.bcast(),
            Piece::ScanAdd => prog.scan(ops::add()),
            Piece::ScanMax => prog.scan(ops::max()),
            Piece::ReduceAdd => prog.reduce(ops::add()),
            Piece::AllReduceAdd => prog.allreduce(ops::add()),
            Piece::AllReduceMin => prog.allreduce(ops::min()),
            Piece::ScanTropical => prog.scan(ops::add_tropical()),
        };
    }
    prog
}

#[test]
fn executor_agrees_with_evaluator_on_scalars() {
    let mut rng = Rng::new(0xE5A1);
    for _ in 0..64 {
        let pieces = random_pieces(&mut rng, 1, 6);
        let prog = build(&pieces);
        let n = rng.range_usize(1, 14);
        let input: Vec<Value> = (0..n).map(|_| Value::Int(rng.range_i64(-25, 25))).collect();
        let expected = eval_program(&prog, &input);
        let got = execute(&prog, &input, ClockParams::free());
        assert_eq!(got.outputs, expected, "{}", prog);
    }
}

#[test]
fn executor_agrees_with_evaluator_on_blocks() {
    let mut rng = Rng::new(0xE5A2);
    for _ in 0..64 {
        let pieces = random_pieces(&mut rng, 1, 5);
        let prog = build(&pieces);
        let n = rng.range_usize(1, 10);
        let input: Vec<Value> = (0..n)
            .map(|_| Value::int_list((0..4).map(|_| rng.range_i64(-15, 15))))
            .collect();
        let expected = eval_program(&prog, &input);
        let got = execute(&prog, &input, ClockParams::free());
        assert_eq!(got.outputs, expected, "{}", prog);
    }
}

#[test]
fn optimized_random_pipelines_agree_with_their_originals() {
    let mut rng = Rng::new(0xE5A3);
    for _ in 0..64 {
        let pieces = random_pieces(&mut rng, 2, 6);
        let prog = build(&pieces);
        let opt = Rewriter::exhaustive()
            .allow_rank0_rules(false)
            .optimize(&prog);
        let n = rng.range_usize(2, 10);
        let input: Vec<Value> = (0..n).map(|_| Value::Int(rng.range_i64(-6, 7))).collect();
        assert_eq!(
            eval_program(&prog, &input),
            eval_program(&opt.program, &input),
            "{} vs {}",
            prog,
            opt.program
        );
        let a = execute(&prog, &input, ClockParams::free());
        let b = execute(&opt.program, &input, ClockParams::free());
        assert_eq!(a.outputs, b.outputs, "{} vs {}", prog, opt.program);
    }
}

#[test]
fn makespan_is_monotone_in_latency() {
    let mut rng = Rng::new(0xE5A4);
    for _ in 0..16 {
        let prog = build(&[Piece::ScanAdd, Piece::AllReduceAdd]);
        let n = rng.range_usize(2, 10);
        let input: Vec<Value> = (0..n).map(|_| Value::Int(rng.range_i64(-10, 10))).collect();
        let slow = execute(&prog, &input, ClockParams::new(500.0, 2.0));
        let fast = execute(&prog, &input, ClockParams::new(5.0, 2.0));
        assert!(slow.makespan >= fast.makespan);
        assert_eq!(slow.outputs, fast.outputs);
    }
}
