//! Random-program agreement between the two interpreters.
//!
//! The sequential evaluator ([`collopt::core::semantics`]) defines what a
//! program *means*; the machine executor ([`collopt::core::exec`]) is a
//! full message-passing implementation. This suite generates random
//! pipelines from a small grammar and random inputs (scalars and blocks,
//! any processor count) and checks the two agree bit for bit — including
//! the deliberately under-defined positions (non-root values after
//! `reduce`), where both take the same deterministic choice.

use collopt::core::semantics::eval_program;
use collopt::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Piece {
    MapInc,
    MapIndexedAdd,
    Bcast,
    ScanAdd,
    ScanMax,
    ReduceAdd,
    AllReduceAdd,
    AllReduceMin,
    ScanTropical,
}

fn piece_strategy() -> impl Strategy<Value = Piece> {
    prop_oneof![
        Just(Piece::MapInc),
        Just(Piece::MapIndexedAdd),
        Just(Piece::Bcast),
        Just(Piece::ScanAdd),
        Just(Piece::ScanMax),
        Just(Piece::ReduceAdd),
        Just(Piece::AllReduceAdd),
        Just(Piece::AllReduceMin),
        Just(Piece::ScanTropical),
    ]
}

fn build(pieces: &[Piece]) -> Program {
    let mut prog = Program::new();
    for p in pieces {
        prog = match p {
            Piece::MapInc => prog.map("inc", 1.0, |v| {
                v.map_block(&|x| Value::Int(x.as_int().wrapping_add(1)))
            }),
            Piece::MapIndexedAdd => prog.map_indexed("addrank", 1.0, |i, v| {
                v.map_block(&|x| Value::Int(x.as_int().wrapping_add(i as i64)))
            }),
            Piece::Bcast => prog.bcast(),
            Piece::ScanAdd => prog.scan(ops::add()),
            Piece::ScanMax => prog.scan(ops::max()),
            Piece::ReduceAdd => prog.reduce(ops::add()),
            Piece::AllReduceAdd => prog.allreduce(ops::add()),
            Piece::AllReduceMin => prog.allreduce(ops::min()),
            Piece::ScanTropical => prog.scan(ops::add_tropical()),
        };
    }
    prog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn executor_agrees_with_evaluator_on_scalars(
        pieces in prop::collection::vec(piece_strategy(), 1..6),
        xs in prop::collection::vec(-25i64..25, 1..14),
    ) {
        let prog = build(&pieces);
        let input: Vec<Value> = xs.iter().map(|&v| Value::Int(v)).collect();
        let expected = eval_program(&prog, &input);
        let got = execute(&prog, &input, ClockParams::free());
        prop_assert_eq!(got.outputs, expected, "{}", prog);
    }

    #[test]
    fn executor_agrees_with_evaluator_on_blocks(
        pieces in prop::collection::vec(piece_strategy(), 1..5),
        rows in prop::collection::vec(prop::collection::vec(-15i64..15, 4), 1..10),
    ) {
        let prog = build(&pieces);
        let input: Vec<Value> =
            rows.iter().map(|r| Value::int_list(r.iter().copied())).collect();
        let expected = eval_program(&prog, &input);
        let got = execute(&prog, &input, ClockParams::free());
        prop_assert_eq!(got.outputs, expected, "{}", prog);
    }

    #[test]
    fn optimized_random_pipelines_agree_with_their_originals(
        pieces in prop::collection::vec(piece_strategy(), 2..6),
        xs in prop::collection::vec(-6i64..7, 2..10),
    ) {
        let prog = build(&pieces);
        let opt = Rewriter::exhaustive().allow_rank0_rules(false).optimize(&prog);
        let input: Vec<Value> = xs.iter().map(|&v| Value::Int(v)).collect();
        prop_assert_eq!(
            eval_program(&prog, &input),
            eval_program(&opt.program, &input),
            "{} vs {}", prog, opt.program
        );
        let a = execute(&prog, &input, ClockParams::free());
        let b = execute(&opt.program, &input, ClockParams::free());
        prop_assert_eq!(a.outputs, b.outputs, "{} vs {}", prog, opt.program);
    }

    #[test]
    fn makespan_is_monotone_in_latency(
        xs in prop::collection::vec(-10i64..10, 2..10),
    ) {
        let prog = build(&[Piece::ScanAdd, Piece::AllReduceAdd]);
        let input: Vec<Value> = xs.iter().map(|&v| Value::Int(v)).collect();
        let slow = execute(&prog, &input, ClockParams::new(500.0, 2.0));
        let fast = execute(&prog, &input, ClockParams::new(5.0, 2.0));
        prop_assert!(slow.makespan >= fast.makespan);
        prop_assert_eq!(slow.outputs, fast.outputs);
    }
}
