//! The full rule × operator matrix.
//!
//! Every optimization rule, instantiated with every operator (pair) from
//! the standard library that satisfies its side condition, checked for
//! semantic equivalence on several machine sizes — by the sequential
//! evaluator and by the simulated machine, scoped to what the rule
//! guarantees. This is the breadth test: the per-rule property tests go
//! deep on one instantiation, this one goes wide across the algebra.

use collopt::core::rules::{try_match, window_len, Rule};
use collopt::core::semantics::eval_program;
use collopt::prelude::*;

/// Distributive pairs (⊗ distributes over ⊕) from the operator library.
fn distributive_pairs() -> Vec<(BinOp, BinOp)> {
    vec![
        (ops::mul(), ops::add()),
        (ops::add_tropical(), ops::max()),
        (ops::add_tropical(), ops::min()),
        // The (max, min) lattice: each distributes over the other —
        // declarations added after the operator auditor flagged the
        // under-claim.
        (ops::max(), ops::min()),
        (ops::min(), ops::max()),
        (ops::and(), ops::or()),
        (ops::or(), ops::and()),
        (ops::fmul(), ops::fadd()),
    ]
}

/// Commutative operators.
fn commutative_ops() -> Vec<BinOp> {
    vec![
        ops::add(),
        ops::mul(),
        ops::max(),
        ops::min(),
        ops::and(),
        ops::or(),
        ops::add_mod(97),
        ops::fadd(),
        ops::gcd(),
    ]
}

/// Associative operators (superset: adds the non-commutative matrix op).
fn associative_ops() -> Vec<BinOp> {
    let mut v = commutative_ops();
    v.push(ops::mat2mul());
    v
}

/// Deterministic input values fitting the operator's domain, kept tiny so
/// products over 9 processors cannot overflow.
fn inputs_for(op: &BinOp, p: usize, salt: u64) -> Vec<Value> {
    (0..p)
        .map(|i| {
            let h = (i as u64).wrapping_mul(2654435761).wrapping_add(salt * 97);
            match op.name() {
                "and" | "or" => Value::Bool(h.is_multiple_of(2)),
                "fadd" | "fmul" => Value::Float(((h % 7) as f64 - 3.0) / 2.0),
                "mat2mul" => Value::Tuple(vec![
                    Value::Int((h % 3) as i64),
                    Value::Int((h % 2) as i64),
                    Value::Int(((h >> 2) % 2) as i64),
                    Value::Int(1 + (h % 2) as i64),
                ]),
                "mul" => Value::Int((h % 3) as i64 - 1),
                "gcd" => Value::Int([12i64, 18, 30, 42, 60][(h % 5) as usize]),
                _ => Value::Int((h % 11) as i64 - 5),
            }
        })
        .collect()
}

/// Whether a broadcast feeds the window (the input's tail is then
/// irrelevant, but `mul`'s zero-heavy inputs are fine either way).
fn check(rule: Rule, prog: &Program, inputs: &[Value]) {
    let Some(rw) = try_match(rule, prog.stages()) else {
        panic!("{rule} must match {prog}");
    };
    let rank0 = rw.rank0_only;
    let opt = prog.splice(0, window_len(rule), rw.stages);
    let a = eval_program(prog, inputs);
    let b = eval_program(&opt, inputs);
    let ea = execute(prog, inputs, ClockParams::free());
    let eb = execute(&opt, inputs, ClockParams::free());
    if rank0 {
        assert_eq!(a[0], b[0], "evaluator: {prog} vs {opt}");
        assert_eq!(ea.outputs[0], eb.outputs[0], "executor: {prog} vs {opt}");
    } else {
        assert_eq!(a, b, "evaluator: {prog} vs {opt}");
        assert_eq!(ea.outputs, eb.outputs, "executor: {prog} vs {opt}");
    }
    assert_eq!(eb.outputs, b, "executor vs evaluator on {opt}");
}

const SIZES: [usize; 4] = [1, 4, 6, 9];

#[test]
fn distributivity_rules_across_all_library_pairs() {
    for (ot, op) in distributive_pairs() {
        for p in SIZES {
            for salt in 0..3 {
                let inputs = inputs_for(&ot, p, salt);
                check(
                    Rule::Sr2Reduction,
                    &Program::new().scan(ot.clone()).reduce(op.clone()),
                    &inputs,
                );
                check(
                    Rule::Sr2Reduction,
                    &Program::new().scan(ot.clone()).allreduce(op.clone()),
                    &inputs,
                );
                if ot.name() != op.name() {
                    check(
                        Rule::Ss2Scan,
                        &Program::new().scan(ot.clone()).scan(op.clone()),
                        &inputs,
                    );
                    check(
                        Rule::Bss2Comcast,
                        &Program::new().bcast().scan(ot.clone()).scan(op.clone()),
                        &inputs,
                    );
                }
                check(
                    Rule::Bsr2Local,
                    &Program::new().bcast().scan(ot.clone()).reduce(op.clone()),
                    &inputs,
                );
            }
        }
    }
}

#[test]
fn commutativity_rules_across_all_library_ops() {
    for op in commutative_ops() {
        // Floating-point operators drift under regrouping; the library's
        // tolerance-based comparison lives in `value_close`, but these
        // matrix tests use exact equality, so restrict to exact domains.
        if op.name().starts_with('f') {
            continue;
        }
        for p in SIZES {
            for salt in 0..3 {
                let inputs = inputs_for(&op, p, salt);
                check(
                    Rule::SrReduction,
                    &Program::new().scan(op.clone()).reduce(op.clone()),
                    &inputs,
                );
                check(
                    Rule::SrReduction,
                    &Program::new().scan(op.clone()).allreduce(op.clone()),
                    &inputs,
                );
                check(
                    Rule::SsScan,
                    &Program::new().scan(op.clone()).scan(op.clone()),
                    &inputs,
                );
                check(
                    Rule::BssComcast,
                    &Program::new().bcast().scan(op.clone()).scan(op.clone()),
                    &inputs,
                );
                check(
                    Rule::BsrLocal,
                    &Program::new().bcast().scan(op.clone()).reduce(op.clone()),
                    &inputs,
                );
            }
        }
    }
}

#[test]
fn associativity_only_rules_across_all_library_ops() {
    for op in associative_ops() {
        if op.name().starts_with('f') {
            continue;
        }
        for p in SIZES {
            for salt in 0..3 {
                let inputs = inputs_for(&op, p, salt);
                check(
                    Rule::BsComcast,
                    &Program::new().bcast().scan(op.clone()),
                    &inputs,
                );
                check(
                    Rule::BrLocal,
                    &Program::new().bcast().reduce(op.clone()),
                    &inputs,
                );
                check(
                    Rule::CrAlllocal,
                    &Program::new().bcast().allreduce(op.clone()),
                    &inputs,
                );
            }
        }
    }
}

#[test]
fn idempotent_operators_are_fine_in_every_rule() {
    // max/min are idempotent (x⊕x = x): the doubling-heavy fused
    // operators (op_sr's uu⊕uu etc.) must still be correct.
    for op in [ops::max(), ops::min()] {
        let inputs = inputs_for(&op, 7, 1);
        check(
            Rule::SrReduction,
            &Program::new().scan(op.clone()).allreduce(op.clone()),
            &inputs,
        );
        check(
            Rule::SsScan,
            &Program::new().scan(op.clone()).scan(op.clone()),
            &inputs,
        );
        check(
            Rule::BssComcast,
            &Program::new().bcast().scan(op.clone()).scan(op.clone()),
            &inputs,
        );
    }
}

#[test]
fn modular_arithmetic_survives_the_heavy_doubling() {
    // add_mod stresses the fused operators' many extra additions: the
    // results must stay reduced mod 97 and equal on both sides.
    let op = ops::add_mod(97);
    for p in [5usize, 8, 13] {
        let inputs = inputs_for(&op, p, 2);
        check(
            Rule::SrReduction,
            &Program::new().scan(op.clone()).allreduce(op.clone()),
            &inputs,
        );
        check(
            Rule::BsrLocal,
            &Program::new().bcast().scan(op.clone()).reduce(op.clone()),
            &inputs,
        );
    }
}
