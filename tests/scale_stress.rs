//! Scale stress: the paper's actual machine size (64 processors) and
//! beyond, end to end — collectives, rules, executor and cost model all
//! at once.

use collopt::core::semantics::eval_program;
use collopt::prelude::*;

fn ints_mod(p: usize, modulus: i64) -> Vec<Value> {
    (0..p as i64).map(|i| Value::Int(i % modulus)).collect()
}

#[test]
fn sixty_four_processors_full_pipeline() {
    // The Example program at the paper's machine size, with blocks.
    let p = 64;
    let m = 32;
    // scan(+); allreduce(max): the high-watermark pipeline — tropical
    // `+` distributes over `max`, so SR2 fuses it.
    let prog = Program::new()
        .map("f", 1.0, |v| v.map_block(&|x| Value::Int(x.as_int() + 1)))
        .scan(ops::add_tropical())
        .allreduce(ops::max())
        .bcast();
    let input: Vec<Value> = (0..p)
        .map(|i| {
            Value::list(
                (0..m)
                    .map(|j| Value::Int(((i * 31 + j) % 13) as i64 - 6))
                    .collect(),
            )
        })
        .collect();
    let opt = Rewriter::exhaustive().optimize(&prog);
    assert!(!opt.steps.is_empty());

    let expected = eval_program(&prog, &input);
    for program in [&prog, &opt.program] {
        let run = execute(program, &input, ClockParams::parsytec_like());
        assert_eq!(run.outputs, expected);
    }
    // And the optimized one is faster at this size.
    let a = execute(&prog, &input, ClockParams::parsytec_like());
    let b = execute(&opt.program, &input, ClockParams::parsytec_like());
    assert!(b.makespan < a.makespan);
}

#[test]
fn hundred_processors_non_power_of_two() {
    // Well past the paper's size, deliberately not a power of two:
    // exercises every unary-node/missing-partner path at once.
    let p = 100;
    let input = ints_mod(p, 7);
    for prog in [
        Program::new().scan(ops::add()).allreduce(ops::add()),
        Program::new().scan(ops::add()).scan(ops::add()),
        Program::new().bcast().scan(ops::add()).scan(ops::add()),
        Program::new().bcast().scan(ops::mul()).reduce(ops::add()),
    ] {
        let opt = Rewriter::exhaustive().optimize(&prog);
        assert!(!opt.steps.is_empty(), "{prog}");
        let want = eval_program(&prog, &input);
        let got_orig = execute(&prog, &input, ClockParams::free());
        let got_opt = execute(&opt.program, &input, ClockParams::free());
        assert_eq!(got_orig.outputs, want, "{prog}");
        // Reduce-variant rules are rank-0 equalities.
        assert_eq!(got_opt.outputs[0], want[0], "{prog}");
    }
}

#[test]
fn deep_pipeline_many_rules_at_once() {
    // A long pipeline where the engine fires several rules in one pass.
    let prog = Program::new()
        .map("prep", 1.0, |v| v.clone())
        .scan(ops::mul())
        .allreduce(ops::add())
        .map("mid", 1.0, |v| v.clone())
        .bcast()
        .scan(ops::add())
        .scan(ops::add());
    let opt = Rewriter::exhaustive().optimize(&prog);
    let rules: Vec<String> = opt.steps.iter().map(|s| s.rule.to_string()).collect();
    assert!(rules.contains(&"SR2-Reduction".to_string()), "{rules:?}");
    assert!(rules.contains(&"BSS-Comcast".to_string()), "{rules:?}");
    assert_eq!(opt.program.collective_count(), 2);

    let input = ints_mod(24, 3);
    assert_eq!(
        eval_program(&prog, &input),
        eval_program(&opt.program, &input)
    );
    let a = execute(&prog, &input, ClockParams::parsytec_like());
    let b = execute(&opt.program, &input, ClockParams::parsytec_like());
    assert_eq!(a.outputs, b.outputs);
    assert!(b.total_messages < a.total_messages);
    assert!(b.makespan < a.makespan);
}

#[test]
fn makespan_grows_logarithmically_with_p() {
    // Structural sanity of the whole stack: doubling p adds one butterfly
    // phase, so the makespan of scan grows by a constant increment.
    let prog = Program::new().scan(ops::add());
    let mut last = 0.0;
    let mut increments = Vec::new();
    for k in 2..=7 {
        let p = 1usize << k;
        let input = ints_mod(p, 5);
        let run = execute(&prog, &input, ClockParams::parsytec_like());
        if last > 0.0 {
            increments.push(run.makespan - last);
        }
        last = run.makespan;
    }
    let first = increments[0];
    for inc in increments {
        assert!(
            (inc - first).abs() < 1e-9,
            "constant increment per doubling"
        );
    }
}
