//! Cross-validation properties for the trace-analysis layer.
//!
//! The simulated clock computes a run's makespan *forwards* (each rank's
//! `SimClock` advances through charges and rendezvous); the critical-path
//! pass recomputes it *backwards* from the recorded trace alone. The two
//! implementations share no code, so exact agreement across every
//! collective variant and machine size is a strong check on both:
//!
//! * `critical_path(trace).length() == makespan` **exactly** (bitwise,
//!   not within a tolerance) — the chain is rebuilt from recorded `f64`
//!   timestamps, never recomputed, so any disagreement is a real bug;
//! * the chain is gapless and starts at simulated time zero;
//! * per rank, idle is exactly the busy complement
//!   `makespan − compute − comm` (so busy + idle sums back to the
//!   makespan), and it agrees with the gap-based idle (waiting between
//!   events plus the tail after the rank's last action) within float
//!   tolerance.

use collopt::collectives::{
    allgather, allgather_doubling, allgather_ring, allreduce, allreduce_auto, allreduce_balanced,
    allreduce_balanced_halving, allreduce_commutative, allreduce_rabenseifner, allreduce_ring,
    alltoall, barrier, bcast_auto, bcast_binomial, bcast_linear, bcast_pipelined,
    bcast_scatter_allgather, comcast_bcast_repeat, comcast_cost_optimal, exscan, gather_binomial,
    reduce_auto, reduce_balanced, reduce_binomial, reduce_scatter, reduce_scatter_halving,
    reduce_scatter_ring, scan_balanced, scan_butterfly, scan_sklansky, scatter_binomial,
    BalancedOp, Combine, PairedOp, RepeatOp,
};
use collopt::machine::{
    critical_path, ClockParams, Ctx, EventKind, Machine, ProfileReport, RunResult,
};

/// Run `f` on `p` traced ranks and check every invariant the trace layer
/// promises.
fn check<T, F>(label: &str, p: usize, clock: ClockParams, f: F)
where
    T: Send,
    F: Fn(&mut Ctx) -> T + Sync,
{
    let run = Machine::new(p, clock).with_tracing().run(f);
    assert_oracle(label, p, &run);
}

fn assert_oracle<T>(label: &str, p: usize, run: &RunResult<T>) {
    let tag = format!("{label} p={p}");
    let path = critical_path(&run.trace).unwrap_or_else(|e| panic!("{tag}: {e}"));

    // The headline oracle: trace-derived length equals the clock's
    // makespan to machine precision (they are the same f64).
    assert_eq!(
        path.length(),
        run.makespan,
        "{tag}: critical path != makespan"
    );

    // The chain covers [0, makespan] without gaps.
    if let Some(first) = path.steps.first() {
        assert_eq!(first.start, 0.0, "{tag}: chain must start at t=0");
    }
    for w in path.steps.windows(2) {
        assert_eq!(
            w[0].time, w[1].start,
            "{tag}: chain is not contiguous at t={}",
            w[0].time
        );
    }

    // Per-rank accounting: busy + idle telescopes to the makespan
    // exactly (idle is defined as the complement) …
    let report = ProfileReport::from_trace(&run.trace, p, run.makespan);
    assert_eq!(report.ranks.len(), p, "{tag}");
    for r in &report.ranks {
        // The complement identity is exact by construction …
        assert_eq!(
            r.idle,
            run.makespan - r.compute - r.comm,
            "{tag}: rank {} idle is not the busy complement",
            r.rank
        );
        // … so re-summing busy + idle recovers the makespan (bitwise for
        // dyadic costs; within one rounding step under jitter, where the
        // re-association of the float sum can differ).
        assert!(
            (r.compute + r.comm + r.idle - run.makespan).abs()
                <= 1e-12 * run.makespan.abs().max(1.0),
            "{tag}: rank {} busy+idle != makespan",
            r.rank
        );
        assert!(r.finish <= run.makespan, "{tag}: rank {} overruns", r.rank);
    }

    // … and agrees with idle measured the hard way, as the sum of gaps
    // between consecutive events plus the tail after the last one.
    let tol = 1e-9 * run.makespan.abs().max(1.0);
    for r in &report.ranks {
        let mut prev_end = 0.0;
        let mut gaps = 0.0;
        for e in run.trace.events() {
            if e.rank != r.rank || e.kind.is_annotation() {
                continue;
            }
            assert!(
                e.start >= prev_end - tol,
                "{tag}: rank {} events overlap at t={}",
                r.rank,
                e.start
            );
            gaps += e.start - prev_end;
            prev_end = e.time;
        }
        gaps += run.makespan - prev_end;
        assert!(
            (gaps - r.idle).abs() <= 1e-6 * run.makespan.abs().max(1.0),
            "{tag}: rank {} gap idle {} != complement idle {}",
            r.rank,
            gaps,
            r.idle
        );
    }

    // Every message exchange the machine counted shows up in the trace
    // (the trace additionally records the matching sends).
    let traced_messages: usize = run
        .trace
        .events()
        .iter()
        .filter(|e| e.kind.is_comm())
        .count();
    let clocked_messages: u64 = run.messages.iter().sum();
    assert!(
        traced_messages as u64 >= clocked_messages,
        "{tag}: trace lost messages ({traced_messages} < {clocked_messages})"
    );
}

fn iadd() -> impl Fn(&Vec<i64>, &Vec<i64>) -> Vec<i64> {
    |a, b| a.iter().zip(b).map(|(x, y)| x + y).collect()
}

fn block(rank: usize, m: usize) -> Vec<i64> {
    (0..m).map(|j| (rank * 31 + j) as i64 % 13 - 6).collect()
}

fn clock() -> ClockParams {
    ClockParams::new(100.0, 2.0)
}

const M: usize = 12;

#[test]
fn bcast_variants_satisfy_the_critical_path_oracle() {
    for p in 2..=9 {
        check("bcast_binomial", p, clock(), |ctx| {
            let v = (ctx.rank() == 0).then(|| block(0, M));
            bcast_binomial(ctx, 0, v, M as u64)
        });
        check("bcast_linear", p, clock(), |ctx| {
            let v = (ctx.rank() == 0).then(|| block(0, M));
            bcast_linear(ctx, 0, v, M as u64)
        });
        check("bcast_pipelined", p, clock(), |ctx| {
            let v = (ctx.rank() == 0).then(|| block(0, M));
            bcast_pipelined(ctx, 0, v, 1, 3)
        });
        check("bcast_scatter_allgather", p, clock(), |ctx| {
            let v = (ctx.rank() == 0).then(|| block(0, M));
            bcast_scatter_allgather(ctx, v, 1)
        });
        check("bcast_auto", p, clock(), |ctx| {
            let v = (ctx.rank() == 0).then(|| block(0, M));
            bcast_auto(ctx, v, 1)
        });
    }
}

#[test]
fn reduce_and_allreduce_variants_satisfy_the_oracle() {
    let add = iadd();
    for p in 2..=9 {
        check("reduce_binomial", p, clock(), |ctx| {
            reduce_binomial(ctx, 0, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
        check("reduce_auto", p, clock(), |ctx| {
            reduce_auto(ctx, block(ctx.rank(), M), 1, &Combine::new(&add))
        });
        check("allreduce_butterfly", p, clock(), |ctx| {
            allreduce(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
        check("allreduce_commutative", p, clock(), |ctx| {
            allreduce_commutative(
                ctx,
                block(ctx.rank(), M),
                M as u64,
                &Combine::new(&add).assume_commutative(),
            )
        });
        check("allreduce_ring", p, clock(), |ctx| {
            allreduce_ring(
                ctx,
                block(ctx.rank(), M),
                1,
                &Combine::new(&add).assume_commutative(),
            )
        });
        check("allreduce_auto", p, clock(), |ctx| {
            allreduce_auto(
                ctx,
                block(ctx.rank(), M),
                1,
                &Combine::new(&add).assume_commutative(),
            )
        });
    }
    // The recursive-halving family is defined for power-of-two machines.
    for p in [2usize, 4, 8] {
        check("allreduce_rabenseifner", p, clock(), |ctx| {
            allreduce_rabenseifner(ctx, block(ctx.rank(), M), 1, &Combine::new(&add))
        });
        check("reduce_scatter_halving", p, clock(), |ctx| {
            reduce_scatter_halving(ctx, block(ctx.rank(), M), 1, &Combine::new(&add))
        });
        check("allgather_doubling", p, clock(), |ctx| {
            allgather_doubling(ctx, block(ctx.rank(), 2), 1)
        });
    }
}

#[test]
fn scan_variants_satisfy_the_oracle() {
    let add = iadd();
    for p in 2..=9 {
        check("scan_butterfly", p, clock(), |ctx| {
            scan_butterfly(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
        check("scan_sklansky", p, clock(), |ctx| {
            scan_sklansky(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
        check("exscan", p, clock(), |ctx| {
            exscan(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
    }
}

#[test]
fn balanced_tree_collectives_satisfy_the_oracle() {
    for p in 2..=9 {
        let combine = |a: &i64, b: &i64| a + b;
        let solo = |x: &i64| x * 2;
        check("reduce_balanced", p, clock(), |ctx| {
            let op = BalancedOp {
                combine: &combine,
                solo: &solo,
                ops_combine: 1.0,
                ops_solo: 1.0,
                words_factor: 1,
            };
            reduce_balanced(ctx, ctx.rank() as i64 + 1, 1, &op)
        });
        check("allreduce_balanced", p, clock(), |ctx| {
            let op = BalancedOp {
                combine: &combine,
                solo: &solo,
                ops_combine: 1.0,
                ops_solo: 1.0,
                words_factor: 1,
            };
            allreduce_balanced(ctx, ctx.rank() as i64 + 1, 1, &op)
        });
        check("scan_balanced", p, clock(), |ctx| {
            let paired = |a: &i64, b: &i64| (a + b, a * b);
            let op = PairedOp {
                combine: &paired,
                solo: &solo,
                ops_lower: 1.0,
                ops_upper: 1.0,
                ops_solo: 1.0,
                words_factor: 1,
            };
            scan_balanced(ctx, ctx.rank() as i64 + 1, 1, &op)
        });
    }
    for p in [2usize, 4, 8] {
        let combine = |a: &Vec<i64>, b: &Vec<i64>| -> Vec<i64> {
            a.iter().zip(b).map(|(x, y)| x + y).collect()
        };
        let solo = |x: &Vec<i64>| x.iter().map(|v| v * 2).collect::<Vec<i64>>();
        check("allreduce_balanced_halving", p, clock(), |ctx| {
            let op = BalancedOp {
                combine: &combine,
                solo: &solo,
                ops_combine: 1.0,
                ops_solo: 1.0,
                words_factor: 1,
            };
            allreduce_balanced_halving(ctx, block(ctx.rank(), M), 1, &op)
        });
    }
}

#[test]
fn comcast_gather_and_alltoall_satisfy_the_oracle() {
    let add = iadd();
    type Pair = (i64, i64);
    let e = |s: &Pair| (s.0, 2 * s.1);
    let o = |s: &Pair| (s.0 + s.1, 2 * s.1);
    let inject = |b: &i64| (*b, *b);
    let project = |s: &Pair| s.0;
    for p in 2..=9 {
        check("comcast_bcast_repeat", p, clock(), |ctx| {
            let op = RepeatOp {
                e: &e,
                o: &o,
                ops_e: 1.0,
                ops_o: 2.0,
            };
            let seed = (ctx.rank() == 0).then_some(1i64);
            comcast_bcast_repeat(ctx, 0, seed, 1, &inject, &project, &op)
        });
        check("comcast_cost_optimal", p, clock(), |ctx| {
            let op = RepeatOp {
                e: &e,
                o: &o,
                ops_e: 1.0,
                ops_o: 2.0,
            };
            let seed = (ctx.rank() == 0).then_some(1i64);
            comcast_cost_optimal(ctx, 0, seed, 1, &inject, &project, &op, 2)
        });
        check("gather_binomial", p, clock(), |ctx| {
            gather_binomial(ctx, block(ctx.rank(), 2), 2)
        });
        check("scatter_binomial", p, clock(), |ctx| {
            let blocks = (ctx.rank() == 0).then(|| (0..ctx.size()).map(|r| block(r, 2)).collect());
            scatter_binomial(ctx, blocks, 2)
        });
        check("allgather", p, clock(), |ctx| {
            allgather(ctx, block(ctx.rank(), 2), 2)
        });
        check("allgather_ring", p, clock(), |ctx| {
            allgather_ring(ctx, block(ctx.rank(), 2), 2)
        });
        check("alltoall", p, clock(), |ctx| {
            let blocks: Vec<i64> = (0..ctx.size() as i64).collect();
            alltoall(ctx, blocks, 1)
        });
        check("reduce_scatter", p, clock(), |ctx| {
            let blocks: Vec<Vec<i64>> = (0..ctx.size()).map(|r| block(r, 2)).collect();
            reduce_scatter(ctx, blocks, 2, &Combine::new(&add))
        });
        check("reduce_scatter_ring", p, clock(), |ctx| {
            reduce_scatter_ring(
                ctx,
                block(ctx.rank(), M),
                1,
                &Combine::new(&add).assume_commutative(),
            )
        });
        check("barrier_ladder", p, clock(), |ctx| {
            ctx.charge((ctx.rank() + 1) as f64 * 3.0, "skew");
            barrier(ctx);
            ctx.charge(1.0, "tail");
            barrier(ctx);
        });
    }
}

#[test]
fn the_oracle_holds_under_jitter_and_on_clusters() {
    let add = iadd();
    for p in [3usize, 5, 8] {
        let jittery = ClockParams::new(100.0, 2.0).with_jitter(7, 0.5);
        check("allreduce under jitter", p, jittery, |ctx| {
            allreduce(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
        check("scan under jitter", p, jittery, |ctx| {
            scan_butterfly(ctx, block(ctx.rank(), M), M as u64, &Combine::new(&add))
        });
    }
}

#[test]
fn table1_rule_programs_satisfy_the_oracle_before_and_after_rewriting() {
    use collopt::core::exec::{execute_traced_with, ExecConfig};
    use collopt::core::Rule;
    use collopt_bench::{block_input, rule_lhs, rule_rhs};

    let config = ExecConfig {
        profile: true,
        ..ExecConfig::default()
    };
    for rule in Rule::ALL {
        for (side, prog) in [("LHS", rule_lhs(rule)), ("RHS", rule_rhs(rule))] {
            for p in [2usize, 5, 8] {
                let inputs = block_input(p, 6);
                let run = execute_traced_with(&prog, &inputs, clock(), config);
                let tag = format!("{rule} {side} p={p}");
                let path = run.critical_path().unwrap_or_else(|e| panic!("{tag}: {e}"));
                assert_eq!(path.length(), run.outcome.makespan, "{tag}");
                let report = run.profile_report();
                assert_eq!(report.stages.len(), prog.len(), "{tag}");
                assert!(
                    report.stages.windows(2).all(|w| w[0].finish <= w[1].finish),
                    "{tag}: stage finishes must be non-decreasing"
                );
                for r in &report.ranks {
                    assert_eq!(r.idle, run.outcome.makespan - r.compute - r.comm, "{tag}");
                }
            }
        }
    }
}

#[test]
fn stage_events_are_annotations_and_never_move_the_clock() {
    use collopt::core::exec::{execute, execute_traced_with, ExecConfig};
    use collopt::core::Rule;
    use collopt_bench::{block_input, rule_lhs};

    let prog = rule_lhs(Rule::Sr2Reduction);
    let inputs = block_input(8, 6);
    let plain = execute(&prog, &inputs, clock());
    let profiled = execute_traced_with(
        &prog,
        &inputs,
        clock(),
        ExecConfig {
            profile: true,
            ..ExecConfig::default()
        },
    );
    assert_eq!(plain.makespan, profiled.outcome.makespan);
    assert_eq!(plain.outputs, profiled.outcome.outputs);
    assert!(profiled
        .trace
        .events()
        .iter()
        .any(|e| matches!(e.kind, EventKind::Stage { .. })));
}
