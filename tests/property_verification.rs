//! The rewriter's property-verification safety net.
//!
//! The rules are only sound if the declared operator algebra is true. A
//! user can declare anything; `Rewriter::verify_properties` re-checks the
//! side condition on sample values before each application and skips
//! rules whose condition fails — turning a silent wrong-answer bug into a
//! skipped optimization.

use collopt::core::semantics::eval_program;
use collopt::prelude::*;

fn ints(vs: &[i64]) -> Vec<Value> {
    vs.iter().map(|&v| Value::Int(v)).collect()
}

fn int_samples() -> Vec<Value> {
    vec![
        Value::Int(-3),
        Value::Int(0),
        Value::Int(1),
        Value::Int(2),
        Value::Int(5),
    ]
}

/// Subtraction, *falsely* declared associative and commutative.
fn lying_sub() -> BinOp {
    BinOp::new("sub", |a, b| Value::Int(a.as_int() - b.as_int())).commutative()
}

/// Multiplication *falsely* declared to distribute over max
/// (fails for negative operands: -1·max(0,1) = -1 ≠ max(0,-1) = 0).
fn lying_mul() -> BinOp {
    BinOp::new("mul", |a, b| Value::Int(a.as_int() * b.as_int()))
        .commutative()
        .distributes_over_op("max")
}

#[test]
fn unverified_rewriter_trusts_lies_and_gets_wrong_answers() {
    let prog = Program::new().scan(lying_sub()).allreduce(lying_sub());
    let opt = Rewriter::exhaustive().optimize(&prog);
    assert_eq!(
        opt.steps.len(),
        1,
        "SR-Reduction fires on the (false) declaration"
    );
    let input = ints(&[10, 1, 2, 3]);
    // The fused program computes something different — the lie bites.
    assert_ne!(
        eval_program(&prog, &input),
        eval_program(&opt.program, &input)
    );
}

#[test]
fn verified_rewriter_skips_rules_with_false_conditions() {
    let prog = Program::new().scan(lying_sub()).allreduce(lying_sub());
    let opt = Rewriter::exhaustive()
        .verify_properties(int_samples())
        .optimize(&prog);
    assert!(
        opt.steps.is_empty(),
        "verification must reject non-associative sub"
    );
}

#[test]
fn verified_rewriter_rejects_false_distributivity() {
    let prog = Program::new().scan(lying_mul()).allreduce(ops::max());
    // Without verification, SR2 fires on the declaration.
    let blind = Rewriter::exhaustive().optimize(&prog);
    assert_eq!(blind.steps.len(), 1);
    // With verification over samples containing negatives, it is skipped.
    let checked = Rewriter::exhaustive()
        .verify_properties(int_samples())
        .optimize(&prog);
    assert!(checked.steps.is_empty());
    // And indeed the blind rewrite is wrong on a negative input — on the
    // *machine*, whose butterfly allreduce combines tree-shaped and so
    // actually exercises the (false) associativity of the fused operator.
    // (A sequential left-to-right fold of op_sr2 happens to stay correct,
    // which is exactly why declared-but-unverified algebra is insidious.)
    let input = ints(&[-1, 2, -3, 4]);
    let truth = execute(&prog, &input, ClockParams::free());
    let fused = execute(&blind.program, &input, ClockParams::free());
    assert_ne!(
        truth.outputs, fused.outputs,
        "the false distributivity produces a wrong answer under tree combining"
    );
    // max over prefix products of [-1,2,-3,4] = 24; the broken tree gives 6.
    assert_eq!(truth.outputs[0], Value::Int(24));
    assert_eq!(fused.outputs[0], Value::Int(6));
}

#[test]
fn verified_rewriter_still_applies_true_rules() {
    let prog = Program::new().scan(ops::mul()).allreduce(ops::add());
    let opt = Rewriter::exhaustive()
        .verify_properties(int_samples())
        .optimize(&prog);
    assert_eq!(opt.steps.len(), 1);
    let input = ints(&[2, -1, 3, 2]);
    assert_eq!(
        eval_program(&prog, &input),
        eval_program(&opt.program, &input)
    );
}

#[test]
fn verification_accepts_true_commutativity_and_tropical_distributivity() {
    for prog in [
        Program::new().scan(ops::add()).scan(ops::add()),
        Program::new()
            .scan(ops::add_tropical())
            .allreduce(ops::max()),
        Program::new().bcast().scan(ops::add()).scan(ops::add()),
    ] {
        let opt = Rewriter::exhaustive()
            .verify_properties(int_samples())
            .optimize(&prog);
        assert_eq!(opt.steps.len(), 1, "{prog}");
    }
}

#[test]
fn verification_composes_with_cost_guidance() {
    let params = MachineParams::parsytec_like(16);
    // True condition + profitable: fires.
    let good = Program::new().scan(ops::add()).allreduce(ops::add());
    let r = Rewriter::cost_guided(params, 1.0)
        .verify_properties(int_samples())
        .optimize(&good);
    assert_eq!(r.steps.len(), 1);
    // False condition + (would-be) profitable: skipped.
    let bad = Program::new().scan(lying_sub()).allreduce(lying_sub());
    let r = Rewriter::cost_guided(params, 1.0)
        .verify_properties(int_samples())
        .optimize(&bad);
    assert!(r.steps.is_empty());
}
