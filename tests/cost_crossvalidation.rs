//! Cross-validation of the analytic cost calculus (Table 1) against the
//! simulated machine.
//!
//! The cost crate and the machine are independent implementations of the
//! same model (Section 4.1): the former computes
//! `log p · (α·ts + β·m·tw + γ·m)` symbolically, the latter charges every
//! message and operation as it happens. For power-of-two machines —
//! where the butterfly is regular and `⌈log₂ p⌉` is exact — the two must
//! agree *exactly*, for both sides of every rule. The empirical
//! improvement must then match the paper's "improved if" column wherever
//! the analytic saving is bounded away from zero.

use collopt::core::rules::{try_match, window_len, Rule};
use collopt::prelude::*;

/// LHS program for each rule (operators chosen to satisfy the condition
/// with unit-cost base operators, as Table 1 assumes).
fn lhs(rule: Rule) -> Program {
    match rule {
        Rule::Sr2Reduction => Program::new().scan(ops::mul()).reduce(ops::add()),
        Rule::SrReduction => Program::new().scan(ops::add()).reduce(ops::add()),
        Rule::Ss2Scan => Program::new().scan(ops::mul()).scan(ops::add()),
        Rule::SsScan => Program::new().scan(ops::add()).scan(ops::add()),
        Rule::BsComcast => Program::new().bcast().scan(ops::add()),
        Rule::Bss2Comcast => Program::new().bcast().scan(ops::mul()).scan(ops::add()),
        Rule::BssComcast => Program::new().bcast().scan(ops::add()).scan(ops::add()),
        Rule::BrLocal => Program::new().bcast().reduce(ops::add()),
        Rule::Bsr2Local => Program::new().bcast().scan(ops::mul()).reduce(ops::add()),
        Rule::BsrLocal => Program::new().bcast().scan(ops::add()).reduce(ops::add()),
        Rule::CrAlllocal => Program::new().bcast().allreduce(ops::add()),
    }
}

fn rhs(rule: Rule) -> Program {
    let l = lhs(rule);
    let rw = try_match(rule, l.stages()).expect("condition holds by construction");
    l.splice(0, window_len(rule), rw.stages)
}

/// A block input that keeps integer arithmetic small (1s everywhere) —
/// we only care about timing here, overflow-free.
fn block_input(p: usize, m: usize) -> Vec<Value> {
    (0..p)
        .map(|_| Value::list(vec![Value::Int(1); m]))
        .collect()
}

#[test]
fn measured_makespans_match_analytic_estimates_exactly() {
    let p = 8usize;
    for rule in Rule::ALL {
        for (ts, tw, m) in [(100.0, 2.0, 4usize), (50.0, 1.0, 16), (300.0, 0.5, 1)] {
            let params = MachineParams::new(p, ts, tw);
            let clock = ClockParams::new(ts, tw);
            let input = block_input(p, m);

            let before = execute(&lhs(rule), &input, clock);
            let predicted_before = program_cost(&lhs(rule), &params, m as f64);
            assert!(
                (before.makespan - predicted_before).abs() < 1e-6,
                "{rule} LHS: measured {} vs predicted {predicted_before} (ts={ts} tw={tw} m={m})",
                before.makespan
            );

            let after = execute(&rhs(rule), &input, clock);
            let predicted_after = program_cost(&rhs(rule), &params, m as f64);
            assert!(
                (after.makespan - predicted_after).abs() < 1e-6,
                "{rule} RHS: measured {} vs predicted {predicted_after} (ts={ts} tw={tw} m={m})",
                after.makespan
            );
        }
    }
}

#[test]
fn analytic_rows_match_program_level_costs() {
    // Table 1's before/after columns, reconstructed from the stage costs
    // of the actual LHS/RHS programs (with unit base operators).
    let params = MachineParams::new(64, 123.0, 3.0);
    for rule in Rule::ALL {
        let est = rule.estimate();
        for m in [1.0, 8.0, 100.0] {
            let b = program_cost(&lhs(rule), &params, m);
            let a = program_cost(&rhs(rule), &params, m);
            assert!(
                (b - est.before.eval(&params, m)).abs() < 1e-9,
                "{rule} before at m={m}"
            );
            assert!(
                (a - est.after.eval(&params, m)).abs() < 1e-9,
                "{rule} after at m={m}"
            );
        }
    }
}

#[test]
fn empirical_improvement_matches_table1_conditions() {
    // Pick parameter points clearly on each side of every conditional
    // rule's crossover and check the measured sign agrees.
    let p = 8usize;
    let cases: Vec<(Rule, f64, f64, usize, bool)> = vec![
        // (rule, ts, tw, m, expected improvement)
        (Rule::SrReduction, 100.0, 2.0, 4, true), // ts > m
        (Rule::SrReduction, 2.0, 2.0, 64, false), // ts < m
        (Rule::Ss2Scan, 100.0, 2.0, 4, true),     // ts > 2m
        (Rule::Ss2Scan, 10.0, 2.0, 64, false),    // ts < 2m
        (Rule::SsScan, 400.0, 1.0, 4, true),      // ts > m(tw+4)
        (Rule::SsScan, 20.0, 1.0, 64, false),     // ts < m(tw+4)
        (Rule::Bss2Comcast, 100.0, 2.0, 4, true), // tw + ts/m > 1/2
        (Rule::Bss2Comcast, 1.0, 0.1, 64, false), // 0.1 + tiny < 1/2
        (Rule::BssComcast, 100.0, 3.0, 4, true),  // tw + ts/m > 2
        (Rule::BssComcast, 2.0, 0.5, 64, false),  // < 2
        (Rule::BsrLocal, 100.0, 2.0, 4, true),    // tw + ts/m > 1/3
        (Rule::BsrLocal, 0.5, 0.1, 64, false),    // < 1/3
    ];
    for (rule, ts, tw, m, expected) in cases {
        let clock = ClockParams::new(ts, tw);
        let input = block_input(p, m);
        let before = execute(&lhs(rule), &input, clock).makespan;
        let after = execute(&rhs(rule), &input, clock).makespan;
        assert_eq!(
            after < before,
            expected,
            "{rule} at ts={ts} tw={tw} m={m}: measured {before} -> {after}"
        );
        // And the analytic predicate agrees with the paper's condition.
        let params = MachineParams::new(p, ts, tw);
        assert_eq!(
            rule.estimate().improves(&params, m as f64),
            expected,
            "{rule} predicate"
        );
    }
}

#[test]
fn always_rules_improve_for_every_sampled_machine() {
    let p = 16usize;
    for rule in [
        Rule::Sr2Reduction,
        Rule::BsComcast,
        Rule::BrLocal,
        Rule::Bsr2Local,
    ] {
        for (ts, tw, m) in [
            (1.0, 0.1, 64usize),
            (500.0, 8.0, 1),
            (10.0, 10.0, 10),
            (0.5, 0.0, 128),
        ] {
            let clock = ClockParams::new(ts, tw);
            let input = block_input(p, m);
            let before = execute(&lhs(rule), &input, clock).makespan;
            let after = execute(&rhs(rule), &input, clock).makespan;
            assert!(
                after < before,
                "{rule} must always improve: {before} -> {after} at ts={ts} tw={tw} m={m}"
            );
        }
    }
}

#[test]
fn crossover_block_size_is_observable_on_the_machine() {
    // §4.2's worked example: SS2-Scan stops paying at m* = ts/2.
    let p = 8usize;
    let (ts, tw) = (128.0, 2.0);
    let m_star = Rule::Ss2Scan.estimate().crossover_m(ts, tw).unwrap();
    assert_eq!(m_star, 64.0);
    let clock = ClockParams::new(ts, tw);

    let below = block_input(p, 32);
    let above = block_input(p, 128);
    let lb = execute(&lhs(Rule::Ss2Scan), &below, clock).makespan;
    let rb = execute(&rhs(Rule::Ss2Scan), &below, clock).makespan;
    assert!(rb < lb, "below m*: rule helps ({lb} -> {rb})");
    let la = execute(&lhs(Rule::Ss2Scan), &above, clock).makespan;
    let ra = execute(&rhs(Rule::Ss2Scan), &above, clock).makespan;
    assert!(ra > la, "above m*: rule hurts ({la} -> {ra})");
}
