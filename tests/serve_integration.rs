//! End-to-end tests of `collopt serve` over loopback TCP: concurrent
//! clients, cold-vs-hot byte identity, malformed-request error codes,
//! and graceful shutdown that drains in-flight requests.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use collopt::machine::Json;
use collopt::serve::{submit, Server, ServerConfig, Service};

/// Spawn a server on an ephemeral port; returns its address and the
/// run-thread handle (joined after a shutdown op).
fn spawn_server() -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let service = Arc::new(Service::new(64));
    let server = Server::bind("127.0.0.1:0", service, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    (addr, thread::spawn(move || server.run()))
}

/// A line-oriented client with a read timeout so a server bug fails the
/// test instead of hanging it.
struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        Client {
            writer: BufWriter::new(stream.try_clone().expect("clone")),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        assert!(!line.is_empty(), "server closed the connection early");
        line.trim_end().to_string()
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>) {
    let bye = submit(addr, r#"{"op":"shutdown"}"#).expect("shutdown");
    assert!(bye.contains("\"bye\":true"), "unexpected: {bye}");
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn cold_and_hot_responses_are_byte_identical_over_tcp() {
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr);
    let line = r#"{"id":1,"pipeline":"map f ; scan(mul) ; reduce(add) ; map g ; bcast"}"#;
    let cold = client.round_trip(line);
    let hot = client.round_trip(line);
    let hot2 = client.round_trip(line);
    assert_eq!(cold, hot);
    assert_eq!(cold, hot2);
    assert!(cold.starts_with("{\"id\":1,\"ok\":true,"));
    // A second connection sees the same bytes for the same request.
    let other = submit(addr, line).expect("second connection");
    assert_eq!(cold, other);
    shutdown(addr, handle);
}

#[test]
fn concurrent_clients_each_get_ordered_correct_responses() {
    let (addr, handle) = spawn_server();
    let mut workers = Vec::new();
    for c in 0..8u64 {
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(addr);
            for i in 0..12u64 {
                let id = c * 100 + i;
                let pipeline = if i % 2 == 0 {
                    "scan(add) ; reduce(add)"
                } else {
                    "scan(mul) ; reduce(add)"
                };
                let line = format!("{{\"id\":{id},\"pipeline\":\"{pipeline}\"}}");
                let response = client.round_trip(&line);
                // Responses come back in request order: the id matches.
                assert!(
                    response.starts_with(&format!("{{\"id\":{id},\"ok\":true,")),
                    "bad response for id {id}: {response}"
                );
            }
        }));
    }
    for w in workers {
        w.join().expect("client");
    }
    shutdown(addr, handle);
}

#[test]
fn malformed_requests_get_typed_error_codes() {
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr);

    let cases = [
        ("this is not json", "bad_json"),
        ("[1,2,3]", "bad_json"),
        (r#"{"id":1,"op":"dance"}"#, "bad_request"),
        (r#"{"id":2,"op":"optimize"}"#, "bad_request"),
        (r#"{"id":3,"pipeline":"scan(add)","p":0}"#, "bad_request"),
        (
            r#"{"id":4,"pipeline":"scan(add)","options":{"lint":"yes"}}"#,
            "bad_request",
        ),
        (
            r#"{"id":5,"pipeline":"scan(wat) ; reduce(add)"}"#,
            "parse_error",
        ),
        (
            r#"{"id":6,"pipeline":"scan(add) ;; reduce(add)"}"#,
            "parse_error",
        ),
    ];
    for (line, want_code) in cases {
        let response = client.round_trip(line);
        let doc = Json::parse(&response).expect("error responses are valid JSON");
        assert_eq!(
            doc.get("ok"),
            Some(&Json::Bool(false)),
            "expected failure for {line}: {response}"
        );
        let code = doc
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(|c| c.as_str());
        assert_eq!(code, Some(want_code), "wrong code for {line}: {response}");
    }
    // The connection survives every error and still serves good requests.
    let response = client.round_trip(r#"{"id":7,"pipeline":"scan(add) ; reduce(add)"}"#);
    assert!(response.starts_with("{\"id\":7,\"ok\":true,"));
    shutdown(addr, handle);
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (addr, handle) = spawn_server();
    let mut client = Client::connect(addr);
    // Queue a burst of work and the shutdown behind it on one
    // connection: FIFO enqueue order guarantees every request is
    // in flight when the shutdown is processed.
    let n = 20;
    for id in 0..n {
        client.send(&format!(
            "{{\"id\":{id},\"pipeline\":\"bcast ; scan(add) ; scan(add) ; reduce(max)\",\"p\":{}}}",
            8 << (id % 5) // vary the machine so several are cache-cold
        ));
    }
    client.send(r#"{"id":99,"op":"shutdown"}"#);
    for id in 0..n {
        let response = client.recv();
        assert!(
            response.starts_with(&format!("{{\"id\":{id},\"ok\":true,")),
            "in-flight request {id} was dropped or reordered: {response}"
        );
    }
    let bye = client.recv();
    assert!(bye.contains("\"bye\":true"), "unexpected: {bye}");
    handle.join().expect("server thread").expect("server run");
    // The listener is gone: a fresh request cannot be served.
    assert!(submit(addr, r#"{"op":"ping"}"#).is_err());
}

#[test]
fn control_ops_report_cache_and_liveness() {
    let (addr, handle) = spawn_server();
    let pong = submit(addr, r#"{"id":1,"op":"ping"}"#).expect("ping");
    assert_eq!(pong, r#"{"id":1,"ok":true,"result":{"pong":true}}"#);

    let line = r#"{"pipeline":"scan(add) ; reduce(add)"}"#;
    submit(addr, line).expect("cold");
    submit(addr, line).expect("hot");
    let stats = submit(addr, r#"{"op":"stats"}"#).expect("stats");
    let doc = Json::parse(&stats).expect("stats JSON");
    let cache = doc
        .get("result")
        .and_then(|r| r.get("cache"))
        .expect("cache");
    assert_eq!(cache.get("hits").and_then(|x| x.as_f64()), Some(1.0));
    assert_eq!(cache.get("misses").and_then(|x| x.as_f64()), Some(1.0));
    shutdown(addr, handle);
}
