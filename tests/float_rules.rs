//! Floating-point instantiations of the rules.
//!
//! Float `+`/`×` are only associative up to rounding, so tree-shaped
//! combining may differ from the sequential fold in the last few ulps.
//! These tests check the rules on float operators with the same tolerance
//! the operator library's property checkers use
//! ([`collopt::core::op::value_close`]): the fused versions must agree
//! with the originals to relative 1e-9 — plenty for the reorderings the
//! rules introduce on well-conditioned data.

use collopt::core::op::value_close;
use collopt::core::rules::{try_match, window_len, Rule};
use collopt::core::semantics::eval_program;
use collopt::prelude::*;

fn floats(p: usize, salt: u64) -> Vec<Value> {
    (0..p as u64)
        .map(|i| {
            let h = i.wrapping_mul(6364136223846793005).wrapping_add(salt);
            // Magnitudes near 1 keep products over many ranks conditioned.
            Value::Float(0.75 + ((h >> 33) % 1000) as f64 / 2000.0)
        })
        .collect()
}

fn check_close(rule: Rule, prog: &Program, inputs: &[Value]) {
    let rw = try_match(rule, prog.stages()).expect("rule must match");
    let rank0 = rw.rank0_only;
    let opt = prog.splice(0, window_len(rule), rw.stages);
    let a = eval_program(prog, inputs);
    let b = eval_program(&opt, inputs);
    let ea = execute(prog, inputs, ClockParams::free()).outputs;
    let eb = execute(&opt, inputs, ClockParams::free()).outputs;
    let positions = if rank0 { 0..1 } else { 0..inputs.len() };
    for i in positions {
        assert!(
            value_close(&a[i], &b[i]),
            "{rule} evaluator at {i}: {} vs {}",
            a[i],
            b[i]
        );
        assert!(
            value_close(&ea[i], &eb[i]),
            "{rule} executor at {i}: {} vs {}",
            ea[i],
            eb[i]
        );
    }
}

#[test]
fn float_distributive_rules_agree_within_tolerance() {
    for p in [1usize, 4, 7, 16, 33] {
        for salt in 0..3 {
            let inputs = floats(p, salt);
            check_close(
                Rule::Sr2Reduction,
                &Program::new().scan(ops::fmul()).allreduce(ops::fadd()),
                &inputs,
            );
            check_close(
                Rule::Ss2Scan,
                &Program::new().scan(ops::fmul()).scan(ops::fadd()),
                &inputs,
            );
        }
    }
}

#[test]
fn float_commutative_rules_agree_within_tolerance() {
    for p in [1usize, 5, 8, 21] {
        for salt in 0..3 {
            let inputs = floats(p, salt);
            check_close(
                Rule::SrReduction,
                &Program::new().scan(ops::fadd()).allreduce(ops::fadd()),
                &inputs,
            );
            check_close(
                Rule::SsScan,
                &Program::new().scan(ops::fadd()).scan(ops::fadd()),
                &inputs,
            );
        }
    }
}

#[test]
fn float_comcast_rules_agree_within_tolerance() {
    for p in [1usize, 6, 16] {
        let mut inputs = floats(p, 9);
        inputs[0] = Value::Float(1.25);
        check_close(
            Rule::BsComcast,
            &Program::new().bcast().scan(ops::fadd()),
            &inputs,
        );
        check_close(
            Rule::Bss2Comcast,
            &Program::new().bcast().scan(ops::fmul()).scan(ops::fadd()),
            &inputs,
        );
        check_close(
            Rule::BssComcast,
            &Program::new().bcast().scan(ops::fadd()).scan(ops::fadd()),
            &inputs,
        );
    }
}
