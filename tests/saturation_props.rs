//! Property tests for the equality-saturation search (`core::egraph`).
//!
//! The contracts pinned here are the ones the rest of the stack leans
//! on: extraction never worsens the program under the cost model, is
//! deterministic across runs and worker counts, always hands back a
//! certificate-carrying plan that revalidates, beats greedy on the
//! paper's `scan;scan;reduce` family, and terminates under an explicit
//! node budget on chains too deep for the brute-force oracle.

use collopt::analysis::audit::AuditConfig;
use collopt::analysis::certify::validate_result;
use collopt::core::egraph::{saturate_program, SaturateConfig};
use collopt::core::op::lib;
use collopt::core::rewrite::{program_cost, Rewriter};
use collopt::core::rules::Rule;
use collopt::core::term::Program;
use collopt::core::value::Value;
use collopt::cost::MachineParams;
use collopt::fuzz::{generate_case, GenConfig};
use collopt_bench::sweep_driver::par_map_with;

fn oracle_params(p: usize) -> MachineParams {
    MachineParams::new(p, 100.0, 2.0)
}

/// Extraction minimizes over a set containing the (normalized) input, so
/// the extracted cost can never exceed the input's.
#[test]
fn extracted_cost_is_monotone_non_increasing() {
    let gen = GenConfig::default();
    let mut optimized_some = false;
    for seed in 0..120u64 {
        let case = generate_case(seed, &gen);
        let prog = case.base_program();
        let params = oracle_params(case.p);
        let m = case.m as f64;
        let result = Rewriter::exhaustive().optimize_optimal(&prog, &params, m);
        let before = program_cost(&prog, &params, m);
        let after = program_cost(&result.program, &params, m);
        assert!(
            after <= before + 1e-9,
            "seed {seed}: extraction worsened `{prog}` ({before}) into `{}` ({after})",
            result.program
        );
        optimized_some |= after < before;
    }
    assert!(optimized_some, "no generated case ever improved");
}

/// Same program, same machine → bit-identical extraction, whether the
/// cases run serially or fan out over any `SWEEP_WORKERS`-style pool
/// (results fold in seed order, so the worker count must not matter).
#[test]
fn extraction_is_deterministic_across_runs_and_workers() {
    let gen = GenConfig::default();
    let seeds: Vec<u64> = (0..32).collect();
    let one = |seed: u64| -> (String, u64, usize) {
        let case = generate_case(seed, &gen);
        let prog = case.base_program();
        let params = oracle_params(case.p);
        let m = case.m as f64;
        let result = Rewriter::exhaustive().optimize_optimal(&prog, &params, m);
        let cost = program_cost(&result.program, &params, m);
        (
            result.program.to_string(),
            cost.to_bits(),
            result.steps.len(),
        )
    };
    let serial: Vec<_> = seeds.iter().map(|&s| one(s)).collect();
    let one_worker = par_map_with(seeds.clone(), 1, one);
    let four_workers = par_map_with(seeds.clone(), 4, one);
    assert_eq!(serial, one_worker, "1 worker diverged from serial");
    assert_eq!(serial, four_workers, "4 workers diverged from serial");
    // And a literal re-run is bit-identical too.
    let again: Vec<_> = seeds.iter().map(|&s| one(s)).collect();
    assert_eq!(serial, again, "extraction is not reproducible");
}

/// Every step of an extracted plan carries a certificate, and on honest
/// operators each one revalidates against the full audit machinery.
#[test]
fn extracted_steps_certificates_revalidate() {
    let params = oracle_params(64);
    let samples: Vec<Value> = (-3..=4).map(Value::Int).collect();
    let programs = [
        Program::new().scan(lib::mul()).reduce(lib::add()),
        Program::new()
            .scan(lib::add())
            .scan(lib::add())
            .reduce(lib::add()),
        Program::new()
            .bcast()
            .map("f", 1.0, |v| Value::Int(v.as_int() + 1))
            .scan(lib::add()),
        Program::new().bcast().reduce(lib::add()),
    ];
    let mut steps_seen = 0;
    for prog in &programs {
        for m in [1.0, 8.0, 64.0] {
            let result = Rewriter::exhaustive().optimize_optimal(prog, &params, m);
            let issues = validate_result(&result, &samples, &AuditConfig::default());
            assert!(
                issues.is_empty(),
                "`{prog}` (m={m}): certificate issues {issues:?}"
            );
            steps_seen += result.steps.len();
        }
    }
    assert!(steps_seen > 0, "no plan ever applied a rule");
}

/// The paper's pinned family: greedy fuses `scan;scan` first and gets
/// stuck; the optimal plan keeps the first scan and fuses `scan;reduce`.
#[test]
fn scan_scan_reduce_family_beats_greedy() {
    let params = oracle_params(64);
    let prog = Program::new()
        .scan(lib::add())
        .scan(lib::add())
        .reduce(lib::add());
    for m in [1.0, 4.0, 8.0, 32.0] {
        let greedy = Rewriter::cost_guided(params, m).optimize(&prog);
        let optimal = Rewriter::exhaustive().optimize_optimal(&prog, &params, m);
        let g = program_cost(&greedy.program, &params, m);
        let o = program_cost(&optimal.program, &params, m);
        assert!(o <= g + 1e-9, "m={m}: optimal {o} exceeds greedy {g}");
    }
    // At m=8 the gap is strict and the plan is exactly one SR-Reduction.
    let optimal = Rewriter::exhaustive().optimize_optimal(&prog, &params, 8.0);
    let greedy = Rewriter::cost_guided(params, 8.0).optimize(&prog);
    assert!(
        program_cost(&optimal.program, &params, 8.0) < program_cost(&greedy.program, &params, 8.0)
    );
    assert_eq!(
        optimal.steps.iter().map(|s| s.rule).collect::<Vec<_>>(),
        vec![Rule::SrReduction]
    );
}

/// Chains of 8–12 stages are far beyond the brute-force oracle, but the
/// e-graph saturates (or hits its explicit node budget) and still
/// extracts a sound, never-worse program — deterministically.
#[test]
fn deep_chains_terminate_under_node_budget() {
    let params = oracle_params(64);
    let m = 8.0;
    for depth in 8..=12usize {
        let mut prog = Program::new();
        for i in 0..depth - 1 {
            prog = match i % 3 {
                0 => prog.scan(lib::add()),
                1 => prog.map(format!("f{i}"), 1.0, |v| Value::Int(v.as_int() + 1)),
                _ => prog.bcast(),
            };
        }
        let prog = prog.reduce(lib::add());
        let budget = 4000;
        let cfg = SaturateConfig::new(params, m).node_budget(budget);
        let outcome = saturate_program(&prog, &cfg);
        assert!(
            outcome.stats.nodes <= budget,
            "depth {depth}: {} nodes exceeds the {budget} budget",
            outcome.stats.nodes
        );
        let before = program_cost(&prog, &params, m);
        let after = program_cost(&outcome.result.program, &params, m);
        assert!(
            after <= before + 1e-9,
            "depth {depth}: budgeted extraction worsened the program"
        );
        let again = saturate_program(&prog, &cfg);
        assert_eq!(
            outcome.result.program.to_string(),
            again.result.program.to_string(),
            "depth {depth}: budgeted extraction is nondeterministic"
        );
    }
}
