//! Golden-file tests for `collopt lint` output.
//!
//! The human renderer and the JSON renderer are public interfaces: CI
//! gates parse the exit codes, editors and scripts parse the JSON. These
//! tests pin both renderings byte-for-byte over the corpus in
//! `examples/pipelines/`, at the default machine model (p=64, ts=200,
//! tw=2, m=32) unless noted. Regenerate a golden with e.g.
//! `collopt lint --file examples/pipelines/lints/missed_fusion.pipeline
//! --json > tests/golden/missed_fusion.json` after verifying the new
//! output by eye.

use collopt::analysis::{lint_source, LintConfig};
use collopt::cost::MachineParams;

fn corpus(name: &str) -> String {
    let path = format!("{}/examples/pipelines/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing corpus file {path}: {e}"))
        .trim()
        .to_string()
}

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden file {path}: {e}"))
}

#[test]
fn missed_fusion_human_output_is_pinned() {
    let src = corpus("lints/missed_fusion.pipeline");
    let out = lint_source(&src, &LintConfig::default())
        .unwrap()
        .render_human(Some(&src));
    assert_eq!(out, golden("missed_fusion.human.txt"));
}

#[test]
fn missed_fusion_json_output_is_pinned() {
    let src = corpus("lints/missed_fusion.pipeline");
    let out = lint_source(&src, &LintConfig::default())
        .unwrap()
        .render_json();
    assert_eq!(format!("{out}\n"), golden("missed_fusion.json"));
}

#[test]
fn float_fusion_human_output_is_pinned() {
    let src = corpus("lints/float_fusion.pipeline");
    let out = lint_source(&src, &LintConfig::default())
        .unwrap()
        .render_human(Some(&src));
    assert_eq!(out, golden("float_fusion.human.txt"));
}

#[test]
fn float_fusion_json_output_is_pinned() {
    let src = corpus("lints/float_fusion.pipeline");
    let out = lint_source(&src, &LintConfig::default())
        .unwrap()
        .render_json();
    assert_eq!(format!("{out}\n"), golden("float_fusion.json"));
}

#[test]
fn distribution_mismatch_human_output_is_pinned() {
    let src = corpus("lints/distribution_mismatch.pipeline");
    let out = lint_source(&src, &LintConfig::default())
        .unwrap()
        .render_human(Some(&src));
    assert_eq!(out, golden("distribution_mismatch.human.txt"));
}

#[test]
fn distribution_mismatch_json_output_is_pinned() {
    let src = corpus("lints/distribution_mismatch.pipeline");
    let out = lint_source(&src, &LintConfig::default())
        .unwrap()
        .render_json();
    assert_eq!(format!("{out}\n"), golden("distribution_mismatch.json"));
}

#[test]
fn cost_regression_json_output_is_pinned() {
    // SS-Scan regresses when ts < m(tw+4): m=200 on the default machine.
    let cfg = LintConfig {
        block: 200.0,
        ..LintConfig::default()
    };
    let out = lint_source("scan(add) ; scan(add)", &cfg)
        .unwrap()
        .render_json();
    assert_eq!(format!("{out}\n"), golden("cost_regression.json"));
}

#[test]
fn clean_corpus_has_no_errors_or_warnings() {
    for name in [
        "clean/local_pipeline.pipeline",
        "clean/scatter_work_gather.pipeline",
        "clean/scan_hint.pipeline",
    ] {
        let src = corpus(name);
        let report = lint_source(&src, &LintConfig::default()).unwrap();
        assert_eq!(
            report.errors() + report.warnings(),
            0,
            "{name}: {:#?}",
            report.diagnostics
        );
    }
}

#[test]
fn lint_corpus_each_triggers_a_warning_or_error() {
    // `ragged_segments` only lowers to a segmenting collective at its
    // sidecar machine point (see its `.flags` file) — everything else
    // lints dirty at the defaults.
    let ragged = LintConfig {
        params: MachineParams::new(16, 200.0, 2.0),
        block: 4097.0,
        ..LintConfig::default()
    };
    for (name, cfg) in [
        ("lints/missed_fusion.pipeline", LintConfig::default()),
        ("lints/redundant_bcast.pipeline", LintConfig::default()),
        (
            "lints/gather_scatter_roundtrip.pipeline",
            LintConfig::default(),
        ),
        ("lints/float_fusion.pipeline", LintConfig::default()),
        ("lints/lattice_fusion.pipeline", LintConfig::default()),
        (
            "lints/distribution_mismatch.pipeline",
            LintConfig::default(),
        ),
        ("lints/rank0_narrowing.pipeline", LintConfig::default()),
        ("lints/ragged_segments.pipeline", ragged),
    ] {
        let src = corpus(name);
        let report = lint_source(&src, &cfg).unwrap();
        assert!(
            report.errors() + report.warnings() > 0,
            "{name} should lint dirty"
        );
    }
}

#[test]
fn json_is_byte_stable_across_runs_and_machines_param_changes_matter() {
    let src = corpus("lints/missed_fusion.pipeline");
    let a = lint_source(&src, &LintConfig::default())
        .unwrap()
        .render_json();
    let b = lint_source(&src, &LintConfig::default())
        .unwrap()
        .render_json();
    assert_eq!(a, b);
    let other = LintConfig {
        params: MachineParams::new(16, 10.0, 1.0),
        ..LintConfig::default()
    };
    let c = lint_source(&src, &other).unwrap().render_json();
    assert_ne!(a, c, "machine model must be reflected in the output");
}
