//! End-to-end verification of the Section 5 case study: polynomial
//! evaluation designed by rewriting (`PolyEval_1 → PolyEval_3`).

use std::sync::Arc;

use collopt::core::semantics::eval_program;
use collopt::prelude::*;

fn poly_eval_1(coeffs: Arc<Vec<f64>>) -> Program {
    Program::new()
        .bcast()
        .scan(ops::fmul())
        .map_indexed("mul_coeff", 1.0, move |rank, v| {
            let a = coeffs[rank];
            v.map_block(&|x| Value::Float(a * x.as_float()))
        })
        .reduce(ops::fadd())
}

fn reference(coeffs: &[f64], ys: &[f64]) -> Vec<f64> {
    ys.iter()
        .map(|&y| {
            let mut power = 1.0;
            let mut acc = 0.0;
            for &a in coeffs {
                power *= y;
                acc += a * power;
            }
            acc
        })
        .collect()
}

fn points_input(n: usize, ys: &[f64]) -> Vec<Value> {
    let mut input = vec![Value::list(vec![Value::Float(0.0); ys.len()]); n];
    input[0] = Value::list(ys.iter().map(|&y| Value::Float(y)).collect());
    input
}

#[test]
fn polyeval_1_is_correct() {
    for (n, m) in [(4usize, 8usize), (6, 16), (16, 3), (9, 1)] {
        let coeffs: Vec<f64> = (1..=n).map(|i| (i as f64) * 0.25 - 1.0).collect();
        let ys: Vec<f64> = (0..m)
            .map(|j| -0.8 + 1.6 * j as f64 / m.max(2) as f64)
            .collect();
        let prog = poly_eval_1(Arc::new(coeffs.clone()));
        let out = eval_program(&prog, &points_input(n, &ys));
        let got: Vec<f64> = out[0].as_list().iter().map(Value::as_float).collect();
        let want = reference(&coeffs, &ys);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "n={n} m={m}: {g} vs {w}");
        }
    }
}

#[test]
fn bs_comcast_is_the_rule_the_paper_derives() {
    let coeffs = Arc::new(vec![1.0; 8]);
    let prog = poly_eval_1(coeffs);
    // Exhaustive rewriting finds exactly the derivation of eq. (19):
    // the bcast;scan prefix becomes a comcast; the map2 and reduce stay.
    let res = Rewriter::exhaustive().optimize(&prog);
    assert_eq!(res.steps.len(), 1);
    assert_eq!(res.steps[0].rule.to_string(), "BS-Comcast");
    assert_eq!(res.program.collective_count(), 2); // comcast + reduce
}

#[test]
fn polyeval_3_matches_polyeval_1_on_the_machine() {
    for (n, m) in [(4usize, 16usize), (8, 64), (13, 5)] {
        let coeffs: Vec<f64> = (1..=n).map(|i| 1.0 / i as f64).collect();
        let ys: Vec<f64> = (0..m).map(|j| 0.1 + 0.9 * j as f64 / m as f64).collect();
        let prog = poly_eval_1(Arc::new(coeffs.clone()));
        let opt = Rewriter::exhaustive().optimize(&prog).program;
        let input = points_input(n, &ys);
        let a = execute(&prog, &input, ClockParams::parsytec_like());
        let b = execute(&opt, &input, ClockParams::parsytec_like());
        let ga: Vec<f64> = a.outputs[0].as_list().iter().map(Value::as_float).collect();
        let gb: Vec<f64> = b.outputs[0].as_list().iter().map(Value::as_float).collect();
        for ((x, y), w) in ga.iter().zip(&gb).zip(&reference(&coeffs, &ys)) {
            assert!((x - y).abs() < 1e-12, "versions disagree: {x} vs {y}");
            assert!((x - w).abs() < 1e-9, "wrong value: {x} vs {w}");
        }
        assert!(
            b.makespan < a.makespan,
            "n={n} m={m}: BS-Comcast always helps"
        );
    }
}

#[test]
fn speedup_grows_with_processor_count() {
    // Figure 7's qualitative shape: the gap between bcast;scan and
    // bcast;repeat widens as p grows (fixed block size).
    let m = 64usize;
    let mut last_saving = 0.0;
    for n in [4usize, 16, 64] {
        let coeffs: Vec<f64> = vec![0.5; n];
        let ys: Vec<f64> = (0..m).map(|j| 0.99 - 0.5 * j as f64 / m as f64).collect();
        let prog = poly_eval_1(Arc::new(coeffs));
        let opt = Rewriter::exhaustive().optimize(&prog).program;
        let input = points_input(n, &ys);
        let a = execute(&prog, &input, ClockParams::parsytec_like());
        let b = execute(&opt, &input, ClockParams::parsytec_like());
        let saving = a.makespan - b.makespan;
        assert!(
            saving > last_saving,
            "saving must grow with p: {saving} vs {last_saving}"
        );
        last_saving = saving;
    }
}
