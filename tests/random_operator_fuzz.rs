//! Operator-table fuzzing: the rules' side conditions are *sufficient*
//! for **every** operator, not just the friendly ones in the library.
//!
//! Built on the [`collopt::fuzz`] generator: random binary operations on
//! the 4-element domain `{0,1,2,3}` come from [`TableSpec`] /
//! [`gen::random_table`] (seeded, reproducible), their algebraic
//! properties are brute-forced exhaustively, and then:
//!
//! * if a random table is associative + commutative, the commutative
//!   rules (SR, SS) must preserve semantics for it;
//! * if a random pair `(⊗, ⊕)` is associative and `⊗` exhaustively
//!   distributes over `⊕`, the distributivity rules (SR2, SS2) must
//!   preserve semantics;
//! * the library's randomized property checkers must agree with the
//!   brute-force ground truth on full-domain samples;
//! * whole *generated pipelines* — honest and lying — must satisfy all
//!   three differential oracles on a seed window disjoint from the fuzz
//!   crate's own tests.
//!
//! Any counterexample here would be a soundness bug in a fused-operator
//! construction — the strongest class of test in the suite.

use collopt::core::rules::{try_match, window_len, Rule};
use collopt::core::semantics::eval_program;
use collopt::fuzz::gen::{random_table, N};
use collopt::fuzz::{
    case_mode, generate_case, run_campaign, run_case, CampaignConfig, CaseMode, CoverageLedger,
    GenConfig,
};
use collopt::machine::Rng;
use collopt::prelude::*;

fn full_domain() -> Vec<Value> {
    (0..N).map(Value::Int).collect()
}

fn random_domain_vec(rng: &mut Rng, min_len: usize, max_len: usize) -> Vec<Value> {
    let len = rng.range_usize(min_len, max_len);
    (0..len).map(|_| Value::Int(rng.range_i64(0, N))).collect()
}

fn check_rule(rule: Rule, prog: &Program, inputs: &[Value]) {
    let Some(rw) = try_match(rule, prog.stages()) else {
        panic!("{rule} should match");
    };
    let rank0 = rw.rank0_only;
    let opt = prog.splice(0, window_len(rule), rw.stages);
    let a = eval_program(prog, inputs);
    let b = eval_program(&opt, inputs);
    let ea = execute(prog, inputs, ClockParams::free()).outputs;
    let eb = execute(&opt, inputs, ClockParams::free()).outputs;
    if rank0 {
        assert_eq!(&a[0], &b[0], "{} evaluator rank0", rule);
        assert_eq!(&ea[0], &eb[0], "{} executor rank0", rule);
    } else {
        assert_eq!(&a, &b, "{} evaluator", rule);
        assert_eq!(&ea, &eb, "{} executor", rule);
    }
}

#[test]
fn library_checkers_agree_with_brute_force() {
    let mut rng = Rng::new(0xF022);
    for _ in 0..96 {
        let t = random_table(&mut rng);
        let u = random_table(&mut rng);
        let samples = full_domain();
        let a = t.binop(0);
        let b = u.binop(1);
        // On the full domain the sampled checkers ARE exhaustive (the
        // table ops wrap via rem_euclid, so laws on ℤ ⟺ laws on {0..3}).
        assert_eq!(a.check_associative(&samples), t.is_associative());
        assert_eq!(a.check_commutative(&samples), t.is_commutative());
        assert_eq!(
            a.check_distributes_over(&b, &samples),
            t.distributes_over(&u)
        );
    }
}

#[test]
fn commutative_rules_sound_for_arbitrary_tables() {
    let mut rng = Rng::new(0xF023);
    let mut hits = 0;
    for _ in 0..96 {
        let mut t = random_table(&mut rng);
        let inputs = random_domain_vec(&mut rng, 1, 10);
        if !(t.is_associative() && t.is_commutative()) {
            continue;
        }
        hits += 1;
        t.declare_commutative = true;
        let op = t.binop(0);
        check_rule(
            Rule::SrReduction,
            &Program::new().scan(op.clone()).allreduce(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::SsScan,
            &Program::new().scan(op.clone()).scan(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::BssComcast,
            &Program::new().bcast().scan(op.clone()).scan(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::BsrLocal,
            &Program::new().bcast().scan(op.clone()).reduce(op.clone()),
            &inputs,
        );
    }
    assert!(
        hits >= 10,
        "too few associative+commutative samples: {hits}"
    );
}

#[test]
fn distributive_rules_sound_for_arbitrary_table_pairs() {
    let mut rng = Rng::new(0xF024);
    let mut hits = 0;
    for _ in 0..96 {
        let mut t = random_table(&mut rng);
        let u = random_table(&mut rng);
        let inputs = random_domain_vec(&mut rng, 1, 10);
        if !(t.is_associative() && u.is_associative() && t.distributes_over(&u)) {
            continue;
        }
        hits += 1;
        t.declare_distributes_over = Some(1);
        let ot = t.binop(0);
        let op = u.binop(1);
        check_rule(
            Rule::Sr2Reduction,
            &Program::new().scan(ot.clone()).allreduce(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::Ss2Scan,
            &Program::new().scan(ot.clone()).scan(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::Bss2Comcast,
            &Program::new().bcast().scan(ot.clone()).scan(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::Bsr2Local,
            &Program::new().bcast().scan(ot.clone()).reduce(op.clone()),
            &inputs,
        );
    }
    assert!(hits >= 10, "too few distributive samples: {hits}");
}

#[test]
fn associativity_only_rules_sound_for_arbitrary_tables() {
    let mut rng = Rng::new(0xF025);
    let mut hits = 0;
    for _ in 0..96 {
        let t = random_table(&mut rng);
        let b = rng.range_i64(0, N);
        let p = rng.range_usize(1, 10);
        if !t.is_associative() {
            continue;
        }
        hits += 1;
        let op = t.binop(0);
        let mut inputs = vec![Value::Int(0); p];
        inputs[0] = Value::Int(b);
        check_rule(
            Rule::BsComcast,
            &Program::new().bcast().scan(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::BrLocal,
            &Program::new().bcast().reduce(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::CrAlllocal,
            &Program::new().bcast().allreduce(op.clone()),
            &inputs,
        );
    }
    assert!(hits >= 10, "too few associative samples: {hits}");
}

#[test]
fn verified_rewriter_accepts_iff_brute_force_condition_holds() {
    let mut rng = Rng::new(0xF026);
    for _ in 0..96 {
        let mut t = random_table(&mut rng);
        // Declare commutativity unconditionally (possibly a lie) and let
        // the verifying rewriter decide on the full domain.
        t.declare_commutative = true;
        let op = t.binop(0);
        let prog = Program::new().scan(op.clone()).allreduce(op.clone());
        let res = Rewriter::exhaustive()
            .verify_properties(full_domain())
            .optimize(&prog);
        let truly_ok = t.is_associative() && t.is_commutative();
        assert_eq!(!res.steps.is_empty(), truly_ok);
    }
}

#[test]
fn generated_campaign_passes_on_a_fresh_seed_window() {
    // Whole-pipeline differential fuzzing on a seed window disjoint from
    // the fuzz crate's own tests: 220 consecutive seeds are guaranteed to
    // target every Table-1 rule at least ten times (see gen::case_mode).
    let cfg = CampaignConfig {
        seed: 0xF022_0000,
        iters: 220,
        gen: GenConfig::default(),
        workers: None,
    };
    let result = run_campaign(&cfg);
    assert!(
        result.failures.is_empty(),
        "oracle violations: {}",
        result.failures[0]
    );
    assert!(
        result.ledger.missing_rules().is_empty(),
        "rules never fired: {:?}",
        result.ledger.missing_rules()
    );
    for (rule, count) in &result.ledger.rules {
        assert!(*count >= 10, "{rule} fired only {count} times in 220 cases");
    }
}

#[test]
fn generated_lies_are_always_caught() {
    // Every over-claiming case in the window must be flagged by the full
    // defense stack (auditor + audited rewriter + certifier + linter).
    let mut lies = 0;
    for seed in 0xF023_0000u64..0xF023_0000 + 150 {
        let case = generate_case(seed, &GenConfig::default());
        if !matches!(case_mode(seed), CaseMode::OverClaim(_)) {
            continue;
        }
        lies += 1;
        let mut ledger = CoverageLedger::new();
        let failures = run_case(&case, &mut ledger);
        assert!(failures.is_empty(), "seed {seed}: {}", failures[0]);
        assert_eq!(ledger.lies_caught, 1, "seed {seed}: lie not caught");
    }
    assert!(lies >= 30, "too few lying cases in the window: {lies}");
}
