//! Operator-table fuzzing: the rules' side conditions are *sufficient*
//! for **every** operator, not just the friendly ones in the library.
//!
//! Strategy: draw random binary operations on the 4-element domain
//! `{0,1,2,3}` as raw 4×4 lookup tables (from a seeded [`Rng`], so runs
//! are reproducible), brute-force their algebraic properties
//! (associativity, commutativity, distributivity — domains this small
//! make the checks exhaustive, not sampled), and then:
//!
//! * if a random table is associative + commutative, the commutative
//!   rules (SR, SS) must preserve semantics for it;
//! * if a random pair `(⊗, ⊕)` is associative and `⊗` exhaustively
//!   distributes over `⊕`, the distributivity rules (SR2, SS2) must
//!   preserve semantics;
//! * the library's randomized property checkers must agree with the
//!   brute-force ground truth on full-domain samples.
//!
//! Any counterexample here would be a soundness bug in a fused-operator
//! construction — the strongest class of test in the suite.

use collopt::core::rules::{try_match, window_len, Rule};
use collopt::core::semantics::eval_program;
use collopt::machine::Rng;
use collopt::prelude::*;

const N: i64 = 4;

/// A binary operation on {0..3} as a 16-entry lookup table.
#[derive(Debug, Clone)]
struct Table([i64; 16]);

impl Table {
    fn apply(&self, a: i64, b: i64) -> i64 {
        self.0[(a * N + b) as usize]
    }

    fn is_associative(&self) -> bool {
        for a in 0..N {
            for b in 0..N {
                for c in 0..N {
                    if self.apply(self.apply(a, b), c) != self.apply(a, self.apply(b, c)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn is_commutative(&self) -> bool {
        for a in 0..N {
            for b in 0..N {
                if self.apply(a, b) != self.apply(b, a) {
                    return false;
                }
            }
        }
        true
    }

    fn distributes_over(&self, other: &Table) -> bool {
        for a in 0..N {
            for b in 0..N {
                for c in 0..N {
                    let l = self.apply(a, other.apply(b, c));
                    let r = other.apply(self.apply(a, b), self.apply(a, c));
                    let l2 = self.apply(other.apply(b, c), a);
                    let r2 = other.apply(self.apply(b, a), self.apply(c, a));
                    if l != r || l2 != r2 {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn binop(&self, name: &str) -> BinOp {
        let t = self.0;
        BinOp::new(name, move |a, b| {
            Value::Int(t[(a.as_int() * N + b.as_int()) as usize])
        })
    }
}

fn full_domain() -> Vec<Value> {
    (0..N).map(Value::Int).collect()
}

/// Tables biased toward structure: random mixes of known associative
/// operations and random perturbations, so the interesting (associative)
/// cases actually occur.
fn random_table(rng: &mut Rng) -> Table {
    if rng.chance(0.5) {
        // Pure random tables (mostly non-associative — exercise rejection).
        let mut t = [0i64; 16];
        for cell in t.iter_mut() {
            *cell = rng.range_i64(0, N);
        }
        Table(t)
    } else {
        // Structured seeds: min, max, modular add, projections, constants.
        let k = rng.range_usize(0, 6);
        let mut t = [0i64; 16];
        for a in 0..N {
            for b in 0..N {
                t[(a * N + b) as usize] = match k {
                    0 => a.min(b),
                    1 => a.max(b),
                    2 => (a + b) % N,
                    3 => (a * b) % N,
                    4 => a, // left projection (associative, non-comm.)
                    _ => 1, // constant (associative)
                };
            }
        }
        Table(t)
    }
}

fn random_domain_vec(rng: &mut Rng, min_len: usize, max_len: usize) -> Vec<Value> {
    let len = rng.range_usize(min_len, max_len);
    (0..len).map(|_| Value::Int(rng.range_i64(0, N))).collect()
}

fn check_rule(rule: Rule, prog: &Program, inputs: &[Value]) {
    let Some(rw) = try_match(rule, prog.stages()) else {
        panic!("{rule} should match");
    };
    let rank0 = rw.rank0_only;
    let opt = prog.splice(0, window_len(rule), rw.stages);
    let a = eval_program(prog, inputs);
    let b = eval_program(&opt, inputs);
    let ea = execute(prog, inputs, ClockParams::free()).outputs;
    let eb = execute(&opt, inputs, ClockParams::free()).outputs;
    if rank0 {
        assert_eq!(&a[0], &b[0], "{} evaluator rank0", rule);
        assert_eq!(&ea[0], &eb[0], "{} executor rank0", rule);
    } else {
        assert_eq!(&a, &b, "{} evaluator", rule);
        assert_eq!(&ea, &eb, "{} executor", rule);
    }
}

#[test]
fn library_checkers_agree_with_brute_force() {
    let mut rng = Rng::new(0xF022);
    for _ in 0..96 {
        let t = random_table(&mut rng);
        let u = random_table(&mut rng);
        let samples = full_domain();
        let a = t.binop("t");
        let b = u.binop("u");
        // On the full domain the sampled checkers ARE exhaustive.
        assert_eq!(a.check_associative(&samples), t.is_associative());
        assert_eq!(a.check_commutative(&samples), t.is_commutative());
        assert_eq!(
            a.check_distributes_over(&b, &samples),
            t.distributes_over(&u)
        );
    }
}

#[test]
fn commutative_rules_sound_for_arbitrary_tables() {
    let mut rng = Rng::new(0xF023);
    let mut hits = 0;
    for _ in 0..96 {
        let t = random_table(&mut rng);
        let inputs = random_domain_vec(&mut rng, 1, 10);
        if !(t.is_associative() && t.is_commutative()) {
            continue;
        }
        hits += 1;
        let op = t.binop("fuzz").commutative();
        check_rule(
            Rule::SrReduction,
            &Program::new().scan(op.clone()).allreduce(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::SsScan,
            &Program::new().scan(op.clone()).scan(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::BssComcast,
            &Program::new().bcast().scan(op.clone()).scan(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::BsrLocal,
            &Program::new().bcast().scan(op.clone()).reduce(op.clone()),
            &inputs,
        );
    }
    assert!(
        hits >= 10,
        "too few associative+commutative samples: {hits}"
    );
}

#[test]
fn distributive_rules_sound_for_arbitrary_table_pairs() {
    let mut rng = Rng::new(0xF024);
    let mut hits = 0;
    for _ in 0..96 {
        let t = random_table(&mut rng);
        let u = random_table(&mut rng);
        let inputs = random_domain_vec(&mut rng, 1, 10);
        if !(t.is_associative() && u.is_associative() && t.distributes_over(&u)) {
            continue;
        }
        hits += 1;
        let ot = t.binop("fuzz_t").distributes_over_op("fuzz_u");
        let op = u.binop("fuzz_u");
        check_rule(
            Rule::Sr2Reduction,
            &Program::new().scan(ot.clone()).allreduce(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::Ss2Scan,
            &Program::new().scan(ot.clone()).scan(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::Bss2Comcast,
            &Program::new().bcast().scan(ot.clone()).scan(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::Bsr2Local,
            &Program::new().bcast().scan(ot.clone()).reduce(op.clone()),
            &inputs,
        );
    }
    assert!(hits >= 10, "too few distributive samples: {hits}");
}

#[test]
fn associativity_only_rules_sound_for_arbitrary_tables() {
    let mut rng = Rng::new(0xF025);
    let mut hits = 0;
    for _ in 0..96 {
        let t = random_table(&mut rng);
        let b = rng.range_i64(0, N);
        let p = rng.range_usize(1, 10);
        if !t.is_associative() {
            continue;
        }
        hits += 1;
        let op = t.binop("fuzz");
        let mut inputs = vec![Value::Int(0); p];
        inputs[0] = Value::Int(b);
        check_rule(
            Rule::BsComcast,
            &Program::new().bcast().scan(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::BrLocal,
            &Program::new().bcast().reduce(op.clone()),
            &inputs,
        );
        check_rule(
            Rule::CrAlllocal,
            &Program::new().bcast().allreduce(op.clone()),
            &inputs,
        );
    }
    assert!(hits >= 10, "too few associative samples: {hits}");
}

#[test]
fn verified_rewriter_accepts_iff_brute_force_condition_holds() {
    let mut rng = Rng::new(0xF026);
    for _ in 0..96 {
        let t = random_table(&mut rng);
        // Declare commutativity unconditionally (possibly a lie) and let
        // the verifying rewriter decide on the full domain.
        let op = t.binop("maybe").commutative();
        let prog = Program::new().scan(op.clone()).allreduce(op.clone());
        let res = Rewriter::exhaustive()
            .verify_properties(full_domain())
            .optimize(&prog);
        let truly_ok = t.is_associative() && t.is_commutative();
        assert_eq!(!res.steps.is_empty(), truly_ok);
    }
}
