//! Operator-table fuzzing: the rules' side conditions are *sufficient*
//! for **every** operator, not just the friendly ones in the library.
//!
//! Strategy: draw random binary operations on the 4-element domain
//! `{0,1,2,3}` as raw 4×4 lookup tables, brute-force their algebraic
//! properties (associativity, commutativity, distributivity — domains
//! this small make the checks exhaustive, not sampled), and then:
//!
//! * if a random table is associative + commutative, the commutative
//!   rules (SR, SS) must preserve semantics for it;
//! * if a random pair `(⊗, ⊕)` is associative and `⊗` exhaustively
//!   distributes over `⊕`, the distributivity rules (SR2, SS2) must
//!   preserve semantics;
//! * the library's randomized property checkers must agree with the
//!   brute-force ground truth on full-domain samples.
//!
//! Any counterexample here would be a soundness bug in a fused-operator
//! construction — the strongest class of test in the suite.

use collopt::core::rules::{try_match, window_len, Rule};
use collopt::core::semantics::eval_program;
use collopt::prelude::*;
use proptest::prelude::*;

const N: i64 = 4;

/// A binary operation on {0..3} as a 16-entry lookup table.
#[derive(Debug, Clone)]
struct Table([i64; 16]);

impl Table {
    fn apply(&self, a: i64, b: i64) -> i64 {
        self.0[(a * N + b) as usize]
    }

    fn is_associative(&self) -> bool {
        for a in 0..N {
            for b in 0..N {
                for c in 0..N {
                    if self.apply(self.apply(a, b), c) != self.apply(a, self.apply(b, c)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn is_commutative(&self) -> bool {
        for a in 0..N {
            for b in 0..N {
                if self.apply(a, b) != self.apply(b, a) {
                    return false;
                }
            }
        }
        true
    }

    fn distributes_over(&self, other: &Table) -> bool {
        for a in 0..N {
            for b in 0..N {
                for c in 0..N {
                    let l = self.apply(a, other.apply(b, c));
                    let r = other.apply(self.apply(a, b), self.apply(a, c));
                    let l2 = self.apply(other.apply(b, c), a);
                    let r2 = other.apply(self.apply(b, a), self.apply(c, a));
                    if l != r || l2 != r2 {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn binop(&self, name: &str) -> BinOp {
        let t = self.0;
        BinOp::new(name, move |a, b| {
            Value::Int(t[(a.as_int() * N + b.as_int()) as usize])
        })
    }
}

fn full_domain() -> Vec<Value> {
    (0..N).map(Value::Int).collect()
}

/// Tables biased toward structure: random mixes of known associative
/// operations and random perturbations, so the interesting (associative)
/// cases actually occur.
fn table_strategy() -> impl Strategy<Value = Table> {
    prop_oneof![
        // Pure random tables (mostly non-associative — exercise rejection).
        prop::array::uniform16(0i64..N).prop_map(Table),
        // Structured seeds: min, max, modular add, projections, constants.
        (0usize..6).prop_map(|k| {
            let mut t = [0i64; 16];
            for a in 0..N {
                for b in 0..N {
                    t[(a * N + b) as usize] = match k {
                        0 => a.min(b),
                        1 => a.max(b),
                        2 => (a + b) % N,
                        3 => (a * b) % N,
                        4 => a, // left projection (associative, non-comm.)
                        _ => 1, // constant (associative)
                    };
                }
            }
            Table(t)
        }),
    ]
}

fn check_rule(rule: Rule, prog: &Program, inputs: &[Value]) -> Result<(), TestCaseError> {
    let Some(rw) = try_match(rule, prog.stages()) else {
        return Err(TestCaseError::fail(format!("{rule} should match")));
    };
    let rank0 = rw.rank0_only;
    let opt = prog.splice(0, window_len(rule), rw.stages);
    let a = eval_program(prog, inputs);
    let b = eval_program(&opt, inputs);
    let ea = execute(prog, inputs, ClockParams::free()).outputs;
    let eb = execute(&opt, inputs, ClockParams::free()).outputs;
    if rank0 {
        prop_assert_eq!(&a[0], &b[0], "{} evaluator rank0", rule);
        prop_assert_eq!(&ea[0], &eb[0], "{} executor rank0", rule);
    } else {
        prop_assert_eq!(&a, &b, "{} evaluator", rule);
        prop_assert_eq!(&ea, &eb, "{} executor", rule);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn library_checkers_agree_with_brute_force(t in table_strategy(), u in table_strategy()) {
        let samples = full_domain();
        let a = t.binop("t");
        let b = u.binop("u");
        // On the full domain the sampled checkers ARE exhaustive.
        prop_assert_eq!(a.check_associative(&samples), t.is_associative());
        prop_assert_eq!(a.check_commutative(&samples), t.is_commutative());
        prop_assert_eq!(a.check_distributes_over(&b, &samples), t.distributes_over(&u));
    }

    #[test]
    fn commutative_rules_sound_for_arbitrary_tables(
        t in table_strategy(),
        xs in prop::collection::vec(0i64..N, 1..10),
    ) {
        prop_assume!(t.is_associative() && t.is_commutative());
        let op = t.binop("fuzz").commutative();
        let inputs: Vec<Value> = xs.iter().map(|&v| Value::Int(v)).collect();
        check_rule(Rule::SrReduction, &Program::new().scan(op.clone()).allreduce(op.clone()), &inputs)?;
        check_rule(Rule::SsScan, &Program::new().scan(op.clone()).scan(op.clone()), &inputs)?;
        check_rule(
            Rule::BssComcast,
            &Program::new().bcast().scan(op.clone()).scan(op.clone()),
            &inputs,
        )?;
        check_rule(
            Rule::BsrLocal,
            &Program::new().bcast().scan(op.clone()).reduce(op.clone()),
            &inputs,
        )?;
    }

    #[test]
    fn distributive_rules_sound_for_arbitrary_table_pairs(
        t in table_strategy(),
        u in table_strategy(),
        xs in prop::collection::vec(0i64..N, 1..10),
    ) {
        prop_assume!(t.is_associative() && u.is_associative());
        prop_assume!(t.distributes_over(&u));
        let ot = t.binop("fuzz_t").distributes_over_op("fuzz_u");
        let op = u.binop("fuzz_u");
        let inputs: Vec<Value> = xs.iter().map(|&v| Value::Int(v)).collect();
        check_rule(
            Rule::Sr2Reduction,
            &Program::new().scan(ot.clone()).allreduce(op.clone()),
            &inputs,
        )?;
        check_rule(Rule::Ss2Scan, &Program::new().scan(ot.clone()).scan(op.clone()), &inputs)?;
        check_rule(
            Rule::Bss2Comcast,
            &Program::new().bcast().scan(ot.clone()).scan(op.clone()),
            &inputs,
        )?;
        check_rule(
            Rule::Bsr2Local,
            &Program::new().bcast().scan(ot.clone()).reduce(op.clone()),
            &inputs,
        )?;
    }

    #[test]
    fn associativity_only_rules_sound_for_arbitrary_tables(
        t in table_strategy(),
        b in 0i64..N,
        p in 1usize..10,
    ) {
        prop_assume!(t.is_associative());
        let op = t.binop("fuzz");
        let mut inputs = vec![Value::Int(0); p];
        inputs[0] = Value::Int(b);
        check_rule(Rule::BsComcast, &Program::new().bcast().scan(op.clone()), &inputs)?;
        check_rule(Rule::BrLocal, &Program::new().bcast().reduce(op.clone()), &inputs)?;
        check_rule(Rule::CrAlllocal, &Program::new().bcast().allreduce(op.clone()), &inputs)?;
    }

    #[test]
    fn verified_rewriter_accepts_iff_brute_force_condition_holds(
        t in table_strategy(),
    ) {
        // Declare commutativity unconditionally (possibly a lie) and let
        // the verifying rewriter decide on the full domain.
        let op = t.binop("maybe").commutative();
        let prog = Program::new().scan(op.clone()).allreduce(op.clone());
        let res = Rewriter::exhaustive().verify_properties(full_domain()).optimize(&prog);
        let truly_ok = t.is_associative() && t.is_commutative();
        prop_assert_eq!(!res.steps.is_empty(), truly_ok);
    }
}
