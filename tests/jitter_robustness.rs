//! Straggler-injection robustness: the optimization rules' improvements
//! must survive machine noise, and the noise itself must be reproducible.
//!
//! The clock's deterministic jitter stretches every message completion by
//! a pseudo-random factor keyed on `(seed, rank, message index)` —
//! "failure injection" for timing: links slow down unpredictably, but a
//! rerun with the same seed sees the same machine.
//!
//! The second half drops the uniform-noise assumption entirely: a
//! [`FaultPlan`] assigns every link its *own* latency (factor plus
//! additive delay — a full heterogeneous latency matrix), and the
//! Table-1 rules must still compute the same values on both sides of the
//! rewrite, with the trace-derived critical path matching the makespan
//! exactly.

use collopt::core::exec::{execute_faulted, execute_faulted_traced, ExecConfig};
use collopt::core::semantics::eval_program;
use collopt::machine::{FaultPlan, Rng};
use collopt::prelude::*;
use collopt_bench::sweep_driver::par_map;
use collopt_bench::{rule_lhs, rule_rhs, varied_input};

fn block_input(p: usize, m: usize) -> Vec<Value> {
    (0..p)
        .map(|_| Value::list(vec![Value::Int(1); m]))
        .collect()
}

#[test]
fn jitter_is_reproducible_and_bounded() {
    let p = 8usize;
    let m = 16usize;
    let prog = Program::new().scan(ops::add()).allreduce(ops::add());
    let input = block_input(p, m);
    let clean = execute(&prog, &input, ClockParams::new(100.0, 2.0));
    let noisy_clock = ClockParams::new(100.0, 2.0).with_jitter(42, 0.5);
    let a = execute(&prog, &input, noisy_clock);
    let b = execute(&prog, &input, noisy_clock);
    // Same seed → identical makespans; results unaffected by timing.
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.outputs, clean.outputs);
    // Jitter only ever slows messages down, by at most the amplitude.
    assert!(a.makespan >= clean.makespan);
    assert!(a.makespan <= clean.makespan * 1.5 + 1e-9);
    // A different seed gives a different (still valid) schedule.
    let c = execute(
        &prog,
        &input,
        ClockParams::new(100.0, 2.0).with_jitter(43, 0.5),
    );
    assert_ne!(a.makespan, c.makespan);
    assert_eq!(c.outputs, clean.outputs);
}

#[test]
fn rule_improvements_survive_noise() {
    // The always-rules' savings are structural (fewer message rounds), so
    // they must persist under every jitter seed.
    let p = 8usize;
    let m = 8usize;
    let input = block_input(p, m);
    let prog = Program::new().scan(ops::mul()).allreduce(ops::add());
    let fused = Rewriter::exhaustive().optimize(&prog).program;
    for seed in 0..10u64 {
        let clock = ClockParams::parsytec_like().with_jitter(seed, 0.4);
        let before = execute(&prog, &input, clock);
        let after = execute(&fused, &input, clock);
        assert_eq!(before.outputs, after.outputs, "seed {seed}");
        assert!(
            after.makespan < before.makespan,
            "seed {seed}: fused {} must still beat original {}",
            after.makespan,
            before.makespan
        );
    }
}

#[test]
fn semantics_are_immune_to_arbitrary_noise() {
    // Heavy jitter perturbs only time, never values — across every kind
    // of stage at once.
    let prog = Program::new()
        .map("f", 1.0, |v| v.map_block(&|x| Value::Int(x.as_int() * 2)))
        .bcast()
        .scan(ops::add())
        .scan(ops::add())
        .reduce(ops::add());
    let input = block_input(7, 4);
    let want = eval_program(&prog, &input);
    for seed in [1u64, 999, 123456] {
        let clock = ClockParams::new(50.0, 1.0).with_jitter(seed, 3.0);
        let run = execute(&prog, &input, clock);
        assert_eq!(run.outputs, want, "seed {seed}");
    }
}

#[test]
fn noise_breaks_exact_model_agreement_but_not_by_much() {
    // With amplitude a, the makespan sits in [T, (1+a)·T]; the expected
    // stretch of the critical path is below the worst case because
    // independent per-message draws rarely all hit the maximum.
    let p = 8usize;
    let m = 32usize;
    let prog = Program::new().scan(ops::add());
    let input = block_input(p, m);
    let ideal = execute(&prog, &input, ClockParams::new(100.0, 2.0)).makespan;
    let mut stretches = Vec::new();
    for seed in 0..20u64 {
        let clock = ClockParams::new(100.0, 2.0).with_jitter(seed, 0.5);
        let t = execute(&prog, &input, clock).makespan;
        stretches.push(t / ideal);
    }
    let avg: f64 = stretches.iter().sum::<f64>() / stretches.len() as f64;
    assert!(avg > 1.0 && avg < 1.5, "average stretch {avg}");
    // The critical path takes near-max draws somewhere, so the average
    // sits in the upper half of [1, 1.5] — but strictly below the bound.
    assert!(stretches.iter().all(|&s| (1.0..=1.5 + 1e-9).contains(&s)));
}

/// A full heterogeneous latency matrix: *every* undirected link gets its
/// own multiplicative factor and additive delay, drawn deterministically
/// from `seed`. No link is left at nominal speed.
fn link_matrix_plan(seed: u64, p: usize) -> FaultPlan {
    let mut rng = Rng::new(seed);
    let mut plan = FaultPlan::new(seed);
    for a in 0..p {
        for b in a + 1..p {
            let factor = 1.0 + rng.below(5) as f64 * 0.25;
            let add = rng.below(4) as f64 * 25.0;
            plan = plan.with_slow_link(a, b, factor, add);
        }
    }
    plan
}

#[test]
fn rule_equivalence_survives_heterogeneous_link_latencies() {
    // Uniform-cost links are an assumption of the paper's cost model, not
    // of the rules' *correctness*: both sides of every rewrite must
    // compute the same values on a machine where every link has its own
    // speed. (Rank-0 collectives only pin rank 0's value, so rank 0 is
    // the cross-side comparison; full outputs are pinned per side against
    // that side's uniform-latency run.)
    // Each seed is an independent simulation point — fan out across cores.
    par_map((0..6u64).collect(), |seed| {
        let p = 2 + (seed as usize % 6);
        let plan = link_matrix_plan(seed, p);
        let inputs = varied_input(p, 4, seed);
        let clock = ClockParams::new(100.0, 2.0);
        for rule in Rule::ALL {
            let tag = format!("{rule} seed={seed} p={p}");
            let mut rank0 = Vec::new();
            for (side, prog) in [("LHS", rule_lhs(rule)), ("RHS", rule_rhs(rule))] {
                let clean = execute(&prog, &inputs, clock);
                let faulted = execute_faulted(&prog, &inputs, clock, ExecConfig::default(), &plan)
                    .unwrap_or_else(|e| panic!("{tag} {side}: {e}"));
                assert_eq!(faulted.outputs, clean.outputs, "{tag} {side}");
                assert!(
                    faulted.makespan >= clean.makespan,
                    "{tag} {side}: slow links sped the run up"
                );
                rank0.push(faulted.outputs[0].clone());
            }
            assert_eq!(rank0[0], rank0[1], "{tag}: sides disagree at rank 0");
        }
    });
}

#[test]
fn critical_path_stays_exact_under_heterogeneous_link_latencies() {
    // The critical-path pass rebuilds the makespan backwards from the
    // trace alone; link-level delays must leave that reconstruction
    // exact — equal to the clock's forward makespan to the bit.
    par_map(vec![3u64, 17, 40], |seed| {
        let p = 3 + (seed as usize % 5);
        let plan = link_matrix_plan(seed, p);
        let inputs = varied_input(p, 4, seed);
        let clock = ClockParams::new(100.0, 2.0);
        for rule in Rule::ALL {
            for (side, prog) in [("LHS", rule_lhs(rule)), ("RHS", rule_rhs(rule))] {
                let tag = format!("{rule} {side} seed={seed} p={p}");
                let run =
                    execute_faulted_traced(&prog, &inputs, clock, ExecConfig::default(), &plan)
                        .unwrap_or_else(|e| panic!("{tag}: {e}"));
                let path = run.critical_path().unwrap_or_else(|e| panic!("{tag}: {e}"));
                assert_eq!(
                    path.length(),
                    run.outcome.makespan,
                    "{tag}: critical path must reproduce the makespan exactly"
                );
            }
        }
    });
}
