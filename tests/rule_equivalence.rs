//! Property-based verification of every optimization rule.
//!
//! For each rule: random distributed lists (arbitrary sizes, including
//! non-powers-of-two; scalars and blocks), LHS and RHS evaluated both by
//! the sequential reference semantics and by the simulated machine, with
//! the comparison scoped to what the rule guarantees (all positions, or
//! position 0 for the reduce-variant rules that drop side effects — the
//! paper's Section 3.5 caveat). Cases are drawn from a seeded [`Rng`] so
//! every run checks the identical sample set.

use collopt::core::rules::{try_match, window_len, Rule};
use collopt::core::semantics::eval_program;
use collopt::machine::Rng;
use collopt::prelude::*;

const CASES: usize = 48;

fn ints(vs: &[i64]) -> Vec<Value> {
    vs.iter().map(|&v| Value::Int(v)).collect()
}

fn int_vec(rng: &mut Rng, lo: i64, hi: i64, min_len: usize, max_len: usize) -> Vec<i64> {
    let len = rng.range_usize(min_len, max_len);
    (0..len).map(|_| rng.range_i64(lo, hi)).collect()
}

/// Apply `rule` at position 0, returning the rewritten program and
/// whether equality is rank0-scoped.
fn rewrite(prog: &Program, rule: Rule) -> (Program, bool) {
    let rw = try_match(rule, prog.stages()).expect("rule must match in these tests");
    let rank0 = rw.rank0_only;
    (prog.splice(0, window_len(rule), rw.stages), rank0)
}

/// Check LHS ≡ RHS by evaluator and by executor, honoring the scope.
fn check_equiv(prog: &Program, rule: Rule, input: &[Value]) {
    let (opt, rank0) = rewrite(prog, rule);
    let a = eval_program(prog, input);
    let b = eval_program(&opt, input);
    let ea = execute(prog, input, ClockParams::free());
    let eb = execute(&opt, input, ClockParams::free());
    if rank0 {
        assert_eq!(a[0], b[0], "evaluator rank0: {prog} vs {opt}");
        assert_eq!(
            ea.outputs[0], eb.outputs[0],
            "executor rank0: {prog} vs {opt}"
        );
    } else {
        assert_eq!(a, b, "evaluator: {prog} vs {opt}");
        assert_eq!(ea.outputs, eb.outputs, "executor: {prog} vs {opt}");
    }
    // Executor must agree with the evaluator on the optimized program.
    assert_eq!(eb.outputs, b, "executor vs evaluator on RHS of {rule}");
}

#[test]
fn sr2_reduction_equivalence() {
    let mut rng = Rng::new(0x5201);
    for _ in 0..CASES {
        let xs = int_vec(&mut rng, -20, 20, 1, 14);
        // mul distributes over add.
        check_equiv(
            &Program::new().scan(ops::mul()).reduce(ops::add()),
            Rule::Sr2Reduction,
            &ints(&xs),
        );
        check_equiv(
            &Program::new().scan(ops::mul()).allreduce(ops::add()),
            Rule::Sr2Reduction,
            &ints(&xs),
        );
    }
}

#[test]
fn sr2_reduction_tropical_equivalence() {
    let mut rng = Rng::new(0x5202);
    for _ in 0..CASES {
        let xs = int_vec(&mut rng, -40, 40, 1, 14);
        // add distributes over max (tropical semiring).
        check_equiv(
            &Program::new()
                .scan(ops::add_tropical())
                .allreduce(ops::max()),
            Rule::Sr2Reduction,
            &ints(&xs),
        );
    }
}

#[test]
fn sr_reduction_equivalence() {
    let mut rng = Rng::new(0x5203);
    for _ in 0..CASES {
        let xs = int_vec(&mut rng, -50, 50, 1, 18);
        check_equiv(
            &Program::new().scan(ops::add()).reduce(ops::add()),
            Rule::SrReduction,
            &ints(&xs),
        );
        check_equiv(
            &Program::new().scan(ops::add()).allreduce(ops::add()),
            Rule::SrReduction,
            &ints(&xs),
        );
    }
}

#[test]
fn ss2_scan_equivalence() {
    let mut rng = Rng::new(0x5204);
    for _ in 0..CASES {
        let xs = int_vec(&mut rng, -4, 4, 1, 12);
        check_equiv(
            &Program::new().scan(ops::mul()).scan(ops::add()),
            Rule::Ss2Scan,
            &ints(&xs),
        );
    }
}

#[test]
fn ss_scan_equivalence() {
    let mut rng = Rng::new(0x5205);
    for _ in 0..CASES {
        let xs = int_vec(&mut rng, -50, 50, 1, 18);
        check_equiv(
            &Program::new().scan(ops::add()).scan(ops::add()),
            Rule::SsScan,
            &ints(&xs),
        );
    }
}

#[test]
fn bs_comcast_equivalence() {
    let mut rng = Rng::new(0x5206);
    for _ in 0..CASES {
        let b = rng.range_i64(-30, 30);
        let p = rng.range_usize(1, 18);
        let mut input = vec![Value::Int(-7); p];
        input[0] = Value::Int(b);
        check_equiv(
            &Program::new().bcast().scan(ops::add()),
            Rule::BsComcast,
            &input,
        );
    }
}

#[test]
fn bss2_comcast_equivalence() {
    let mut rng = Rng::new(0x5207);
    for _ in 0..CASES {
        let b = rng.range_i64(-2, 3);
        let p = rng.range_usize(1, 10);
        let mut input = vec![Value::Int(0); p];
        input[0] = Value::Int(b);
        check_equiv(
            &Program::new().bcast().scan(ops::mul()).scan(ops::add()),
            Rule::Bss2Comcast,
            &input,
        );
    }
}

#[test]
fn bss_comcast_equivalence() {
    let mut rng = Rng::new(0x5208);
    for _ in 0..CASES {
        let b = rng.range_i64(-20, 20);
        let p = rng.range_usize(1, 18);
        let mut input = vec![Value::Int(1); p];
        input[0] = Value::Int(b);
        check_equiv(
            &Program::new().bcast().scan(ops::add()).scan(ops::add()),
            Rule::BssComcast,
            &input,
        );
    }
}

#[test]
fn br_local_equivalence() {
    let mut rng = Rng::new(0x5209);
    for _ in 0..CASES {
        let b = rng.range_i64(-30, 30);
        let p = rng.range_usize(1, 22);
        let mut input = vec![Value::Int(5); p];
        input[0] = Value::Int(b);
        check_equiv(
            &Program::new().bcast().reduce(ops::add()),
            Rule::BrLocal,
            &input,
        );
    }
}

#[test]
fn bsr2_local_equivalence() {
    let mut rng = Rng::new(0x520A);
    for _ in 0..CASES {
        let b = rng.range_i64(-2, 3);
        let p = rng.range_usize(1, 12);
        let mut input = vec![Value::Int(0); p];
        input[0] = Value::Int(b);
        check_equiv(
            &Program::new().bcast().scan(ops::mul()).reduce(ops::add()),
            Rule::Bsr2Local,
            &input,
        );
    }
}

#[test]
fn bsr_local_equivalence() {
    let mut rng = Rng::new(0x520B);
    for _ in 0..CASES {
        let b = rng.range_i64(-20, 20);
        let p = rng.range_usize(1, 22);
        let mut input = vec![Value::Int(3); p];
        input[0] = Value::Int(b);
        check_equiv(
            &Program::new().bcast().scan(ops::add()).reduce(ops::add()),
            Rule::BsrLocal,
            &input,
        );
    }
}

#[test]
fn cr_alllocal_equivalence() {
    let mut rng = Rng::new(0x520C);
    for _ in 0..CASES {
        let b = rng.range_i64(-30, 30);
        let p = rng.range_usize(1, 22);
        let mut input = vec![Value::Int(5); p];
        input[0] = Value::Int(b);
        check_equiv(
            &Program::new().bcast().allreduce(ops::add()),
            Rule::CrAlllocal,
            &input,
        );
    }
}

#[test]
fn rules_hold_on_blocks() {
    let mut rng = Rng::new(0x520D);
    for _ in 0..CASES {
        // Blocks of 3 words per processor, two different rules.
        let p = rng.range_usize(1, 10);
        let input: Vec<Value> = (0..p)
            .map(|_| Value::int_list((0..3).map(|_| rng.range_i64(-10, 10))))
            .collect();
        check_equiv(
            &Program::new().scan(ops::add()).allreduce(ops::add()),
            Rule::SrReduction,
            &input,
        );
        check_equiv(
            &Program::new().scan(ops::add()).scan(ops::add()),
            Rule::SsScan,
            &input,
        );
    }
}

#[test]
fn exhaustive_optimizer_preserves_meaning_of_random_pipelines() {
    let mut rng = Rng::new(0x520E);
    for _ in 0..CASES {
        let xs = int_vec(&mut rng, -3, 4, 2, 10);
        let use_bcast = rng.chance(0.5);
        let tail = rng.range_usize(0, 3);
        // Assemble a pipeline from a small grammar, optimize exhaustively
        // (full-equality rules only) and compare end to end.
        let mut prog = Program::new().map("inc", 1.0, |v| Value::Int(v.as_int() + 1));
        if use_bcast {
            prog = prog.bcast();
        }
        prog = prog.scan(ops::add());
        prog = match tail {
            0 => prog.scan(ops::add()),
            1 => prog.allreduce(ops::add()),
            _ => prog.allreduce(ops::max()),
        };
        let opt = Rewriter::exhaustive()
            .allow_rank0_rules(false)
            .optimize(&prog);
        let input = ints(&xs);
        assert_eq!(
            eval_program(&prog, &input),
            eval_program(&opt.program, &input)
        );
        let a = execute(&prog, &input, ClockParams::free());
        let b = execute(&opt.program, &input, ClockParams::free());
        assert_eq!(a.outputs, b.outputs);
    }
}

/// Negative tests: rules must refuse operators without the side condition.
#[test]
fn rules_reject_missing_conditions() {
    // No distributivity: add over mul.
    assert!(try_match(
        Rule::Sr2Reduction,
        Program::new().scan(ops::add()).reduce(ops::mul()).stages()
    )
    .is_none());
    // Non-commutative same op: matrix multiplication.
    assert!(try_match(
        Rule::SrReduction,
        Program::new()
            .scan(ops::mat2mul())
            .reduce(ops::mat2mul())
            .stages()
    )
    .is_none());
    assert!(try_match(
        Rule::SsScan,
        Program::new()
            .scan(ops::mat2mul())
            .scan(ops::mat2mul())
            .stages()
    )
    .is_none());
    assert!(try_match(
        Rule::BssComcast,
        Program::new()
            .bcast()
            .scan(ops::mat2mul())
            .scan(ops::mat2mul())
            .stages()
    )
    .is_none());
    assert!(try_match(
        Rule::BsrLocal,
        Program::new()
            .bcast()
            .scan(ops::mat2mul())
            .reduce(ops::mat2mul())
            .stages()
    )
    .is_none());
}

/// The commutative rules really do need commutativity: feeding a
/// non-commutative operator through the *fused* construction produces
/// wrong answers, which is why the applicability check matters.
#[test]
fn sr_fusion_is_wrong_without_commutativity() {
    use collopt::core::adjust::{pair, pi1};
    use collopt::core::rules::fused;

    // Subtraction-like non-commutative op: 2x2 matrices.
    let op = ops::mat2mul();
    let mats: Vec<Value> = [(1, 2, 3, 4), (0, 1, 1, 0), (2, 0, 1, 2), (1, 1, 0, 1)]
        .iter()
        .map(|&(a, b, c, d)| {
            Value::Tuple(vec![
                Value::Int(a),
                Value::Int(b),
                Value::Int(c),
                Value::Int(d),
            ])
        })
        .collect();
    let truth = eval_program(&Program::new().scan(op.clone()).reduce(op.clone()), &mats)[0].clone();

    // Force-build the op_sr machinery despite the missing condition.
    let (combine, solo) = fused::op_sr(&op);
    let paired: Vec<Value> = mats.iter().map(pair).collect();
    let tree = collopt_machine::topology::BalancedTree::new(paired.len());
    let mut vals = paired;
    for level in tree.schedule() {
        for step in level {
            match step {
                collopt_machine::topology::BalancedStep::Combine {
                    left_rep,
                    right_rep,
                    ..
                } => {
                    vals[left_rep] = combine(&vals[left_rep], &vals[right_rep]);
                }
                collopt_machine::topology::BalancedStep::Unary { rep, .. } => {
                    vals[rep] = solo(&vals[rep]);
                }
            }
        }
    }
    let fused_result = pi1(&vals[0]);
    assert_ne!(
        truth, fused_result,
        "op_sr must NOT work for non-commutative operators"
    );
}
