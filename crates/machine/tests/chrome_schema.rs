//! Schema stability for the Chrome-trace export.
//!
//! The export is a public artifact (users load it into Perfetto and
//! scripts post-process it), so its shape is pinned three ways:
//!
//! * a committed **golden file** (`tests/golden/chrome_trace.json`) that
//!   a fixed deterministic run must reproduce byte for byte;
//! * **schema checks**: required field names, valid phase codes, and
//!   per-`(pid, tid)` monotone timestamps;
//! * a **parse/render round-trip** through the in-repo JSON layer.

use collopt_machine::{chrome_trace, chrome_trace_json, ClockParams, Json, Machine};

/// The fixed run behind the golden file: 4 ranks, a compute+butterfly
/// exchange round with stage markers, a barrier, and a mark.
fn golden_trace() -> collopt_machine::Trace {
    let m = Machine::new(4, ClockParams::new(10.0, 1.0)).with_tracing();
    let run = m.run(|ctx| {
        ctx.charge(3.0, "setup");
        ctx.end_stage(0, "setup");
        let mut v = ctx.rank() as u64 + 1;
        for round in 0..2 {
            let partner = ctx.rank() ^ (1 << round);
            v += ctx.exchange(partner, v, 2);
            ctx.charge(1.0, "combine");
        }
        ctx.end_stage(1, "butterfly");
        if ctx.rank() == 0 {
            ctx.mark(format!("sum={v}"));
        }
        ctx.barrier();
        v
    });
    assert_eq!(run.results, vec![10; 4], "golden workload must be stable");
    run.trace
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chrome_trace.json")
}

#[test]
fn export_matches_the_committed_golden_file() {
    let trace = golden_trace();
    let rendered = chrome_trace_json(&[("golden", &trace)]);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path(), format!("{rendered}\n")).expect("update golden file");
        return;
    }
    let committed = std::fs::read_to_string(golden_path())
        .expect("tests/golden/chrome_trace.json is committed");
    assert_eq!(
        rendered,
        committed.trim_end(),
        "Chrome-trace export drifted from the golden file; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn export_satisfies_the_trace_event_schema() {
    let trace = golden_trace();
    let doc = chrome_trace(&[("lhs", &trace), ("rhs", &trace)]);

    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut last_ts: std::collections::HashMap<(u64, u64), f64> = Default::default();
    let mut seen_metadata = 0;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph field");
        match ph {
            "M" => {
                seen_metadata += 1;
                assert_eq!(e.get("name").and_then(Json::as_str), Some("process_name"));
                assert!(e.get("args").and_then(|a| a.get("name")).is_some());
            }
            "X" | "i" => {
                for key in ["name", "cat", "pid", "tid", "ts", "args"] {
                    assert!(e.get(key).is_some(), "event missing field {key}: {e:?}");
                }
                let cat = e.get("cat").and_then(Json::as_str).unwrap();
                assert!(
                    matches!(cat, "comm" | "compute" | "sync" | "annotation"),
                    "unknown category {cat}"
                );
                let ts = e.get("ts").and_then(Json::as_f64).unwrap();
                assert!(ts >= 0.0);
                let lane = (
                    e.get("pid").and_then(Json::as_f64).unwrap() as u64,
                    e.get("tid").and_then(Json::as_f64).unwrap() as u64,
                );
                let prev = last_ts.insert(lane, ts).unwrap_or(f64::NEG_INFINITY);
                assert!(ts >= prev, "timestamps regress in lane {lane:?}");
                if ph == "X" {
                    assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
                } else {
                    assert_eq!(e.get("s").and_then(Json::as_str), Some("t"));
                }
            }
            other => panic!("unexpected phase code {other}"),
        }
    }
    assert_eq!(seen_metadata, 2, "one process_name record per process");
}

#[test]
fn export_round_trips_through_the_json_layer() {
    let trace = golden_trace();
    let doc = chrome_trace(&[("roundtrip", &trace)]);
    let text = doc.render();
    let reparsed = Json::parse(&text).expect("export must parse");
    assert_eq!(reparsed, doc, "parse(render(doc)) must be doc");
    assert_eq!(reparsed.render(), text, "render must be a fixed point");
}
