//! Property-based tests for the machine substrate: topology invariants,
//! clock determinism, and message-delivery guarantees under random
//! communication patterns.

use collopt_machine::topology::{
    binomial_bcast_rank_plan, binomial_bcast_schedule, butterfly_partner, butterfly_rounds,
    ceil_log2, BalancedNode, BalancedTree,
};
use collopt_machine::{ClockParams, Machine};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ceil_log2_is_the_least_sufficient_exponent(n in 1usize..1_000_000) {
        let k = ceil_log2(n);
        prop_assert!(1usize << k >= n);
        if k > 0 {
            prop_assert!(1usize << (k - 1) < n);
        }
    }

    #[test]
    fn butterfly_rounds_cover_every_pair_exactly_once_in_some_round(
        size in 2usize..64,
    ) {
        // Every rank meets every other rank's block through the rounds:
        // after all rounds, the transitive exchange closure is complete
        // for power-of-two sizes.
        if size.is_power_of_two() {
            let mut reach: Vec<u64> = (0..size).map(|r| 1u64 << r).collect();
            for round in 0..butterfly_rounds(size) {
                let prev = reach.clone();
                for (r, item) in reach.iter_mut().enumerate() {
                    if let Some(p) = butterfly_partner(r, round, size) {
                        *item |= prev[p];
                    }
                }
            }
            let all = (1u64 << size) - 1;
            for (r, m) in reach.iter().enumerate() {
                prop_assert_eq!(*m, all, "rank {} reach incomplete", r);
            }
        }
    }

    #[test]
    fn binomial_schedule_has_logarithmic_depth(size in 1usize..200, root in 0usize..200) {
        let root = root % size;
        let steps = binomial_bcast_schedule(size, root);
        for s in &steps {
            prop_assert!(s.round < ceil_log2(size));
        }
        prop_assert_eq!(steps.len(), size - 1);
    }

    #[test]
    fn rank_plans_tile_the_schedule(size in 1usize..80, root in 0usize..80) {
        let root = root % size;
        let steps = binomial_bcast_schedule(size, root);
        let mut from_plans = 0usize;
        for rank in 0..size {
            let plan = binomial_bcast_rank_plan(size, root, rank);
            from_plans += plan.sends.len();
            if rank != root {
                prop_assert!(plan.recv.is_some());
            }
        }
        prop_assert_eq!(from_plans, steps.len());
    }

    #[test]
    fn balanced_tree_unique_shape_properties(n in 1usize..300) {
        let t = BalancedTree::new(n);
        // Exactly n-1 binary nodes; unary nodes only when n is not a
        // power of two.
        fn count(node: &BalancedNode) -> (usize, usize) {
            match node {
                BalancedNode::Leaf(_) => (0, 0),
                BalancedNode::Unary(c) => {
                    let (b, u) = count(c);
                    (b, u + 1)
                }
                BalancedNode::Binary(l, r) => {
                    let (bl, ul) = count(l);
                    let (br, ur) = count(r);
                    (bl + br + 1, ul + ur)
                }
            }
        }
        let (binary, unary) = count(t.root());
        prop_assert_eq!(binary, n - 1);
        if n.is_power_of_two() {
            prop_assert_eq!(unary, 0);
        }
        // The schedule has exactly depth levels and n-1 combines.
        let sched = t.schedule();
        prop_assert_eq!(sched.len() as u32, t.depth());
    }

    #[test]
    fn simulated_makespan_is_schedule_independent(
        p in 2usize..10,
        rounds in 1usize..6,
        seed in 0u64..1000,
    ) {
        // A pseudo-random but deterministic exchange pattern: the same
        // program must give identical makespans on repeated runs, no
        // matter how the OS schedules the threads.
        let pattern: Vec<Vec<usize>> = (0..rounds)
            .map(|r| {
                (0..p)
                    .map(move |i| {
                        // pair i with i^1 rotated by a seed-derived shift
                        let shift = ((seed as usize) + r) % p;
                        let j = (i + shift) % p;
                        (j ^ 1) % p
                    })
                    .collect()
            })
            .collect();
        let machine = Machine::new(p, ClockParams::new(13.0, 0.5));
        let run_once = || {
            let pattern = pattern.clone();
            machine.run(move |ctx| {
                let mut acc = ctx.rank() as u64;
                for round in pattern.iter() {
                    let partner = round[ctx.rank()];
                    if round[partner] == ctx.rank() && partner != ctx.rank() {
                        // Symmetric pair: exchange.
                        acc += ctx.exchange(partner, acc, 3);
                    } else {
                        ctx.charge(5.0, "solo");
                    }
                }
                acc
            })
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.results, b.results);
        prop_assert_eq!(a.finish_times, b.finish_times);
    }

    #[test]
    fn fifo_order_holds_under_bursts(count in 1usize..50) {
        let machine = Machine::new(2, ClockParams::free());
        let run = machine.run(move |ctx| {
            if ctx.rank() == 0 {
                for i in 0..count {
                    ctx.send(1, i as u64, 1);
                }
                0
            } else {
                let mut last = None;
                for _ in 0..count {
                    let v: u64 = ctx.recv(0);
                    if let Some(prev) = last {
                        assert!(v > prev, "FIFO violated: {v} after {prev}");
                    }
                    last = Some(v);
                }
                last.unwrap()
            }
        });
        prop_assert_eq!(run.results[1], count as u64 - 1);
    }

    #[test]
    fn clock_monotonicity_per_rank(p in 2usize..8) {
        let machine = Machine::new(p, ClockParams::new(7.0, 1.0)).with_tracing();
        let run = machine.run(|ctx| {
            let partner = ctx.rank() ^ 1;
            if partner < ctx.size() {
                ctx.exchange(partner, ctx.rank(), 2);
            }
            ctx.charge(3.0, "tail");
            ctx.barrier();
        });
        // Events of each rank are non-decreasing in time.
        for rank in 0..p {
            let times: Vec<f64> = run
                .trace
                .events()
                .iter()
                .filter(|e| e.rank == rank)
                .map(|e| e.time)
                .collect();
            for w in times.windows(2) {
                prop_assert!(w[1] >= w[0], "rank {} time went backward", rank);
            }
        }
    }
}
