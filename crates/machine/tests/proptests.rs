//! Property-based tests for the machine substrate: topology invariants,
//! clock determinism, and message-delivery guarantees under random
//! communication patterns. Randomness comes from the crate's own seeded
//! [`Rng`], so every run checks the identical sample set.

use collopt_machine::topology::{
    binomial_bcast_rank_plan, binomial_bcast_schedule, butterfly_partner, butterfly_rounds,
    ceil_log2, BalancedNode, BalancedTree,
};
use collopt_machine::{ClockParams, Machine, Rng};

#[test]
fn ceil_log2_is_the_least_sufficient_exponent() {
    let mut rng = Rng::new(0xCE11);
    let samples: Vec<usize> = (1..=66)
        .chain((0..200).map(|_| rng.range_usize(1, 1_000_000)))
        .collect();
    for n in samples {
        let k = ceil_log2(n);
        assert!(1usize << k >= n);
        if k > 0 {
            assert!(1usize << (k - 1) < n, "n={n} k={k}");
        }
    }
}

#[test]
fn butterfly_rounds_cover_every_pair_exactly_once_in_some_round() {
    // Every rank meets every other rank's block through the rounds:
    // after all rounds, the transitive exchange closure is complete
    // for power-of-two sizes.
    for size in [2usize, 4, 8, 16, 32, 64] {
        let mut reach: Vec<u64> = (0..size).map(|r| 1u64 << r).collect();
        for round in 0..butterfly_rounds(size) {
            let prev = reach.clone();
            for (r, item) in reach.iter_mut().enumerate() {
                if let Some(p) = butterfly_partner(r, round, size) {
                    *item |= prev[p];
                }
            }
        }
        let all = if size == 64 {
            u64::MAX
        } else {
            (1u64 << size) - 1
        };
        for (r, m) in reach.iter().enumerate() {
            assert_eq!(*m, all, "size {} rank {} reach incomplete", size, r);
        }
    }
}

#[test]
fn binomial_schedule_has_logarithmic_depth() {
    let mut rng = Rng::new(0xB10);
    for _ in 0..120 {
        let size = rng.range_usize(1, 200);
        let root = rng.range_usize(0, 200) % size;
        let steps = binomial_bcast_schedule(size, root);
        for s in &steps {
            assert!(s.round < ceil_log2(size));
        }
        assert_eq!(steps.len(), size - 1);
    }
}

#[test]
fn rank_plans_tile_the_schedule() {
    let mut rng = Rng::new(0x71A);
    for _ in 0..80 {
        let size = rng.range_usize(1, 80);
        let root = rng.range_usize(0, 80) % size;
        let steps = binomial_bcast_schedule(size, root);
        let mut from_plans = 0usize;
        for rank in 0..size {
            let plan = binomial_bcast_rank_plan(size, root, rank);
            from_plans += plan.sends.len();
            if rank != root {
                assert!(plan.recv.is_some());
            }
        }
        assert_eq!(from_plans, steps.len());
    }
}

#[test]
fn balanced_tree_unique_shape_properties() {
    let mut rng = Rng::new(0xBA1);
    let samples: Vec<usize> = (1..=40)
        .chain((0..60).map(|_| rng.range_usize(1, 300)))
        .collect();
    for n in samples {
        let t = BalancedTree::new(n);
        // Exactly n-1 binary nodes; unary nodes only when n is not a
        // power of two.
        fn count(node: &BalancedNode) -> (usize, usize) {
            match node {
                BalancedNode::Leaf(_) => (0, 0),
                BalancedNode::Unary(c) => {
                    let (b, u) = count(c);
                    (b, u + 1)
                }
                BalancedNode::Binary(l, r) => {
                    let (bl, ul) = count(l);
                    let (br, ur) = count(r);
                    (bl + br + 1, ul + ur)
                }
            }
        }
        let (binary, unary) = count(t.root());
        assert_eq!(binary, n - 1);
        if n.is_power_of_two() {
            assert_eq!(unary, 0);
        }
        // The schedule has exactly depth levels and n-1 combines.
        let sched = t.schedule();
        assert_eq!(sched.len() as u32, t.depth());
    }
}

#[test]
fn simulated_makespan_is_schedule_independent() {
    // A pseudo-random but deterministic exchange pattern: the same
    // program must give identical makespans on repeated runs, no
    // matter how the OS schedules the threads.
    let mut rng = Rng::new(0x5EED);
    for _ in 0..12 {
        let p = rng.range_usize(2, 10);
        let rounds = rng.range_usize(1, 6);
        let seed = rng.below(1000);
        let pattern: Vec<Vec<usize>> = (0..rounds)
            .map(|r| {
                (0..p)
                    .map(move |i| {
                        // pair i with i^1 rotated by a seed-derived shift
                        let shift = ((seed as usize) + r) % p;
                        let j = (i + shift) % p;
                        (j ^ 1) % p
                    })
                    .collect()
            })
            .collect();
        let machine = Machine::new(p, ClockParams::new(13.0, 0.5));
        let run_once = || {
            let pattern = pattern.clone();
            machine.run(move |ctx| {
                let mut acc = ctx.rank() as u64;
                for round in pattern.iter() {
                    let partner = round[ctx.rank()];
                    if round[partner] == ctx.rank() && partner != ctx.rank() {
                        // Symmetric pair: exchange.
                        acc += ctx.exchange(partner, acc, 3);
                    } else {
                        ctx.charge(5.0, "solo");
                    }
                }
                acc
            })
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.results, b.results);
        assert_eq!(a.finish_times, b.finish_times);
    }
}

#[test]
fn fifo_order_holds_under_bursts() {
    for count in [1usize, 2, 7, 23, 49] {
        let machine = Machine::new(2, ClockParams::free());
        let run = machine.run(move |ctx| {
            if ctx.rank() == 0 {
                for i in 0..count {
                    ctx.send(1, i as u64, 1);
                }
                0
            } else {
                let mut last = None;
                for _ in 0..count {
                    let v: u64 = ctx.recv(0);
                    if let Some(prev) = last {
                        assert!(v > prev, "FIFO violated: {v} after {prev}");
                    }
                    last = Some(v);
                }
                last.unwrap()
            }
        });
        assert_eq!(run.results[1], count as u64 - 1);
    }
}

#[test]
fn clock_monotonicity_per_rank() {
    for p in 2usize..8 {
        let machine = Machine::new(p, ClockParams::new(7.0, 1.0)).with_tracing();
        let run = machine.run(|ctx| {
            let partner = ctx.rank() ^ 1;
            if partner < ctx.size() {
                ctx.exchange(partner, ctx.rank(), 2);
            }
            ctx.charge(3.0, "tail");
            ctx.barrier();
        });
        // Events of each rank are non-decreasing in time.
        for rank in 0..p {
            let times: Vec<f64> = run
                .trace
                .events()
                .iter()
                .filter(|e| e.rank == rank)
                .map(|e| e.time)
                .collect();
            for w in times.windows(2) {
                assert!(w[1] >= w[0], "rank {} time went backward", rank);
            }
        }
    }
}
