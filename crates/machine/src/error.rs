//! Error types for the simulated machine.

use std::fmt;

/// Errors raised by the machine runtime.
///
/// The variants fall into two families:
///
/// * **Programming errors** — [`InvalidRank`](MachineError::InvalidRank),
///   [`TypeMismatch`](MachineError::TypeMismatch),
///   [`EmptyMachine`](MachineError::EmptyMachine). The collective
///   algorithms in `collopt-collectives` are structured so that a
///   well-formed SPMD program never triggers these; they surface bugs, not
///   runtime conditions a caller should recover from.
/// * **Recoverable runtime faults** —
///   [`Disconnected`](MachineError::Disconnected),
///   [`Timeout`](MachineError::Timeout) and
///   [`RankFailed`](MachineError::RankFailed). These arise when a
///   [`FaultPlan`](crate::fault::FaultPlan) injects message loss or a rank
///   crash (or when a peer thread genuinely dies); they propagate cleanly
///   out of [`Machine::try_run`](crate::Machine::try_run) so a caller can
///   observe the failure, report the reproducing `(seed, plan)` pair and
///   move on — no hang, no panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A rank argument was `>= p`.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// The number of processors in the machine.
        size: usize,
    },
    /// A received message could not be downcast to the expected type.
    ///
    /// The machine's mailboxes are type-erased so that one SPMD program can
    /// exchange payloads of several types; a mismatch between the type sent
    /// and the type expected by `recv` is a bug in the program.
    TypeMismatch {
        /// Source rank of the offending message.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// The type the receiver expected.
        expected: &'static str,
    },
    /// A channel was disconnected: the named peer's thread exited (crash,
    /// panic, or normal return) while this rank was still waiting on it.
    Disconnected {
        /// The peer rank whose mailbox was disconnected.
        rank: usize,
    },
    /// A message exhausted its retry budget: every one of `attempts`
    /// transmission attempts from `from` to `to` was dropped by the fault
    /// plan, so the sender's ack/retry protocol gave up. Raised only under
    /// a lossy [`FaultPlan`](crate::fault::FaultPlan) whose drop schedule
    /// exceeds [`RetryParams::max_attempts`](crate::fault::RetryParams).
    Timeout {
        /// The sending rank that gave up.
        from: usize,
        /// The destination the message never reached.
        to: usize,
        /// How many attempts were made before giving up.
        attempts: u32,
    },
    /// A rank crashed. Either the fault plan's
    /// [`CrashSpec`](crate::fault::CrashSpec) fired on this rank, or the
    /// rank observed a crashed peer through a disconnected channel and
    /// aborted in sympathy; `rank` always names the rank that originally
    /// went down.
    RankFailed {
        /// The rank that crashed.
        rank: usize,
    },
    /// The machine was constructed with zero processors.
    EmptyMachine,
    /// The run asked for more ranks than the selected engine can host.
    /// The thread-per-rank engines cap `p` at
    /// [`ExecEngine::THREAD_MAX_P`](crate::ExecEngine::THREAD_MAX_P)
    /// (spawning past the OS thread budget would abort mid-run); the
    /// discrete-event engine (`des`) has no such cap.
    CapacityExceeded {
        /// The rank count the run asked for.
        requested: usize,
        /// The engine's rank ceiling.
        limit: usize,
        /// Name of the engine that refused (`pooled`, `legacy`).
        engine: &'static str,
    },
}

impl MachineError {
    /// Is this a recoverable runtime fault (vs a programming error)?
    /// Recoverable faults are the ones
    /// [`Machine::try_run`](crate::Machine::try_run) returns as `Err`;
    /// programming errors still panic.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            MachineError::Disconnected { .. }
                | MachineError::Timeout { .. }
                | MachineError::RankFailed { .. }
        )
    }
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for a machine of {size} processors")
            }
            MachineError::TypeMismatch { from, to, expected } => write!(
                f,
                "message from rank {from} to rank {to} is not of the expected type {expected}"
            ),
            MachineError::Disconnected { rank } => {
                write!(
                    f,
                    "mailbox of rank {rank} disconnected (peer thread exited mid-run)"
                )
            }
            MachineError::Timeout { from, to, attempts } => write!(
                f,
                "message from rank {from} to rank {to} timed out after {attempts} attempts"
            ),
            MachineError::RankFailed { rank } => {
                write!(f, "rank {rank} failed (crashed mid-run)")
            }
            MachineError::EmptyMachine => write!(f, "a machine needs at least one processor"),
            MachineError::CapacityExceeded {
                requested,
                limit,
                engine,
            } => write!(
                f,
                "p={requested} exceeds the {engine} engine's capacity of {limit} ranks \
                 (use the des engine for larger machines)"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every variant that involves ranks must name *all* offending ranks in
    /// its message — chaos-test failure reports lean on this to be
    /// actionable without a debugger.
    #[test]
    fn every_variant_names_the_offending_ranks() {
        let cases: Vec<(MachineError, Vec<&str>)> = vec![
            (
                MachineError::InvalidRank { rank: 9, size: 4 },
                vec!["9", "4"],
            ),
            (
                MachineError::TypeMismatch {
                    from: 1,
                    to: 2,
                    expected: "alloc::vec::Vec<u64>",
                },
                vec!["1", "2", "Vec<u64>"],
            ),
            (MachineError::Disconnected { rank: 3 }, vec!["3"]),
            (
                MachineError::Timeout {
                    from: 5,
                    to: 6,
                    attempts: 7,
                },
                vec!["5", "6", "7"],
            ),
            (MachineError::RankFailed { rank: 8 }, vec!["8"]),
            (
                MachineError::CapacityExceeded {
                    requested: 100_000,
                    limit: 4096,
                    engine: "pooled",
                },
                vec!["100000", "4096", "pooled"],
            ),
        ];
        for (err, needles) in cases {
            let msg = err.to_string();
            for needle in needles {
                assert!(
                    msg.contains(needle),
                    "{err:?} message {msg:?} does not mention {needle:?}"
                );
            }
        }
        assert!(MachineError::EmptyMachine
            .to_string()
            .contains("at least one"));
    }

    #[test]
    fn recoverable_classification() {
        assert!(MachineError::Disconnected { rank: 0 }.is_recoverable());
        assert!(MachineError::Timeout {
            from: 0,
            to: 1,
            attempts: 3
        }
        .is_recoverable());
        assert!(MachineError::RankFailed { rank: 2 }.is_recoverable());
        assert!(!MachineError::InvalidRank { rank: 0, size: 1 }.is_recoverable());
        assert!(!MachineError::TypeMismatch {
            from: 0,
            to: 1,
            expected: "u8"
        }
        .is_recoverable());
        assert!(!MachineError::EmptyMachine.is_recoverable());
        assert!(!MachineError::CapacityExceeded {
            requested: 10_000,
            limit: 4096,
            engine: "legacy"
        }
        .is_recoverable());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MachineError::EmptyMachine, MachineError::EmptyMachine);
        assert_ne!(
            MachineError::InvalidRank { rank: 0, size: 1 },
            MachineError::InvalidRank { rank: 1, size: 1 }
        );
        assert_ne!(
            MachineError::RankFailed { rank: 0 },
            MachineError::RankFailed { rank: 1 }
        );
    }
}
