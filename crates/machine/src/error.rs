//! Error types for the simulated machine.

use std::fmt;

/// Errors raised by the machine runtime.
///
/// The collective algorithms in `collopt-collectives` are structured so that
/// a well-formed SPMD program never triggers these; they surface programming
/// errors (mismatched message types, invalid ranks) rather than runtime
/// conditions a caller should recover from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A rank argument was `>= p`.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// The number of processors in the machine.
        size: usize,
    },
    /// A received message could not be downcast to the expected type.
    ///
    /// The machine's mailboxes are type-erased so that one SPMD program can
    /// exchange payloads of several types; a mismatch between the type sent
    /// and the type expected by `recv` is a bug in the program.
    TypeMismatch {
        /// Source rank of the offending message.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// The type the receiver expected.
        expected: &'static str,
    },
    /// A channel was disconnected, i.e. a peer thread panicked mid-run.
    Disconnected {
        /// The rank whose mailbox was disconnected.
        rank: usize,
    },
    /// The machine was constructed with zero processors.
    EmptyMachine,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for a machine of {size} processors")
            }
            MachineError::TypeMismatch { from, to, expected } => write!(
                f,
                "message from rank {from} to rank {to} is not of the expected type {expected}"
            ),
            MachineError::Disconnected { rank } => {
                write!(
                    f,
                    "mailbox of rank {rank} disconnected (peer thread panicked?)"
                )
            }
            MachineError::EmptyMachine => write!(f, "a machine needs at least one processor"),
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ranks() {
        let e = MachineError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));

        let e = MachineError::TypeMismatch {
            from: 1,
            to: 2,
            expected: "alloc::vec::Vec<u64>",
        };
        assert!(e.to_string().contains("Vec<u64>"));

        let e = MachineError::Disconnected { rank: 3 };
        assert!(e.to_string().contains('3'));

        assert!(MachineError::EmptyMachine
            .to_string()
            .contains("at least one"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MachineError::EmptyMachine, MachineError::EmptyMachine);
        assert_ne!(
            MachineError::InvalidRank { rank: 0, size: 1 },
            MachineError::InvalidRank { rank: 1, size: 1 }
        );
    }
}
