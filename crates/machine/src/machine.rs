//! The SPMD runtime: one thread per virtual processor, plus the
//! deterministic simulated clock.
//!
//! A [`Machine`] is configured with a processor count `p` and
//! [`ClockParams`]. [`Machine::run`] executes one SPMD program: the given
//! closure runs once per rank, each instance receiving a [`Ctx`] with the
//! rank's identity, its mailboxes, its simulated clock and its trace.
//!
//! ## Cost semantics
//!
//! * [`Ctx::charge`] — local computation, 1 unit per operation (paper §4.1).
//! * [`Ctx::send`] / [`Ctx::recv`] — a one-way message of `m` words. The
//!   sender is *eager*: it pays `ts + m·tw` from its own clock and moves
//!   on. The receiver completes at `max(own clock, sender's clock at send
//!   start) + ts + m·tw`.
//! * [`Ctx::exchange`] — the paper's simultaneous bidirectional exchange:
//!   both partners rendezvous and pay a *single* `ts + m·tw`
//!   (`T_sendrecv`, §4.1), ending at the same instant.
//! * [`Ctx::barrier`] — synchronizes control *and* clocks (all ranks leave
//!   at the global maximum time).
//!
//! Because message timestamps travel with the data, the simulated makespan
//! of a run is a pure function of the communication structure — identical
//! across reruns regardless of OS scheduling.

use std::sync::{Barrier, Mutex};

use crate::channel::{build_mesh, Mailboxes, Packet};
use crate::clock::{ClockParams, SimClock};
use crate::error::MachineError;
use crate::trace::{EventKind, Trace};

/// Clock-aware barrier: all ranks leave with their clocks advanced to the
/// maximum entry time. The running maximum is monotonic (clocks never move
/// backward), so it never needs resetting between rounds; a second wait
/// keeps a fast rank's *next* barrier write from being observed early.
struct ClockBarrier {
    barrier: Barrier,
    max_time: Mutex<f64>,
}

impl ClockBarrier {
    fn new(p: usize) -> Self {
        ClockBarrier {
            barrier: Barrier::new(p),
            max_time: Mutex::new(0.0),
        }
    }

    fn wait(&self, t: f64) -> f64 {
        {
            let mut m = self.max_time.lock().expect("barrier lock poisoned");
            if t > *m {
                *m = t;
            }
        }
        self.barrier.wait();
        let out = *self.max_time.lock().expect("barrier lock poisoned");
        self.barrier.wait();
        out
    }
}

/// Per-rank execution context handed to the SPMD closure.
pub struct Ctx {
    mailboxes: Mailboxes,
    clock: SimClock,
    trace: Trace,
    barrier: std::sync::Arc<ClockBarrier>,
}

impl Ctx {
    /// This rank's id, `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.mailboxes.rank()
    }

    /// Number of processors in the machine.
    #[inline]
    pub fn size(&self) -> usize {
        self.mailboxes.size()
    }

    /// Current simulated time on this rank.
    #[inline]
    pub fn time(&self) -> f64 {
        self.clock.now()
    }

    /// The machine's cost parameters.
    #[inline]
    pub fn params(&self) -> ClockParams {
        self.clock.params()
    }

    /// Immutable view of this rank's simulated clock (statistics).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Charge `ops` units of local computation, labelled for the trace.
    pub fn charge(&mut self, ops: f64, label: &str) {
        let start = self.clock.now();
        self.clock.charge_compute(ops);
        if self.trace.is_enabled() {
            self.trace.record(
                self.rank(),
                start,
                self.clock.now(),
                EventKind::Compute {
                    ops,
                    label: label.to_string(),
                },
            );
        }
    }

    /// Record a free-form marker in the trace (used by tests to capture
    /// intermediate values, e.g. the tuples of the paper's Figures 4–6).
    pub fn mark(&mut self, note: impl Into<String>) {
        if self.trace.is_enabled() {
            let rank = self.rank();
            let now = self.clock.now();
            self.trace
                .record_instant(rank, now, EventKind::Mark { note: note.into() });
        }
    }

    /// Record an end-of-stage boundary: everything this rank did since the
    /// previous boundary belongs to program stage `index`. Executors inject
    /// these so [`crate::profile::ProfileReport`] can attribute time per
    /// stage.
    pub fn end_stage(&mut self, index: usize, label: impl Into<String>) {
        if self.trace.is_enabled() {
            let rank = self.rank();
            let now = self.clock.now();
            self.trace.record_instant(
                rank,
                now,
                EventKind::Stage {
                    index,
                    label: label.into(),
                },
            );
        }
    }

    /// Send `value` (declared size `words`) to rank `to`. Eager: this
    /// rank's clock advances by `ts + words·tw`.
    pub fn send<T: Send + 'static>(&mut self, to: usize, value: T, words: u64) {
        let send_time = self.clock.now();
        self.mailboxes
            .push(
                to,
                Packet {
                    payload: Box::new(value),
                    words,
                    send_time,
                },
            )
            .unwrap_or_else(|e| panic!("send from rank {}: {e}", self.rank()));
        // The sender pays the transfer from its own clock.
        let cost = self.params().transfer_between(self.rank(), to, words);
        let t = self.clock.complete_exchange_costing(send_time, words, cost);
        if self.trace.is_enabled() {
            let rank = self.rank();
            self.trace
                .record(rank, send_time, t, EventKind::Send { to, words });
        }
    }

    /// Receive the next value from rank `from`, blocking until it arrives.
    /// Completes at `max(own clock, sender's send-start) + ts + words·tw`.
    ///
    /// # Panics
    /// Panics if the payload is not a `T` — a type mismatch is a bug in the
    /// SPMD program, not a runtime condition.
    pub fn recv<T: Send + 'static>(&mut self, from: usize) -> T {
        let packet = self
            .mailboxes
            .pop(from)
            .unwrap_or_else(|e| panic!("recv on rank {}: {e}", self.rank()));
        let words = packet.words;
        let cost = self.params().transfer_between(self.rank(), from, words);
        let (start, t) = self
            .clock
            .complete_exchange_spanning(packet.send_time, words, cost);
        if self.trace.is_enabled() {
            let rank = self.rank();
            self.trace.record(
                rank,
                start,
                t,
                EventKind::Recv {
                    from,
                    words,
                    sent_at: packet.send_time,
                },
            );
        }
        let to = self.rank();
        *packet.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "{}",
                MachineError::TypeMismatch {
                    from,
                    to,
                    expected: std::any::type_name::<T>()
                }
            )
        })
    }

    /// Receive the next message from *any* source (MPI_ANY_SOURCE),
    /// returning `(source, value)`. Cost accounting is identical to
    /// [`recv`](Self::recv) from the actual source.
    ///
    /// # Panics
    /// Panics if the payload is not a `T`.
    pub fn recv_any<T: Send + 'static>(&mut self) -> (usize, T) {
        let (from, packet) = self
            .mailboxes
            .pop_any()
            .unwrap_or_else(|e| panic!("recv_any on rank {}: {e}", self.rank()));
        let words = packet.words;
        let cost = self.params().transfer_between(self.rank(), from, words);
        let (start, t) = self
            .clock
            .complete_exchange_spanning(packet.send_time, words, cost);
        if self.trace.is_enabled() {
            let rank = self.rank();
            self.trace.record(
                rank,
                start,
                t,
                EventKind::Recv {
                    from,
                    words,
                    sent_at: packet.send_time,
                },
            );
        }
        let to = self.rank();
        let v = *packet.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "{}",
                MachineError::TypeMismatch {
                    from,
                    to,
                    expected: std::any::type_name::<T>()
                }
            )
        });
        (from, v)
    }

    /// Simultaneous bidirectional exchange with `partner`: sends `value`,
    /// returns the partner's value. Both sides pay a single
    /// `ts + max_words·tw` and end at the same simulated instant
    /// (the paper's `T_sendrecv`).
    pub fn exchange<T: Send + 'static>(&mut self, partner: usize, value: T, words: u64) -> T {
        let my_time = self.clock.now();
        self.mailboxes
            .push(
                partner,
                Packet {
                    payload: Box::new(value),
                    words,
                    send_time: my_time,
                },
            )
            .unwrap_or_else(|e| panic!("exchange push on rank {}: {e}", self.rank()));
        let packet = self
            .mailboxes
            .pop(partner)
            .unwrap_or_else(|e| panic!("exchange pop on rank {}: {e}", self.rank()));
        let w = words.max(packet.words);
        let cost = self.params().transfer_between(self.rank(), partner, w);
        let (start, t) = self
            .clock
            .complete_exchange_spanning(packet.send_time, w, cost);
        if self.trace.is_enabled() {
            let rank = self.rank();
            self.trace.record(
                rank,
                start,
                t,
                EventKind::Exchange {
                    partner,
                    words: w,
                    sent_at: packet.send_time,
                },
            );
        }
        let from = partner;
        let to = self.rank();
        *packet.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "{}",
                MachineError::TypeMismatch {
                    from,
                    to,
                    expected: std::any::type_name::<T>()
                }
            )
        })
    }

    /// Barrier across all ranks; clocks leave at the global maximum.
    pub fn barrier(&mut self) {
        let entry = self.clock.now();
        let t = self.barrier.wait(entry);
        self.clock.sync_to(t);
        if self.trace.is_enabled() {
            let rank = self.rank();
            self.trace.record(rank, entry, t, EventKind::Barrier);
        }
    }

    fn into_parts(self) -> (SimClock, Trace) {
        (self.clock, self.trace)
    }
}

/// Outcome of one SPMD run.
#[derive(Debug)]
pub struct RunResult<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Maximum final simulated time over all ranks — the paper's notion of
    /// parallel run time.
    pub makespan: f64,
    /// Final simulated time of each rank.
    pub finish_times: Vec<f64>,
    /// Total computation operations charged, per rank.
    pub compute_ops: Vec<f64>,
    /// Message exchanges each rank participated in.
    pub messages: Vec<u64>,
    /// Merged event trace (empty unless tracing was enabled).
    pub trace: Trace,
}

/// A virtual machine of `p` fully connected processors.
#[derive(Debug, Clone)]
pub struct Machine {
    p: usize,
    params: ClockParams,
    tracing: bool,
}

impl Machine {
    /// A machine with `p ≥ 1` processors and the given cost parameters.
    pub fn new(p: usize, params: ClockParams) -> Self {
        assert!(p >= 1, "{}", MachineError::EmptyMachine);
        Machine {
            p,
            params,
            tracing: false,
        }
    }

    /// Enable event tracing for subsequent runs.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Number of processors.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Cost parameters.
    pub fn params(&self) -> ClockParams {
        self.params
    }

    /// Run one SPMD program: `f` executes once per rank, concurrently.
    ///
    /// The closure is shared between threads, so captured state must be
    /// `Sync`; per-rank inputs are typically captured in an `Arc<Vec<_>>`
    /// and indexed by `ctx.rank()`.
    pub fn run<T, F>(&self, f: F) -> RunResult<T>
    where
        T: Send,
        F: Fn(&mut Ctx) -> T + Sync,
    {
        let mesh = build_mesh(self.p);
        let barrier = std::sync::Arc::new(ClockBarrier::new(self.p));
        let tracing = self.tracing;
        let params = self.params;

        let mut slots: Vec<Option<(T, SimClock, Trace)>> = Vec::with_capacity(self.p);
        slots.resize_with(self.p, || None);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.p);
            for mailboxes in mesh {
                let barrier = barrier.clone();
                let f = &f;
                handles.push(scope.spawn(move || {
                    let rank = mailboxes.rank();
                    let mut ctx = Ctx {
                        mailboxes,
                        clock: SimClock::new_for_rank(params, rank),
                        trace: if tracing {
                            Trace::enabled()
                        } else {
                            Trace::disabled()
                        },
                        barrier,
                    };
                    let out = f(&mut ctx);
                    let (clock, trace) = ctx.into_parts();
                    (out, clock, trace)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                slots[rank] = Some(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
            }
        });

        let mut results = Vec::with_capacity(self.p);
        let mut finish_times = Vec::with_capacity(self.p);
        let mut compute_ops = Vec::with_capacity(self.p);
        let mut messages = Vec::with_capacity(self.p);
        let mut trace = Trace::enabled();
        for slot in slots {
            let (out, clock, t) = slot.expect("every rank produces a result");
            results.push(out);
            finish_times.push(clock.now());
            compute_ops.push(clock.compute_ops());
            messages.push(clock.messages());
            trace.merge(t);
        }
        let makespan = finish_times.iter().cloned().fold(0.0, f64::max);
        RunResult {
            results,
            makespan,
            finish_times,
            compute_ops,
            messages,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates() {
        let m = Machine::new(4, ClockParams::free());
        let run = m.run(|ctx| {
            // Each rank adds its id and passes a token around the ring.
            if ctx.rank() == 0 {
                ctx.send(1, 0usize, 1);
                ctx.recv::<usize>(3)
            } else {
                let v = ctx.recv::<usize>(ctx.rank() - 1);
                let next = (ctx.rank() + 1) % ctx.size();
                ctx.send(next, v + ctx.rank(), 1);
                0
            }
        });
        assert_eq!(run.results[0], 1 + 2 + 3);
    }

    #[test]
    fn exchange_is_symmetric_and_synchronizing() {
        let m = Machine::new(2, ClockParams::new(10.0, 1.0));
        let run = m.run(|ctx| {
            // Rank 1 computes first, then both exchange.
            if ctx.rank() == 1 {
                ctx.charge(100.0, "work");
            }
            let got = ctx.exchange(1 - ctx.rank(), ctx.rank() as u64, 5);
            (got, ctx.time())
        });
        assert_eq!(run.results[0].0, 1);
        assert_eq!(run.results[1].0, 0);
        // Both end at max(0, 100) + 10 + 5 = 115.
        assert_eq!(run.results[0].1, 115.0);
        assert_eq!(run.results[1].1, 115.0);
        assert_eq!(run.makespan, 115.0);
    }

    #[test]
    fn sends_from_one_rank_serialize_on_its_clock() {
        let m = Machine::new(3, ClockParams::new(10.0, 1.0));
        let run = m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, (), 4);
                ctx.send(2, (), 4);
                ctx.time()
            } else {
                ctx.recv::<()>(0);
                ctx.time()
            }
        });
        // Sender: two eager sends of 14 each -> 28.
        assert_eq!(run.results[0], 28.0);
        // First receiver: max(0, 0) + 14.
        assert_eq!(run.results[1], 14.0);
        // Second receiver: sender started its send at t=14 -> 14 + 14.
        assert_eq!(run.results[2], 28.0);
    }

    #[test]
    fn barrier_aligns_clocks_to_max() {
        let m = Machine::new(4, ClockParams::free());
        let run = m.run(|ctx| {
            ctx.charge((ctx.rank() * 10) as f64, "skew");
            ctx.barrier();
            ctx.time()
        });
        for t in run.results {
            assert_eq!(t, 30.0);
        }
    }

    #[test]
    fn repeated_barriers_stay_consistent() {
        let m = Machine::new(3, ClockParams::free());
        let run = m.run(|ctx| {
            let mut times = Vec::new();
            for round in 0..5 {
                ctx.charge(((ctx.rank() + round) % 3) as f64, "w");
                ctx.barrier();
                times.push(ctx.time());
            }
            times
        });
        for round in 0..5 {
            let t0 = run.results[0][round];
            assert!(
                run.results.iter().all(|r| r[round] == t0),
                "round {round} disagrees"
            );
        }
        // Times strictly increase across rounds (some rank always works).
        for r in &run.results {
            for w in r.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn makespan_is_deterministic_across_reruns() {
        let m = Machine::new(8, ClockParams::new(50.0, 2.0));
        let prog = |ctx: &mut Ctx| {
            // A butterfly allreduce-like exchange pattern.
            let mut v = ctx.rank() as u64;
            for round in 0..3 {
                let partner = ctx.rank() ^ (1 << round);
                let got = ctx.exchange(partner, v, 8);
                v += got;
                ctx.charge(8.0, "combine");
            }
            v
        };
        let a = m.run(prog);
        let b = m.run(prog);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.results, b.results);
        assert_eq!(a.results, vec![28; 8]);
        // 3 rounds x (50 + 8*2 + 8 compute) = 3 * 74 = 222.
        assert_eq!(a.makespan, 222.0);
    }

    #[test]
    fn recv_any_collects_from_all_sources() {
        let m = Machine::new(5, ClockParams::free());
        let run = m.run(|ctx| {
            if ctx.rank() == 0 {
                let mut seen = vec![false; ctx.size()];
                let mut sum = 0u64;
                for _ in 1..ctx.size() {
                    let (src, v): (usize, u64) = ctx.recv_any();
                    assert!(!seen[src], "duplicate source {src}");
                    seen[src] = true;
                    assert_eq!(v, src as u64 * 7);
                    sum += v;
                }
                sum
            } else {
                // Stagger the sends so arrival order is nontrivial.
                ctx.charge((ctx.rank() * 13 % 5) as f64, "skew");
                ctx.send(0, ctx.rank() as u64 * 7, 1);
                0
            }
        });
        assert_eq!(run.results[0], 7 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn recv_any_is_cost_equivalent_to_directed_recv() {
        let m = Machine::new(2, ClockParams::new(10.0, 1.0));
        let any = m.run(|ctx| {
            if ctx.rank() == 0 {
                let (_, _v): (usize, ()) = ctx.recv_any();
            } else {
                ctx.send(0, (), 5);
            }
            ctx.time()
        });
        let directed = m.run(|ctx| {
            if ctx.rank() == 0 {
                let _: () = ctx.recv(1);
            } else {
                ctx.send(0, (), 5);
            }
            ctx.time()
        });
        assert_eq!(any.results, directed.results);
    }

    #[test]
    fn tracing_collects_events_from_all_ranks() {
        let m = Machine::new(2, ClockParams::free()).with_tracing();
        let run = m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1u8, 1);
            } else {
                ctx.recv::<u8>(0);
            }
            ctx.mark(format!("done-{}", ctx.rank()));
        });
        let marks = run.trace.marks();
        assert!(marks.contains(&"done-0"));
        assert!(marks.contains(&"done-1"));
        let sends = run
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Send { .. }))
            .count();
        assert_eq!(sends, 1);
    }

    #[test]
    fn mixed_payload_types_in_one_program() {
        let m = Machine::new(2, ClockParams::free());
        let run = m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![1.5f64, 2.5], 2);
                ctx.send(1, String::from("tag"), 1);
                0.0
            } else {
                let v: Vec<f64> = ctx.recv(0);
                let s: String = ctx.recv(0);
                assert_eq!(s, "tag");
                v.iter().sum()
            }
        });
        assert_eq!(run.results[1], 4.0);
    }

    #[test]
    #[should_panic(expected = "not of the expected type")]
    fn type_mismatch_panics_with_context() {
        let m = Machine::new(2, ClockParams::free());
        m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1u32, 1);
            } else {
                let _: u64 = ctx.recv(0);
            }
        });
    }

    #[test]
    fn single_rank_machine_runs() {
        let m = Machine::new(1, ClockParams::free());
        let run = m.run(|ctx| {
            ctx.barrier();
            ctx.charge(3.0, "solo");
            ctx.rank()
        });
        assert_eq!(run.results, vec![0]);
        assert_eq!(run.makespan, 3.0);
    }

    #[test]
    fn run_result_stats_match_activity() {
        let m = Machine::new(2, ClockParams::new(1.0, 1.0));
        let run = m.run(|ctx| {
            ctx.charge(7.0, "w");
            ctx.exchange(1 - ctx.rank(), (), 3);
        });
        assert_eq!(run.compute_ops, vec![7.0, 7.0]);
        assert_eq!(run.messages, vec![1, 1]);
        assert_eq!(run.finish_times[0], run.finish_times[1]);
        assert_eq!(run.makespan, 7.0 + 1.0 + 3.0);
    }
}
