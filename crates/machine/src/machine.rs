//! The SPMD runtime: one thread per virtual processor, plus the
//! deterministic simulated clock.
//!
//! A [`Machine`] is configured with a processor count `p` and
//! [`ClockParams`]. [`Machine::run`] executes one SPMD program: the given
//! closure runs once per rank, each instance receiving a [`Ctx`] with the
//! rank's identity, its mailboxes, its simulated clock and its trace.
//!
//! ## Cost semantics
//!
//! * [`Ctx::charge`] — local computation, 1 unit per operation (paper §4.1).
//! * [`Ctx::send`] / [`Ctx::recv`] — a one-way message of `m` words. The
//!   sender is *eager*: it pays `ts + m·tw` from its own clock and moves
//!   on. The receiver completes at `max(own clock, sender's clock at send
//!   start) + ts + m·tw`.
//! * [`Ctx::exchange`] — the paper's simultaneous bidirectional exchange:
//!   both partners rendezvous and pay a *single* `ts + m·tw`
//!   (`T_sendrecv`, §4.1), ending at the same instant.
//! * [`Ctx::barrier`] — synchronizes control *and* clocks (all ranks leave
//!   at the global maximum time).
//!
//! Because message timestamps travel with the data, the simulated makespan
//! of a run is a pure function of the communication structure — identical
//! across reruns regardless of OS scheduling.
//!
//! ## Fault injection
//!
//! [`Machine::with_faults`] attaches a [`FaultPlan`]; every `Ctx`
//! operation then consults a per-rank [`FaultInjector`]:
//!
//! * compute charges are stretched by the rank's straggler factor;
//! * transfer costs are inflated for slow links (undirected, so exchanges
//!   stay symmetric);
//! * sends (and each direction of an exchange) replay the plan's message
//!   drops through a sender-side ack/retry protocol — every failed
//!   attempt costs the wasted transfer plus the ack timeout, recorded as
//!   an [`EventKind::Retry`] span, before the retransmission; exhausting
//!   [`RetryParams::max_attempts`](crate::fault::RetryParams) raises
//!   [`MachineError::Timeout`];
//! * a [`CrashSpec`](crate::fault::CrashSpec) kills its rank just before
//!   the chosen operation ordinal; peers that depend on the dead rank
//!   observe the disconnect and abort with
//!   [`MachineError::RankFailed`].
//!
//! Faulted runs go through [`Machine::try_run`], which returns
//! `Err(MachineError)` on any injected failure instead of hanging or
//! panicking. A plan that injects nothing is observationally inert: the
//! run is bit-identical to a plain one.

use std::cell::RefCell;
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex, OnceLock};
use std::task::{Context as TaskContext, Poll, Waker};

use crate::barrier::ClockBarrier;
use crate::channel::{build_mesh, Mailboxes, Mesh, Packet};
use crate::clock::{ClockParams, SimClock};
use crate::des::DesShared;
use crate::error::MachineError;
use crate::fault::{FaultInjector, FaultPlan};
use crate::pool::RankPool;
use crate::trace::{EventKind, Trace};

/// The panic payload a rank throws to unwind out of the SPMD closure when
/// a fault fires. Crate-private: [`Machine::try_run`] and the DES
/// scheduler catch it at the rank boundary and turn it into an `Err`, so
/// it is never visible to callers (and the panic hook stays silent about
/// it).
pub(crate) struct FaultAbort {
    pub(crate) error: MachineError,
    /// True on the rank where the fault originated (crash victim, timed-out
    /// sender); false on ranks aborting in sympathy (disconnect cascades,
    /// barrier aborts).
    pub(crate) origin: bool,
}

/// Silence the default panic-hook output for [`FaultAbort`] unwinds —
/// injected faults are expected control flow, not bugs — while delegating
/// every other panic to the previously installed hook. Installed at most
/// once per process, the first time a faulted run starts.
pub(crate) fn install_quiet_fault_hook() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<FaultAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Communication backend behind a [`Ctx`]: real mailboxes plus a blocking
/// barrier for the thread-per-rank engines, or a handle into the shared
/// single-threaded event state for the discrete-event engine. All cost,
/// fault and trace accounting lives *above* this enum — the operation
/// sequences are shared verbatim — so the engines are bit-identical by
/// construction.
pub(crate) enum Comm {
    Thread {
        mailboxes: Mailboxes,
        barrier: Arc<ClockBarrier>,
    },
    Des {
        rank: usize,
        size: usize,
        shared: Rc<DesShared>,
    },
}

/// Per-rank execution context handed to the SPMD closure.
pub struct Ctx {
    comm: Comm,
    clock: SimClock,
    trace: Trace,
    injector: Option<FaultInjector>,
}

impl Ctx {
    /// Build a context for one DES-scheduled rank (no mailboxes, no
    /// blocking barrier — all communication goes through `shared`).
    pub(crate) fn new_des(
        rank: usize,
        p: usize,
        shared: Rc<DesShared>,
        params: ClockParams,
        tracing: bool,
        plan: Option<&Arc<FaultPlan>>,
    ) -> Ctx {
        Ctx {
            comm: Comm::Des {
                rank,
                size: p,
                shared,
            },
            clock: SimClock::new_for_rank(params, rank),
            trace: if tracing {
                Trace::enabled()
            } else {
                Trace::disabled()
            },
            injector: plan.map(|pl| FaultInjector::new(pl.clone(), rank, p)),
        }
    }

    /// This rank's id, `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        match &self.comm {
            Comm::Thread { mailboxes, .. } => mailboxes.rank(),
            Comm::Des { rank, .. } => *rank,
        }
    }

    /// Number of processors in the machine.
    #[inline]
    pub fn size(&self) -> usize {
        match &self.comm {
            Comm::Thread { mailboxes, .. } => mailboxes.size(),
            Comm::Des { size, .. } => *size,
        }
    }

    /// Enqueue a packet for rank `to` on whichever backend is active.
    fn push_packet(&self, to: usize, packet: Packet) -> Result<(), MachineError> {
        match &self.comm {
            Comm::Thread { mailboxes, .. } => mailboxes.push(to, packet),
            Comm::Des { rank, shared, .. } => shared.push(*rank, to, packet),
        }
    }

    /// Dequeue the next packet from rank `from`: blocks the thread on the
    /// thread backends, suspends the rank future on the DES backend.
    async fn pop_packet(&self, from: usize) -> Result<Packet, MachineError> {
        match &self.comm {
            Comm::Thread { mailboxes, .. } => mailboxes.pop(from),
            Comm::Des { rank, shared, .. } => {
                crate::des::DesPop::new(Rc::clone(shared), *rank, from, self.clock.now()).await
            }
        }
    }

    /// Dequeue the next packet from *any* source (rotating fair scan).
    async fn pop_any_packet(&self) -> Result<(usize, Packet), MachineError> {
        match &self.comm {
            Comm::Thread { mailboxes, .. } => mailboxes.pop_any(),
            Comm::Des { rank, shared, .. } => {
                crate::des::DesPopAny::new(Rc::clone(shared), *rank, self.clock.now()).await
            }
        }
    }

    /// Current simulated time on this rank.
    #[inline]
    pub fn time(&self) -> f64 {
        self.clock.now()
    }

    /// The machine's cost parameters.
    #[inline]
    pub fn params(&self) -> ClockParams {
        self.clock.params()
    }

    /// Immutable view of this rank's simulated clock (statistics).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Advance the fault-plan operation counter; unwind if the plan
    /// crashes this rank at this ordinal.
    #[inline]
    fn fault_tick(&mut self) {
        let crashed = match &mut self.injector {
            Some(inj) => inj.tick(),
            None => false,
        };
        if crashed {
            let rank = self.rank();
            std::panic::panic_any(FaultAbort {
                error: MachineError::RankFailed { rank },
                origin: true,
            });
        }
    }

    /// Transfer cost between `a` and `b`, inflated by any slow-link
    /// entries of the fault plan (bit-identical to the plain cost when
    /// none apply).
    #[inline]
    fn link_cost(&self, a: usize, b: usize, words: u64) -> f64 {
        let base = self.clock.params().transfer_between(a, b, words);
        match &self.injector {
            Some(inj) => inj.inflate_link(a, b, base),
            None => base,
        }
    }

    /// Replay the plan's drops for the next message on the directed lane
    /// `self -> to`: each dropped attempt advances this clock by the
    /// wasted transfer plus the ack timeout (recorded as a `Retry` span);
    /// exhausting the attempt budget aborts with `Timeout`.
    fn simulate_drops(&mut self, to: usize, words: u64, cost: f64) {
        let Some(inj) = &mut self.injector else {
            return;
        };
        if !inj.is_lossy() {
            return;
        }
        let drops = inj.outgoing_drops(to);
        if drops == 0 {
            return;
        }
        let retry = inj.retry();
        let from = self.rank();
        if drops >= retry.max_attempts {
            std::panic::panic_any(FaultAbort {
                error: MachineError::Timeout {
                    from,
                    to,
                    attempts: retry.max_attempts,
                },
                origin: true,
            });
        }
        for attempt in 1..=drops {
            let start = self.clock.now();
            let t = self.clock.charge_retry(cost + retry.timeout);
            if self.trace.is_enabled() {
                self.trace
                    .record(from, start, t, EventKind::Retry { to, words, attempt });
            }
        }
    }

    /// Unwind out of a failed channel operation: under a fault plan this
    /// becomes a recoverable error (`Disconnected` peers are reported as
    /// `RankFailed`); without one it is a programming error and panics
    /// with the legacy message.
    fn channel_failure(&self, what: &str, e: MachineError) -> ! {
        if self.injector.is_some() {
            let error = match e {
                MachineError::Disconnected { rank } => MachineError::RankFailed { rank },
                other => other,
            };
            std::panic::panic_any(FaultAbort {
                error,
                origin: false,
            });
        }
        panic!("{what} on rank {}: {e}", self.rank());
    }

    /// Charge `ops` units of local computation, labelled for the trace.
    /// Under a fault plan a straggler rank's clock is stretched by its
    /// slowdown factor (the logical op count is unchanged).
    pub fn charge(&mut self, ops: f64, label: &str) {
        self.fault_tick();
        let start = self.clock.now();
        match &self.injector {
            Some(inj) => {
                let factor = inj.compute_factor();
                self.clock.charge_compute_scaled(ops, factor);
            }
            None => self.clock.charge_compute(ops),
        }
        if self.trace.is_enabled() {
            self.trace.record(
                self.rank(),
                start,
                self.clock.now(),
                EventKind::Compute {
                    ops,
                    label: label.to_string(),
                },
            );
        }
    }

    /// Record a free-form marker in the trace (used by tests to capture
    /// intermediate values, e.g. the tuples of the paper's Figures 4–6).
    pub fn mark(&mut self, note: impl Into<String>) {
        if self.trace.is_enabled() {
            let rank = self.rank();
            let now = self.clock.now();
            self.trace
                .record_instant(rank, now, EventKind::Mark { note: note.into() });
        }
    }

    /// Record an end-of-stage boundary: everything this rank did since the
    /// previous boundary belongs to program stage `index`. Executors inject
    /// these so [`crate::profile::ProfileReport`] can attribute time per
    /// stage.
    pub fn end_stage(&mut self, index: usize, label: impl Into<String>) {
        if self.trace.is_enabled() {
            let rank = self.rank();
            let now = self.clock.now();
            self.trace.record_instant(
                rank,
                now,
                EventKind::Stage {
                    index,
                    label: label.into(),
                },
            );
        }
    }

    /// Send `value` (declared size `words`) to rank `to`. Eager: this
    /// rank's clock advances by `ts + words·tw` (plus any injected retry
    /// overhead — dropped attempts delay the packet's entry into the
    /// network but never its payload or ordering, so recovered sends are
    /// observationally identical to clean ones).
    pub fn send<T: Send + 'static>(&mut self, to: usize, value: T, words: u64) {
        self.fault_tick();
        let cost = self.link_cost(self.rank(), to, words);
        self.simulate_drops(to, words, cost);
        let send_time = self.clock.now();
        if let Err(e) = self.push_packet(
            to,
            Packet {
                payload: Box::new(value),
                words,
                send_time,
            },
        ) {
            self.channel_failure("send", e);
        }
        // The sender pays the transfer from its own clock.
        let t = self.clock.complete_exchange_costing(send_time, words, cost);
        if self.trace.is_enabled() {
            let rank = self.rank();
            self.trace
                .record(rank, send_time, t, EventKind::Send { to, words });
        }
    }

    /// Receive the next value from rank `from`, blocking until it arrives.
    /// Completes at `max(own clock, sender's send-start) + ts + words·tw`.
    ///
    /// # Panics
    /// Panics if the payload is not a `T` — a type mismatch is a bug in the
    /// SPMD program, not a runtime condition.
    pub fn recv<T: Send + 'static>(&mut self, from: usize) -> T {
        drive(self.recv_async(from))
    }

    /// Engine-agnostic form of [`recv`](Self::recv): suspends the rank
    /// future on the DES engine, resolves immediately (the mailbox blocks
    /// the thread internally) on the thread engines.
    pub async fn recv_async<T: Send + 'static>(&mut self, from: usize) -> T {
        self.fault_tick();
        let packet = match self.pop_packet(from).await {
            Ok(p) => p,
            Err(e) => self.channel_failure("recv", e),
        };
        let words = packet.words;
        let cost = self.link_cost(self.rank(), from, words);
        let (start, t) = self
            .clock
            .complete_exchange_spanning(packet.send_time, words, cost);
        if self.trace.is_enabled() {
            let rank = self.rank();
            self.trace.record(
                rank,
                start,
                t,
                EventKind::Recv {
                    from,
                    words,
                    sent_at: packet.send_time,
                },
            );
        }
        let to = self.rank();
        *packet.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "{}",
                MachineError::TypeMismatch {
                    from,
                    to,
                    expected: std::any::type_name::<T>()
                }
            )
        })
    }

    /// Receive the next message from *any* source (MPI_ANY_SOURCE),
    /// returning `(source, value)`. Cost accounting is identical to
    /// [`recv`](Self::recv) from the actual source.
    ///
    /// # Panics
    /// Panics if the payload is not a `T`.
    pub fn recv_any<T: Send + 'static>(&mut self) -> (usize, T) {
        drive(self.recv_any_async())
    }

    /// Engine-agnostic form of [`recv_any`](Self::recv_any).
    pub async fn recv_any_async<T: Send + 'static>(&mut self) -> (usize, T) {
        self.fault_tick();
        let (from, packet) = match self.pop_any_packet().await {
            Ok(r) => r,
            Err(e) => self.channel_failure("recv_any", e),
        };
        let words = packet.words;
        let cost = self.link_cost(self.rank(), from, words);
        let (start, t) = self
            .clock
            .complete_exchange_spanning(packet.send_time, words, cost);
        if self.trace.is_enabled() {
            let rank = self.rank();
            self.trace.record(
                rank,
                start,
                t,
                EventKind::Recv {
                    from,
                    words,
                    sent_at: packet.send_time,
                },
            );
        }
        let to = self.rank();
        let v = *packet.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "{}",
                MachineError::TypeMismatch {
                    from,
                    to,
                    expected: std::any::type_name::<T>()
                }
            )
        });
        (from, v)
    }

    /// Simultaneous bidirectional exchange with `partner`: sends `value`,
    /// returns the partner's value. Both sides pay a single
    /// `ts + max_words·tw` and end at the same simulated instant
    /// (the paper's `T_sendrecv`). Under a lossy fault plan each direction
    /// replays its own drop schedule before entering the rendezvous, so
    /// retry delays push the meeting point out without breaking its
    /// symmetry.
    pub fn exchange<T: Send + 'static>(&mut self, partner: usize, value: T, words: u64) -> T {
        drive(self.exchange_async(partner, value, words))
    }

    /// Engine-agnostic form of [`exchange`](Self::exchange).
    pub async fn exchange_async<T: Send + 'static>(
        &mut self,
        partner: usize,
        value: T,
        words: u64,
    ) -> T {
        self.fault_tick();
        let out_cost = self.link_cost(self.rank(), partner, words);
        self.simulate_drops(partner, words, out_cost);
        let my_time = self.clock.now();
        if let Err(e) = self.push_packet(
            partner,
            Packet {
                payload: Box::new(value),
                words,
                send_time: my_time,
            },
        ) {
            self.channel_failure("exchange push", e);
        }
        let packet = match self.pop_packet(partner).await {
            Ok(p) => p,
            Err(e) => self.channel_failure("exchange pop", e),
        };
        let w = words.max(packet.words);
        let cost = self.link_cost(self.rank(), partner, w);
        let (start, t) = self
            .clock
            .complete_exchange_spanning(packet.send_time, w, cost);
        if self.trace.is_enabled() {
            let rank = self.rank();
            self.trace.record(
                rank,
                start,
                t,
                EventKind::Exchange {
                    partner,
                    words: w,
                    sent_at: packet.send_time,
                },
            );
        }
        let from = partner;
        let to = self.rank();
        *packet.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "{}",
                MachineError::TypeMismatch {
                    from,
                    to,
                    expected: std::any::type_name::<T>()
                }
            )
        })
    }

    /// Barrier across all ranks; clocks leave at the global maximum. If a
    /// rank dies mid-run the barrier aborts instead of blocking forever.
    pub fn barrier(&mut self) {
        drive(self.barrier_async())
    }

    /// Engine-agnostic form of [`barrier`](Self::barrier).
    pub async fn barrier_async(&mut self) {
        self.fault_tick();
        let entry = self.clock.now();
        let waited = match &self.comm {
            Comm::Thread { barrier, .. } => barrier.wait(entry),
            Comm::Des { rank, shared, .. } => {
                crate::des::DesBarrier::new(Rc::clone(shared), *rank, entry).await
            }
        };
        let t = match waited {
            Ok(t) => t,
            Err(e) => {
                if self.injector.is_some() {
                    std::panic::panic_any(FaultAbort {
                        error: e,
                        origin: false,
                    });
                }
                panic!("barrier on rank {}: {e}", self.rank());
            }
        };
        self.clock.sync_to(t);
        if self.trace.is_enabled() {
            let rank = self.rank();
            self.trace.record(rank, entry, t, EventKind::Barrier);
        }
    }

    pub(crate) fn into_parts(self) -> (SimClock, Trace) {
        (self.clock, self.trace)
    }
}

/// Run a `Ctx` future to completion on the calling thread with a no-op
/// waker. On the thread engines every `*_async` operation resolves on its
/// first poll (blocking happens inside the mailboxes/barrier), so a single
/// poll suffices and the sync wrappers cost nothing. `Poll::Pending` means
/// a DES-backed context reached a sync entry point — only the DES
/// scheduler may suspend a rank — so that is a hard error.
pub fn drive<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let mut cx = TaskContext::from_waker(Waker::noop());
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(out) => out,
        Poll::Pending => panic!(
            "sync collective entry point suspended: blocking Ctx methods cannot run on the \
             DES engine — use the *_async variants via Machine::try_run_des"
        ),
    }
}

/// Outcome of one SPMD run.
#[derive(Debug)]
pub struct RunResult<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Maximum final simulated time over all ranks — the paper's notion of
    /// parallel run time.
    pub makespan: f64,
    /// Final simulated time of each rank.
    pub finish_times: Vec<f64>,
    /// Total computation operations charged, per rank.
    pub compute_ops: Vec<f64>,
    /// Message exchanges each rank participated in.
    pub messages: Vec<u64>,
    /// Failed transmission attempts each rank retried (all zero without a
    /// lossy fault plan).
    pub retries: Vec<u64>,
    /// Simulated time each rank lost to failed attempts — the *exact*
    /// fault overhead of a lossy-but-recovered run.
    pub retry_time: Vec<f64>,
    /// Merged event trace (empty unless tracing was enabled).
    pub trace: Trace,
}

impl<T> RunResult<T> {
    /// Failed transmission attempts summed over ranks.
    pub fn total_retries(&self) -> u64 {
        self.retries.iter().sum()
    }

    /// Retry time summed over ranks.
    pub fn total_retry_time(&self) -> f64 {
        self.retry_time.iter().sum()
    }
}

/// What one rank's thread (or DES future) produced.
pub(crate) enum RankOutcome<T> {
    /// Clean completion.
    Done(T, SimClock, Trace),
    /// An injected fault unwound the rank.
    Faulted(MachineError, bool),
    /// A genuine panic (programming error) — payload re-raised by the
    /// main thread after every rank has been joined.
    Panicked(Box<dyn std::any::Any + Send>),
}

/// How [`Machine::run`] maps ranks onto OS threads.
///
/// Both engines execute the identical per-rank body against the identical
/// channel/clock/barrier machinery, and the simulated clock travels with
/// the data, so every observable output — results, makespans, traces,
/// retry counters — is bit-identical between them. The difference is pure
/// host-side overhead: `Legacy` spawns and joins `p` fresh threads per
/// run, `Pooled` dispatches to a persistent per-thread worker pool with
/// reusable mesh and barrier (roughly an order of magnitude cheaper for
/// the short runs a sweep is made of).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecEngine {
    /// Persistent rank pool, reused mesh/barrier (default).
    Pooled,
    /// Spawn `p` fresh scoped threads per run (the historical engine).
    Legacy,
    /// Single-threaded discrete-event scheduler: each rank is a resumable
    /// future driven off a binary-heap event queue, so `p` is bounded by
    /// memory rather than OS threads. Requires async rank bodies
    /// ([`Machine::try_run_des`]); `core::exec` dispatches automatically.
    Des,
}

impl ExecEngine {
    /// Largest `p` the thread-per-rank engines accept before reporting
    /// [`MachineError::CapacityExceeded`] instead of exhausting the host's
    /// thread budget mid-spawn.
    pub const THREAD_MAX_P: usize = 4096;

    /// The engine's rank-count ceiling; `None` means memory-bound (DES).
    pub fn max_p(self) -> Option<usize> {
        match self {
            ExecEngine::Pooled | ExecEngine::Legacy => Some(Self::THREAD_MAX_P),
            ExecEngine::Des => None,
        }
    }

    /// Stable lowercase name, matching the `COLLOPT_ENGINE` values.
    pub fn name(self) -> &'static str {
        match self {
            ExecEngine::Pooled => "pooled",
            ExecEngine::Legacy => "legacy",
            ExecEngine::Des => "des",
        }
    }

    /// The process-wide default engine: `Pooled`, unless overridden via
    /// the `COLLOPT_ENGINE` environment variable (read once). This is
    /// what a [`Machine`] uses when no engine is pinned with
    /// [`Machine::with_engine`].
    pub fn process_default() -> ExecEngine {
        default_engine()
    }
}

impl std::str::FromStr for ExecEngine {
    type Err = String;

    /// Parse an engine by its [`name`](ExecEngine::name); the inverse of
    /// `name()`, shared by the `COLLOPT_ENGINE` variable and the
    /// `collopt --engine` flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pooled" => Ok(ExecEngine::Pooled),
            "legacy" => Ok(ExecEngine::Legacy),
            "des" => Ok(ExecEngine::Des),
            other => Err(format!(
                "unknown engine '{other}' (expected legacy, pooled or des)"
            )),
        }
    }
}

/// Process-wide default engine: `Pooled`, unless overridden once via the
/// `COLLOPT_ENGINE` environment variable (`legacy`, `pooled` or `des`).
fn default_engine() -> ExecEngine {
    static DEFAULT: OnceLock<ExecEngine> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("COLLOPT_ENGINE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(ExecEngine::Pooled)
    })
}

/// The per-host-thread persistent substrate for one machine size: parked
/// rank workers plus the reusable mesh and barrier they run against.
/// Caching per calling thread (rather than globally) keeps concurrent
/// sweep workers from serializing on a shared pool.
struct Engine {
    pool: RankPool,
    mesh: Mesh,
    barrier: Arc<ClockBarrier>,
}

thread_local! {
    static ENGINES: RefCell<HashMap<usize, Engine>> = RefCell::new(HashMap::new());
}

/// A virtual machine of `p` fully connected processors.
#[derive(Debug, Clone)]
pub struct Machine {
    p: usize,
    params: ClockParams,
    tracing: bool,
    faults: Option<Arc<FaultPlan>>,
    engine: Option<ExecEngine>,
}

impl Machine {
    /// A machine with `p ≥ 1` processors and the given cost parameters.
    pub fn new(p: usize, params: ClockParams) -> Self {
        assert!(p >= 1, "{}", MachineError::EmptyMachine);
        Machine {
            p,
            params,
            tracing: false,
            faults: None,
            engine: None,
        }
    }

    /// Enable event tracing for subsequent runs.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Pin the execution engine for this machine, overriding the process
    /// default (see [`ExecEngine`]; observable behaviour is identical).
    pub fn with_engine(mut self, engine: ExecEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Attach a fault plan: subsequent runs replay its faults
    /// deterministically. Prefer [`try_run`](Self::try_run) afterwards —
    /// [`run`](Self::run) panics if the plan makes the run fail.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Number of processors.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Cost parameters.
    pub fn params(&self) -> ClockParams {
        self.params
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref()
    }

    /// The engine runs will use: the pinned one, else the process default.
    pub fn engine(&self) -> ExecEngine {
        self.engine.unwrap_or_else(default_engine)
    }

    /// Run one SPMD program: `f` executes once per rank, concurrently.
    ///
    /// The closure is shared between threads, so captured state must be
    /// `Sync`; per-rank inputs are typically captured in an `Arc<Vec<_>>`
    /// and indexed by `ctx.rank()`.
    ///
    /// # Panics
    /// Panics if an attached fault plan makes the run fail; use
    /// [`try_run`](Self::try_run) to observe injected failures as errors.
    pub fn run<T, F>(&self, f: F) -> RunResult<T>
    where
        T: Send,
        F: Fn(&mut Ctx) -> T + Sync,
    {
        self.try_run(f)
            .unwrap_or_else(|e| panic!("machine run failed: {e}"))
    }

    /// Run one SPMD program, surfacing injected faults as errors.
    ///
    /// Returns `Err` when a fault plan crashes a rank
    /// ([`MachineError::RankFailed`]) or exhausts a message's retry budget
    /// ([`MachineError::Timeout`]); the error describes the *originating*
    /// fault even when other ranks failed in sympathy. Every rank thread
    /// is joined before returning — no hang, no leaked thread. Genuine
    /// panics (programming errors) still propagate as panics.
    pub fn try_run<T, F>(&self, f: F) -> Result<RunResult<T>, MachineError>
    where
        T: Send,
        F: Fn(&mut Ctx) -> T + Sync,
    {
        self.check_capacity()?;
        if self.faults.is_some() {
            install_quiet_fault_hook();
        }
        let outcomes = match self.engine() {
            ExecEngine::Pooled => self.run_ranks_pooled(&f),
            ExecEngine::Legacy => self.run_ranks_spawned(&f),
            ExecEngine::Des => panic!(
                "ExecEngine::Des cannot drive a blocking rank body: use \
                 Machine::try_run_des with an async body (core::exec dispatches automatically)"
            ),
        };
        collect_outcomes(self.p, outcomes)
    }

    /// Reject runs whose `p` exceeds the selected engine's rank capacity,
    /// *before* any thread is spawned (a clean error instead of a panic
    /// mid-spawn when the host's thread budget runs out).
    fn check_capacity(&self) -> Result<(), MachineError> {
        let engine = self.engine();
        if let Some(limit) = engine.max_p() {
            if self.p > limit {
                return Err(MachineError::CapacityExceeded {
                    requested: self.p,
                    limit,
                    engine: engine.name(),
                });
            }
        }
        Ok(())
    }

    /// Run one SPMD program on the discrete-event engine: `f` is called
    /// once per rank to build that rank's body as a future borrowing its
    /// [`Ctx`]. All ranks advance cooperatively on the calling thread, so
    /// `p` is bounded by memory, not threads — the observable results
    /// (outputs, makespan bits, retries, traces) are bit-identical to the
    /// thread engines.
    ///
    /// Injected faults surface as `Err` exactly as in
    /// [`try_run`](Self::try_run); genuine panics propagate.
    pub fn try_run_des<T, F>(&self, f: F) -> Result<RunResult<T>, MachineError>
    where
        T: Send,
        F: for<'a> Fn(&'a mut Ctx) -> Pin<Box<dyn Future<Output = T> + 'a>>,
    {
        if self.faults.is_some() {
            install_quiet_fault_hook();
        }
        let outcomes =
            crate::des::run_ranks_des(self.p, self.params, self.tracing, self.faults.as_ref(), &f);
        collect_outcomes(self.p, outcomes)
    }

    /// Panicking wrapper around [`try_run_des`](Self::try_run_des), the
    /// DES counterpart of [`run`](Self::run).
    pub fn run_des<T, F>(&self, f: F) -> RunResult<T>
    where
        T: Send,
        F: for<'a> Fn(&'a mut Ctx) -> Pin<Box<dyn Future<Output = T> + 'a>>,
    {
        self.try_run_des(f)
            .unwrap_or_else(|e| panic!("machine run failed: {e}"))
    }

    /// Historical engine: `p` fresh scoped threads per run. Immutable run
    /// configuration (fault plan, params) is shared by reference into the
    /// scope — no per-rank deep clones.
    fn run_ranks_spawned<T, F>(&self, f: &F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(&mut Ctx) -> T + Sync,
    {
        let mesh = build_mesh(self.p);
        let barrier = Arc::new(ClockBarrier::new(self.p));
        let tracing = self.tracing;
        let params = self.params;
        let plan = self.faults.as_ref();
        let p = self.p;

        let mut outcomes = Vec::with_capacity(p);
        std::thread::scope(|scope| {
            let handles: Vec<_> = mesh
                .into_iter()
                .map(|mailboxes| {
                    let barrier = &barrier;
                    scope.spawn(move || rank_body(mailboxes, barrier, params, tracing, plan, p, f))
                })
                .collect();
            for h in handles {
                outcomes.push(match h.join() {
                    Ok(outcome) => outcome,
                    Err(payload) => RankOutcome::Panicked(payload),
                });
            }
        });
        outcomes
    }

    /// Pooled engine: dispatch the run to this host thread's persistent
    /// workers, resetting the cached mesh and barrier in place. Observable
    /// behaviour is identical to the spawn engine — the rank body, channel
    /// semantics and clock are shared — only the host-side setup differs.
    fn run_ranks_pooled<T, F>(&self, f: &F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(&mut Ctx) -> T + Sync,
    {
        let tracing = self.tracing;
        let params = self.params;
        let plan = self.faults.as_ref();
        let p = self.p;
        ENGINES.with(|cell| {
            let mut engines = cell.borrow_mut();
            let engine = engines.entry(p).or_insert_with(|| Engine {
                pool: RankPool::new(p),
                mesh: Mesh::new(p),
                barrier: Arc::new(ClockBarrier::new(p)),
            });
            engine.barrier.reset();
            let handout: Vec<Mutex<Option<Mailboxes>>> = engine
                .mesh
                .issue()
                .into_iter()
                .map(|m| Mutex::new(Some(m)))
                .collect();
            let slots: Vec<Mutex<Option<RankOutcome<T>>>> =
                (0..p).map(|_| Mutex::new(None)).collect();
            let barrier = &engine.barrier;
            engine.pool.run_on(&|rank| {
                let mailboxes = handout[rank]
                    .lock()
                    .expect("mailbox cell poisoned")
                    .take()
                    .expect("mailbox taken twice");
                let outcome = rank_body(mailboxes, barrier, params, tracing, plan, p, f);
                *slots[rank].lock().expect("outcome slot poisoned") = Some(outcome);
            });
            slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .expect("outcome slot poisoned")
                        .expect("worker finished without an outcome")
                })
                .collect()
        })
    }
}

/// The SPMD body of one rank — identical for every engine. Builds the
/// rank's context, runs the user closure under `catch_unwind`, and turns
/// an unwind into a [`RankOutcome`] after unblocking peers (barrier abort
/// first, then the mailbox-drop disconnect cascade).
fn rank_body<T, F>(
    mailboxes: Mailboxes,
    barrier: &Arc<ClockBarrier>,
    params: ClockParams,
    tracing: bool,
    plan: Option<&Arc<FaultPlan>>,
    p: usize,
    f: &F,
) -> RankOutcome<T>
where
    T: Send,
    F: Fn(&mut Ctx) -> T + Sync,
{
    let rank = mailboxes.rank();
    let mut ctx = Ctx {
        comm: Comm::Thread {
            mailboxes,
            barrier: barrier.clone(),
        },
        clock: SimClock::new_for_rank(params, rank),
        trace: if tracing {
            Trace::enabled()
        } else {
            Trace::disabled()
        },
        injector: plan.map(|pl| FaultInjector::new(pl.clone(), rank, p)),
    };
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut ctx)));
    match caught {
        Ok(out) => {
            let (clock, trace) = ctx.into_parts();
            RankOutcome::Done(out, clock, trace)
        }
        Err(payload) => {
            // Unblock peers: abort the barrier first, then drop the
            // mailboxes (disconnect cascade).
            let (error, outcome) = match payload.downcast::<FaultAbort>() {
                Ok(fa) => (fa.error.clone(), RankOutcome::Faulted(fa.error, fa.origin)),
                Err(other) => (
                    MachineError::Disconnected { rank },
                    RankOutcome::Panicked(other),
                ),
            };
            barrier.abort(error);
            drop(ctx);
            outcome
        }
    }
}

/// Triage per-rank outcomes and assemble the [`RunResult`], identically
/// for every engine. A genuine panic outranks everything (programming
/// errors must not be masked by injected faults); then the originating
/// fault (lowest rank); then any derived fault.
fn collect_outcomes<T>(
    p: usize,
    mut outcomes: Vec<RankOutcome<T>>,
) -> Result<RunResult<T>, MachineError> {
    let mut origin_error = None;
    let mut derived_error = None;
    for outcome in &outcomes {
        match outcome {
            RankOutcome::Panicked(_) => {}
            RankOutcome::Faulted(e, true) if origin_error.is_none() => {
                origin_error = Some(e.clone());
            }
            RankOutcome::Faulted(e, _) if derived_error.is_none() => {
                derived_error = Some(e.clone());
            }
            _ => {}
        }
    }
    for outcome in &mut outcomes {
        if let RankOutcome::Panicked(_) = outcome {
            let RankOutcome::Panicked(payload) = std::mem::replace(
                outcome,
                RankOutcome::Faulted(MachineError::EmptyMachine, false),
            ) else {
                unreachable!()
            };
            std::panic::resume_unwind(payload);
        }
    }
    if let Some(e) = origin_error.or(derived_error) {
        return Err(e);
    }

    let mut results = Vec::with_capacity(p);
    let mut finish_times = Vec::with_capacity(p);
    let mut compute_ops = Vec::with_capacity(p);
    let mut messages = Vec::with_capacity(p);
    let mut retries = Vec::with_capacity(p);
    let mut retry_time = Vec::with_capacity(p);
    let mut traces = Vec::with_capacity(p);
    for outcome in outcomes {
        let RankOutcome::Done(out, clock, t) = outcome else {
            unreachable!("non-Done outcomes were handled above");
        };
        results.push(out);
        finish_times.push(clock.now());
        compute_ops.push(clock.compute_ops());
        messages.push(clock.messages());
        retries.push(clock.retries());
        retry_time.push(clock.retry_time());
        traces.push(t);
    }
    let trace = Trace::merge_many(traces);
    let makespan = finish_times.iter().cloned().fold(0.0, f64::max);
    Ok(RunResult {
        results,
        makespan,
        finish_times,
        compute_ops,
        messages,
        retries,
        retry_time,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_round_trip() {
        for engine in [ExecEngine::Pooled, ExecEngine::Legacy, ExecEngine::Des] {
            assert_eq!(engine.name().parse::<ExecEngine>(), Ok(engine));
        }
        assert!("threads".parse::<ExecEngine>().is_err());
    }

    #[test]
    fn ring_pass_accumulates() {
        let m = Machine::new(4, ClockParams::free());
        let run = m.run(|ctx| {
            // Each rank adds its id and passes a token around the ring.
            if ctx.rank() == 0 {
                ctx.send(1, 0usize, 1);
                ctx.recv::<usize>(3)
            } else {
                let v = ctx.recv::<usize>(ctx.rank() - 1);
                let next = (ctx.rank() + 1) % ctx.size();
                ctx.send(next, v + ctx.rank(), 1);
                0
            }
        });
        assert_eq!(run.results[0], 1 + 2 + 3);
    }

    #[test]
    fn exchange_is_symmetric_and_synchronizing() {
        let m = Machine::new(2, ClockParams::new(10.0, 1.0));
        let run = m.run(|ctx| {
            // Rank 1 computes first, then both exchange.
            if ctx.rank() == 1 {
                ctx.charge(100.0, "work");
            }
            let got = ctx.exchange(1 - ctx.rank(), ctx.rank() as u64, 5);
            (got, ctx.time())
        });
        assert_eq!(run.results[0].0, 1);
        assert_eq!(run.results[1].0, 0);
        // Both end at max(0, 100) + 10 + 5 = 115.
        assert_eq!(run.results[0].1, 115.0);
        assert_eq!(run.results[1].1, 115.0);
        assert_eq!(run.makespan, 115.0);
    }

    #[test]
    fn sends_from_one_rank_serialize_on_its_clock() {
        let m = Machine::new(3, ClockParams::new(10.0, 1.0));
        let run = m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, (), 4);
                ctx.send(2, (), 4);
                ctx.time()
            } else {
                ctx.recv::<()>(0);
                ctx.time()
            }
        });
        // Sender: two eager sends of 14 each -> 28.
        assert_eq!(run.results[0], 28.0);
        // First receiver: max(0, 0) + 14.
        assert_eq!(run.results[1], 14.0);
        // Second receiver: sender started its send at t=14 -> 14 + 14.
        assert_eq!(run.results[2], 28.0);
    }

    #[test]
    fn barrier_aligns_clocks_to_max() {
        let m = Machine::new(4, ClockParams::free());
        let run = m.run(|ctx| {
            ctx.charge((ctx.rank() * 10) as f64, "skew");
            ctx.barrier();
            ctx.time()
        });
        for t in run.results {
            assert_eq!(t, 30.0);
        }
    }

    #[test]
    fn repeated_barriers_stay_consistent() {
        let m = Machine::new(3, ClockParams::free());
        let run = m.run(|ctx| {
            let mut times = Vec::new();
            for round in 0..5 {
                ctx.charge(((ctx.rank() + round) % 3) as f64, "w");
                ctx.barrier();
                times.push(ctx.time());
            }
            times
        });
        for round in 0..5 {
            let t0 = run.results[0][round];
            assert!(
                run.results.iter().all(|r| r[round] == t0),
                "round {round} disagrees"
            );
        }
        // Times strictly increase across rounds (some rank always works).
        for r in &run.results {
            for w in r.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn makespan_is_deterministic_across_reruns() {
        let m = Machine::new(8, ClockParams::new(50.0, 2.0));
        let prog = |ctx: &mut Ctx| {
            // A butterfly allreduce-like exchange pattern.
            let mut v = ctx.rank() as u64;
            for round in 0..3 {
                let partner = ctx.rank() ^ (1 << round);
                let got = ctx.exchange(partner, v, 8);
                v += got;
                ctx.charge(8.0, "combine");
            }
            v
        };
        let a = m.run(prog);
        let b = m.run(prog);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.results, b.results);
        assert_eq!(a.results, vec![28; 8]);
        // 3 rounds x (50 + 8*2 + 8 compute) = 3 * 74 = 222.
        assert_eq!(a.makespan, 222.0);
    }

    #[test]
    fn recv_any_collects_from_all_sources() {
        let m = Machine::new(5, ClockParams::free());
        let run = m.run(|ctx| {
            if ctx.rank() == 0 {
                let mut seen = vec![false; ctx.size()];
                let mut sum = 0u64;
                for _ in 1..ctx.size() {
                    let (src, v): (usize, u64) = ctx.recv_any();
                    assert!(!seen[src], "duplicate source {src}");
                    seen[src] = true;
                    assert_eq!(v, src as u64 * 7);
                    sum += v;
                }
                sum
            } else {
                // Stagger the sends so arrival order is nontrivial.
                ctx.charge((ctx.rank() * 13 % 5) as f64, "skew");
                ctx.send(0, ctx.rank() as u64 * 7, 1);
                0
            }
        });
        assert_eq!(run.results[0], 7 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn recv_any_is_cost_equivalent_to_directed_recv() {
        let m = Machine::new(2, ClockParams::new(10.0, 1.0));
        let any = m.run(|ctx| {
            if ctx.rank() == 0 {
                let (_, _v): (usize, ()) = ctx.recv_any();
            } else {
                ctx.send(0, (), 5);
            }
            ctx.time()
        });
        let directed = m.run(|ctx| {
            if ctx.rank() == 0 {
                let _: () = ctx.recv(1);
            } else {
                ctx.send(0, (), 5);
            }
            ctx.time()
        });
        assert_eq!(any.results, directed.results);
    }

    #[test]
    fn tracing_collects_events_from_all_ranks() {
        let m = Machine::new(2, ClockParams::free()).with_tracing();
        let run = m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1u8, 1);
            } else {
                ctx.recv::<u8>(0);
            }
            ctx.mark(format!("done-{}", ctx.rank()));
        });
        let marks = run.trace.marks();
        assert!(marks.contains(&"done-0"));
        assert!(marks.contains(&"done-1"));
        let sends = run
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Send { .. }))
            .count();
        assert_eq!(sends, 1);
    }

    #[test]
    fn mixed_payload_types_in_one_program() {
        let m = Machine::new(2, ClockParams::free());
        let run = m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, vec![1.5f64, 2.5], 2);
                ctx.send(1, String::from("tag"), 1);
                0.0
            } else {
                let v: Vec<f64> = ctx.recv(0);
                let s: String = ctx.recv(0);
                assert_eq!(s, "tag");
                v.iter().sum()
            }
        });
        assert_eq!(run.results[1], 4.0);
    }

    #[test]
    #[should_panic(expected = "not of the expected type")]
    fn type_mismatch_panics_with_context() {
        let m = Machine::new(2, ClockParams::free());
        m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1u32, 1);
            } else {
                let _: u64 = ctx.recv(0);
            }
        });
    }

    #[test]
    fn single_rank_machine_runs() {
        let m = Machine::new(1, ClockParams::free());
        let run = m.run(|ctx| {
            ctx.barrier();
            ctx.charge(3.0, "solo");
            ctx.rank()
        });
        assert_eq!(run.results, vec![0]);
        assert_eq!(run.makespan, 3.0);
    }

    #[test]
    fn run_result_stats_match_activity() {
        let m = Machine::new(2, ClockParams::new(1.0, 1.0));
        let run = m.run(|ctx| {
            ctx.charge(7.0, "w");
            ctx.exchange(1 - ctx.rank(), (), 3);
        });
        assert_eq!(run.compute_ops, vec![7.0, 7.0]);
        assert_eq!(run.messages, vec![1, 1]);
        assert_eq!(run.retries, vec![0, 0]);
        assert_eq!(run.retry_time, vec![0.0, 0.0]);
        assert_eq!(run.finish_times[0], run.finish_times[1]);
        assert_eq!(run.makespan, 7.0 + 1.0 + 3.0);
    }

    // ---- fault injection -------------------------------------------------

    /// A small pipeline every fault test reuses: ring shift then butterfly.
    fn chatty(ctx: &mut Ctx) -> u64 {
        let mut v = ctx.rank() as u64 + 1;
        ctx.charge(4.0, "warmup");
        let next = (ctx.rank() + 1) % ctx.size();
        let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
        ctx.send(next, v, 2);
        v += ctx.recv::<u64>(prev);
        if ctx.size().is_power_of_two() {
            for round in 0..ctx.size().trailing_zeros() {
                let partner = ctx.rank() ^ (1 << round);
                let got = ctx.exchange(partner, v, 2);
                v = v.wrapping_add(got);
                ctx.charge(2.0, "combine");
            }
        }
        ctx.barrier();
        v
    }

    #[test]
    fn empty_fault_plan_is_observationally_inert() {
        let plain = Machine::new(4, ClockParams::new(10.0, 1.0)).with_tracing();
        let faulted = plain.clone().with_faults(FaultPlan::new(1234));
        let a = plain.run(chatty);
        let b = faulted.try_run(chatty).expect("empty plan cannot fail");
        assert_eq!(a.results, b.results);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.finish_times, b.finish_times);
        assert_eq!(a.compute_ops, b.compute_ops);
        assert_eq!(a.messages, b.messages);
        assert_eq!(b.total_retries(), 0);
        assert_eq!(b.total_retry_time(), 0.0);
        assert_eq!(a.trace.events(), b.trace.events());
    }

    #[test]
    fn straggler_slows_only_its_rank_and_keeps_results() {
        let m = Machine::new(4, ClockParams::new(10.0, 1.0));
        let clean = m.run(chatty);
        let slow = m
            .with_faults(FaultPlan::new(0).with_straggler(2, 5.0))
            .try_run(chatty)
            .expect("delay-only plan cannot fail");
        assert_eq!(clean.results, slow.results, "results must be bit-identical");
        assert!(slow.makespan > clean.makespan);
        // Logical op counts are unchanged — only the clock stretched.
        assert_eq!(clean.compute_ops, slow.compute_ops);
    }

    #[test]
    fn slow_link_inflates_only_the_named_pair() {
        let prog = |ctx: &mut Ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, (), 5);
                ctx.send(2, (), 5);
            } else {
                ctx.recv::<()>(0);
            }
            ctx.time()
        };
        let m = Machine::new(3, ClockParams::new(10.0, 1.0));
        let clean = m.run(prog);
        let faulted = m
            .with_faults(FaultPlan::new(0).with_slow_link(0, 1, 2.0, 3.0))
            .try_run(prog)
            .expect("delay-only plan cannot fail");
        // 0 -> 1 costs 2*15 + 3 = 33 instead of 15 on both endpoints.
        assert_eq!(faulted.results[1], 33.0);
        // 0 -> 2 is still 15 but starts after the slow send: 33 + 15.
        assert_eq!(faulted.results[2], 48.0);
        assert_eq!(clean.results[1], 15.0);
    }

    #[test]
    fn dropped_send_retries_and_stays_bit_identical() {
        let m = Machine::new(4, ClockParams::new(10.0, 1.0)).with_tracing();
        let clean = m.run(chatty);
        // Drop the first message from 0 to 1 twice; retry costs
        // 2 * (cost + timeout) = 2 * (12 + 7) = 38 extra on rank 0.
        let plan = FaultPlan::new(0)
            .with_drop_exact(0, 1, 0, 2)
            .with_retry(4, 7.0);
        let lossy = m.with_faults(plan).try_run(chatty).expect("recoverable");
        assert_eq!(clean.results, lossy.results, "payloads must be untouched");
        assert_eq!(lossy.retries[0], 2);
        assert_eq!(lossy.retry_time[0], 2.0 * (12.0 + 7.0));
        assert!(lossy.makespan >= clean.makespan);
        let retry_events = lossy
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Retry { .. }))
            .count();
        assert_eq!(retry_events, 2);
    }

    #[test]
    fn exhausted_retries_surface_a_timeout() {
        let m = Machine::new(4, ClockParams::new(10.0, 1.0));
        let plan = FaultPlan::new(0)
            .with_drop_exact(0, 1, 0, 10)
            .with_retry(3, 5.0);
        let err = m
            .with_faults(plan)
            .try_run(chatty)
            .expect_err("the message can never get through");
        assert_eq!(
            err,
            MachineError::Timeout {
                from: 0,
                to: 1,
                attempts: 3
            }
        );
    }

    #[test]
    fn crash_surfaces_rank_failed_cleanly() {
        let m = Machine::new(4, ClockParams::new(10.0, 1.0));
        for after_ops in [0, 1, 2, 3] {
            let err = m
                .clone()
                .with_faults(FaultPlan::new(0).with_crash(2, after_ops))
                .try_run(chatty)
                .expect_err("a crashed rank must fail the run");
            assert_eq!(
                err,
                MachineError::RankFailed { rank: 2 },
                "crash at op {after_ops}"
            );
        }
    }

    #[test]
    fn crash_before_a_barrier_does_not_hang() {
        let m = Machine::new(3, ClockParams::free());
        // Rank 1 dies before its only operation — the barrier all other
        // ranks are waiting in must abort.
        let err = m
            .with_faults(FaultPlan::new(0).with_crash(1, 0))
            .try_run(|ctx| {
                ctx.barrier();
                ctx.rank()
            })
            .expect_err("barrier can never complete");
        assert_eq!(err, MachineError::RankFailed { rank: 1 });
    }

    #[test]
    fn crash_with_recv_any_peers_does_not_hang() {
        // Rank 0 collects from everyone; rank 2 dies first. pop_any must
        // observe the eventual all-peers-dead state instead of spinning.
        let m = Machine::new(3, ClockParams::free());
        let err = m
            .with_faults(FaultPlan::new(0).with_crash(2, 0))
            .try_run(|ctx| {
                if ctx.rank() == 0 {
                    for _ in 1..ctx.size() {
                        let _: (usize, u64) = ctx.recv_any();
                    }
                } else {
                    ctx.send(0, ctx.rank() as u64, 1);
                }
            })
            .expect_err("rank 0 waits on a message that never comes");
        assert_eq!(err, MachineError::RankFailed { rank: 2 });
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let m = Machine::new(8, ClockParams::new(50.0, 2.0));
        let plan = FaultPlan::new(77)
            .with_straggler(3, 2.0)
            .with_slow_link(0, 4, 1.5, 10.0)
            .with_drops(0.2, 2);
        let a = m.clone().with_faults(plan.clone()).try_run(chatty);
        let b = m.with_faults(plan).try_run(chatty);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.results, y.results);
                assert_eq!(x.makespan.to_bits(), y.makespan.to_bits());
                assert_eq!(x.retries, y.retries);
                assert_eq!(x.retry_time, y.retry_time);
            }
            (Err(x), Err(y)) => assert_eq!(x, y),
            (x, y) => panic!("reruns disagree on fate: {x:?} vs {y:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "machine run failed")]
    fn run_panics_on_injected_failure() {
        let m =
            Machine::new(2, ClockParams::free()).with_faults(FaultPlan::new(0).with_crash(0, 0));
        let _ = m.run(|ctx| {
            ctx.barrier();
        });
    }
}
