//! Event tracing.
//!
//! Every rank can record what it does — sends, receives, exchanges, local
//! computation steps — together with the simulated interval over which the
//! action ran. Traces are how the test-suite and the figure generators
//! reproduce the paper's step-by-step value tables (Figures 4, 5 and 6)
//! and how the ASCII timeline of Figure 1/3 is rendered.
//!
//! Beyond rendering, traces carry enough structure for *analysis*:
//!
//! * every event records its **span** (`start`, `time`] — the clock before
//!   and after the action — so per-rank busy/idle time is derivable;
//! * every [`Recv`](EventKind::Recv) and [`Exchange`](EventKind::Exchange)
//!   records the **sender's clock at send start** (`sent_at`), the causal
//!   link that [`crate::profile::critical_path`] walks backwards to
//!   attribute a run's makespan to an exact chain of messages and
//!   computation steps;
//! * [`Stage`](EventKind::Stage) markers let an executor label which
//!   program stage each span belongs to, feeding the per-stage breakdown
//!   of [`crate::profile::ProfileReport`].

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A message of `words` words left for rank `to`.
    Send {
        /// Destination rank.
        to: usize,
        /// Message size in words.
        words: u64,
    },
    /// A message of `words` words arrived from rank `from`.
    Recv {
        /// Source rank.
        from: usize,
        /// Message size in words.
        words: u64,
        /// The sender's clock when it started the send — the causal
        /// dependency this receive waited on.
        sent_at: f64,
    },
    /// A simultaneous exchange with `partner` (both directions, one cost).
    Exchange {
        /// Partner rank.
        partner: usize,
        /// Words sent (the larger direction is charged).
        words: u64,
        /// The partner's clock when it entered the exchange.
        sent_at: f64,
    },
    /// A transmission attempt to `to` that the fault plan dropped: the
    /// sender paid the transfer plus the ack timeout, then retransmitted.
    /// The span covers the wasted attempt; the eventual successful `Send`
    /// follows as its own event.
    Retry {
        /// Destination rank of the dropped message.
        to: usize,
        /// Message size in words.
        words: u64,
        /// Which attempt this was (1-based; attempt 1 is the first drop).
        attempt: u32,
    },
    /// `ops` units of local computation, with a free-form label
    /// (e.g. the collective stage it belongs to).
    Compute {
        /// Number of unit operations.
        ops: f64,
        /// Human-readable stage label.
        label: String,
    },
    /// A barrier completed.
    Barrier,
    /// A free-form marker, used by tests to record intermediate values
    /// (the per-step tuples of Figures 4–6).
    Mark {
        /// Marker text.
        note: String,
    },
    /// End-of-stage boundary injected by an executor: everything this rank
    /// did since the previous `Stage` marker belongs to stage `index`.
    Stage {
        /// Stage position in the program.
        index: usize,
        /// The stage's display label.
        label: String,
    },
}

impl EventKind {
    /// Is this a zero-cost annotation (no simulated time passes)?
    pub fn is_annotation(&self) -> bool {
        matches!(self, EventKind::Mark { .. } | EventKind::Stage { .. })
    }

    /// Does this event occupy the network (vs local computation)?
    /// Retries count: a dropped transmission holds the link (and the
    /// sender's clock) exactly like a delivered one.
    pub fn is_comm(&self) -> bool {
        matches!(
            self,
            EventKind::Send { .. }
                | EventKind::Recv { .. }
                | EventKind::Exchange { .. }
                | EventKind::Retry { .. }
        )
    }
}

/// One trace record: the rank it happened on, the simulated span over
/// which it ran, and the action.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Rank the event belongs to.
    pub rank: usize,
    /// Simulated time at which the action started. For a receive or an
    /// exchange this is the *rendezvous* point `max(own clock, sender's
    /// send start)` — any earlier waiting shows up as a gap between the
    /// previous event's end and this start.
    pub start: f64,
    /// Simulated time at which the action completed.
    pub time: f64,
    /// The action.
    pub kind: EventKind,
}

impl Event {
    /// The span's length (`time - start`).
    #[inline]
    pub fn duration(&self) -> f64 {
        self.time - self.start
    }
}

/// A per-rank event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<Event>,
    enabled: bool,
}

impl Trace {
    /// A trace that records events.
    pub fn enabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// A trace that drops everything (zero overhead beyond a branch).
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event spanning `start..=time` (no-op when disabled).
    pub fn record(&mut self, rank: usize, start: f64, time: f64, kind: EventKind) {
        if self.enabled {
            debug_assert!(time >= start, "event must not end before it starts");
            self.events.push(Event {
                rank,
                start,
                time,
                kind,
            });
        }
    }

    /// Record a zero-duration event at `time`.
    pub fn record_instant(&mut self, rank: usize, time: f64, kind: EventKind) {
        self.record(rank, time, time, kind);
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The `Mark` notes in order — the hook tests use to compare against
    /// the paper's figures.
    pub fn marks(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Mark { note } => Some(note.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Merge another trace (e.g. from another rank) into this one,
    /// keeping events sorted by completion time (stable for equal times).
    pub fn merge(&mut self, other: Trace) {
        self.events.extend(other.events);
        self.events.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }

    /// Merge many traces (one per rank) with a single sort: concatenate
    /// in order, then sort stably by completion time once. Byte-identical
    /// to folding [`merge`](Self::merge) over the traces in the same
    /// order — a stable sort keeps equal-keyed events in concatenation
    /// order, and re-sorting an already sorted prefix plus a suffix
    /// reduces to exactly that — but avoids re-sorting `p` times per run.
    pub fn merge_many(traces: impl IntoIterator<Item = Trace>) -> Trace {
        let mut events = Vec::new();
        for t in traces {
            events.extend(t.events);
        }
        events.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Trace {
            events,
            enabled: true,
        }
    }

    /// Renders a compact ASCII timeline: one row per rank, one column per
    /// distinct event time, `*` where the rank acted. A lightweight
    /// regeneration of the paper's Figure 1 style run-time diagrams.
    /// Annotation events ([`EventKind::Stage`]) are not rendered; marks
    /// keep their historical `.` glyph.
    pub fn ascii_timeline(&self, ranks: usize) -> String {
        let rendered: Vec<&Event> = self
            .events
            .iter()
            .filter(|e| !matches!(e.kind, EventKind::Stage { .. }))
            .collect();
        let mut times: Vec<f64> = rendered.iter().map(|e| e.time).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times.dedup();
        let col = |t: f64| times.iter().position(|&x| x == t).unwrap();
        let mut grid = vec![vec![b' '; times.len()]; ranks];
        for e in &rendered {
            if e.rank < ranks {
                let c = match e.kind {
                    EventKind::Send { .. } => b'>',
                    EventKind::Recv { .. } => b'<',
                    EventKind::Exchange { .. } => b'x',
                    EventKind::Retry { .. } => b'!',
                    EventKind::Compute { .. } => b'*',
                    EventKind::Barrier => b'|',
                    EventKind::Mark { .. } => b'.',
                    EventKind::Stage { .. } => unreachable!("filtered above"),
                };
                grid[e.rank][col(e.time)] = c;
            }
        }
        let mut out = String::new();
        for (rank, row) in grid.into_iter().enumerate() {
            out.push_str(&format!("P{rank:<3} "));
            out.push_str(std::str::from_utf8(&row).unwrap());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(0, 0.0, 1.0, EventKind::Barrier);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(0, 0.0, 1.0, EventKind::Send { to: 1, words: 4 });
        t.record(
            0,
            1.0,
            2.0,
            EventKind::Compute {
                ops: 3.0,
                label: "scan".into(),
            },
        );
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].time, 1.0);
        assert_eq!(t.events()[1].start, 1.0);
        assert_eq!(t.events()[1].duration(), 1.0);
    }

    #[test]
    fn marks_are_extracted() {
        let mut t = Trace::enabled();
        t.record_instant(
            0,
            0.0,
            EventKind::Mark {
                note: "(2,2)".into(),
            },
        );
        t.record(0, 0.0, 1.0, EventKind::Barrier);
        t.record_instant(
            1,
            2.0,
            EventKind::Mark {
                note: "(9,14)".into(),
            },
        );
        assert_eq!(t.marks(), vec!["(2,2)", "(9,14)"]);
    }

    #[test]
    fn merge_sorts_by_time() {
        let mut a = Trace::enabled();
        a.record(0, 0.0, 5.0, EventKind::Barrier);
        let mut b = Trace::enabled();
        b.record(1, 0.0, 2.0, EventKind::Barrier);
        a.merge(b);
        assert_eq!(a.events()[0].rank, 1);
        assert_eq!(a.events()[1].rank, 0);
    }

    #[test]
    fn ascii_timeline_has_one_row_per_rank() {
        let mut t = Trace::enabled();
        t.record(0, 0.0, 0.0, EventKind::Send { to: 1, words: 1 });
        t.record(
            1,
            0.0,
            1.0,
            EventKind::Recv {
                from: 0,
                words: 1,
                sent_at: 0.0,
            },
        );
        let s = t.ascii_timeline(2);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('>'));
        assert!(lines[1].contains('<'));
    }

    #[test]
    fn stage_markers_do_not_disturb_the_timeline() {
        let mut plain = Trace::enabled();
        plain.record(0, 0.0, 1.0, EventKind::Send { to: 1, words: 1 });
        let mut staged = plain.clone();
        staged.record_instant(
            0,
            1.0,
            EventKind::Stage {
                index: 0,
                label: "send".into(),
            },
        );
        assert_eq!(plain.ascii_timeline(1), staged.ascii_timeline(1));
    }

    #[test]
    fn annotation_and_comm_classification() {
        assert!(EventKind::Mark {
            note: String::new()
        }
        .is_annotation());
        assert!(EventKind::Stage {
            index: 0,
            label: String::new()
        }
        .is_annotation());
        assert!(!EventKind::Barrier.is_annotation());
        assert!(EventKind::Send { to: 0, words: 1 }.is_comm());
        assert!(EventKind::Retry {
            to: 0,
            words: 1,
            attempt: 1
        }
        .is_comm());
        assert!(!EventKind::Retry {
            to: 0,
            words: 1,
            attempt: 1
        }
        .is_annotation());
        assert!(!EventKind::Barrier.is_comm());
        assert!(!EventKind::Compute {
            ops: 1.0,
            label: String::new()
        }
        .is_comm());
    }
}
