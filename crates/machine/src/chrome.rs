//! Chrome-trace (Perfetto / `chrome://tracing`) export.
//!
//! A recorded [`Trace`] becomes a JSON object in the Trace Event Format:
//! one *process* per labelled trace (so a rule's LHS and RHS programs sit
//! side by side in the viewer), one *thread* per rank, complete (`"X"`)
//! events for every span and instant (`"i"`) events for annotations.
//! Open the output at <https://ui.perfetto.dev> to scrub through a run.
//!
//! The workspace is intentionally dependency-free, so the JSON layer is
//! hand-rolled: a tiny [`Json`] document model with a renderer and a
//! strict parser, enough to guarantee (and test) that exports round-trip
//! and that field names stay stable.

use crate::trace::{EventKind, Trace};

/// A minimal JSON document: just what the exporter and its tests need.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serialise to a compact string (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Strict enough for round-trip testing:
    /// rejects trailing garbage, unterminated strings, and malformed
    /// numbers.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn event_name(kind: &EventKind) -> String {
    match kind {
        EventKind::Send { to, .. } => format!("send -> P{to}"),
        EventKind::Recv { from, .. } => format!("recv <- P{from}"),
        EventKind::Exchange { partner, .. } => format!("exchange <-> P{partner}"),
        EventKind::Retry { to, attempt, .. } => format!("retry #{attempt} -> P{to}"),
        EventKind::Compute { label, .. } => label.clone(),
        EventKind::Barrier => "barrier".to_string(),
        EventKind::Mark { note } => format!("mark {note}"),
        EventKind::Stage { index, label } => format!("stage {index}: {label}"),
    }
}

fn event_cat(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::Send { .. }
        | EventKind::Recv { .. }
        | EventKind::Exchange { .. }
        | EventKind::Retry { .. } => "comm",
        EventKind::Compute { .. } => "compute",
        EventKind::Barrier => "sync",
        EventKind::Mark { .. } | EventKind::Stage { .. } => "annotation",
    }
}

fn event_args(kind: &EventKind) -> Json {
    let mut fields: Vec<(&str, Json)> = Vec::new();
    match kind {
        EventKind::Send { words, .. } => fields.push(("words", Json::Num(*words as f64))),
        EventKind::Recv { words, sent_at, .. } => {
            fields.push(("words", Json::Num(*words as f64)));
            fields.push(("sent_at", Json::Num(*sent_at)));
        }
        EventKind::Exchange { words, sent_at, .. } => {
            fields.push(("words", Json::Num(*words as f64)));
            fields.push(("sent_at", Json::Num(*sent_at)));
        }
        EventKind::Retry { words, attempt, .. } => {
            fields.push(("words", Json::Num(*words as f64)));
            fields.push(("attempt", Json::Num(*attempt as f64)));
        }
        EventKind::Compute { ops, .. } => fields.push(("ops", Json::Num(*ops))),
        EventKind::Mark { note } => fields.push(("note", Json::Str(note.clone()))),
        EventKind::Stage { index, .. } => fields.push(("index", Json::Num(*index as f64))),
        EventKind::Barrier => {}
    }
    obj(fields)
}

/// Build the Chrome-trace document for one or more labelled traces.
/// Each `(label, trace)` pair becomes one process (`pid` = its position),
/// so e.g. a rule's LHS and RHS programs land side by side in the viewer.
pub fn chrome_trace(processes: &[(&str, &Trace)]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for (pid, (label, _)) in processes.iter().enumerate() {
        events.push(obj(vec![
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Num(pid as f64)),
            ("tid", Json::Num(0.0)),
            ("args", obj(vec![("name", Json::Str((*label).to_string()))])),
        ]));
    }
    for (pid, (_, trace)) in processes.iter().enumerate() {
        // Sort by start so timestamps are monotone per (pid, tid) lane.
        let mut ordered: Vec<&crate::trace::Event> = trace.events().iter().collect();
        ordered.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.rank.cmp(&b.rank)));
        for e in ordered {
            let mut fields = vec![
                ("name", Json::Str(event_name(&e.kind))),
                ("cat", Json::Str(event_cat(&e.kind).into())),
                ("pid", Json::Num(pid as f64)),
                ("tid", Json::Num(e.rank as f64)),
                ("ts", Json::Num(e.start)),
            ];
            if e.kind.is_annotation() {
                fields.push(("ph", Json::Str("i".into())));
                fields.push(("s", Json::Str("t".into())));
            } else {
                fields.push(("ph", Json::Str("X".into())));
                fields.push(("dur", Json::Num(e.duration())));
            }
            fields.push(("args", event_args(&e.kind)));
            events.push(obj(fields));
        }
    }
    obj(vec![
        ("displayTimeUnit", Json::Str("ms".into())),
        ("traceEvents", Json::Arr(events)),
    ])
}

/// [`chrome_trace`] rendered to a compact JSON string.
pub fn chrome_trace_json(processes: &[(&str, &Trace)]) -> String {
    chrome_trace(processes).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockParams;
    use crate::machine::Machine;

    fn sample_trace() -> Trace {
        let m = Machine::new(2, ClockParams::new(10.0, 1.0)).with_tracing();
        let run = m.run(|ctx| {
            ctx.charge(4.0, "warm-up");
            if ctx.rank() == 0 {
                ctx.send(1, 7u64, 3);
            } else {
                ctx.recv::<u64>(0);
            }
            ctx.end_stage(0, "stage-label");
            ctx.barrier();
        });
        run.trace
    }

    #[test]
    fn json_round_trips_through_parse_and_render() {
        let doc = chrome_trace(&[("lhs", &sample_trace())]);
        let text = doc.render();
        let reparsed = Json::parse(&text).expect("export parses");
        assert_eq!(reparsed, doc);
        assert_eq!(reparsed.render(), text);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v = Json::parse(r#"{"a":"x\n\"yA","b":[-1.5e2,0,3]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str().unwrap(), "x\n\"yA");
        let nums: Vec<f64> = v
            .get("b")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|n| n.as_f64().unwrap())
            .collect();
        assert_eq!(nums, vec![-150.0, 0.0, 3.0]);
    }

    #[test]
    fn export_has_stable_envelope_and_per_lane_monotone_timestamps() {
        let trace = sample_trace();
        let doc = chrome_trace(&[("a", &trace), ("b", &trace)]);
        assert!(doc.get("displayTimeUnit").is_some());
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Two metadata records, then the payload from both processes.
        let metadata: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(metadata.len(), 2);
        assert_eq!(
            metadata[0]
                .get("args")
                .unwrap()
                .get("name")
                .unwrap()
                .as_str(),
            Some("a")
        );
        let mut last: std::collections::HashMap<(u64, u64), f64> = Default::default();
        for e in events {
            if e.get("ph").unwrap().as_str() == Some("M") {
                continue;
            }
            for key in ["name", "cat", "pid", "tid", "ts", "args"] {
                assert!(e.get(key).is_some(), "missing field {key}");
            }
            let lane = (
                e.get("pid").unwrap().as_f64().unwrap() as u64,
                e.get("tid").unwrap().as_f64().unwrap() as u64,
            );
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            let prev = last.insert(lane, ts).unwrap_or(f64::NEG_INFINITY);
            assert!(ts >= prev, "timestamps regress in lane {lane:?}");
            if e.get("ph").unwrap().as_str() == Some("X") {
                assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
            }
        }
    }
}
