//! A tiny deterministic pseudo-random number generator (SplitMix64).
//!
//! The repository's randomized tests and benches need reproducible random
//! streams, not cryptographic quality; SplitMix64 passes BigCrush, needs
//! eight bytes of state, and keeps the workspace free of external
//! dependencies so it builds offline. Seeded identically, the stream is
//! identical on every platform.

/// A SplitMix64 generator. Construct with [`Rng::new`] from any seed;
/// equal seeds give equal streams.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`n > 0`). Uses Lemire's multiply-shift
    /// reduction; the slight modulo bias is irrelevant at test scale but
    /// avoided anyway via the widening multiply.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `usize` in `lo..hi` (half-open, `hi > lo`).
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `i64` in `lo..hi` (half-open, `hi > lo`).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.abs_diff(lo)) as i64)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the SplitMix64 paper's
        // public-domain implementation.
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range_usize(3, 17);
            assert!((3..17).contains(&v));
            let w = r.range_i64(-5, 6);
            assert!((-5..6).contains(&w));
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_covers_small_domains() {
        let mut r = Rng::new(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
