//! Rank arithmetic for collective-operation algorithms.
//!
//! Three communication structures cover everything the paper uses:
//!
//! * **binomial trees** — the classic broadcast/reduce tree rooted at a
//!   rank, `⌈log₂ p⌉` rounds, one new processor informed per informed
//!   processor per round;
//! * **butterflies** (hypercube exchanges) — `⌈log₂ p⌉` rounds in which
//!   rank `r` exchanges with `r XOR 2^j`; the implementation the paper's
//!   cost model (Section 4.1) assumes for broadcast, reduction and scan;
//! * the paper's **virtual balanced tree** (Section 3.2) — the unique tree
//!   for any number of leaves `n` such that (a) all leaves have the same
//!   depth `⌈log₂ n⌉` and (b) the right subtree of every node with a
//!   non-empty left subtree is complete. Nodes whose left subtree is empty
//!   are *unary* nodes; the balanced reduction applies a special unary
//!   variant of its operator there (`op_sr((), (t,u)) = (t, u⊕u)` in rule
//!   SR-Reduction).

/// Returns `⌈log₂ n⌉`, i.e. the number of butterfly rounds for `n` ranks.
///
/// By convention `ceil_log2(0) == 0` and `ceil_log2(1) == 0`.
#[inline]
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        (n - 1).ilog2() + 1
    }
}

/// Returns `⌊log₂ n⌋`. Panics on `n == 0`.
#[inline]
pub fn floor_log2(n: usize) -> u32 {
    n.ilog2()
}

/// Is `n` a power of two? (`0` is not.)
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n.is_power_of_two()
}

/// The butterfly partner of `rank` in round `round` (0-based), i.e.
/// `rank XOR 2^round`, or `None` if the partner is outside `0..size`.
///
/// With `size` not a power of two, some ranks have no partner in some
/// rounds; the balanced collectives of the paper handle this with the unary
/// operator variants (see [`BalancedTree`] and the `()` cases of rules
/// SR-Reduction and SS-Scan).
#[inline]
pub fn butterfly_partner(rank: usize, round: u32, size: usize) -> Option<usize> {
    let partner = rank ^ (1usize << round);
    (partner < size).then_some(partner)
}

/// Number of butterfly rounds for `size` ranks.
#[inline]
pub fn butterfly_rounds(size: usize) -> u32 {
    ceil_log2(size)
}

/// A step of a binomial-tree schedule: in round `round`, `from` sends to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStep {
    /// Round index, 0-based.
    pub round: u32,
    /// Sending rank.
    pub from: usize,
    /// Receiving rank.
    pub to: usize,
}

/// The binomial broadcast schedule for `size` ranks rooted at `root`.
///
/// Ranks are renumbered relative to the root (`v = (rank - root) mod size`),
/// which reduces the schedule to the root-0 case. In round `j`
/// (0-based), every informed virtual rank `v < 2^j` sends to `v + 2^j` if
/// that rank exists. The whole broadcast takes `⌈log₂ size⌉` rounds, which
/// matches the paper's `T_bcast = log p · (ts + m·tw)` (eq. 15).
pub fn binomial_bcast_schedule(size: usize, root: usize) -> Vec<TreeStep> {
    assert!(root < size, "root {root} out of range for size {size}");
    let mut steps = Vec::new();
    for round in 0..ceil_log2(size) {
        let stride = 1usize << round;
        for v in 0..stride {
            let dst = v + stride;
            if dst < size {
                steps.push(TreeStep {
                    round,
                    from: (v + root) % size,
                    to: (dst + root) % size,
                });
            }
        }
    }
    steps
}

/// For a given `rank`, the incoming edge (round, source) and outgoing edges
/// (round, destination) of the binomial broadcast rooted at `root`.
///
/// This is the per-rank view a thread needs to participate without scanning
/// the global schedule.
pub fn binomial_bcast_rank_plan(size: usize, root: usize, rank: usize) -> BinomialPlan {
    assert!(rank < size && root < size);
    let v = (rank + size - root) % size;
    let recv_round = if v == 0 { None } else { Some(floor_log2(v)) };
    let recv_from = recv_round.map(|j| {
        let src_v = v - (1usize << j);
        (src_v + root) % size
    });
    let mut sends = Vec::new();
    let first_active = match recv_round {
        None => 0,
        Some(j) => j + 1,
    };
    for round in first_active..ceil_log2(size) {
        let dst_v = v + (1usize << round);
        if dst_v < size && v < (1usize << round) {
            sends.push((round, (dst_v + root) % size));
        }
    }
    BinomialPlan {
        recv: recv_round.map(|r| (r, recv_from.unwrap())),
        sends,
    }
}

/// Per-rank view of a binomial broadcast: at most one receive, then a list
/// of sends in increasing round order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinomialPlan {
    /// `(round, source)` of the single receive, `None` for the root.
    pub recv: Option<(u32, usize)>,
    /// `(round, destination)` pairs, in increasing round order.
    pub sends: Vec<(u32, usize)>,
}

/// A node of the paper's virtual balanced tree (Section 3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BalancedNode {
    /// A leaf holding the value of one processor.
    Leaf(usize),
    /// A node whose left subtree is empty; the balanced reduction applies
    /// the unary operator variant here.
    Unary(Box<BalancedNode>),
    /// An inner node with a (possibly incomplete) left subtree and a
    /// *complete* right subtree.
    Binary(Box<BalancedNode>, Box<BalancedNode>),
}

impl BalancedNode {
    /// Leftmost leaf rank of the subtree — the *representative* processor
    /// that holds the subtree's partial result during a balanced reduction.
    pub fn representative(&self) -> usize {
        match self {
            BalancedNode::Leaf(r) => *r,
            BalancedNode::Unary(c) => c.representative(),
            BalancedNode::Binary(l, _) => l.representative(),
        }
    }

    /// Number of leaves in the subtree.
    pub fn leaf_count(&self) -> usize {
        match self {
            BalancedNode::Leaf(_) => 1,
            BalancedNode::Unary(c) => c.leaf_count(),
            BalancedNode::Binary(l, r) => l.leaf_count() + r.leaf_count(),
        }
    }

    /// Height of the subtree (leaves have height 0).
    pub fn height(&self) -> u32 {
        match self {
            BalancedNode::Leaf(_) => 0,
            BalancedNode::Unary(c) => c.height() + 1,
            BalancedNode::Binary(_, r) => r.height() + 1,
        }
    }

    /// Is the subtree complete (every node binary, `2^height` leaves)?
    pub fn is_complete(&self) -> bool {
        match self {
            BalancedNode::Leaf(_) => true,
            BalancedNode::Unary(_) => false,
            BalancedNode::Binary(l, r) => {
                l.is_complete() && r.is_complete() && l.height() == r.height()
            }
        }
    }
}

/// One action of the balanced-tree reduction schedule, executed bottom-up
/// level by level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancedStep {
    /// `right_rep` sends its partial value to `left_rep`, which combines
    /// `op(left, right)` (left argument is the lower-ranked group).
    Combine {
        /// Tree level (1 = just above the leaves).
        level: u32,
        /// Representative of the left subtree; receives and combines.
        left_rep: usize,
        /// Representative of the right subtree; sends its value.
        right_rep: usize,
    },
    /// The representative applies the unary operator variant locally
    /// (a node with an empty left subtree).
    Unary {
        /// Tree level.
        level: u32,
        /// The representative rank.
        rep: usize,
    },
}

/// The paper's virtual balanced tree over `n` leaves (processors `0..n`).
///
/// Construction (unique per the paper's two conditions): with
/// `d = ⌈log₂ n⌉` and `half = 2^(d-1)`,
///
/// * if `n > half`, the root is binary: the *right* subtree is the complete
///   tree of depth `d-1` over the **last** `half` leaves and the left
///   subtree is the balanced tree of depth `d-1` over the first `n - half`
///   leaves;
/// * otherwise the root is unary over the balanced tree of depth `d-1` for
///   all `n` leaves.
///
/// For `n = 6` this yields exactly the shape of the paper's Figure 4:
/// `Binary(Unary(Binary(0,1)), Binary(Binary(2,3), Binary(4,5)))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancedTree {
    root: BalancedNode,
    leaves: usize,
}

impl BalancedTree {
    /// Builds the unique balanced tree over `n ≥ 1` leaves.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a balanced tree needs at least one leaf");
        let depth = ceil_log2(n);
        BalancedTree {
            root: Self::build(0, n, depth),
            leaves: n,
        }
    }

    fn build(first: usize, n: usize, depth: u32) -> BalancedNode {
        if depth == 0 {
            debug_assert_eq!(n, 1);
            return BalancedNode::Leaf(first);
        }
        let half = 1usize << (depth - 1);
        if n > half {
            let left = Self::build(first, n - half, depth - 1);
            let right = Self::build(first + n - half, half, depth - 1);
            debug_assert!(right.is_complete());
            BalancedNode::Binary(Box::new(left), Box::new(right))
        } else {
            BalancedNode::Unary(Box::new(Self::build(first, n, depth - 1)))
        }
    }

    /// The root node.
    pub fn root(&self) -> &BalancedNode {
        &self.root
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Depth of the tree (= `⌈log₂ n⌉`; every leaf sits at this depth).
    pub fn depth(&self) -> u32 {
        ceil_log2(self.leaves)
    }

    /// The bottom-up reduction schedule, grouped by level: `schedule()[j]`
    /// holds the steps of level `j+1` (the level just above the leaves is
    /// level 1). Steps within one level are independent and execute in
    /// parallel; there are exactly `depth()` levels, matching the
    /// `log p` factor of the paper's cost estimates.
    pub fn schedule(&self) -> Vec<Vec<BalancedStep>> {
        let mut levels: Vec<Vec<BalancedStep>> = vec![Vec::new(); self.depth() as usize];
        Self::collect(&self.root, self.depth(), &mut levels);
        levels
    }

    fn collect(node: &BalancedNode, level: u32, levels: &mut Vec<Vec<BalancedStep>>) {
        match node {
            BalancedNode::Leaf(_) => {}
            BalancedNode::Unary(c) => {
                Self::collect(c, level - 1, levels);
                levels[(level - 1) as usize].push(BalancedStep::Unary {
                    level,
                    rep: c.representative(),
                });
            }
            BalancedNode::Binary(l, r) => {
                Self::collect(l, level - 1, levels);
                Self::collect(r, level - 1, levels);
                levels[(level - 1) as usize].push(BalancedStep::Combine {
                    level,
                    left_rep: l.representative(),
                    right_rep: r.representative(),
                });
            }
        }
    }

    /// Per-rank schedule: the actions rank `rank` participates in, level by
    /// level. Entries are `(level, action)` where the action is from this
    /// rank's point of view.
    pub fn rank_schedule(&self, rank: usize) -> Vec<(u32, RankAction)> {
        let mut out = Vec::new();
        for level in self.schedule() {
            for step in level {
                match step {
                    BalancedStep::Combine {
                        level,
                        left_rep,
                        right_rep,
                    } => {
                        if left_rep == rank {
                            out.push((level, RankAction::RecvCombine { from: right_rep }));
                        } else if right_rep == rank {
                            out.push((level, RankAction::SendTo { to: left_rep }));
                        }
                    }
                    BalancedStep::Unary { level, rep } => {
                        if rep == rank {
                            out.push((level, RankAction::ApplyUnary));
                        }
                    }
                }
            }
        }
        out
    }
}

/// A per-rank action in the balanced-tree reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankAction {
    /// Receive the right subtree's value from `from` and combine.
    RecvCombine {
        /// Sending rank (the right subtree's representative).
        from: usize,
    },
    /// Send own partial value to `to` (the left subtree's representative)
    /// and drop out of the reduction.
    SendTo {
        /// Receiving rank.
        to: usize,
    },
    /// Apply the unary operator variant locally.
    ApplyUnary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_basics() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(6), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    fn floor_log2_basics() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(63), 5);
        assert_eq!(floor_log2(64), 6);
    }

    #[test]
    fn butterfly_partner_in_range() {
        assert_eq!(butterfly_partner(0, 0, 6), Some(1));
        assert_eq!(butterfly_partner(1, 0, 6), Some(0));
        assert_eq!(butterfly_partner(0, 1, 6), Some(2));
        assert_eq!(butterfly_partner(4, 1, 6), None); // 4^2 = 6, out of range
        assert_eq!(butterfly_partner(5, 1, 6), None); // 5^2 = 7
        assert_eq!(butterfly_partner(2, 2, 6), None); // 2^4 = 6
        assert_eq!(butterfly_partner(0, 2, 6), Some(4));
        assert_eq!(butterfly_partner(1, 2, 6), Some(5));
    }

    #[test]
    fn butterfly_partner_is_involution() {
        for size in 1..20 {
            for round in 0..butterfly_rounds(size) {
                for rank in 0..size {
                    if let Some(p) = butterfly_partner(rank, round, size) {
                        assert_eq!(butterfly_partner(p, round, size), Some(rank));
                        assert_ne!(p, rank);
                    }
                }
            }
        }
    }

    #[test]
    fn binomial_schedule_informs_everyone_once() {
        for size in 1..33 {
            for root in [0, size / 2, size - 1] {
                let steps = binomial_bcast_schedule(size, root);
                let mut informed = vec![false; size];
                informed[root] = true;
                let mut last_round = 0;
                for s in &steps {
                    assert!(s.round >= last_round, "rounds must be non-decreasing");
                    last_round = s.round;
                    assert!(informed[s.from], "sender {} not yet informed", s.from);
                    assert!(!informed[s.to], "receiver {} informed twice", s.to);
                    informed[s.to] = true;
                }
                assert!(informed.iter().all(|&b| b), "size={size} root={root}");
                assert_eq!(steps.len(), size - 1);
            }
        }
    }

    #[test]
    fn binomial_rank_plan_matches_global_schedule() {
        for size in 1..20 {
            for root in 0..size {
                let steps = binomial_bcast_schedule(size, root);
                for rank in 0..size {
                    let plan = binomial_bcast_rank_plan(size, root, rank);
                    let expected_recv = steps
                        .iter()
                        .find(|s| s.to == rank)
                        .map(|s| (s.round, s.from));
                    assert_eq!(
                        plan.recv, expected_recv,
                        "size={size} root={root} rank={rank}"
                    );
                    let expected_sends: Vec<(u32, usize)> = steps
                        .iter()
                        .filter(|s| s.from == rank)
                        .map(|s| (s.round, s.to))
                        .collect();
                    assert_eq!(
                        plan.sends, expected_sends,
                        "size={size} root={root} rank={rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn balanced_tree_six_matches_figure4_shape() {
        // Figure 4: procs 0,1 pair at level 1, a unary node above them at
        // level 2, procs 2..5 form a complete subtree, root combines both.
        let t = BalancedTree::new(6);
        assert_eq!(t.depth(), 3);
        let levels = t.schedule();
        assert_eq!(levels.len(), 3);
        assert_eq!(
            levels[0],
            vec![
                BalancedStep::Combine {
                    level: 1,
                    left_rep: 0,
                    right_rep: 1
                },
                BalancedStep::Combine {
                    level: 1,
                    left_rep: 2,
                    right_rep: 3
                },
                BalancedStep::Combine {
                    level: 1,
                    left_rep: 4,
                    right_rep: 5
                },
            ]
        );
        assert_eq!(
            levels[1],
            vec![
                BalancedStep::Unary { level: 2, rep: 0 },
                BalancedStep::Combine {
                    level: 2,
                    left_rep: 2,
                    right_rep: 4
                },
            ]
        );
        assert_eq!(
            levels[2],
            vec![BalancedStep::Combine {
                level: 3,
                left_rep: 0,
                right_rep: 2
            }]
        );
    }

    #[test]
    fn balanced_tree_invariants_hold_for_all_sizes() {
        for n in 1..200 {
            let t = BalancedTree::new(n);
            assert_eq!(t.root().leaf_count(), n);
            assert_eq!(t.root().height(), ceil_log2(n));
            assert_eq!(t.root().representative(), 0);
            check_invariants(t.root());
            // Leaves are 0..n in order.
            let mut leaves = Vec::new();
            collect_leaves(t.root(), &mut leaves);
            assert_eq!(leaves, (0..n).collect::<Vec<_>>());
        }
    }

    fn check_invariants(node: &BalancedNode) {
        match node {
            BalancedNode::Leaf(_) => {}
            BalancedNode::Unary(c) => check_invariants(c),
            BalancedNode::Binary(l, r) => {
                // Paper condition: right subtree complete whenever the left
                // subtree is non-empty (binary node => left non-empty).
                assert!(
                    r.is_complete(),
                    "right subtree of a binary node must be complete"
                );
                assert_eq!(l.height(), r.height(), "leaves must share a depth");
                check_invariants(l);
                check_invariants(r);
            }
        }
    }

    fn collect_leaves(node: &BalancedNode, out: &mut Vec<usize>) {
        match node {
            BalancedNode::Leaf(r) => out.push(*r),
            BalancedNode::Unary(c) => collect_leaves(c, out),
            BalancedNode::Binary(l, r) => {
                collect_leaves(l, out);
                collect_leaves(r, out);
            }
        }
    }

    #[test]
    fn balanced_tree_power_of_two_is_complete() {
        for k in 0..7 {
            let t = BalancedTree::new(1 << k);
            assert!(t.root().is_complete());
        }
    }

    #[test]
    fn rank_schedule_partitions_global_schedule() {
        for n in 1..40 {
            let t = BalancedTree::new(n);
            let mut combines = 0usize;
            let mut unaries = 0usize;
            for level in t.schedule() {
                for s in level {
                    match s {
                        BalancedStep::Combine { .. } => combines += 1,
                        BalancedStep::Unary { .. } => unaries += 1,
                    }
                }
            }
            // Every binary node is one combine; n leaves => n-1 combines.
            assert_eq!(combines, n - 1);
            let mut per_rank = 0usize;
            for rank in 0..n {
                for (_, a) in t.rank_schedule(rank) {
                    match a {
                        RankAction::RecvCombine { .. } | RankAction::SendTo { .. } => per_rank += 1,
                        RankAction::ApplyUnary => {}
                    }
                }
            }
            // Each combine appears twice from the rank perspective.
            assert_eq!(per_rank, 2 * combines);
            let unary_ranks: usize = (0..n)
                .map(|r| {
                    t.rank_schedule(r)
                        .iter()
                        .filter(|(_, a)| matches!(a, RankAction::ApplyUnary))
                        .count()
                })
                .sum();
            assert_eq!(unary_ranks, unaries);
        }
    }

    #[test]
    fn once_a_rank_sends_it_never_acts_again() {
        for n in 1..60 {
            let t = BalancedTree::new(n);
            for rank in 0..n {
                let sched = t.rank_schedule(rank);
                if let Some(pos) = sched
                    .iter()
                    .position(|(_, a)| matches!(a, RankAction::SendTo { .. }))
                {
                    assert_eq!(
                        pos,
                        sched.len() - 1,
                        "rank {rank} acted after sending (n={n})"
                    );
                }
            }
        }
    }
}
