//! The discrete-event execution engine ([`ExecEngine::Des`]).
//!
//! The thread engines give every rank an OS thread and let the kernel
//! interleave them; blocking operations park real threads. That caps `p`
//! at the host's thread budget (~4k) and pays a context switch per
//! message. This engine instead runs *all* ranks on one thread: each rank
//! is a resumable future over its [`Ctx`], and a binary-heap event queue
//! decides which rank steps next, ordered by the simulated timestamp at
//! which it became runnable. `p` is bounded by memory — a rank costs one
//! boxed future plus its inbox — so 10^5..10^6-rank machines fit where the
//! thread engines stop at thousands.
//!
//! ## Event model
//!
//! A rank runs until it *blocks* (directed receive with an empty queue,
//! `recv_any` with all queues empty, or a barrier that has not released).
//! Blocking registers a [`Waiting`] entry recording the operation and the
//! rank's clock at suspension, then returns `Poll::Pending` to the
//! scheduler. Unblocking events — a packet push, a barrier release, a
//! peer's death — convert the entry into a `(timestamp, rank)` heap key:
//! `max(waiter clock, packet send time)` for a delivery, the release time
//! for a barrier, the waiter's own clock for death/abort wake-ups. Keys
//! are `f64::to_bits` of the timestamp (monotonic for the non-negative
//! times the clock produces) with the rank as tie-break, so the step
//! order is a pure function of the simulated communication structure.
//!
//! ## Identity guarantees
//!
//! The scheduler reuses the `Ctx` cost/fault/trace pipeline *verbatim* —
//! only the blocking primitive underneath (`Mailboxes`/`ClockBarrier`
//! vs. this module's queues and [`BarrierAlgebra`]) differs, and those
//! mirror the channel semantics operation for operation (drain before
//! disconnect, rotating `recv_any` scan, first-error-wins barrier abort,
//! abort-then-death unwind order). Every observable — outputs, makespan
//! bits, retry counters, Chrome traces — is therefore bit-identical to
//! the thread engines, which `bench/tests/engine_identity.rs` enforces
//! over a 528-point differential grid.
//!
//! [`ExecEngine::Des`]: crate::machine::ExecEngine::Des

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::panic::AssertUnwindSafe;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use crate::barrier::{Arrival, BarrierAlgebra};
use crate::channel::Packet;
use crate::clock::{ClockParams, SimClock};
use crate::error::MachineError;
use crate::fault::FaultPlan;
use crate::machine::{Ctx, FaultAbort, RankOutcome};
use crate::trace::Trace;

/// Why a suspended rank is not runnable, plus its clock at suspension
/// (the earliest simulated time it could resume at).
#[derive(Clone, Copy)]
enum Waiting {
    /// Runnable (or running) — no wake-up needed.
    None,
    /// Blocked in a directed receive from `from`.
    Recv { from: usize, at: f64 },
    /// Blocked in `recv_any` with every queue empty.
    RecvAny { at: f64 },
    /// Parked in a barrier generation that has not released.
    Barrier { at: f64 },
}

/// One rank's incoming queues, keyed by source. A `HashMap` keeps the
/// per-rank footprint proportional to the rank's actual communication
/// degree (O(log p) peers for the tree/butterfly collectives) instead of
/// the O(p) dense vector the thread mesh uses — the difference between
/// O(p log p) and O(p²) memory at p = 10^5.
struct DesInbox {
    queues: HashMap<usize, VecDeque<Packet>>,
    /// Rotating fair-scan cursor for `recv_any`, mirroring the channel's.
    next_scan: usize,
}

struct DesState {
    inboxes: Vec<DesInbox>,
    waiting: Vec<Waiting>,
    /// Wake-ups produced while a rank was stepping, drained into the
    /// scheduler heap after every poll.
    wakes: Vec<(f64, usize)>,
    barrier: BarrierAlgebra,
    /// A rank is dead once it finished, faulted or panicked — the DES
    /// equivalent of the thread mesh's mailbox-drop disconnect cascade.
    dead: Vec<bool>,
    /// Ranks not yet dead, for O(1) all-peers-dead checks in `recv_any`.
    live: usize,
    /// Waiter indexes so a death or release wakes only the affected ranks
    /// instead of scanning all `p` (which would make teardown O(p²)).
    /// Entries are appended on suspension and validated against `waiting`
    /// when consumed, so stale entries from already-delivered wake-ups are
    /// harmless.
    recv_waiters: HashMap<usize, Vec<usize>>,
    any_waiters: Vec<usize>,
    barrier_waiters: Vec<usize>,
}

/// The single-threaded shared state every DES [`Ctx`] points into.
pub(crate) struct DesShared {
    p: usize,
    state: RefCell<DesState>,
}

impl DesShared {
    pub(crate) fn new(p: usize) -> Self {
        DesShared {
            p,
            state: RefCell::new(DesState {
                inboxes: (0..p)
                    .map(|_| DesInbox {
                        queues: HashMap::new(),
                        next_scan: 0,
                    })
                    .collect(),
                waiting: vec![Waiting::None; p],
                wakes: Vec::new(),
                barrier: BarrierAlgebra::new(p),
                dead: vec![false; p],
                live: p,
                recv_waiters: HashMap::new(),
                any_waiters: Vec::new(),
                barrier_waiters: Vec::new(),
            }),
        }
    }

    /// Deliver a packet from `from` to `to`. Like the thread channel,
    /// delivery to a dead rank succeeds silently — death only surfaces
    /// on the *receive* side (drain first, then disconnect).
    pub(crate) fn push(&self, from: usize, to: usize, packet: Packet) -> Result<(), MachineError> {
        if to >= self.p {
            return Err(MachineError::InvalidRank {
                rank: to,
                size: self.p,
            });
        }
        let mut guard = self.state.borrow_mut();
        let s = &mut *guard;
        let wake = match s.waiting[to] {
            Waiting::Recv { from: want, at } if want == from => Some(at.max(packet.send_time)),
            Waiting::RecvAny { at } => Some(at.max(packet.send_time)),
            _ => None,
        };
        s.inboxes[to]
            .queues
            .entry(from)
            .or_default()
            .push_back(packet);
        if let Some(t) = wake {
            s.waiting[to] = Waiting::None;
            s.wakes.push((t, to));
        }
        Ok(())
    }

    /// A rank left the machine (completed, faulted or panicked): wake
    /// everyone blocked on it so they can observe the disconnect — the
    /// counterpart of the thread mesh's `Drop for Mailboxes` cascade.
    pub(crate) fn mark_dead(&self, rank: usize) {
        let mut guard = self.state.borrow_mut();
        let s = &mut *guard;
        if s.dead[rank] {
            return;
        }
        s.dead[rank] = true;
        s.live -= 1;
        // Directed receivers blocked on this rank.
        if let Some(waiters) = s.recv_waiters.remove(&rank) {
            for r in waiters {
                if let Waiting::Recv { from, at } = s.waiting[r] {
                    if from == rank {
                        s.waiting[r] = Waiting::None;
                        s.wakes.push((at, r));
                    }
                }
            }
        }
        // Every `recv_any` waiter re-examines its queues and the dead set.
        for r in std::mem::take(&mut s.any_waiters) {
            if let Waiting::RecvAny { at } = s.waiting[r] {
                s.waiting[r] = Waiting::None;
                s.wakes.push((at, r));
            }
        }
    }

    /// Abort the barrier (first error wins) and wake every parked rank so
    /// it observes the error instead of waiting forever.
    pub(crate) fn abort_barrier(&self, err: MachineError) {
        let mut guard = self.state.borrow_mut();
        let s = &mut *guard;
        s.barrier.abort(err);
        for r in std::mem::take(&mut s.barrier_waiters) {
            if let Waiting::Barrier { at } = s.waiting[r] {
                s.waiting[r] = Waiting::None;
                s.wakes.push((at, r));
            }
        }
    }

    /// Move the wake-ups accumulated during the last step into the heap.
    fn drain_wakes_into(&self, heap: &mut BinaryHeap<Reverse<(u64, usize)>>) {
        let mut s = self.state.borrow_mut();
        for (t, r) in s.wakes.drain(..) {
            heap.push(Reverse((t.to_bits(), r)));
        }
    }
}

/// Future form of `Mailboxes::pop`: resolve from the queue, report a dead
/// source, or suspend until either happens.
pub(crate) struct DesPop {
    shared: Rc<DesShared>,
    me: usize,
    from: usize,
    at: f64,
}

impl DesPop {
    pub(crate) fn new(shared: Rc<DesShared>, me: usize, from: usize, at: f64) -> Self {
        DesPop {
            shared,
            me,
            from,
            at,
        }
    }
}

impl Future for DesPop {
    type Output = Result<Packet, MachineError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if this.from >= this.shared.p {
            return Poll::Ready(Err(MachineError::InvalidRank {
                rank: this.from,
                size: this.shared.p,
            }));
        }
        let mut guard = this.shared.state.borrow_mut();
        let s = &mut *guard;
        // Queued packets drain before a disconnect is reported.
        if let Some(packet) = s.inboxes[this.me]
            .queues
            .get_mut(&this.from)
            .and_then(|q| q.pop_front())
        {
            return Poll::Ready(Ok(packet));
        }
        if s.dead[this.from] {
            return Poll::Ready(Err(MachineError::Disconnected { rank: this.from }));
        }
        s.waiting[this.me] = Waiting::Recv {
            from: this.from,
            at: this.at,
        };
        s.recv_waiters.entry(this.from).or_default().push(this.me);
        Poll::Pending
    }
}

/// Future form of `Mailboxes::pop_any`: rotating fair scan over all
/// sources, disconnect only when every peer is dead and nothing is queued.
pub(crate) struct DesPopAny {
    shared: Rc<DesShared>,
    me: usize,
    at: f64,
}

impl DesPopAny {
    pub(crate) fn new(shared: Rc<DesShared>, me: usize, at: f64) -> Self {
        DesPopAny { shared, me, at }
    }
}

impl Future for DesPopAny {
    type Output = Result<(usize, Packet), MachineError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let p = this.shared.p;
        let mut guard = this.shared.state.borrow_mut();
        let s = &mut *guard;
        let inbox = &mut s.inboxes[this.me];
        let start = inbox.next_scan;
        // Rotating fair scan — the first source at or after the cursor
        // (mod p) with a queued packet, found by walking the O(degree)
        // present queues rather than all p slots.
        let best = inbox
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&src, _)| ((src + p - start) % p, src))
            .min()
            .map(|(_, src)| src);
        if let Some(src) = best {
            let packet = inbox
                .queues
                .get_mut(&src)
                .and_then(|q| q.pop_front())
                .expect("scanned queue is non-empty");
            inbox.next_scan = (src + 1) % p;
            return Poll::Ready(Ok((src, packet)));
        }
        // Nothing queued: disconnect once every peer is dead (same pick
        // as the thread mesh's scan — the lowest dead peer).
        if s.live <= usize::from(!s.dead[this.me]) {
            let rank = if p == 1 {
                0
            } else if this.me == 0 {
                1
            } else {
                0
            };
            return Poll::Ready(Err(MachineError::Disconnected { rank }));
        }
        s.waiting[this.me] = Waiting::RecvAny { at: this.at };
        s.any_waiters.push(this.me);
        Poll::Pending
    }
}

/// Future form of `ClockBarrier::wait`, driving the shared
/// [`BarrierAlgebra`] directly: arrive once, then park on the generation
/// token until the last rank releases it (or a death aborts it).
pub(crate) struct DesBarrier {
    shared: Rc<DesShared>,
    me: usize,
    entry: f64,
    parked: Option<u64>,
}

impl DesBarrier {
    pub(crate) fn new(shared: Rc<DesShared>, me: usize, entry: f64) -> Self {
        DesBarrier {
            shared,
            me,
            entry,
            parked: None,
        }
    }
}

impl Future for DesBarrier {
    type Output = Result<f64, MachineError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut guard = this.shared.state.borrow_mut();
        let s = &mut *guard;
        if let Some(generation) = this.parked {
            return match s.barrier.check(generation) {
                Some(result) => Poll::Ready(result),
                None => {
                    s.waiting[this.me] = Waiting::Barrier { at: this.entry };
                    s.barrier_waiters.push(this.me);
                    Poll::Pending
                }
            };
        }
        match s.barrier.arrive(this.entry) {
            Err(e) => Poll::Ready(Err(e)),
            Ok(Arrival::Released(t)) => {
                // Last arrival: release every parked rank at the barrier's
                // release time (≥ each waiter's own entry).
                for r in std::mem::take(&mut s.barrier_waiters) {
                    if let Waiting::Barrier { .. } = s.waiting[r] {
                        s.waiting[r] = Waiting::None;
                        s.wakes.push((t, r));
                    }
                }
                Poll::Ready(Ok(t))
            }
            Ok(Arrival::Parked { generation }) => {
                this.parked = Some(generation);
                s.waiting[this.me] = Waiting::Barrier { at: this.entry };
                s.barrier_waiters.push(this.me);
                Poll::Pending
            }
        }
    }
}

type RankFut<'a, T> = Pin<Box<dyn Future<Output = (T, SimClock, Trace)> + 'a>>;

/// Drive all `p` rank futures to completion on the calling thread and
/// return their outcomes, mirroring the thread engines' `rank_body`
/// semantics exactly: `catch_unwind` per step, barrier abort before the
/// death cascade on an unwind, completed ranks going dead without an
/// abort (their `Mailboxes` drop would do the same).
pub(crate) fn run_ranks_des<T, F>(
    p: usize,
    params: ClockParams,
    tracing: bool,
    plan: Option<&Arc<FaultPlan>>,
    f: &F,
) -> Vec<RankOutcome<T>>
where
    T: Send,
    F: for<'a> Fn(&'a mut Ctx) -> Pin<Box<dyn Future<Output = T> + 'a>>,
{
    let shared = Rc::new(DesShared::new(p));
    let mut futures: Vec<Option<RankFut<'_, T>>> = Vec::with_capacity(p);
    for rank in 0..p {
        let mut ctx = Ctx::new_des(rank, p, Rc::clone(&shared), params, tracing, plan);
        let fut: RankFut<'_, T> = Box::pin(async move {
            let out = f(&mut ctx).await;
            let (clock, trace) = ctx.into_parts();
            (out, clock, trace)
        });
        futures.push(Some(fut));
    }

    // Every rank starts runnable at t = 0; the rank index tie-breaks equal
    // timestamps, so the step order is fully deterministic.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..p).map(|r| Reverse((0u64, r))).collect();
    let mut outcomes: Vec<Option<RankOutcome<T>>> = (0..p).map(|_| None).collect();
    let mut remaining = p;
    let mut cx = Context::from_waker(Waker::noop());

    while remaining > 0 {
        let Some(Reverse((_, rank))) = heap.pop() else {
            let blocked: Vec<usize> = (0..p).filter(|&r| outcomes[r].is_none()).collect();
            panic!(
                "DES deadlock: ranks {blocked:?} are blocked with no pending events \
                 (the thread engines would hang here)"
            );
        };
        if outcomes[rank].is_some() {
            continue; // stale wake-up for a finished rank
        }
        let Some(fut) = futures[rank].as_mut() else {
            continue;
        };
        let polled = std::panic::catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        match polled {
            Ok(Poll::Pending) => {}
            Ok(Poll::Ready((out, clock, trace))) => {
                futures[rank] = None;
                outcomes[rank] = Some(RankOutcome::Done(out, clock, trace));
                remaining -= 1;
                shared.mark_dead(rank);
            }
            Err(payload) => {
                futures[rank] = None;
                // Unblock peers in the thread engines' order: barrier
                // abort first, then the disconnect cascade.
                let outcome = match payload.downcast::<FaultAbort>() {
                    Ok(fa) => {
                        shared.abort_barrier(fa.error.clone());
                        RankOutcome::Faulted(fa.error, fa.origin)
                    }
                    Err(other) => {
                        shared.abort_barrier(MachineError::Disconnected { rank });
                        RankOutcome::Panicked(other)
                    }
                };
                shared.mark_dead(rank);
                outcomes[rank] = Some(outcome);
                remaining -= 1;
            }
        }
        shared.drain_wakes_into(&mut heap);
    }

    outcomes
        .into_iter()
        .map(|o| o.expect("every rank produced an outcome"))
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::clock::ClockParams;
    use crate::error::MachineError;
    use crate::fault::FaultPlan;
    use crate::machine::{ExecEngine, Machine};

    /// A ring pass exercising directed send/recv and the event queue.
    #[test]
    fn ring_pass_accumulates_on_des() {
        let m = Machine::new(4, ClockParams::free());
        let run = m.run_des(|ctx| {
            Box::pin(async move {
                if ctx.rank() == 0 {
                    ctx.send(1, 0usize, 1);
                    ctx.recv_async::<usize>(3).await
                } else {
                    let v = ctx.recv_async::<usize>(ctx.rank() - 1).await;
                    let next = (ctx.rank() + 1) % ctx.size();
                    ctx.send(next, v + ctx.rank(), 1);
                    0
                }
            })
        });
        assert_eq!(run.results[0], 1 + 2 + 3);
    }

    #[test]
    fn exchange_and_barrier_match_the_thread_engine_bit_for_bit() {
        let m = Machine::new(8, ClockParams::new(50.0, 2.0)).with_tracing();
        let threaded = m.run(|ctx| {
            let mut v = ctx.rank() as u64;
            for round in 0..3 {
                let partner = ctx.rank() ^ (1 << round);
                let got = ctx.exchange(partner, v, 8);
                v += got;
                ctx.charge(8.0, "combine");
            }
            ctx.barrier();
            (v, ctx.time())
        });
        let des = m.run_des(|ctx| {
            Box::pin(async move {
                let mut v = ctx.rank() as u64;
                for round in 0..3 {
                    let partner = ctx.rank() ^ (1 << round);
                    let got = ctx.exchange_async(partner, v, 8).await;
                    v += got;
                    ctx.charge(8.0, "combine");
                }
                ctx.barrier_async().await;
                (v, ctx.time())
            })
        });
        assert_eq!(threaded.results, des.results);
        assert_eq!(threaded.makespan.to_bits(), des.makespan.to_bits());
        assert_eq!(threaded.finish_times, des.finish_times);
        assert_eq!(threaded.messages, des.messages);
        assert_eq!(threaded.trace.events(), des.trace.events());
    }

    #[test]
    fn recv_any_drains_all_sources_deterministically() {
        let m = Machine::new(5, ClockParams::free());
        let a = run_gather(&m);
        let b = run_gather(&m);
        assert_eq!(a, 7 * (1 + 2 + 3 + 4));
        assert_eq!(a, b);
    }

    fn run_gather(m: &Machine) -> u64 {
        let run = m.run_des(|ctx| {
            Box::pin(async move {
                if ctx.rank() == 0 {
                    let mut sum = 0u64;
                    for _ in 1..ctx.size() {
                        let (src, v): (usize, u64) = ctx.recv_any_async().await;
                        assert_eq!(v, src as u64 * 7);
                        sum += v;
                    }
                    sum
                } else {
                    ctx.charge((ctx.rank() * 13 % 5) as f64, "skew");
                    ctx.send(0, ctx.rank() as u64 * 7, 1);
                    0
                }
            })
        });
        run.results[0]
    }

    #[test]
    fn injected_crash_surfaces_like_the_thread_engines() {
        let m =
            Machine::new(3, ClockParams::free()).with_faults(FaultPlan::new(0).with_crash(1, 0));
        let err = m
            .try_run_des(|ctx| {
                Box::pin(async move {
                    ctx.barrier_async().await;
                    ctx.rank()
                })
            })
            .expect_err("barrier can never complete");
        assert_eq!(err, MachineError::RankFailed { rank: 1 });
    }

    #[test]
    fn crash_with_recv_any_peers_does_not_hang_on_des() {
        let m =
            Machine::new(3, ClockParams::free()).with_faults(FaultPlan::new(0).with_crash(2, 0));
        let err = m
            .try_run_des(|ctx| {
                Box::pin(async move {
                    if ctx.rank() == 0 {
                        for _ in 1..ctx.size() {
                            let _: (usize, u64) = ctx.recv_any_async().await;
                        }
                    } else {
                        ctx.send(0, ctx.rank() as u64, 1);
                    }
                })
            })
            .expect_err("rank 0 waits on a message that never comes");
        assert_eq!(err, MachineError::RankFailed { rank: 2 });
    }

    #[test]
    #[should_panic(expected = "DES deadlock")]
    fn genuine_deadlock_panics_instead_of_hanging() {
        let m = Machine::new(2, ClockParams::free());
        let _ = m.run_des(|ctx| {
            Box::pin(async move {
                // Both ranks wait on a message neither ever sends.
                let _: u64 = ctx.recv_async(1 - ctx.rank()).await;
            })
        });
    }

    #[test]
    #[should_panic(expected = "cannot run on the DES engine")]
    fn sync_entry_points_refuse_to_suspend() {
        let m = Machine::new(2, ClockParams::free());
        let _ = m.run_des(|ctx| {
            Box::pin(async move {
                if ctx.rank() == 0 {
                    // Sync recv on a DES context must fail loudly, not hang.
                    let _: u64 = ctx.recv(1);
                }
                ctx.barrier_async().await;
            })
        });
    }

    #[test]
    fn des_scales_past_the_thread_engine_capacity() {
        let p = 10_000;
        assert!(p > ExecEngine::THREAD_MAX_P);
        let m = Machine::new(p, ClockParams::free());
        // Binomial-tree broadcast of one word: O(p) events, log-depth.
        let run = m.run_des(|ctx| {
            Box::pin(async move {
                let rank = ctx.rank();
                let p = ctx.size();
                let mut v = if rank == 0 { Some(42u64) } else { None };
                let mut gap = p.next_power_of_two();
                while gap > 1 {
                    gap /= 2;
                    if rank % (2 * gap) == 0 {
                        if let Some(x) = v {
                            if rank + gap < p {
                                ctx.send(rank + gap, x, 1);
                            }
                        }
                    } else if rank % gap == 0 && v.is_none() {
                        v = Some(ctx.recv_async::<u64>(rank - gap).await);
                    }
                }
                v.unwrap()
            })
        });
        assert!(run.results.iter().all(|&v| v == 42));
    }
}
