//! The clock-aware barrier, split into a pure synchronization algebra and
//! a thin thread-blocking adapter.
//!
//! [`BarrierAlgebra`] is the whole barrier protocol — arrival counting,
//! generation tracking, the monotonic running maximum of entry times, and
//! first-error-wins aborts — as plain non-blocking state transitions. It
//! never parks a thread, never spins, and never touches a lock, which is
//! what lets the discrete-event engine ([`crate::des`]) drive thousands of
//! virtual ranks through barriers on a single thread: the scheduler calls
//! [`arrive`](BarrierAlgebra::arrive)/[`check`](BarrierAlgebra::check)
//! directly and turns `Parked` into an event-queue suspension.
//!
//! [`ClockBarrier`] wraps the algebra in a `Mutex` + `Condvar` for the
//! thread-per-rank engines. Its observable behaviour (release times, abort
//! errors, generation handling) is byte-identical to the pre-split
//! implementation: `wait` is exactly `arrive` + condvar-loop-on-`check`.

use std::sync::{Condvar, Mutex};

use crate::error::MachineError;

/// What [`BarrierAlgebra::arrive`] decided for the arriving rank.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Arrival {
    /// This rank was the last to arrive: the barrier released at the
    /// contained global-maximum entry time. The caller must wake the
    /// parked ranks (they observe the release through
    /// [`check`](BarrierAlgebra::check)).
    Released(f64),
    /// Not everyone is here yet. The rank must suspend and poll
    /// [`check`](BarrierAlgebra::check) with this generation token after
    /// each wake-up.
    Parked {
        /// The generation the rank arrived in; the barrier has released
        /// when the algebra's generation moves past it.
        generation: u64,
    },
}

/// The barrier protocol as pure state: no threads, no locks, no parking.
/// All ranks leave with the maximum entry time ever seen. The running
/// maximum is monotonic (clocks never move backward), so it never needs
/// resetting between rounds; the release time is snapshotted per
/// generation so a fast rank's *next* barrier entry is never observed
/// early. When a rank dies the barrier is *aborted*: every current and
/// future arrival observes the first abort error instead of blocking on
/// an arrival that will never come.
pub(crate) struct BarrierAlgebra {
    p: usize,
    arrived: usize,
    generation: u64,
    /// Running max over all entry times ever seen (monotonic).
    max_time: f64,
    /// The max_time snapshot at the last release.
    release_time: f64,
    aborted: Option<MachineError>,
}

impl BarrierAlgebra {
    pub(crate) fn new(p: usize) -> Self {
        BarrierAlgebra {
            p,
            arrived: 0,
            generation: 0,
            max_time: 0.0,
            release_time: 0.0,
            aborted: None,
        }
    }

    /// A rank enters the barrier at local time `t`.
    pub(crate) fn arrive(&mut self, t: f64) -> Result<Arrival, MachineError> {
        if let Some(e) = &self.aborted {
            return Err(e.clone());
        }
        if t > self.max_time {
            self.max_time = t;
        }
        self.arrived += 1;
        if self.arrived == self.p {
            self.arrived = 0;
            self.generation += 1;
            self.release_time = self.max_time;
            Ok(Arrival::Released(self.release_time))
        } else {
            Ok(Arrival::Parked {
                generation: self.generation,
            })
        }
    }

    /// Has the generation a rank parked in released (or aborted)?
    /// `None` means still waiting. The next generation cannot complete
    /// (and overwrite `release_time`) until every parked rank re-enters,
    /// so a `Some(Ok(t))` snapshot is always the parked rank's own.
    pub(crate) fn check(&self, generation: u64) -> Option<Result<f64, MachineError>> {
        if let Some(e) = &self.aborted {
            return Some(Err(e.clone()));
        }
        if self.generation != generation {
            return Some(Ok(self.release_time));
        }
        None
    }

    /// Abort the barrier: the first error wins; every subsequent `arrive`
    /// or `check` observes it.
    pub(crate) fn abort(&mut self, err: MachineError) {
        if self.aborted.is_none() {
            self.aborted = Some(err);
        }
    }

    /// Restore the freshly constructed state. Only called between runs,
    /// when no rank can be waiting.
    pub(crate) fn reset(&mut self) {
        self.arrived = 0;
        self.generation = 0;
        self.max_time = 0.0;
        self.release_time = 0.0;
        self.aborted = None;
    }
}

/// Clock-aware barrier for the thread-per-rank engines: the algebra under
/// a mutex, with a condvar to park not-yet-released ranks.
pub(crate) struct ClockBarrier {
    state: Mutex<BarrierAlgebra>,
    cv: Condvar,
}

impl ClockBarrier {
    pub(crate) fn new(p: usize) -> Self {
        ClockBarrier {
            state: Mutex::new(BarrierAlgebra::new(p)),
            cv: Condvar::new(),
        }
    }

    /// Enter the barrier at local time `t`; returns the global maximum
    /// entry time, or the abort error if any rank died.
    pub(crate) fn wait(&self, t: f64) -> Result<f64, MachineError> {
        let mut s = self.state.lock().expect("barrier lock poisoned");
        match s.arrive(t)? {
            Arrival::Released(out) => {
                drop(s);
                self.cv.notify_all();
                Ok(out)
            }
            Arrival::Parked { generation } => loop {
                s = self.cv.wait(s).expect("barrier lock poisoned");
                if let Some(result) = s.check(generation) {
                    return result;
                }
            },
        }
    }

    /// Abort the barrier: the first error wins; every waiter wakes with it.
    pub(crate) fn abort(&self, err: MachineError) {
        let mut s = self.state.lock().expect("barrier lock poisoned");
        s.abort(err);
        drop(s);
        self.cv.notify_all();
    }

    /// Restore the freshly constructed state between runs.
    pub(crate) fn reset(&self) {
        self.state.lock().expect("barrier lock poisoned").reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite guarantee: a full barrier round can be driven to
    /// completion by a single thread making non-blocking calls — no
    /// parking, no condvar, no spinning. This is the contract the DES
    /// scheduler builds on.
    #[test]
    fn algebra_completes_a_round_without_any_thread_parking() {
        let mut b = BarrierAlgebra::new(3);
        let a0 = b.arrive(5.0).unwrap();
        let a1 = b.arrive(11.0).unwrap();
        let (g0, g1) = match (a0, a1) {
            (Arrival::Parked { generation: g0 }, Arrival::Parked { generation: g1 }) => (g0, g1),
            other => panic!("early arrivals must park: {other:?}"),
        };
        // Parked ranks see nothing until the last arrival.
        assert_eq!(b.check(g0), None);
        assert_eq!(b.check(g1), None);
        let a2 = b.arrive(7.0).unwrap();
        assert_eq!(a2, Arrival::Released(11.0));
        // Both parked ranks now observe the release time.
        assert_eq!(b.check(g0), Some(Ok(11.0)));
        assert_eq!(b.check(g1), Some(Ok(11.0)));
    }

    #[test]
    fn release_time_is_monotonic_across_generations() {
        let mut b = BarrierAlgebra::new(2);
        assert_eq!(b.arrive(3.0).unwrap(), Arrival::Parked { generation: 0 });
        assert_eq!(b.arrive(9.0).unwrap(), Arrival::Released(9.0));
        // Second round with *lower* entry times still releases at the
        // running maximum — clocks never move backward.
        assert_eq!(b.arrive(1.0).unwrap(), Arrival::Parked { generation: 1 });
        assert_eq!(b.arrive(2.0).unwrap(), Arrival::Released(9.0));
    }

    #[test]
    fn abort_is_first_error_wins_and_observed_by_parked_and_future_ranks() {
        let mut b = BarrierAlgebra::new(3);
        let Arrival::Parked { generation } = b.arrive(1.0).unwrap() else {
            panic!("must park");
        };
        b.abort(MachineError::RankFailed { rank: 2 });
        b.abort(MachineError::RankFailed { rank: 0 });
        assert_eq!(
            b.check(generation),
            Some(Err(MachineError::RankFailed { rank: 2 }))
        );
        assert_eq!(b.arrive(4.0), Err(MachineError::RankFailed { rank: 2 }));
    }

    #[test]
    fn reset_restores_pristine_state() {
        let mut b = BarrierAlgebra::new(2);
        let _ = b.arrive(100.0);
        b.abort(MachineError::RankFailed { rank: 1 });
        b.reset();
        assert_eq!(b.arrive(2.0).unwrap(), Arrival::Parked { generation: 0 });
        assert_eq!(b.arrive(3.0).unwrap(), Arrival::Released(3.0));
    }

    #[test]
    fn single_rank_barrier_releases_immediately() {
        let mut b = BarrierAlgebra::new(1);
        assert_eq!(b.arrive(0.0).unwrap(), Arrival::Released(0.0));
        assert_eq!(b.arrive(4.5).unwrap(), Arrival::Released(4.5));
    }

    #[test]
    fn blocking_wrapper_matches_algebra_release_times() {
        let barrier = std::sync::Arc::new(ClockBarrier::new(4));
        let times = [3.0f64, 42.0, 17.0, 8.0];
        let mut handles = Vec::new();
        for &t in &times[1..] {
            let b = barrier.clone();
            handles.push(std::thread::spawn(move || b.wait(t).unwrap()));
        }
        let own = barrier.wait(times[0]).unwrap();
        assert_eq!(own, 42.0);
        for h in handles {
            assert_eq!(h.join().unwrap(), 42.0);
        }
    }
}
