//! Deterministic fault injection for the simulated machine.
//!
//! The paper's cost claims assume a fault-free, uniform machine. Real
//! platforms have stragglers, slow links, dropped packets and node
//! failures — and the interesting question is whether the optimization
//! rules' wins *survive* that adversity. This module makes the question
//! testable: a [`FaultPlan`] is a seeded, fully declarative description of
//! every fault a run will experience, and a [`FaultInjector`] (one per
//! rank, owned by the machine's `Ctx`) replays it deterministically.
//!
//! Three fault families:
//!
//! * **Delay faults** (non-lossy): per-rank compute slowdown factors
//!   ([`RankSlowdown`]) and per-link latency inflation ([`LinkSlowdown`]).
//!   These change only *when* things happen, never *what* happens — a run
//!   under a delay-only plan produces bit-identical results with a
//!   boundedly larger makespan.
//! * **Message drops** (lossy but recovered): individual transmissions are
//!   dropped, either pseudo-randomly ([`DropParams`], hash-keyed on
//!   `(seed, from, to, nth message)`) or surgically ([`DropExact`]). The
//!   sender recovers with an ack/retry protocol: each failed attempt costs
//!   the full transfer plus [`RetryParams::timeout`] before the
//!   retransmission, bounded by [`RetryParams::max_attempts`]. Because the
//!   retry is simulated entirely on the sender's clock before the packet
//!   enters the network, delivery order and payloads are untouched —
//!   results stay bit-identical, and the overhead is *exactly* the summed
//!   retry time the clock accounts.
//! * **Crashes** (unrecoverable): [`CrashSpec`] kills one rank just before
//!   its `after_ops`-th context operation. The crashed rank aborts, its
//!   channels disconnect, and every peer that depends on it surfaces
//!   [`MachineError::RankFailed`](crate::MachineError::RankFailed) —
//!   cleanly, with no hang and no panic escaping
//!   [`Machine::try_run`](crate::Machine::try_run).
//!
//! Determinism is the load-bearing property: the same `(seed, plan)` pair
//! replays the same faults, attempt-for-attempt, so any chaos-test failure
//! is reproducible from the one-line spec string of
//! [`FaultPlan::describe`] / [`FaultPlan::parse`].

use std::fmt::Write as _;

/// One rank computing slower than the rest (a straggler).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankSlowdown {
    /// The straggling rank.
    pub rank: usize,
    /// Multiplier on every compute charge (`>= 1.0` slows, `1.0` is inert).
    pub factor: f64,
}

/// One link slower than the rest. Links are *undirected*: a slowdown on
/// `{a, b}` applies to messages in both directions, which keeps the
/// rendezvous cost of a bidirectional `exchange` symmetric (both partners
/// must agree on the transfer cost for their clocks to meet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSlowdown {
    /// One endpoint.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// Multiplier on the transfer cost (`1.0` is inert).
    pub factor: f64,
    /// Additive latency on top (time units; `0.0` is inert).
    pub add: f64,
}

impl LinkSlowdown {
    /// Does this entry cover the (unordered) link between `x` and `y`?
    #[inline]
    pub fn covers(&self, x: usize, y: usize) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }
}

/// Pseudo-random message drops: each transmission attempt is dropped with
/// probability `prob`, decided by hashing `(seed, from, to, nth, attempt)`
/// — deterministic per plan, independent of wall-clock scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropParams {
    /// Per-attempt drop probability in `[0, 1)`.
    pub prob: f64,
    /// Cap on consecutive drops of one message, so random plans can be
    /// kept recoverable by construction (`max_consecutive <
    /// max_attempts` guarantees the retry protocol eventually wins).
    pub max_consecutive: u32,
}

/// Surgical drop: the `nth` message from `from` to `to` is dropped
/// `count` times before getting through. `count >= max_attempts` forces a
/// [`Timeout`](crate::MachineError::Timeout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropExact {
    /// Sending rank.
    pub from: usize,
    /// Destination rank.
    pub to: usize,
    /// Zero-based index of the message on the directed `from -> to` lane.
    pub nth: u64,
    /// How many consecutive attempts are dropped.
    pub count: u32,
}

/// Crash one rank just before its `after_ops`-th context operation
/// (charges, sends, receives, exchanges and barriers all count as one
/// operation; `after_ops = 0` crashes before the rank does anything).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// The rank that dies.
    pub rank: usize,
    /// Event ordinal at which it dies.
    pub after_ops: u64,
}

/// The sender-side ack/retry protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryParams {
    /// Total transmission attempts before the sender gives up with a
    /// [`Timeout`](crate::MachineError::Timeout). Must be `>= 1`.
    pub max_attempts: u32,
    /// Extra time the sender waits for the missing ack before each
    /// retransmission (on top of the wasted transfer itself).
    pub timeout: f64,
}

impl Default for RetryParams {
    fn default() -> Self {
        RetryParams {
            max_attempts: 4,
            timeout: 100.0,
        }
    }
}

/// A complete, seeded description of every fault a run will experience.
///
/// Construct with [`FaultPlan::new`] and the `with_*` builders, or parse a
/// one-line spec string with [`FaultPlan::parse`] (the inverse of
/// [`FaultPlan::describe`] — chaos-test failures print these so any case
/// reproduces from its log line).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every pseudo-random decision the plan makes.
    pub seed: u64,
    /// Straggler ranks.
    pub compute: Vec<RankSlowdown>,
    /// Slow links (undirected pairs).
    pub links: Vec<LinkSlowdown>,
    /// Pseudo-random message drops (applies to every directed lane).
    pub drop: Option<DropParams>,
    /// Surgical message drops.
    pub drop_exact: Vec<DropExact>,
    /// At most one crash per plan.
    pub crash: Option<CrashSpec>,
    /// Retry protocol parameters.
    pub retry: RetryParams,
}

impl FaultPlan {
    /// An empty (identity) plan with the given seed: injects nothing and
    /// is observationally inert — runs under it are byte-identical to
    /// plain runs.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Slow rank `rank`'s computation by `factor`.
    pub fn with_straggler(mut self, rank: usize, factor: f64) -> Self {
        assert!(factor >= 0.0, "slowdown factor must be non-negative");
        self.compute.push(RankSlowdown { rank, factor });
        self
    }

    /// Slow the undirected link `{a, b}` by `factor` with `add` extra
    /// latency.
    pub fn with_slow_link(mut self, a: usize, b: usize, factor: f64, add: f64) -> Self {
        assert!(factor >= 0.0 && add >= 0.0);
        self.links.push(LinkSlowdown { a, b, factor, add });
        self
    }

    /// Drop every transmission attempt with probability `prob`, at most
    /// `max_consecutive` times in a row per message.
    pub fn with_drops(mut self, prob: f64, max_consecutive: u32) -> Self {
        assert!((0.0..1.0).contains(&prob), "drop probability in [0,1)");
        self.drop = Some(DropParams {
            prob,
            max_consecutive,
        });
        self
    }

    /// Drop the `nth` message from `from` to `to` exactly `count` times.
    pub fn with_drop_exact(mut self, from: usize, to: usize, nth: u64, count: u32) -> Self {
        self.drop_exact.push(DropExact {
            from,
            to,
            nth,
            count,
        });
        self
    }

    /// Crash `rank` just before its `after_ops`-th context operation.
    pub fn with_crash(mut self, rank: usize, after_ops: u64) -> Self {
        self.crash = Some(CrashSpec { rank, after_ops });
        self
    }

    /// Override the retry protocol parameters.
    pub fn with_retry(mut self, max_attempts: u32, timeout: f64) -> Self {
        assert!(max_attempts >= 1, "at least one attempt");
        assert!(timeout >= 0.0);
        self.retry = RetryParams {
            max_attempts,
            timeout,
        };
        self
    }

    /// Does this plan inject anything at all?
    pub fn is_empty(&self) -> bool {
        self.compute.is_empty()
            && self.links.is_empty()
            && self.drop.is_none()
            && self.drop_exact.is_empty()
            && self.crash.is_none()
    }

    /// Can this plan lose messages (drops configured)?
    pub fn is_lossy(&self) -> bool {
        self.drop.is_some() || !self.drop_exact.is_empty()
    }

    /// Is every injected fault survivable by the retry protocol — i.e.
    /// is a run under this plan guaranteed to complete (bit-identically
    /// to a clean run)? True when no rank crashes and every drop source
    /// is bounded strictly below the retry budget, so each message is
    /// eventually delivered. Differential harnesses use this to decide
    /// whether to compare completed outcomes or surfaced errors.
    pub fn is_recoverable(&self) -> bool {
        self.crash.is_none()
            && self
                .drop
                .as_ref()
                .is_none_or(|d| d.max_consecutive < self.retry.max_attempts)
            && self
                .drop_exact
                .iter()
                .all(|d| d.count < self.retry.max_attempts)
    }

    /// The largest compute slowdown factor anywhere in the plan (`>= 1`).
    /// Together with [`max_link_factor`](Self::max_link_factor) and
    /// [`max_link_add`](Self::max_link_add) this bounds a delay-only run:
    /// every critical-path segment is stretched at most `max(F_compute,
    /// F_link)`-fold plus `add` per message, so
    /// `makespan <= F_max * clean + A_max * total_messages`.
    pub fn max_compute_factor(&self) -> f64 {
        self.compute.iter().fold(1.0, |m, s| m.max(s.factor))
    }

    /// The largest link slowdown factor (`>= 1`).
    pub fn max_link_factor(&self) -> f64 {
        self.links.iter().fold(1.0, |m, l| m.max(l.factor))
    }

    /// The largest additive link latency (`>= 0`).
    pub fn max_link_add(&self) -> f64 {
        self.links.iter().fold(0.0, |m, l| m.max(l.add))
    }

    /// Render as a one-line spec string, parseable by
    /// [`parse`](Self::parse). This is the reproduction handle chaos-test
    /// failures print.
    pub fn describe(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for s in &self.compute {
            let _ = write!(out, ",straggler={}x{}", s.rank, s.factor);
        }
        for l in &self.links {
            let _ = write!(out, ",link={}-{}x{}", l.a, l.b, l.factor);
            if l.add != 0.0 {
                let _ = write!(out, "+{}", l.add);
            }
        }
        if let Some(d) = &self.drop {
            let _ = write!(out, ",drop={}/{}", d.prob, d.max_consecutive);
        }
        for d in &self.drop_exact {
            let _ = write!(out, ",dropat={}>{}@{}x{}", d.from, d.to, d.nth, d.count);
        }
        if let Some(c) = &self.crash {
            let _ = write!(out, ",crash={}@{}", c.rank, c.after_ops);
        }
        if self.retry != RetryParams::default() {
            let _ = write!(
                out,
                ",attempts={},timeout={}",
                self.retry.max_attempts, self.retry.timeout
            );
        }
        out
    }

    /// Parse a spec string produced by [`describe`](Self::describe) (also
    /// the `--faults` CLI syntax). Comma-separated `key=value` entries:
    ///
    /// ```text
    /// seed=42,straggler=3x2.5,link=0-1x2+50,drop=0.05/3,
    /// dropat=0>1@3x2,crash=2@7,attempts=5,timeout=300
    /// ```
    ///
    /// `straggler`, `link` and `dropat` may repeat. Unknown keys or
    /// malformed values are an `Err` naming the offending entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let entry = entry.trim();
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {entry:?} is not key=value"))?;
            let bad = |what: &str| format!("fault spec entry {entry:?}: bad {what}");
            match key {
                "seed" => plan.seed = value.parse().map_err(|_| bad("seed"))?,
                "straggler" => {
                    let (rank, factor) = value.split_once('x').ok_or_else(|| bad("straggler"))?;
                    plan.compute.push(RankSlowdown {
                        rank: rank.parse().map_err(|_| bad("rank"))?,
                        factor: factor.parse().map_err(|_| bad("factor"))?,
                    });
                }
                "link" => {
                    let (pair, rest) = value.split_once('x').ok_or_else(|| bad("link"))?;
                    let (a, b) = pair.split_once('-').ok_or_else(|| bad("link pair"))?;
                    let (factor, add) = match rest.split_once('+') {
                        Some((f, a)) => (
                            f.parse().map_err(|_| bad("factor"))?,
                            a.parse().map_err(|_| bad("add"))?,
                        ),
                        None => (rest.parse().map_err(|_| bad("factor"))?, 0.0),
                    };
                    plan.links.push(LinkSlowdown {
                        a: a.parse().map_err(|_| bad("rank"))?,
                        b: b.parse().map_err(|_| bad("rank"))?,
                        factor,
                        add,
                    });
                }
                "drop" => {
                    let (prob, cap) = value.split_once('/').ok_or_else(|| bad("drop"))?;
                    plan.drop = Some(DropParams {
                        prob: prob.parse().map_err(|_| bad("probability"))?,
                        max_consecutive: cap.parse().map_err(|_| bad("cap"))?,
                    });
                }
                "dropat" => {
                    let (from, rest) = value.split_once('>').ok_or_else(|| bad("dropat"))?;
                    let (to, rest) = rest.split_once('@').ok_or_else(|| bad("dropat"))?;
                    let (nth, count) = match rest.split_once('x') {
                        Some((n, c)) => (
                            n.parse().map_err(|_| bad("nth"))?,
                            c.parse().map_err(|_| bad("count"))?,
                        ),
                        None => (rest.parse().map_err(|_| bad("nth"))?, 1),
                    };
                    plan.drop_exact.push(DropExact {
                        from: from.parse().map_err(|_| bad("rank"))?,
                        to: to.parse().map_err(|_| bad("rank"))?,
                        nth,
                        count,
                    });
                }
                "crash" => {
                    let (rank, ops) = value.split_once('@').ok_or_else(|| bad("crash"))?;
                    plan.crash = Some(CrashSpec {
                        rank: rank.parse().map_err(|_| bad("rank"))?,
                        after_ops: ops.parse().map_err(|_| bad("ordinal"))?,
                    });
                }
                "attempts" => {
                    plan.retry.max_attempts = value.parse().map_err(|_| bad("attempts"))?
                }
                "timeout" => plan.retry.timeout = value.parse().map_err(|_| bad("timeout"))?,
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// SplitMix64 over the combined drop identity — the same generator family
/// the jitter stream uses, keyed so that every `(from, to, nth, attempt)`
/// tuple gets an independent uniform draw.
#[inline]
fn drop_unit(seed: u64, from: usize, to: usize, nth: u64, attempt: u32) -> f64 {
    let mut z = seed
        .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(from as u64 + 1))
        .wrapping_add(0xd1b54a32d192ed03u64.wrapping_mul(to as u64 + 1))
        .wrapping_add(nth.wrapping_mul(0xbf58476d1ce4e5b9))
        .wrapping_add((attempt as u64).wrapping_mul(0x94d049bb133111eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-rank replay state for one [`FaultPlan`]: the machine creates one
/// per rank and consults it on every context operation. All state is a
/// pure function of the plan and this rank's own operation sequence, so
/// replay is deterministic regardless of thread scheduling.
#[derive(Debug)]
pub struct FaultInjector {
    plan: std::sync::Arc<FaultPlan>,
    rank: usize,
    /// Operations performed so far (the crash ordinal counter).
    ops_done: u64,
    /// Per-destination directed send counters (the `nth` in drop keys).
    sends: Vec<u64>,
}

impl FaultInjector {
    /// An injector replaying `plan` on `rank` of a `p`-rank machine.
    pub fn new(plan: std::sync::Arc<FaultPlan>, rank: usize, p: usize) -> Self {
        FaultInjector {
            plan,
            rank,
            ops_done: 0,
            sends: vec![0; p],
        }
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advance the operation counter; returns `true` when the plan's
    /// crash fires at this very operation.
    #[inline]
    pub fn tick(&mut self) -> bool {
        let due = match &self.plan.crash {
            Some(c) => c.rank == self.rank && self.ops_done >= c.after_ops,
            None => false,
        };
        self.ops_done += 1;
        due
    }

    /// This rank's compute slowdown factor (`1.0` when unaffected). When
    /// several [`RankSlowdown`] entries name the same rank their factors
    /// compound.
    #[inline]
    pub fn compute_factor(&self) -> f64 {
        let mut f = 1.0;
        for s in &self.plan.compute {
            if s.rank == self.rank {
                f *= s.factor;
            }
        }
        f
    }

    /// Inflate a transfer cost for the (undirected) link `{a, b}`.
    /// Returns `cost` *unchanged* — bit-for-bit — when no entry covers the
    /// link, so an empty plan is observationally inert.
    #[inline]
    pub fn inflate_link(&self, a: usize, b: usize, cost: f64) -> f64 {
        let mut out = cost;
        let mut touched = false;
        for l in &self.plan.links {
            if l.covers(a, b) {
                out = out * l.factor + l.add;
                touched = true;
            }
        }
        if touched {
            out
        } else {
            cost
        }
    }

    /// How many consecutive drops the next message on the directed lane
    /// `self.rank -> to` suffers before getting through. Consumes one lane
    /// ordinal. The result is capped at `retry.max_attempts` (more drops
    /// than attempts are indistinguishable: the sender has given up).
    pub fn outgoing_drops(&mut self, to: usize) -> u32 {
        let nth = self.sends[to];
        self.sends[to] += 1;
        let max_attempts = self.plan.retry.max_attempts;
        let mut drops: u32 = 0;
        for d in &self.plan.drop_exact {
            if d.from == self.rank && d.to == to && d.nth == nth {
                drops = drops.saturating_add(d.count).min(max_attempts);
            }
        }
        if let Some(dp) = &self.plan.drop {
            while drops < dp.max_consecutive.min(max_attempts)
                && drop_unit(self.plan.seed, self.rank, to, nth, drops) < dp.prob
            {
                drops += 1;
            }
        }
        drops
    }

    /// The retry protocol parameters.
    #[inline]
    pub fn retry(&self) -> RetryParams {
        self.plan.retry
    }

    /// Can this plan drop messages at all? (Fast path: when `false`, the
    /// send path skips drop bookkeeping entirely.)
    #[inline]
    pub fn is_lossy(&self) -> bool {
        self.plan.is_lossy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_plan_is_empty_and_inert() {
        let plan = FaultPlan::new(7);
        assert!(plan.is_empty());
        assert!(!plan.is_lossy());
        assert_eq!(plan.max_compute_factor(), 1.0);
        assert_eq!(plan.max_link_factor(), 1.0);
        assert_eq!(plan.max_link_add(), 0.0);
        let mut inj = FaultInjector::new(Arc::new(plan), 0, 4);
        assert_eq!(inj.compute_factor(), 1.0);
        // Bitwise identity, not just numeric closeness.
        let cost = 123.456789;
        assert_eq!(inj.inflate_link(0, 1, cost).to_bits(), cost.to_bits());
        for _ in 0..100 {
            assert!(!inj.tick());
        }
        assert_eq!(inj.outgoing_drops(1), 0);
    }

    #[test]
    fn recoverability_classification() {
        // Empty and delay-only plans always recover.
        assert!(FaultPlan::new(1).is_recoverable());
        assert!(FaultPlan::new(1)
            .with_straggler(0, 2.0)
            .with_slow_link(0, 1, 2.0, 10.0)
            .is_recoverable());
        // Drops recover iff the worst burst stays below the retry budget.
        assert!(FaultPlan::new(1).with_drops(0.2, 2).is_recoverable());
        assert!(!FaultPlan::new(1).with_drops(0.2, 4).is_recoverable());
        assert!(FaultPlan::new(1)
            .with_drop_exact(0, 1, 3, 2)
            .is_recoverable());
        assert!(!FaultPlan::new(1)
            .with_drop_exact(0, 1, 3, 4)
            .is_recoverable());
        // Raising the retry budget can make a lossy plan recoverable.
        assert!(FaultPlan::new(1)
            .with_drops(0.2, 4)
            .with_retry(6, 500.0)
            .is_recoverable());
        // Crashes never recover.
        assert!(!FaultPlan::new(1).with_crash(2, 7).is_recoverable());
    }

    #[test]
    fn builders_populate_the_plan() {
        let plan = FaultPlan::new(1)
            .with_straggler(2, 3.0)
            .with_slow_link(0, 1, 2.0, 50.0)
            .with_drops(0.25, 2)
            .with_drop_exact(0, 1, 3, 2)
            .with_crash(1, 9)
            .with_retry(5, 300.0);
        assert!(!plan.is_empty());
        assert!(plan.is_lossy());
        assert_eq!(plan.max_compute_factor(), 3.0);
        assert_eq!(plan.max_link_factor(), 2.0);
        assert_eq!(plan.max_link_add(), 50.0);
        assert_eq!(
            plan.crash,
            Some(CrashSpec {
                rank: 1,
                after_ops: 9
            })
        );
        assert_eq!(plan.retry.max_attempts, 5);
    }

    #[test]
    fn spec_round_trips_through_describe_and_parse() {
        let plans = vec![
            FaultPlan::new(0),
            FaultPlan::new(42).with_straggler(3, 2.5),
            FaultPlan::new(7).with_slow_link(0, 1, 2.0, 50.0),
            FaultPlan::new(7).with_slow_link(2, 5, 1.5, 0.0),
            FaultPlan::new(9).with_drops(0.05, 3),
            FaultPlan::new(1).with_drop_exact(0, 1, 3, 2),
            FaultPlan::new(2).with_crash(2, 7),
            FaultPlan::new(3)
                .with_straggler(1, 4.0)
                .with_straggler(2, 2.0)
                .with_slow_link(0, 3, 3.0, 10.0)
                .with_drops(0.1, 2)
                .with_drop_exact(4, 5, 0, 6)
                .with_crash(0, 100)
                .with_retry(6, 250.0),
        ];
        for plan in plans {
            let spec = plan.describe();
            let parsed = FaultPlan::parse(&spec)
                .unwrap_or_else(|e| panic!("spec {spec:?} failed to parse: {e}"));
            assert_eq!(parsed, plan, "round-trip through {spec:?}");
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nonsense",
            "wat=1",
            "seed=abc",
            "straggler=3",
            "link=0x2",
            "drop=0.5",
            "crash=1",
            "dropat=0@1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn crash_fires_exactly_at_its_ordinal() {
        let plan = Arc::new(FaultPlan::new(0).with_crash(1, 3));
        let mut right_rank = FaultInjector::new(plan.clone(), 1, 2);
        assert!(!right_rank.tick()); // op 0
        assert!(!right_rank.tick()); // op 1
        assert!(!right_rank.tick()); // op 2
        assert!(right_rank.tick()); // op 3: boom
        let mut wrong_rank = FaultInjector::new(plan, 0, 2);
        for _ in 0..10 {
            assert!(!wrong_rank.tick());
        }
    }

    #[test]
    fn link_inflation_is_undirected_and_compounds() {
        let plan = Arc::new(FaultPlan::new(0).with_slow_link(0, 1, 2.0, 10.0));
        let inj0 = FaultInjector::new(plan.clone(), 0, 3);
        let inj1 = FaultInjector::new(plan, 1, 3);
        assert_eq!(inj0.inflate_link(0, 1, 100.0), 210.0);
        assert_eq!(inj1.inflate_link(1, 0, 100.0), 210.0);
        // Uncovered link untouched.
        assert_eq!(inj0.inflate_link(0, 2, 100.0), 100.0);
    }

    #[test]
    fn straggler_factors_compound() {
        let plan = Arc::new(
            FaultPlan::new(0)
                .with_straggler(1, 2.0)
                .with_straggler(1, 3.0),
        );
        assert_eq!(FaultInjector::new(plan.clone(), 1, 2).compute_factor(), 6.0);
        assert_eq!(FaultInjector::new(plan, 0, 2).compute_factor(), 1.0);
    }

    #[test]
    fn exact_drops_hit_only_their_message() {
        let plan = Arc::new(FaultPlan::new(0).with_drop_exact(0, 1, 2, 3));
        let mut inj = FaultInjector::new(plan, 0, 2);
        assert_eq!(inj.outgoing_drops(1), 0); // nth = 0
        assert_eq!(inj.outgoing_drops(1), 0); // nth = 1
        assert_eq!(inj.outgoing_drops(1), 3); // nth = 2
        assert_eq!(inj.outgoing_drops(1), 0); // nth = 3
    }

    #[test]
    fn random_drops_are_deterministic_and_capped() {
        let plan = Arc::new(FaultPlan::new(99).with_drops(0.5, 2));
        let mut a = FaultInjector::new(plan.clone(), 0, 4);
        let mut b = FaultInjector::new(plan, 0, 4);
        let mut dropped_any = false;
        for _ in 0..200 {
            let da = a.outgoing_drops(1);
            let db = b.outgoing_drops(1);
            assert_eq!(da, db, "same plan, same lane, same ordinal");
            assert!(da <= 2);
            dropped_any |= da > 0;
        }
        assert!(dropped_any, "p=0.5 over 200 messages must drop something");
    }

    #[test]
    fn drop_streams_differ_across_lanes() {
        let plan = Arc::new(FaultPlan::new(5).with_drops(0.5, 1));
        let mut inj = FaultInjector::new(plan, 0, 3);
        let lane1: Vec<u32> = (0..64).map(|_| inj.outgoing_drops(1)).collect();
        let mut inj2 = FaultInjector::new(Arc::new(FaultPlan::new(5).with_drops(0.5, 1)), 0, 3);
        let lane2: Vec<u32> = (0..64).map(|_| inj2.outgoing_drops(2)).collect();
        assert_ne!(lane1, lane2, "different destinations, different streams");
    }

    #[test]
    fn exact_drop_count_is_capped_at_max_attempts() {
        let plan = Arc::new(
            FaultPlan::new(0)
                .with_drop_exact(0, 1, 0, 1000)
                .with_retry(3, 0.0),
        );
        let mut inj = FaultInjector::new(plan, 0, 2);
        assert_eq!(inj.outgoing_drops(1), 3);
    }
}
