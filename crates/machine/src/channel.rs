//! Type-erased point-to-point mailboxes between ranks.
//!
//! The machine is fully connected: every ordered pair of ranks `(src, dst)`
//! gets its own FIFO channel, so a receive from a specific source needs no
//! tag matching and two messages from the same source can never overtake
//! each other. Payloads are type-erased (`Box<dyn Any + Send>`) so that a
//! single SPMD program can exchange values of several types — e.g. a
//! broadcast of `Vec<f64>` followed by a scan over pairs.

use std::any::Any;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::error::MachineError;

/// A message in flight: payload, declared size in words (for cost
/// accounting), and the sender's simulated clock at the moment of sending.
pub struct Packet {
    /// The type-erased payload.
    pub payload: Box<dyn Any + Send>,
    /// Size in machine words, as charged by the cost model.
    pub words: u64,
    /// Sender's simulated time when the message entered the network.
    pub send_time: f64,
}

impl std::fmt::Debug for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Packet")
            .field("words", &self.words)
            .field("send_time", &self.send_time)
            .finish_non_exhaustive()
    }
}

/// The sending half of the full mesh, owned by one rank: one [`Sender`]
/// per destination.
pub struct Mailboxes {
    rank: usize,
    senders: Vec<Sender<Packet>>,
    receivers: Vec<Receiver<Packet>>,
}

impl Mailboxes {
    /// Rank that owns this set of mailboxes.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the mesh.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Enqueue a packet for `dst`. Panics on an invalid destination — the
    /// collectives never produce one, so this is an assertion, not a
    /// recoverable condition.
    pub fn push(&self, dst: usize, packet: Packet) -> Result<(), MachineError> {
        if dst >= self.senders.len() {
            return Err(MachineError::InvalidRank {
                rank: dst,
                size: self.senders.len(),
            });
        }
        self.senders[dst]
            .send(packet)
            .map_err(|_| MachineError::Disconnected { rank: dst })
    }

    /// Block until a packet from `src` arrives.
    pub fn pop(&self, src: usize) -> Result<Packet, MachineError> {
        if src >= self.receivers.len() {
            return Err(MachineError::InvalidRank {
                rank: src,
                size: self.receivers.len(),
            });
        }
        self.receivers[src]
            .recv()
            .map_err(|_| MachineError::Disconnected { rank: src })
    }

    /// Block until a packet arrives from *any* source (MPI_ANY_SOURCE);
    /// returns `(source, packet)`. Uses a fair crossbeam `Select` over all
    /// incoming channels.
    pub fn pop_any(&self) -> Result<(usize, Packet), MachineError> {
        let mut sel = crossbeam::channel::Select::new();
        for rx in &self.receivers {
            sel.recv(rx);
        }
        let mut live = self.receivers.len();
        loop {
            let op = sel.select();
            let src = op.index();
            match op.recv(&self.receivers[src]) {
                Ok(p) => return Ok((src, p)),
                Err(_) => {
                    // This peer finished and its channel drained; stop
                    // polling it. Only when every source is gone is the
                    // caller's protocol broken.
                    sel.remove(src);
                    live -= 1;
                    if live == 0 {
                        return Err(MachineError::Disconnected { rank: src });
                    }
                }
            }
        }
    }

    /// Non-blocking variant of [`pop`](Self::pop): `Ok(None)` when the
    /// mailbox from `src` is currently empty.
    pub fn try_pop(&self, src: usize) -> Result<Option<Packet>, MachineError> {
        if src >= self.receivers.len() {
            return Err(MachineError::InvalidRank {
                rank: src,
                size: self.receivers.len(),
            });
        }
        match self.receivers[src].try_recv() {
            Ok(p) => Ok(Some(p)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                Err(MachineError::Disconnected { rank: src })
            }
        }
    }
}

/// Builds the full `p × p` mesh and hands each rank its mailboxes.
pub fn build_mesh(p: usize) -> Vec<Mailboxes> {
    // senders[src][dst] / receivers[dst][src]
    let mut senders: Vec<Vec<Sender<Packet>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut receivers: Vec<Vec<Receiver<Packet>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    for src in 0..p {
        for _dst in 0..p {
            let (tx, rx) = unbounded();
            senders[src].push(tx);
            receivers[src].push(rx); // placeholder position, fixed below
        }
    }
    // receivers[dst][src] must be the rx end of channel (src -> dst); the
    // loop above filled receivers[src][dst], so transpose.
    let mut transposed: Vec<Vec<Receiver<Packet>>> =
        (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut taken: Vec<Vec<Option<Receiver<Packet>>>> = receivers
        .into_iter()
        .map(|row| row.into_iter().map(Some).collect())
        .collect();
    for dst in 0..p {
        for row in taken.iter_mut() {
            transposed[dst].push(row[dst].take().expect("transpose visits each cell once"));
        }
    }
    senders
        .into_iter()
        .zip(transposed)
        .enumerate()
        .map(|(rank, (senders, receivers))| Mailboxes {
            rank,
            senders,
            receivers,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet<T: Send + 'static>(v: T, words: u64) -> Packet {
        Packet {
            payload: Box::new(v),
            words,
            send_time: 0.0,
        }
    }

    #[test]
    fn mesh_routes_point_to_point() {
        let mut mesh = build_mesh(3);
        let m2 = mesh.pop().unwrap();
        let m1 = mesh.pop().unwrap();
        let m0 = mesh.pop().unwrap();
        assert_eq!(m0.rank(), 0);
        assert_eq!(m1.rank(), 1);
        assert_eq!(m2.rank(), 2);

        m0.push(2, packet(41u32, 1)).unwrap();
        m1.push(2, packet("hello", 1)).unwrap();
        let p = m2.pop(0).unwrap();
        assert_eq!(*p.payload.downcast::<u32>().unwrap(), 41);
        let p = m2.pop(1).unwrap();
        assert_eq!(*p.payload.downcast::<&str>().unwrap(), "hello");
    }

    #[test]
    fn fifo_order_per_pair() {
        let mesh = build_mesh(2);
        mesh[0].push(1, packet(1u8, 1)).unwrap();
        mesh[0].push(1, packet(2u8, 1)).unwrap();
        mesh[0].push(1, packet(3u8, 1)).unwrap();
        for expected in 1..=3u8 {
            let p = mesh[1].pop(0).unwrap();
            assert_eq!(*p.payload.downcast::<u8>().unwrap(), expected);
        }
    }

    #[test]
    fn self_send_works() {
        let mesh = build_mesh(1);
        mesh[0].push(0, packet(7i64, 1)).unwrap();
        let p = mesh[0].pop(0).unwrap();
        assert_eq!(*p.payload.downcast::<i64>().unwrap(), 7);
    }

    #[test]
    fn try_pop_empty_returns_none() {
        let mesh = build_mesh(2);
        assert!(mesh[0].try_pop(1).unwrap().is_none());
        mesh[1].push(0, packet(9u16, 1)).unwrap();
        let got = mesh[0].try_pop(1).unwrap().unwrap();
        assert_eq!(*got.payload.downcast::<u16>().unwrap(), 9);
    }

    #[test]
    fn invalid_rank_is_reported() {
        let mesh = build_mesh(2);
        assert_eq!(
            mesh[0].push(5, packet(0u8, 1)).unwrap_err(),
            MachineError::InvalidRank { rank: 5, size: 2 }
        );
        assert_eq!(
            mesh[0].pop(9).unwrap_err(),
            MachineError::InvalidRank { rank: 9, size: 2 }
        );
    }

    #[test]
    fn packets_carry_metadata() {
        let mesh = build_mesh(2);
        mesh[0]
            .push(
                1,
                Packet {
                    payload: Box::new(0u8),
                    words: 42,
                    send_time: 3.5,
                },
            )
            .unwrap();
        let p = mesh[1].pop(0).unwrap();
        assert_eq!(p.words, 42);
        assert_eq!(p.send_time, 3.5);
    }
}
