//! Type-erased point-to-point mailboxes between ranks.
//!
//! The machine is fully connected: every ordered pair of ranks `(src, dst)`
//! gets its own FIFO queue, so a receive from a specific source needs no
//! tag matching and two messages from the same source can never overtake
//! each other. Payloads are type-erased (`Box<dyn Any + Send>`) so that a
//! single SPMD program can exchange values of several types — e.g. a
//! broadcast of `Vec<f64>` followed by a scan over pairs.
//!
//! Built on `std::sync` only: each rank owns one inbox (a mutex-protected
//! set of per-source FIFO queues). A sender locks the destination inbox,
//! enqueues, and wakes the receiver if one is parked; a receiver blocks via
//! `thread::park`. Because each rank is the *only* thread that ever
//! receives from its own inbox, at most one waiter can exist per inbox, so
//! a single parked-thread slot replaces a condvar — roughly halving the
//! cost of every blocking receive, which dominates simulator wall-clock.
//! When a rank's [`Mailboxes`] is dropped, it marks itself dead in every
//! peer's inbox so blocked receivers observe a disconnect instead of
//! hanging — the same semantics a per-pair channel would give when its
//! sending half is dropped (queued packets still drain first).
//!
//! The inbox array itself lives in a [`Mesh`] that survives across runs:
//! the persistent engine resets the queues in place via [`Mesh::issue`]
//! instead of reallocating `p²` queues per simulation.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::thread::Thread;

use crate::error::MachineError;

/// A message in flight: payload, declared size in words (for cost
/// accounting), and the sender's simulated clock at the moment of sending.
pub struct Packet {
    /// The type-erased payload.
    pub payload: Box<dyn Any + Send>,
    /// Size in machine words, as charged by the cost model.
    pub words: u64,
    /// Sender's simulated time when the message entered the network.
    pub send_time: f64,
}

impl std::fmt::Debug for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Packet")
            .field("words", &self.words)
            .field("send_time", &self.send_time)
            .finish_non_exhaustive()
    }
}

/// Mutable inbox state of one rank: a FIFO queue per source plus the
/// liveness of each sender (false once that rank's [`Mailboxes`] dropped).
struct InboxState {
    queues: Vec<VecDeque<Packet>>,
    live: Vec<bool>,
    /// Rotating start index so [`Mailboxes::pop_any`] is fair across
    /// sources rather than always favouring rank 0.
    next_scan: usize,
    /// The owning rank's thread, registered while it is parked waiting for
    /// a packet. Single-slot: only the owner ever receives from its inbox.
    waiter: Option<Thread>,
}

/// One rank's inbox. Receivers block via `park`; senders and droppers wake
/// the registered waiter, if any.
struct Inbox {
    state: Mutex<InboxState>,
}

impl Inbox {
    fn new(p: usize) -> Inbox {
        Inbox {
            state: Mutex::new(InboxState {
                queues: (0..p).map(|_| VecDeque::new()).collect(),
                live: vec![true; p],
                next_scan: 0,
                waiter: None,
            }),
        }
    }

    /// Restore the pristine post-construction state in place, keeping the
    /// queue allocations. Called between runs by [`Mesh::issue`].
    fn reset(&self) {
        let mut state = self.state.lock().expect("inbox poisoned");
        for q in &mut state.queues {
            q.clear();
        }
        state.live.fill(true);
        state.next_scan = 0;
        state.waiter = None;
    }
}

/// Wake the parked receiver, if any. Must be called *after* mutating the
/// state the receiver re-checks (enqueue or liveness flip) while still
/// holding the lock, so the take-then-unpark pairs with the receiver's
/// register-then-park.
fn wake(state: &mut InboxState) {
    if let Some(t) = state.waiter.take() {
        t.unpark();
    }
}

/// One rank's view of the full mesh: its own inbox (to receive) and every
/// peer's inbox (to send).
pub struct Mailboxes {
    rank: usize,
    /// Shared, not per-rank-cloned: handing out `p` views costs `p` Arc
    /// bumps instead of `p²`, which matters when a pooled engine reissues
    /// views for every one of thousands of short runs.
    inboxes: Arc<Vec<Arc<Inbox>>>,
}

impl Mailboxes {
    /// Rank that owns this set of mailboxes.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the mesh.
    pub fn size(&self) -> usize {
        self.inboxes.len()
    }

    /// Enqueue a packet for `dst`.
    pub fn push(&self, dst: usize, packet: Packet) -> Result<(), MachineError> {
        if dst >= self.inboxes.len() {
            return Err(MachineError::InvalidRank {
                rank: dst,
                size: self.inboxes.len(),
            });
        }
        let mut state = self.inboxes[dst].state.lock().expect("inbox poisoned");
        state.queues[self.rank].push_back(packet);
        wake(&mut state);
        Ok(())
    }

    /// Block until a packet from `src` arrives.
    pub fn pop(&self, src: usize) -> Result<Packet, MachineError> {
        if src >= self.inboxes.len() {
            return Err(MachineError::InvalidRank {
                rank: src,
                size: self.inboxes.len(),
            });
        }
        let inbox = &self.inboxes[self.rank];
        let mut state = inbox.state.lock().expect("inbox poisoned");
        loop {
            if let Some(p) = state.queues[src].pop_front() {
                state.waiter = None;
                return Ok(p);
            }
            if !state.live[src] {
                // Sender gone and its queue drained.
                state.waiter = None;
                return Err(MachineError::Disconnected { rank: src });
            }
            state.waiter = Some(std::thread::current());
            drop(state);
            // A push between the drop above and this park leaves an unpark
            // token, so the wakeup cannot be lost; stale tokens merely cause
            // one extra trip around the re-check loop.
            std::thread::park();
            state = inbox.state.lock().expect("inbox poisoned");
        }
    }

    /// Block until a packet arrives from *any* source (MPI_ANY_SOURCE);
    /// returns `(source, packet)`. A rotating scan start keeps the choice
    /// fair when several sources are ready.
    pub fn pop_any(&self) -> Result<(usize, Packet), MachineError> {
        let p = self.inboxes.len();
        let inbox = &self.inboxes[self.rank];
        let mut state = inbox.state.lock().expect("inbox poisoned");
        loop {
            let start = state.next_scan;
            for off in 0..p {
                let src = (start + off) % p;
                if let Some(packet) = state.queues[src].pop_front() {
                    state.next_scan = (src + 1) % p;
                    state.waiter = None;
                    return Ok((src, packet));
                }
            }
            // Every queue is empty; if every *other* rank is also gone, no
            // packet can ever arrive (a rank blocked in `pop_any` cannot
            // send to itself), so report the lowest dead peer rather than
            // waiting forever. A single dead peer is fine — the others may
            // still send.
            let dead_peer = (0..p).find(|&src| src != self.rank && !state.live[src]);
            let any_live_peer = (0..p).any(|src| src != self.rank && state.live[src]);
            if !any_live_peer {
                if let Some(dead) = dead_peer.or((p == 1).then_some(0)) {
                    state.waiter = None;
                    return Err(MachineError::Disconnected { rank: dead });
                }
            }
            state.waiter = Some(std::thread::current());
            drop(state);
            std::thread::park();
            state = inbox.state.lock().expect("inbox poisoned");
        }
    }

    /// Non-blocking variant of [`pop`](Self::pop): `Ok(None)` when the
    /// mailbox from `src` is currently empty.
    pub fn try_pop(&self, src: usize) -> Result<Option<Packet>, MachineError> {
        if src >= self.inboxes.len() {
            return Err(MachineError::InvalidRank {
                rank: src,
                size: self.inboxes.len(),
            });
        }
        let mut state = self.inboxes[self.rank]
            .state
            .lock()
            .expect("inbox poisoned");
        if let Some(p) = state.queues[src].pop_front() {
            return Ok(Some(p));
        }
        if !state.live[src] {
            return Err(MachineError::Disconnected { rank: src });
        }
        Ok(None)
    }
}

impl Drop for Mailboxes {
    fn drop(&mut self) {
        // Mark this rank dead in every inbox (including our own, for
        // completeness) and wake any blocked receiver so it can observe
        // the disconnect instead of waiting forever.
        for inbox in self.inboxes.iter() {
            if let Ok(mut state) = inbox.state.lock() {
                state.live[self.rank] = false;
                wake(&mut state);
            }
        }
    }
}

/// The persistent `p × p` inbox array. Constructing one allocates all
/// queues; [`issue`](Mesh::issue) resets them in place and hands each rank
/// a fresh [`Mailboxes`] view, so a pooled engine pays the allocation once
/// per pool instead of once per run.
pub struct Mesh {
    inboxes: Arc<Vec<Arc<Inbox>>>,
}

impl Mesh {
    /// Allocate a mesh for `p` ranks.
    pub fn new(p: usize) -> Mesh {
        Mesh {
            inboxes: Arc::new((0..p).map(|_| Arc::new(Inbox::new(p))).collect()),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.inboxes.len()
    }

    /// Reset every inbox to its pristine state (empty queues, all ranks
    /// live) and hand out one [`Mailboxes`] view per rank. The previous
    /// run's views must have been dropped first; the reset erases the
    /// dead-rank marks they left behind, so the new run starts from a
    /// state indistinguishable from a freshly built mesh.
    pub fn issue(&self) -> Vec<Mailboxes> {
        for inbox in self.inboxes.iter() {
            inbox.reset();
        }
        (0..self.inboxes.len())
            .map(|rank| Mailboxes {
                rank,
                inboxes: self.inboxes.clone(),
            })
            .collect()
    }
}

/// Builds a full `p × p` mesh and hands each rank its mailboxes.
pub fn build_mesh(p: usize) -> Vec<Mailboxes> {
    Mesh::new(p).issue()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet<T: Send + 'static>(v: T, words: u64) -> Packet {
        Packet {
            payload: Box::new(v),
            words,
            send_time: 0.0,
        }
    }

    #[test]
    fn mesh_routes_point_to_point() {
        let mut mesh = build_mesh(3);
        let m2 = mesh.pop().unwrap();
        let m1 = mesh.pop().unwrap();
        let m0 = mesh.pop().unwrap();
        assert_eq!(m0.rank(), 0);
        assert_eq!(m1.rank(), 1);
        assert_eq!(m2.rank(), 2);

        m0.push(2, packet(41u32, 1)).unwrap();
        m1.push(2, packet("hello", 1)).unwrap();
        let p = m2.pop(0).unwrap();
        assert_eq!(*p.payload.downcast::<u32>().unwrap(), 41);
        let p = m2.pop(1).unwrap();
        assert_eq!(*p.payload.downcast::<&str>().unwrap(), "hello");
    }

    #[test]
    fn fifo_order_per_pair() {
        let mesh = build_mesh(2);
        mesh[0].push(1, packet(1u8, 1)).unwrap();
        mesh[0].push(1, packet(2u8, 1)).unwrap();
        mesh[0].push(1, packet(3u8, 1)).unwrap();
        for expected in 1..=3u8 {
            let p = mesh[1].pop(0).unwrap();
            assert_eq!(*p.payload.downcast::<u8>().unwrap(), expected);
        }
    }

    #[test]
    fn self_send_works() {
        let mesh = build_mesh(1);
        mesh[0].push(0, packet(7i64, 1)).unwrap();
        let p = mesh[0].pop(0).unwrap();
        assert_eq!(*p.payload.downcast::<i64>().unwrap(), 7);
    }

    #[test]
    fn try_pop_empty_returns_none() {
        let mesh = build_mesh(2);
        assert!(mesh[0].try_pop(1).unwrap().is_none());
        mesh[1].push(0, packet(9u16, 1)).unwrap();
        let got = mesh[0].try_pop(1).unwrap().unwrap();
        assert_eq!(*got.payload.downcast::<u16>().unwrap(), 9);
    }

    #[test]
    fn invalid_rank_is_reported() {
        let mesh = build_mesh(2);
        assert_eq!(
            mesh[0].push(5, packet(0u8, 1)).unwrap_err(),
            MachineError::InvalidRank { rank: 5, size: 2 }
        );
        assert_eq!(
            mesh[0].pop(9).unwrap_err(),
            MachineError::InvalidRank { rank: 9, size: 2 }
        );
    }

    #[test]
    fn packets_carry_metadata() {
        let mesh = build_mesh(2);
        mesh[0]
            .push(
                1,
                Packet {
                    payload: Box::new(0u8),
                    words: 42,
                    send_time: 3.5,
                },
            )
            .unwrap();
        let p = mesh[1].pop(0).unwrap();
        assert_eq!(p.words, 42);
        assert_eq!(p.send_time, 3.5);
    }

    #[test]
    fn queued_packets_drain_before_disconnect_is_reported() {
        let mut mesh = build_mesh(2);
        let m1 = mesh.pop().unwrap();
        let m0 = mesh.pop().unwrap();
        m0.push(1, packet(5u8, 1)).unwrap();
        drop(m0);
        let p = m1.pop(0).unwrap();
        assert_eq!(*p.payload.downcast::<u8>().unwrap(), 5);
        assert_eq!(
            m1.pop(0).unwrap_err(),
            MachineError::Disconnected { rank: 0 }
        );
    }

    #[test]
    fn pop_any_reports_disconnect_when_all_peers_die() {
        let mut mesh = build_mesh(3);
        let m2 = mesh.pop().unwrap();
        let m1 = mesh.pop().unwrap();
        let m0 = mesh.pop().unwrap();
        // Rank 1 sends one packet then dies; rank 2 dies silently. Rank 0
        // must drain the queued packet, then observe the disconnect (it
        // can never receive from itself while blocked).
        m1.push(0, packet(1u8, 1)).unwrap();
        drop(m1);
        drop(m2);
        let (src, p) = m0.pop_any().unwrap();
        assert_eq!(src, 1);
        assert_eq!(*p.payload.downcast::<u8>().unwrap(), 1);
        let err = m0.pop_any().unwrap_err();
        assert_eq!(err, MachineError::Disconnected { rank: 1 });
    }

    #[test]
    fn pop_any_is_fair_across_ready_sources() {
        let mesh = build_mesh(3);
        for _ in 0..2 {
            mesh[0].push(2, packet(0usize, 1)).unwrap();
            mesh[1].push(2, packet(1usize, 1)).unwrap();
        }
        let mut sources = Vec::new();
        for _ in 0..4 {
            let (src, _) = mesh[2].pop_any().unwrap();
            sources.push(src);
        }
        sources.sort_unstable();
        assert_eq!(sources, vec![0, 0, 1, 1]);
    }

    #[test]
    fn mesh_issue_resets_state_between_runs() {
        let mesh = Mesh::new(2);
        let mut boxes = mesh.issue();
        let m1 = boxes.pop().unwrap();
        let m0 = boxes.pop().unwrap();
        // Leave a packet queued and drop both views (marking ranks dead).
        m0.push(1, packet(9u8, 1)).unwrap();
        drop(m0);
        drop(m1);
        // A reissued mesh must behave like a fresh one: no residue, no
        // dead marks.
        let reissued = mesh.issue();
        assert!(reissued[1].try_pop(0).unwrap().is_none());
        reissued[0].push(1, packet(3u8, 1)).unwrap();
        let p = reissued[1].pop(0).unwrap();
        assert_eq!(*p.payload.downcast::<u8>().unwrap(), 3);
    }

    #[test]
    fn parked_receiver_wakes_on_push() {
        let mesh = Mesh::new(2);
        let mut boxes = mesh.issue();
        let m1 = boxes.pop().unwrap();
        let m0 = boxes.pop().unwrap();
        let handle = std::thread::spawn(move || {
            let p = m1.pop(0).unwrap();
            *p.payload.downcast::<u64>().unwrap()
        });
        // Give the receiver a moment to park, then wake it with a push.
        std::thread::sleep(std::time::Duration::from_millis(10));
        m0.push(1, packet(77u64, 1)).unwrap();
        assert_eq!(handle.join().unwrap(), 77);
    }
}
