//! A persistent pool of rank workers.
//!
//! Spawning and joining `p` OS threads costs two orders of magnitude more
//! than dispatching a job to `p` already-parked workers (measured ~119µs
//! vs ~9µs for `p = 6` on a stock Linux box), and a sweep runs thousands
//! of short simulations. A [`RankPool`] therefore keeps one long-lived
//! thread per rank; each [`run_on`](RankPool::run_on) call publishes a
//! job, bumps an epoch, unparks every worker, and blocks until all of
//! them report completion.
//!
//! The dispatch path is lock-free: the job is published through an
//! `AtomicPtr` to a submitter-stack cell, the epoch bump (release) makes
//! it visible to workers (acquire), and wake-ups are targeted
//! `Thread::unpark` calls instead of a condvar broadcast — a broadcast
//! makes every woken worker re-acquire the state mutex in turn, which on
//! a loaded host serializes the very hand-off the pool exists to speed
//! up. Park/unpark's token semantics make the obvious race benign: an
//! unpark delivered before the target parks just makes the next park
//! return immediately, and both wait loops re-check their condition.
//!
//! The job is passed as a raw pointer to a caller-owned closure. This is
//! the one `unsafe` trick in the crate, and it is sound for a simple
//! reason: `run_on` does not return until `remaining == 0`, i.e. until
//! every worker has finished executing the closure, so the borrow the
//! pointer was derived from strictly outlives every dereference.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{JoinHandle, Thread};

/// Type-erased, lifetime-erased pointer to the current job closure,
/// published on the submitter's stack for the duration of one dispatch.
struct JobCell {
    f: *const (dyn Fn(usize) + Sync + 'static),
}

struct PoolShared {
    /// Bumped (release) once per job, strictly after the job pointer and
    /// `remaining` are published; workers detect work by acquire-loading
    /// it, which makes those writes visible.
    epoch: AtomicU64,
    /// Thin pointer to the submitter's [`JobCell`]; valid exactly while
    /// `run_on` blocks.
    job: AtomicPtr<JobCell>,
    /// Workers still executing the current job.
    remaining: AtomicUsize,
    shutdown: AtomicBool,
    /// The thread blocked in `run_on`, unparked by the last finisher.
    submitter: Mutex<Option<Thread>>,
    /// First panic payload that escaped the job closure, re-raised by the
    /// submitter once every worker is idle again.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A persistent pool driving `p` ranks: rank 0 runs *inline on the
/// submitter thread* (it is about to block waiting for the result
/// anyway), ranks `1..p` run on parked worker threads. Running rank 0
/// in place saves one wake-up/park round-trip per dispatch — measurable
/// when a sweep runs thousands of sub-100µs simulations — and makes
/// `p = 1` runs entirely thread-free.
pub struct RankPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    /// Unpark handles for ranks `1..p`.
    handles: Vec<Thread>,
    p: usize,
}

impl RankPool {
    /// Build a pool for `p ≥ 1` ranks: `p - 1` workers are spawned and
    /// park immediately; rank 0 needs no thread.
    pub fn new(p: usize) -> RankPool {
        assert!(p >= 1, "a rank pool needs at least one rank");
        let shared = Arc::new(PoolShared {
            epoch: AtomicU64::new(0),
            job: AtomicPtr::new(std::ptr::null_mut()),
            remaining: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            submitter: Mutex::new(None),
            panic: Mutex::new(None),
        });
        let workers: Vec<JoinHandle<()>> = (1..p)
            .map(|rank| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .spawn(move || worker_loop(&shared, rank))
                    .expect("failed to spawn rank worker")
            })
            .collect();
        let handles = workers.iter().map(|w| w.thread().clone()).collect();
        RankPool {
            shared,
            workers,
            handles,
            p,
        }
    }

    /// Number of ranks (rank 0 inline plus `size() - 1` workers).
    pub fn size(&self) -> usize {
        self.p
    }

    /// Execute `f(rank)` on every rank concurrently — rank 0 on the
    /// calling thread, the rest on the parked workers; blocks until all
    /// have finished. If the closure panicked on any rank, the first
    /// stashed payload is re-raised here (after all ranks are idle),
    /// matching the join-then-resume behaviour of the spawn-per-run
    /// engine.
    pub fn run_on(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.p == 1 {
            // Single rank: no dispatch machinery at all.
            f(0);
            return;
        }
        // Erase the closure's lifetime. SAFETY: we block below until every
        // worker has decremented `remaining`, so no worker can touch the
        // pointer after this call returns.
        let cell = JobCell {
            f: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(f)
            },
        };
        debug_assert_eq!(
            self.shared.remaining.load(Ordering::Acquire),
            0,
            "run_on is not reentrant"
        );
        *self.shared.submitter.lock().expect("pool lock poisoned") = Some(std::thread::current());
        self.shared
            .job
            .store(&cell as *const JobCell as *mut JobCell, Ordering::Relaxed);
        self.shared.remaining.store(self.p - 1, Ordering::Relaxed);
        // The release bump publishes the two stores above.
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for t in &self.handles {
            t.unpark();
        }

        // Rank 0 runs here while the workers run ranks 1..p.
        let own = std::panic::catch_unwind(AssertUnwindSafe(|| f(0)));

        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            std::thread::park();
        }
        self.shared
            .job
            .store(std::ptr::null_mut(), Ordering::Relaxed);
        let mut stash = self.shared.panic.lock().expect("pool lock poisoned");
        if let Err(payload) = own {
            stash.get_or_insert(payload);
        }
        let payload = stash.take();
        drop(stash);
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for RankPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for t in &self.handles {
            t.unpark();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, rank: usize) {
    let mut last_epoch = 0u64;
    loop {
        // Wait for a new epoch. A stale unpark token (or one delivered
        // by a channel wake-up during the previous job) only makes one
        // park return early; the loop re-checks.
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let epoch = shared.epoch.load(Ordering::Acquire);
            if epoch != last_epoch {
                last_epoch = epoch;
                break;
            }
            std::thread::park();
        }
        // SAFETY: the acquire epoch load above synchronizes with the
        // release bump in `run_on`, so the job pointer is visible, and
        // `run_on` keeps the closure alive until `remaining` reaches
        // zero, which happens strictly after this call returns.
        let cell = shared.job.load(Ordering::Relaxed);
        let f = unsafe { &*(*cell).f };
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| f(rank)));
        if let Err(payload) = caught {
            shared
                .panic
                .lock()
                .expect("pool lock poisoned")
                .get_or_insert(payload);
        }
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let submitter = shared.submitter.lock().expect("pool lock poisoned");
            if let Some(t) = submitter.as_ref() {
                t.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_ranks_run_each_job() {
        let pool = RankPool::new(4);
        let hits = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run_on(&|_rank| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn ranks_receive_their_own_index() {
        let pool = RankPool::new(6);
        let seen: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        pool.run_on(&|rank| {
            seen[rank].fetch_add(rank + 1, Ordering::Relaxed);
        });
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), i + 1);
        }
    }

    #[test]
    fn jobs_can_borrow_caller_state() {
        let pool = RankPool::new(3);
        let local = [10usize, 20, 30];
        let sum = AtomicUsize::new(0);
        pool.run_on(&|rank| {
            sum.fetch_add(local[rank], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 60);
    }

    #[test]
    fn panic_in_job_is_resumed_on_submitter() {
        let pool = RankPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_on(&|rank| {
                if rank == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool must still be usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.run_on(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
