//! The paper's cost model as a deterministic per-rank clock.
//!
//! Section 4.1 of the paper: a virtual, fully connected machine where two
//! processors can exchange blocks of `m` words simultaneously in
//! `T_sendrecv = ts + m·tw` (bidirectional links), and one computation
//! operation costs one time unit.
//!
//! Every rank of the simulated machine carries a [`SimClock`]; every message
//! carries the sender's clock at the moment of sending. A receive completes
//! at `max(receiver_clock, sender_clock) + ts + m·tw` — a rendezvous under
//! the bidirectional-link assumption — and both sides of a blocking
//! exchange end up at that same instant. The resulting *makespan*
//! (maximum final clock over all ranks) is deterministic: it depends only
//! on the communication structure and the declared computation amounts,
//! never on OS scheduling. This is what lets the benches reproduce the
//! paper's Table 1 and Figures 7–8 exactly.

/// How ranks map onto SMP nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeAssignment {
    /// Consecutive blocks: node of rank `r` is `r / node_size`. The
    /// MPI-default layout; power-of-two communication strides below
    /// `node_size` stay on-node, so binomial trees are automatically
    /// locality-friendly.
    Block {
        /// Ranks per node.
        node_size: usize,
    },
    /// Round-robin: node of rank `r` is `r % nodes`. Arises when a
    /// scheduler interleaves ranks across nodes; for a non-power-of-two
    /// node count, *every* power-of-two stride crosses nodes, which is
    /// what makes two-level algorithms win.
    Cyclic {
        /// Number of nodes.
        nodes: usize,
    },
}

impl NodeAssignment {
    /// The node housing `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        match *self {
            NodeAssignment::Block { node_size } => rank / node_size,
            NodeAssignment::Cyclic { nodes } => rank % nodes,
        }
    }
}

/// Two-level cluster extension: processors are grouped into SMP nodes;
/// messages *within* a node use the cheap `local_ts`/`local_tw`
/// parameters instead of the network's `ts`/`tw`. This models the
/// clusters-of-SMPs platforms (SIMPLE et al.) the paper's Section 2.2
/// names as a target of the framework.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Rank-to-node mapping.
    pub assignment: NodeAssignment,
    /// Intra-node message start-up time.
    pub local_ts: f64,
    /// Intra-node per-word transfer time.
    pub local_tw: f64,
}

/// Deterministic straggler injection: every message completion is
/// stretched by a pseudo-random factor in `[1, 1 + amplitude]`, derived
/// by hashing `(seed, rank, message index)` — so a run's makespan is
/// still a pure function of its communication structure (reruns agree),
/// but the machine behaves like one with OS jitter and link-speed
/// variation. Used by the robustness tests to show the optimization
/// rules' wins survive noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterParams {
    /// Seed mixed into every stretch factor.
    pub seed: u64,
    /// Maximum relative slowdown (0.5 = up to 50% longer transfers).
    pub amplitude: f64,
}

impl JitterParams {
    /// The stretch factor for this rank's `nth` message.
    #[inline]
    pub fn stretch(&self, rank: usize, nth: u64) -> f64 {
        // SplitMix64 over the combined identity.
        let mut z = self
            .seed
            .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(rank as u64 + 1))
            .wrapping_add(nth.wrapping_mul(0xbf58476d1ce4e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        1.0 + self.amplitude * unit
    }
}

/// Machine cost parameters: start-up time `ts` and per-word transfer time
/// `tw`, in units of one computation operation (the paper's convention).
/// Optionally a two-level [`ClusterParams`] for SMP-cluster simulation
/// and deterministic [`JitterParams`] straggler injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockParams {
    /// Message start-up time (latency), in compute-op units.
    pub ts: f64,
    /// Per-word transfer time (inverse bandwidth), in compute-op units.
    pub tw: f64,
    /// Optional SMP-cluster structure; `None` = the paper's flat machine.
    pub cluster: Option<ClusterParams>,
    /// Optional deterministic message-time jitter.
    pub jitter: Option<JitterParams>,
}

impl ClockParams {
    /// New parameter set. Both parameters must be non-negative.
    pub fn new(ts: f64, tw: f64) -> Self {
        assert!(ts >= 0.0 && tw >= 0.0, "ts and tw must be non-negative");
        ClockParams {
            ts,
            tw,
            cluster: None,
            jitter: None,
        }
    }

    /// A clustered parameter set with the block layout: inter-node
    /// messages cost `ts + m·tw`, intra-node messages (between ranks in
    /// the same block of `node_size` consecutive ranks) cost
    /// `local_ts + m·local_tw`.
    pub fn clustered(ts: f64, tw: f64, node_size: usize, local_ts: f64, local_tw: f64) -> Self {
        assert!(ts >= 0.0 && tw >= 0.0 && local_ts >= 0.0 && local_tw >= 0.0);
        assert!(node_size >= 1, "a node holds at least one rank");
        ClockParams {
            ts,
            tw,
            cluster: Some(ClusterParams {
                assignment: NodeAssignment::Block { node_size },
                local_ts,
                local_tw,
            }),
            jitter: None,
        }
    }

    /// A clustered parameter set with the cyclic (round-robin) layout
    /// over `nodes` nodes.
    pub fn clustered_cyclic(ts: f64, tw: f64, nodes: usize, local_ts: f64, local_tw: f64) -> Self {
        assert!(ts >= 0.0 && tw >= 0.0 && local_ts >= 0.0 && local_tw >= 0.0);
        assert!(nodes >= 1);
        ClockParams {
            ts,
            tw,
            cluster: Some(ClusterParams {
                assignment: NodeAssignment::Cyclic { nodes },
                local_ts,
                local_tw,
            }),
            jitter: None,
        }
    }

    /// A zero-cost clock: makespans become pure computation counts.
    pub fn free() -> Self {
        ClockParams {
            ts: 0.0,
            tw: 0.0,
            cluster: None,
            jitter: None,
        }
    }

    /// A "Parsytec-like" preset: a network with a high start-up cost
    /// relative to bandwidth, as in the paper's experiments (Section 5.2).
    /// The message start-up of mid-90s MPP networks was two orders of
    /// magnitude above the per-word cost, which is the regime where every
    /// fusion rule of Table 1 pays off for small blocks.
    pub fn parsytec_like() -> Self {
        ClockParams {
            ts: 200.0,
            tw: 2.0,
            cluster: None,
            jitter: None,
        }
    }

    /// A low-latency preset resembling shared-memory transport, where the
    /// `always`-rules still win but the conditional rules (SS2-Scan etc.)
    /// stop paying off beyond small blocks.
    pub fn low_latency() -> Self {
        ClockParams {
            ts: 4.0,
            tw: 0.5,
            cluster: None,
            jitter: None,
        }
    }

    /// Enable deterministic straggler injection (see [`JitterParams`]).
    pub fn with_jitter(mut self, seed: u64, amplitude: f64) -> Self {
        assert!(amplitude >= 0.0);
        self.jitter = Some(JitterParams { seed, amplitude });
        self
    }

    /// Transfer time for a message of `words` words: `ts + words·tw`
    /// (the flat inter-node cost; cluster locality is decided by
    /// [`transfer_between`](Self::transfer_between)).
    #[inline]
    pub fn transfer(&self, words: u64) -> f64 {
        self.ts + words as f64 * self.tw
    }

    /// Transfer time between two specific ranks, honouring cluster
    /// locality when configured.
    #[inline]
    pub fn transfer_between(&self, a: usize, b: usize, words: u64) -> f64 {
        match &self.cluster {
            Some(c) if c.assignment.node_of(a) == c.assignment.node_of(b) => {
                c.local_ts + words as f64 * c.local_tw
            }
            _ => self.transfer(words),
        }
    }

    /// Are two ranks on the same SMP node? (Always true on a flat
    /// machine only when `a == b`.)
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        match &self.cluster {
            Some(c) => c.assignment.node_of(a) == c.assignment.node_of(b),
            None => a == b,
        }
    }
}

impl Default for ClockParams {
    fn default() -> Self {
        ClockParams::parsytec_like()
    }
}

/// A per-rank simulated clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimClock {
    now: f64,
    params: ClockParams,
    compute_ops: f64,
    messages: u64,
    words_sent: u64,
    retries: u64,
    retry_time: f64,
    rank: usize,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new(params: ClockParams) -> Self {
        Self::new_for_rank(params, 0)
    }

    /// A clock at time zero, owned by `rank` (keys the jitter stream).
    pub fn new_for_rank(params: ClockParams, rank: usize) -> Self {
        SimClock {
            now: 0.0,
            params,
            compute_ops: 0.0,
            messages: 0,
            words_sent: 0,
            retries: 0,
            retry_time: 0.0,
            rank,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The cost parameters this clock charges with.
    #[inline]
    pub fn params(&self) -> ClockParams {
        self.params
    }

    /// Charge `ops` computation operations (1 unit each).
    #[inline]
    pub fn charge_compute(&mut self, ops: f64) {
        debug_assert!(ops >= 0.0);
        self.now += ops;
        self.compute_ops += ops;
    }

    /// Charge `ops` computation operations on a rank slowed by `scale`:
    /// the clock advances by `ops * scale` but the *logical* operation
    /// count stays `ops` (a straggler does the same work, slower). With
    /// `scale == 1.0` this is bit-identical to
    /// [`charge_compute`](Self::charge_compute).
    #[inline]
    pub fn charge_compute_scaled(&mut self, ops: f64, scale: f64) {
        debug_assert!(ops >= 0.0 && scale >= 0.0);
        self.now += ops * scale;
        self.compute_ops += ops;
    }

    /// Charge one failed transmission attempt: `wasted` time (the dropped
    /// transfer plus the ack timeout) passes on this clock, and the retry
    /// counters record it. Returns the new time. Retry time is accounted
    /// separately from [`messages`](Self::messages) /
    /// [`words`](Self::words) so `retry_time` is *exactly* the fault
    /// overhead a lossy-but-recovered run pays.
    #[inline]
    pub fn charge_retry(&mut self, wasted: f64) -> f64 {
        debug_assert!(wasted >= 0.0);
        self.now += wasted;
        self.retries += 1;
        self.retry_time += wasted;
        self.now
    }

    /// Record the completion of a message exchange of `words` words whose
    /// peer clock read `peer_time` when it entered the exchange: both sides
    /// rendezvous and pay `ts + words·tw`.
    ///
    /// Returns the completion time the clock advanced to.
    #[inline]
    pub fn complete_exchange(&mut self, peer_time: f64, words: u64) -> f64 {
        let cost = self.params.transfer(words);
        self.complete_exchange_costing(peer_time, words, cost)
    }

    /// [`complete_exchange`](Self::complete_exchange) with an explicit
    /// transfer cost (used by the machine for cluster-local links).
    /// Applies the configured jitter stretch, keyed by this rank's
    /// message counter so reruns reproduce the same noise.
    #[inline]
    pub fn complete_exchange_costing(&mut self, peer_time: f64, words: u64, cost: f64) -> f64 {
        self.complete_exchange_spanning(peer_time, words, cost).1
    }

    /// [`complete_exchange_costing`](Self::complete_exchange_costing), but
    /// also returning the *rendezvous start* `max(own clock, peer_time)` —
    /// the span a trace records so the critical-path pass can tell transfer
    /// time apart from the waiting that preceded it.
    #[inline]
    pub fn complete_exchange_spanning(
        &mut self,
        peer_time: f64,
        words: u64,
        cost: f64,
    ) -> (f64, f64) {
        let cost = match &self.params.jitter {
            Some(j) => cost * j.stretch(self.rank, self.messages),
            None => cost,
        };
        let start = self.now.max(peer_time);
        self.now = start + cost;
        self.messages += 1;
        self.words_sent += words;
        (start, self.now)
    }

    /// Synchronize with an absolute time (used by barriers): the clock
    /// jumps forward to `t` if it is behind, never backward.
    #[inline]
    pub fn sync_to(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Total computation operations charged so far.
    pub fn compute_ops(&self) -> f64 {
        self.compute_ops
    }

    /// Number of message exchanges this rank participated in.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total words this rank moved through exchanges.
    pub fn words(&self) -> u64 {
        self.words_sent
    }

    /// Number of failed transmission attempts this rank retried.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Total simulated time lost to failed attempts (wasted transfers
    /// plus ack timeouts).
    pub fn retry_time(&self) -> f64 {
        self.retry_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_affine_in_words() {
        let p = ClockParams::new(100.0, 2.0);
        assert_eq!(p.transfer(0), 100.0);
        assert_eq!(p.transfer(1), 102.0);
        assert_eq!(p.transfer(32), 164.0);
    }

    #[test]
    fn compute_accumulates() {
        let mut c = SimClock::new(ClockParams::free());
        c.charge_compute(5.0);
        c.charge_compute(2.5);
        assert_eq!(c.now(), 7.5);
        assert_eq!(c.compute_ops(), 7.5);
    }

    #[test]
    fn exchange_rendezvous_takes_max_of_clocks() {
        let params = ClockParams::new(10.0, 1.0);
        let mut a = SimClock::new(params);
        let mut b = SimClock::new(params);
        a.charge_compute(100.0); // a is ahead
                                 // b exchanges with a: completes at max(0, 100) + 10 + 5*1 = 115.
        let t_b = b.complete_exchange(a.now(), 5);
        assert_eq!(t_b, 115.0);
        // a exchanges with b's pre-exchange time 0: max(100,0)+15 = 115.
        let t_a = a.complete_exchange(0.0, 5);
        assert_eq!(t_a, 115.0);
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn spanning_exchange_reports_rendezvous_start() {
        let mut c = SimClock::new(ClockParams::new(10.0, 1.0));
        c.charge_compute(20.0);
        // Peer ahead: the span starts at the peer's clock.
        let (s, e) = c.complete_exchange_spanning(100.0, 5, 15.0);
        assert_eq!((s, e), (100.0, 115.0));
        // Peer behind: the span starts at our own clock.
        let (s, e) = c.complete_exchange_spanning(0.0, 5, 15.0);
        assert_eq!((s, e), (115.0, 130.0));
    }

    #[test]
    fn sync_never_moves_backward() {
        let mut c = SimClock::new(ClockParams::free());
        c.charge_compute(50.0);
        c.sync_to(20.0);
        assert_eq!(c.now(), 50.0);
        c.sync_to(80.0);
        assert_eq!(c.now(), 80.0);
    }

    #[test]
    fn scaled_compute_at_unit_factor_is_bit_identical() {
        let mut plain = SimClock::new(ClockParams::free());
        let mut scaled = SimClock::new(ClockParams::free());
        for ops in [0.1, 3.7, 1e-9, 1234.5] {
            plain.charge_compute(ops);
            scaled.charge_compute_scaled(ops, 1.0);
        }
        assert_eq!(plain.now().to_bits(), scaled.now().to_bits());
        assert_eq!(plain.compute_ops(), scaled.compute_ops());
    }

    #[test]
    fn scaled_compute_slows_the_clock_not_the_op_count() {
        let mut c = SimClock::new(ClockParams::free());
        c.charge_compute_scaled(10.0, 3.0);
        assert_eq!(c.now(), 30.0);
        assert_eq!(c.compute_ops(), 10.0);
    }

    #[test]
    fn retry_charges_accumulate_separately() {
        let mut c = SimClock::new(ClockParams::new(10.0, 1.0));
        assert_eq!(c.retries(), 0);
        assert_eq!(c.retry_time(), 0.0);
        c.charge_retry(25.0);
        c.charge_retry(25.0);
        assert_eq!(c.now(), 50.0);
        assert_eq!(c.retries(), 2);
        assert_eq!(c.retry_time(), 50.0);
        // Retries are not message exchanges.
        assert_eq!(c.messages(), 0);
        assert_eq!(c.words(), 0);
    }

    #[test]
    fn stats_are_tracked() {
        let mut c = SimClock::new(ClockParams::new(1.0, 1.0));
        c.complete_exchange(0.0, 10);
        c.complete_exchange(0.0, 20);
        assert_eq!(c.messages(), 2);
        assert_eq!(c.words(), 30);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_ts_rejected() {
        let _ = ClockParams::new(-1.0, 0.0);
    }

    #[test]
    fn presets_are_sane() {
        let p = ClockParams::parsytec_like();
        assert!(
            p.ts > 10.0 * p.tw,
            "parsytec preset must be latency-dominated"
        );
        let l = ClockParams::low_latency();
        assert!(l.ts < p.ts);
        let f = ClockParams::free();
        assert_eq!(f.transfer(1_000_000), 0.0);
    }
}
