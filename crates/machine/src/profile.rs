//! Trace analysis: critical paths and per-rank / per-stage profiles.
//!
//! The simulated clock makes every run's makespan a pure function of its
//! communication structure — but the makespan alone says nothing about
//! *which* chain of messages and computation steps determined it. This
//! module turns a recorded [`Trace`] into that attribution:
//!
//! * [`critical_path`] walks backwards from the makespan-defining rank
//!   along the causal links recorded in the trace (each receive knows its
//!   sender's clock at send start, each barrier knows its last arrival)
//!   and returns the gapless chain of events covering `[0, makespan]`.
//!   Because the chain is reconstructed purely from recorded timestamps,
//!   its length equals the simulated makespan **exactly** — the trace
//!   layer is a second, independent implementation of the cost semantics,
//!   and the property suite holds the two to bitwise agreement.
//! * [`ProfileReport`] aggregates the same trace into per-rank
//!   compute / communication / idle time plus message and word counts,
//!   and — when the executor injected [`EventKind::Stage`] boundaries —
//!   a per-stage breakdown of where a program's time went.
//!
//! This is the validation discipline of Träff's *Optimal, Non-pipelined
//! Reduce-scatter and Allreduce Algorithms* (2024) applied to the paper's
//! calculus: analytic predictions on one side, measured and *attributed*
//! critical paths on the other.

use crate::trace::{Event, EventKind, Trace};

/// Why a trace could not be analysed.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// An event's start is not covered by any predecessor — the trace is
    /// incomplete (e.g. recorded with tracing toggled mid-run).
    BrokenChain {
        /// Rank on which the chain broke.
        rank: usize,
        /// The uncovered start time.
        at: f64,
        /// What the walk was looking for.
        detail: &'static str,
    },
    /// The walk failed to terminate within the event budget — the trace
    /// is not causally consistent.
    CausalLoop,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::BrokenChain { rank, at, detail } => {
                write!(
                    f,
                    "critical-path chain broke on rank {rank} at t={at}: {detail}"
                )
            }
            ProfileError::CausalLoop => write!(f, "trace is not causally consistent"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// The causal chain of events that determined a run's makespan, in
/// chronological order. Consecutive steps are contiguous: each step
/// starts exactly where the previous one ended, the first starts at 0,
/// and the last ends at the makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The chain, earliest first. Barrier steps appear as the *last
    /// arrival's* zero-width barrier record (the waiting of other ranks
    /// is attributed to the arrival chain, not to the wait itself).
    pub steps: Vec<Event>,
}

impl CriticalPath {
    /// Total length of the chain — equal to the simulated makespan.
    /// Computed as `last.time - first.start` (with `first.start == 0`),
    /// not as a float sum, so the equality is exact.
    pub fn length(&self) -> f64 {
        match (self.steps.first(), self.steps.last()) {
            (Some(first), Some(last)) => last.time - first.start,
            _ => 0.0,
        }
    }

    /// Time the chain spent in message transfer.
    pub fn comm_time(&self) -> f64 {
        self.steps
            .iter()
            .filter(|e| e.kind.is_comm())
            .map(Event::duration)
            .sum()
    }

    /// Time the chain spent in local computation.
    pub fn compute_time(&self) -> f64 {
        self.steps
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Compute { .. }))
            .map(Event::duration)
            .sum()
    }

    /// Number of message events (sends, receives, exchanges) on the chain
    /// — the message-chain depth of the run.
    pub fn messages(&self) -> usize {
        self.steps.iter().filter(|e| e.kind.is_comm()).count()
    }

    /// Number of distinct ranks the chain passes through.
    pub fn ranks_touched(&self) -> usize {
        let mut ranks: Vec<usize> = self.steps.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks.len()
    }
}

/// Per-rank, per-event-index view of a merged trace, with annotation
/// events (marks, stage boundaries) filtered out.
struct RankIndex<'a> {
    by_rank: Vec<Vec<&'a Event>>,
    /// Positions (into `by_rank[r]`) of the barrier events of rank `r`,
    /// in order — the k-th entry is barrier *instance* k, aligned across
    /// ranks because every rank participates in every barrier.
    barriers: Vec<Vec<usize>>,
}

impl<'a> RankIndex<'a> {
    fn build(trace: &'a Trace) -> Self {
        let ranks = trace.events().iter().map(|e| e.rank + 1).max().unwrap_or(0);
        let mut by_rank: Vec<Vec<&Event>> = vec![Vec::new(); ranks];
        for e in trace.events() {
            if !e.kind.is_annotation() {
                by_rank[e.rank].push(e);
            }
        }
        let barriers = by_rank
            .iter()
            .map(|evs| {
                evs.iter()
                    .enumerate()
                    .filter(|(_, e)| matches!(e.kind, EventKind::Barrier))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        RankIndex { by_rank, barriers }
    }

    /// Latest event on `rank` completing exactly at `t`.
    fn ending_at(&self, rank: usize, t: f64) -> Option<usize> {
        self.by_rank.get(rank)?.iter().rposition(|e| e.time == t)
    }
}

/// Walk backwards from the makespan-defining rank and return the causal
/// chain of events that determined the run time. See [`CriticalPath`].
///
/// The walk follows three kinds of links:
/// * within a rank, an event's predecessor is the previous event on that
///   rank's clock;
/// * a receive or exchange whose rendezvous was determined by the peer
///   (`sent_at` exceeds the rank's own previous completion) jumps to the
///   peer's event completing exactly at `sent_at`;
/// * a barrier left later than it was entered redirects to the *last
///   arrival* of the same barrier instance on another rank.
///
/// Returns an empty path for an empty trace (a run that did nothing).
pub fn critical_path(trace: &Trace) -> Result<CriticalPath, ProfileError> {
    let index = RankIndex::build(trace);
    let mut chain: Vec<Event> = Vec::new();

    // Start at the rank whose final event completes last.
    let mut cursor: Option<(usize, usize)> = index
        .by_rank
        .iter()
        .enumerate()
        .filter_map(|(r, evs)| evs.last().map(|e| (r, evs.len() - 1, e.time)))
        .max_by(|a, b| a.2.total_cmp(&b.2).then(b.0.cmp(&a.0)))
        .map(|(r, i, _)| (r, i));

    let budget = trace.events().len() * 2 + 2;
    let mut steps = 0usize;
    while let Some((rank, i)) = cursor {
        steps += 1;
        if steps > budget {
            return Err(ProfileError::CausalLoop);
        }
        let e = index.by_rank[rank][i];

        // A barrier that made this rank wait: the exit time was set by the
        // last arrival. Redirect to that rank's record of the *same*
        // barrier instance (instances align by per-rank barrier ordinal)
        // without emitting the wait itself.
        if matches!(e.kind, EventKind::Barrier) && e.start < e.time {
            let ordinal = index.barriers[rank]
                .iter()
                .position(|&b| b == i)
                .expect("barrier event is indexed");
            let target = index.barriers.iter().enumerate().find_map(|(r, bs)| {
                let &bi = bs.get(ordinal)?;
                let be = index.by_rank[r][bi];
                (r != rank && be.start == be.time && be.time == e.time).then_some((r, bi))
            });
            match target {
                Some(t) => {
                    cursor = Some(t);
                    continue;
                }
                None => {
                    return Err(ProfileError::BrokenChain {
                        rank,
                        at: e.time,
                        detail: "no last arrival found for barrier instance",
                    })
                }
            }
        }

        chain.push(e.clone());
        if e.start == 0.0 {
            break; // reached the beginning of simulated time
        }

        let own_prev_end = i.checked_sub(1).map(|j| index.by_rank[rank][j].time);
        let causal = match e.kind {
            EventKind::Recv { from, sent_at, .. } => Some((from, sent_at)),
            EventKind::Exchange {
                partner, sent_at, ..
            } => Some((partner, sent_at)),
            _ => None,
        };

        // Prefer staying on the own rank when both links meet the start.
        cursor = match (own_prev_end, causal) {
            (Some(prev_end), _) if prev_end == e.start => Some((rank, i - 1)),
            (_, Some((peer, sent_at))) if sent_at == e.start => {
                match index.ending_at(peer, sent_at) {
                    Some(j) => Some((peer, j)),
                    None => {
                        return Err(ProfileError::BrokenChain {
                            rank,
                            at: e.start,
                            detail: "no peer event completes at the recorded send time",
                        })
                    }
                }
            }
            _ => {
                return Err(ProfileError::BrokenChain {
                    rank,
                    at: e.start,
                    detail: "no predecessor covers this event's start",
                })
            }
        };
    }

    chain.reverse();
    // Gaplessness is guaranteed by construction; make it checkable.
    debug_assert!(chain.windows(2).all(|w| w[0].time == w[1].start));
    Ok(CriticalPath { steps: chain })
}

/// Where one rank's time went.
#[derive(Debug, Clone, PartialEq)]
pub struct RankProfile {
    /// The rank.
    pub rank: usize,
    /// Time spent in local computation.
    pub compute: f64,
    /// Time spent in message transfer (sends, receives, exchanges).
    pub comm: f64,
    /// Everything else: waiting for senders, barrier waits, and the tail
    /// between the rank's last action and the makespan. Defined as
    /// `makespan - compute - comm`, so `compute + comm + idle` sums to
    /// the makespan *exactly* for every rank.
    pub idle: f64,
    /// The rank's final completion time.
    pub finish: f64,
    /// Message events the rank took part in.
    pub messages: u64,
    /// Words the rank moved through those events.
    pub words: u64,
}

/// Where one program stage's time went, aggregated over ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// Stage position in the program.
    pub index: usize,
    /// The stage's display label.
    pub label: String,
    /// Earliest time any rank entered the stage.
    pub begin: f64,
    /// Time the slowest rank finished the stage — differences between
    /// consecutive finishes give per-stage makespans.
    pub finish: f64,
    /// Computation time summed over ranks.
    pub compute: f64,
    /// Transfer time summed over ranks.
    pub comm: f64,
    /// Waiting time summed over ranks (each rank's stage span minus its
    /// busy time in the stage).
    pub idle: f64,
    /// Message events summed over ranks.
    pub messages: u64,
    /// Words moved, summed over ranks.
    pub words: u64,
}

/// A full per-rank (and, with stage markers, per-stage) profile of one
/// traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// The run's makespan (maximum completion time over ranks).
    pub makespan: f64,
    /// One row per rank.
    pub ranks: Vec<RankProfile>,
    /// One row per program stage; empty when the trace carries no
    /// [`EventKind::Stage`] boundaries.
    pub stages: Vec<StageProfile>,
}

fn event_words(kind: &EventKind) -> u64 {
    match kind {
        EventKind::Send { words, .. }
        | EventKind::Recv { words, .. }
        | EventKind::Exchange { words, .. }
        | EventKind::Retry { words, .. } => *words,
        _ => 0,
    }
}

impl ProfileReport {
    /// Build the profile of a run over `p` ranks with the given makespan.
    pub fn from_trace(trace: &Trace, p: usize, makespan: f64) -> Self {
        let mut ranks: Vec<RankProfile> = (0..p)
            .map(|rank| RankProfile {
                rank,
                compute: 0.0,
                comm: 0.0,
                idle: 0.0,
                finish: 0.0,
                messages: 0,
                words: 0,
            })
            .collect();
        // Per-rank stage accumulation state: (previous boundary time,
        // busy-compute, busy-comm, messages, words) since that boundary.
        let mut open: Vec<(f64, f64, f64, u64, u64)> = vec![(0.0, 0.0, 0.0, 0, 0); p];
        let mut stages: Vec<StageProfile> = Vec::new();

        for e in trace.events() {
            let Some(r) = ranks.get_mut(e.rank) else {
                continue;
            };
            match &e.kind {
                EventKind::Compute { .. } => {
                    r.compute += e.duration();
                    open[e.rank].1 += e.duration();
                }
                EventKind::Send { .. }
                | EventKind::Recv { .. }
                | EventKind::Exchange { .. }
                | EventKind::Retry { .. } => {
                    r.comm += e.duration();
                    r.messages += 1;
                    r.words += event_words(&e.kind);
                    open[e.rank].2 += e.duration();
                    open[e.rank].3 += 1;
                    open[e.rank].4 += event_words(&e.kind);
                }
                EventKind::Barrier | EventKind::Mark { .. } => {}
                EventKind::Stage { index, label } => {
                    let (since, compute, comm, messages, words) =
                        std::mem::replace(&mut open[e.rank], (e.time, 0.0, 0.0, 0, 0));
                    while stages.len() <= *index {
                        stages.push(StageProfile {
                            index: stages.len(),
                            label: label.clone(),
                            begin: f64::INFINITY,
                            finish: 0.0,
                            compute: 0.0,
                            comm: 0.0,
                            idle: 0.0,
                            messages: 0,
                            words: 0,
                        });
                    }
                    let s = &mut stages[*index];
                    s.label = label.clone();
                    s.begin = s.begin.min(since);
                    s.finish = s.finish.max(e.time);
                    s.compute += compute;
                    s.comm += comm;
                    s.idle += (e.time - since) - compute - comm;
                    s.messages += messages;
                    s.words += words;
                }
            }
            if !e.kind.is_annotation() {
                r.finish = r.finish.max(e.time);
            }
        }
        for r in &mut ranks {
            r.idle = makespan - r.compute - r.comm;
        }
        ProfileReport {
            makespan,
            ranks,
            stages,
        }
    }

    /// Total computation time across ranks.
    pub fn total_compute(&self) -> f64 {
        self.ranks.iter().map(|r| r.compute).sum()
    }

    /// Total transfer time across ranks.
    pub fn total_comm(&self) -> f64 {
        self.ranks.iter().map(|r| r.comm).sum()
    }

    /// Machine utilisation: busy time over `p * makespan`.
    pub fn utilisation(&self) -> f64 {
        if self.makespan <= 0.0 || self.ranks.is_empty() {
            return 0.0;
        }
        (self.total_compute() + self.total_comm()) / (self.ranks.len() as f64 * self.makespan)
    }

    /// Render the report as aligned text tables (per stage, then per
    /// rank) — the artifact `gen_profile` prints next to the Chrome
    /// traces it writes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "makespan {:.1}  utilisation {:.1}%\n",
            self.makespan,
            100.0 * self.utilisation()
        ));
        if !self.stages.is_empty() {
            out.push_str(
                "stage  finish      span     compute     comm       idle       msgs  words  label\n",
            );
            let mut prev = 0.0;
            for s in &self.stages {
                out.push_str(&format!(
                    "{:<5}  {:<10.1} {:<8.1} {:<11.1} {:<10.1} {:<10.1} {:<5} {:<6} {}\n",
                    s.index,
                    s.finish,
                    s.finish - prev,
                    s.compute,
                    s.comm,
                    s.idle,
                    s.messages,
                    s.words,
                    s.label
                ));
                prev = s.finish;
            }
        }
        out.push_str("rank   compute    comm       idle       msgs  words\n");
        for r in &self.ranks {
            out.push_str(&format!(
                "P{:<5} {:<10.1} {:<10.1} {:<10.1} {:<5} {}\n",
                r.rank, r.compute, r.comm, r.idle, r.messages, r.words
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockParams;
    use crate::machine::Machine;

    #[test]
    fn empty_trace_has_empty_path() {
        let t = Trace::enabled();
        let cp = critical_path(&t).unwrap();
        assert!(cp.steps.is_empty());
        assert_eq!(cp.length(), 0.0);
    }

    #[test]
    fn straight_line_chain_is_the_whole_rank() {
        let m = Machine::new(1, ClockParams::free()).with_tracing();
        let run = m.run(|ctx| {
            ctx.charge(3.0, "a");
            ctx.charge(4.0, "b");
        });
        let cp = critical_path(&run.trace).unwrap();
        assert_eq!(cp.steps.len(), 2);
        assert_eq!(cp.length(), run.makespan);
        assert_eq!(cp.compute_time(), 7.0);
        assert_eq!(cp.comm_time(), 0.0);
    }

    #[test]
    fn path_follows_the_message_chain_across_ranks() {
        // Rank 1 computes, then sends to rank 0, which was idle: the
        // critical path must be [compute@1, recv@0].
        let m = Machine::new(2, ClockParams::new(10.0, 1.0)).with_tracing();
        let run = m.run(|ctx| {
            if ctx.rank() == 1 {
                ctx.charge(100.0, "work");
                ctx.send(0, (), 5);
            } else {
                ctx.recv::<()>(1);
            }
        });
        assert_eq!(run.makespan, 115.0);
        let cp = critical_path(&run.trace).unwrap();
        assert_eq!(cp.length(), run.makespan);
        assert_eq!(cp.steps.len(), 2);
        assert!(matches!(cp.steps[0].kind, EventKind::Compute { .. }));
        assert_eq!(cp.steps[0].rank, 1);
        assert!(matches!(cp.steps[1].kind, EventKind::Recv { .. }));
        assert_eq!(cp.steps[1].rank, 0);
        assert_eq!(cp.ranks_touched(), 2);
        assert_eq!(cp.messages(), 1);
    }

    #[test]
    fn path_attributes_barrier_waits_to_the_last_arrival() {
        let m = Machine::new(3, ClockParams::free()).with_tracing();
        let run = m.run(|ctx| {
            ctx.charge((ctx.rank() * 10) as f64, "skew");
            ctx.barrier();
            ctx.charge(5.0, "after");
        });
        assert_eq!(run.makespan, 25.0);
        let cp = critical_path(&run.trace).unwrap();
        assert_eq!(cp.length(), 25.0);
        // The pre-barrier segment must run through rank 2 (the last
        // arrival), whatever rank the walk started from.
        let pre: Vec<usize> = cp
            .steps
            .iter()
            .filter(|e| e.time <= 20.0 && e.duration() > 0.0)
            .map(|e| e.rank)
            .collect();
        assert_eq!(pre, vec![2]);
    }

    #[test]
    fn path_survives_repeated_barriers_with_no_work_between() {
        let m = Machine::new(2, ClockParams::free()).with_tracing();
        let run = m.run(|ctx| {
            ctx.charge((1 + ctx.rank()) as f64, "skew");
            ctx.barrier();
            ctx.barrier();
            ctx.barrier();
        });
        let cp = critical_path(&run.trace).unwrap();
        assert_eq!(cp.length(), run.makespan);
    }

    #[test]
    fn path_length_matches_makespan_under_jitter() {
        let m = Machine::new(4, ClockParams::new(50.0, 2.0).with_jitter(7, 0.5)).with_tracing();
        let run = m.run(|ctx| {
            let mut v = ctx.rank() as u64;
            for round in 0..2 {
                let partner = ctx.rank() ^ (1 << round);
                v += ctx.exchange(partner, v, 8);
                ctx.charge(8.0, "combine");
            }
            v
        });
        let cp = critical_path(&run.trace).unwrap();
        assert_eq!(cp.length(), run.makespan);
    }

    #[test]
    fn profile_rank_rows_sum_to_makespan() {
        let m = Machine::new(2, ClockParams::new(10.0, 1.0)).with_tracing();
        let run = m.run(|ctx| {
            if ctx.rank() == 1 {
                ctx.charge(100.0, "work");
            }
            ctx.exchange(1 - ctx.rank(), (), 5);
        });
        let report = ProfileReport::from_trace(&run.trace, 2, run.makespan);
        for r in &report.ranks {
            assert_eq!(
                r.compute + r.comm + r.idle,
                report.makespan,
                "rank {}",
                r.rank
            );
        }
        assert_eq!(report.ranks[0].compute, 0.0);
        assert_eq!(report.ranks[1].compute, 100.0);
        assert_eq!(report.ranks[0].comm, 15.0);
        // Rank 0 waited 100 units for the rendezvous.
        assert_eq!(report.ranks[0].idle, 100.0);
        assert_eq!(report.ranks[1].idle, 0.0);
        assert_eq!(report.ranks[0].messages, 1);
        assert_eq!(report.ranks[0].words, 5);
        assert!(report.utilisation() > 0.0 && report.utilisation() <= 1.0);
    }

    #[test]
    fn stage_markers_partition_the_run() {
        let m = Machine::new(2, ClockParams::new(10.0, 1.0)).with_tracing();
        let run = m.run(|ctx| {
            ctx.charge(4.0, "s0");
            ctx.end_stage(0, "compute");
            ctx.exchange(1 - ctx.rank(), (), 2);
            ctx.end_stage(1, "exchange");
        });
        let report = ProfileReport::from_trace(&run.trace, 2, run.makespan);
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].label, "compute");
        assert_eq!(report.stages[0].finish, 4.0);
        assert_eq!(report.stages[0].compute, 8.0); // both ranks
        assert_eq!(report.stages[1].label, "exchange");
        assert_eq!(report.stages[1].finish, run.makespan);
        assert_eq!(report.stages[1].comm, 24.0);
        assert_eq!(report.stages[1].messages, 2);
        let rendered = report.render();
        assert!(rendered.contains("exchange"));
        assert!(rendered.contains("makespan"));
    }
}
