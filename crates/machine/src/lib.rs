//! # collopt-machine — a simulated SPMD message-passing machine
//!
//! This crate is the substrate on which the collective operations of
//! Gorlatch, Wedler & Lengauer, *"Optimization Rules for Programming with
//! Collective Operations"* (IPPS 1999) are implemented and measured.
//!
//! The paper assumes (Section 4.1) a *virtual, fully connected* machine:
//! every processor can communicate with every other processor at the same
//! cost, links are bidirectional, and a message of `m` words costs
//! `ts + m*tw` (start-up time plus per-word transfer time). One local
//! computation operation costs one time unit.
//!
//! This crate provides exactly that machine, twice over:
//!
//! * a **threaded runtime** ([`Machine::run`]) that spawns one OS thread per
//!   virtual processor and moves real data through typed channels — used for
//!   wall-clock benchmarking and for exercising the real concurrency of the
//!   algorithms; and
//! * a **deterministic simulated clock** ([`clock`]) carried by every
//!   message, so each run also yields an exact, scheduler-independent
//!   *simulated makespan* under the paper's `ts`/`tw` cost model. This is
//!   what lets us regenerate the paper's Table 1 and Figures 7–8 without the
//!   authors' 64-processor Parsytec.
//!
//! The [`topology`] module contains the rank arithmetic shared by all
//! collective algorithms: binomial trees, butterfly (hypercube) partners,
//! and the paper's *virtual balanced tree* — the unique tree for any number
//! of leaves in which all leaves have the same depth and the right subtree
//! of any node with a non-empty left subtree is complete (Section 3.2).
//!
//! ## Quick example
//!
//! ```
//! use collopt_machine::{Machine, ClockParams};
//!
//! // Four processors; each sends its rank to rank 0.
//! let machine = Machine::new(4, ClockParams::new(10.0, 1.0));
//! let run = machine.run(|ctx| {
//!     if ctx.rank() == 0 {
//!         let mut sum = 0usize;
//!         for src in 1..ctx.size() {
//!             sum += ctx.recv::<usize>(src);
//!         }
//!         sum
//!     } else {
//!         ctx.send(0, ctx.rank(), 1);
//!         0
//!     }
//! });
//! assert_eq!(run.results[0], 6);
//! assert!(run.makespan > 0.0);
//! ```

pub(crate) mod barrier;
pub mod channel;
pub mod chrome;
pub mod clock;
pub(crate) mod des;
pub mod error;
pub mod fault;
pub mod machine;
pub mod pool;
pub mod profile;
pub mod rng;
pub mod topology;
pub mod trace;

pub use chrome::{chrome_trace, chrome_trace_json, Json};
pub use clock::{ClockParams, ClusterParams};
pub use error::MachineError;
pub use fault::{FaultInjector, FaultPlan, RetryParams};
pub use machine::{drive, Ctx, ExecEngine, Machine, RunResult};
pub use pool::RankPool;
pub use profile::{
    critical_path, CriticalPath, ProfileError, ProfileReport, RankProfile, StageProfile,
};
pub use rng::Rng;
pub use topology::BalancedTree;
pub use trace::{Event, EventKind, Trace};
