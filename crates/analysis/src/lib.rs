#![forbid(unsafe_code)]
//! # collopt-analysis — static soundness analysis for collective pipelines
//!
//! The rewrite engine of [`collopt_core`] applies the paper's eleven
//! fusion rules on the strength of *declared* operator properties
//! (associativity, commutativity, distributivity). Declarations can lie
//! in both directions: an **over-claim** makes the engine apply a wrong
//! rule (silent wrong answers), an **under-claim** makes it skip a legal
//! fusion (silent slow answers). This crate is the correctness tooling
//! around that trust boundary — three passes, no external dependencies:
//!
//! * [`audit`] — verify every declared property by exhaustive
//!   small-domain enumeration plus seeded randomized search, shrinking
//!   counterexamples to minimal witnesses; float operators are classified
//!   tolerance-approximate rather than exact.
//! * [`certify`] — re-validate the precondition [`Certificate`]s the
//!   engine attaches to every applied rewrite, structurally (does the
//!   certificate carry the law kinds the rule demands?) and semantically
//!   (do the laws actually hold?).
//! * [`lint`] — analyze whole pipelines for missed fusions, unsound
//!   declarations, cost regressions, redundant collectives, distribution
//!   mismatches and divisibility hazards, emitting structured
//!   diagnostics (`COL001`..`COL012`) with byte spans, a human caret
//!   renderer, and byte-stable JSON. Surfaced on the command line as
//!   `collopt lint`.
//! * [`distflow`] — the distribution-state abstract interpreter behind
//!   `COL007`/`COL011`, over the lattice of [`collopt_core::dist`].
//! * [`schedule`] — the static communication-schedule verifier behind
//!   `collopt check`: symbolic per-rank schedules from
//!   `collopt_collectives::schedule` are abstractly executed to prove
//!   deadlock-freedom (`COL008`), message-match completeness (`COL009`)
//!   and round optimality against the cost model's closed forms and the
//!   `⌈log₂ p⌉` influence bounds (`COL010`).
//!
//! [`Certificate`]: collopt_core::rewrite::Certificate

pub mod audit;
pub mod certify;
pub mod distflow;
pub mod lint;
pub mod schedule;

pub use audit::{
    audit_builtin_table, audit_operator, builtin_table, domain_of_builtin, samples_for_domain,
    AuditConfig, Domain, Exactness, OpAudit, OverClaim, UnderClaim,
};
pub use certify::{required_kinds, validate_result, validate_step, CertificateIssue};
pub use distflow::{dist_trace, distflow_pass};
pub use lint::{lint_program, lint_source, Diagnostic, LintConfig, LintReport, Severity};
pub use schedule::{
    render_reports_human, render_reports_json, verify_planted, verify_registry, verify_schedule,
    verify_variant, ScheduleReport,
};
