//! # collopt-analysis — static soundness analysis for collective pipelines
//!
//! The rewrite engine of [`collopt_core`] applies the paper's eleven
//! fusion rules on the strength of *declared* operator properties
//! (associativity, commutativity, distributivity). Declarations can lie
//! in both directions: an **over-claim** makes the engine apply a wrong
//! rule (silent wrong answers), an **under-claim** makes it skip a legal
//! fusion (silent slow answers). This crate is the correctness tooling
//! around that trust boundary — three passes, no external dependencies:
//!
//! * [`audit`] — verify every declared property by exhaustive
//!   small-domain enumeration plus seeded randomized search, shrinking
//!   counterexamples to minimal witnesses; float operators are classified
//!   tolerance-approximate rather than exact.
//! * [`certify`] — re-validate the precondition [`Certificate`]s the
//!   engine attaches to every applied rewrite, structurally (does the
//!   certificate carry the law kinds the rule demands?) and semantically
//!   (do the laws actually hold?).
//! * [`lint`] — analyze whole pipelines for missed fusions, unsound
//!   declarations, cost regressions, and redundant collectives, emitting
//!   structured diagnostics (`COL001`..`COL006`) with byte spans, a human
//!   caret renderer, and byte-stable JSON. Surfaced on the command line
//!   as `collopt lint`.
//!
//! [`Certificate`]: collopt_core::rewrite::Certificate

pub mod audit;
pub mod certify;
pub mod lint;

pub use audit::{
    audit_builtin_table, audit_operator, builtin_table, domain_of_builtin, samples_for_domain,
    AuditConfig, Domain, Exactness, OpAudit, OverClaim, UnderClaim,
};
pub use certify::{required_kinds, validate_result, validate_step, CertificateIssue};
pub use lint::{lint_program, lint_source, Diagnostic, LintConfig, LintReport, Severity};
