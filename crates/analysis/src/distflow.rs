//! Distribution-state dataflow analysis over collective pipelines.
//!
//! An abstract interpreter over the distribution lattice of
//! [`collopt_core::dist`]: starting from the paper's input convention
//! (the list is block-distributed over all processors) each stage's
//! transfer function maps the incoming [`DistState`] to the outgoing
//! one. Two lint families fall out:
//!
//! * `COL007` — **distribution mismatch**: a stage that consumes data on
//!   every rank (scan, reduce, allreduce, gather, …) is fed a state that
//!   is only meaningful on rank 0 (`RootOnly` after a reduce/gather) or
//!   undefined (`⊥`). The program still *runs* — every rank holds some
//!   value — but the non-root inputs are stale operands, which is the
//!   classic silently-wrong-answer bug in SPMD pipelines.
//! * `COL011` — **divisibility hazard**: the cost model picks a
//!   segmenting (reduce-scatter-based) lowering for a reduction stage at
//!   this machine point, but `m mod p ≠ 0`, so the segments are ragged
//!   and the critical path serializes on the longest one. Fires only
//!   when the segmenting lowering actually *wins* the cost comparison —
//!   a blanket `m mod p` check would flag machines where the butterfly
//!   runs anyway.
//!
//! The pass is part of [`crate::lint::lint_program`]; `COL012` (a
//! suggested rewrite narrows the final distribution to rank 0) lives in
//! the fusion pass, which knows the matched rewrite's `rank0_only` flag.

use collopt_collectives::variants::{
    choose_allreduce, choose_reduce, AllreduceChoice, ReduceChoice,
};
use collopt_core::dist::{consumes_all_ranks, transfer, DistState};
use collopt_core::parser::Span;
use collopt_core::term::{Program, Stage};
use collopt_machine::ClockParams;

use crate::lint::{Diagnostic, LintConfig, Severity};

/// The abstract distribution state after every stage: `states[i]` is the
/// state *entering* stage `i`; the final element is the pipeline's
/// post-state.
pub fn dist_trace(prog: &Program) -> Vec<DistState> {
    let mut states = Vec::with_capacity(prog.len() + 1);
    let mut state = DistState::Blocked;
    states.push(state);
    for stage in prog.stages() {
        state = transfer(state, stage);
        states.push(state);
    }
    states
}

/// COL007 + COL011 over one program. Appends to `diags`; the caller
/// sorts.
pub fn distflow_pass(
    prog: &Program,
    spans: Option<&[Span]>,
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let states = dist_trace(prog);
    let clock = ClockParams::new(cfg.params.ts, cfg.params.tw);
    let p = cfg.params.p;
    let m = (cfg.block.max(1.0)) as u64;
    for (i, stage) in prog.stages().iter().enumerate() {
        let incoming = states[i];
        if consumes_all_ranks(stage) && !incoming.all_ranks_meaningful() {
            let producer = if i == 0 {
                "the pipeline input".to_string()
            } else {
                format!("stage {} (`{}`)", i - 1, prog.stages()[i - 1].describe())
            };
            diags.push(Diagnostic {
                code: "COL007",
                severity: Severity::Warning,
                message: format!(
                    "distribution mismatch: `{}` consumes data on every rank but {producer} \
                     leaves the distribution {} — non-root ranks feed stale operands into the \
                     collective; broadcast first or switch to an all-variant",
                    stage.describe(),
                    incoming.name(),
                ),
                stage: i,
                len: 1,
                span: spans.and_then(|s| s.get(i).copied()),
                suggestion: None,
            });
        }
        let segmenting: Option<&str> = match stage {
            Stage::AllReduce(op) => {
                match choose_allreduce(p, m, op.ops_per_word(), op.is_commutative(), &clock) {
                    AllreduceChoice::Rabenseifner => {
                        Some("rabenseifner (reduce-scatter + allgather)")
                    }
                    AllreduceChoice::Ring => Some("ring (reduce-scatter + ring allgather)"),
                    _ => None,
                }
            }
            Stage::Reduce(op) => match choose_reduce(p, m, op.ops_per_word(), &clock) {
                ReduceChoice::ScatterGather => Some("reduce-scatter + gather"),
                ReduceChoice::Binomial => None,
            },
            _ => None,
        };
        if let Some(lowering) = segmenting {
            if !m.is_multiple_of(p as u64) {
                diags.push(Diagnostic {
                    code: "COL011",
                    severity: Severity::Warning,
                    message: format!(
                        "divisibility hazard: the cost model lowers `{}` to {lowering} at \
                         p = {p}, m = {m}, but p does not divide m — ragged segments serialize \
                         the critical path; pad the block to {padded} words or choose p | m",
                        stage.describe(),
                        padded = m.next_multiple_of(p as u64),
                    ),
                    stage: i,
                    len: 1,
                    span: spans.and_then(|s| s.get(i).copied()),
                    suggestion: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collopt_core::op::lib;

    #[test]
    fn reduce_then_scan_is_a_distribution_mismatch() {
        let prog = Program::new().reduce(lib::add()).scan(lib::add());
        let mut diags = Vec::new();
        distflow_pass(&prog, None, &LintConfig::default(), &mut diags);
        assert!(
            diags.iter().any(|d| d.code == "COL007" && d.stage == 1),
            "{diags:?}"
        );
    }

    #[test]
    fn bcast_repairs_the_mismatch() {
        let prog = Program::new().reduce(lib::add()).bcast().scan(lib::add());
        let mut diags = Vec::new();
        distflow_pass(&prog, None, &LintConfig::default(), &mut diags);
        assert!(diags.iter().all(|d| d.code != "COL007"), "{diags:?}");
    }

    #[test]
    fn default_config_does_not_fire_col011_on_plain_allreduce() {
        // At the default machine (p = 64, ts = 200, tw = 2, m = 32) the
        // butterfly wins the cost comparison, so no divisibility hazard
        // even though 64 does not divide 32.
        let prog = Program::new().allreduce(lib::add());
        let mut diags = Vec::new();
        distflow_pass(&prog, None, &LintConfig::default(), &mut diags);
        assert!(diags.iter().all(|d| d.code != "COL011"), "{diags:?}");
    }

    #[test]
    fn ragged_segmenting_point_fires_col011() {
        // p = 16, m = 4097: rabenseifner wins by a wide margin and
        // 4097 mod 16 = 1.
        let cfg = LintConfig {
            params: collopt_cost::MachineParams::new(16, 200.0, 2.0),
            block: 4097.0,
            ..LintConfig::default()
        };
        let prog = Program::new().allreduce(lib::add());
        let mut diags = Vec::new();
        distflow_pass(&prog, None, &cfg, &mut diags);
        assert!(diags.iter().any(|d| d.code == "COL011"), "{diags:?}");
    }

    #[test]
    fn trace_tracks_the_lattice() {
        let prog = Program::new().scan(lib::add()).reduce(lib::add()).bcast();
        let t = dist_trace(&prog);
        assert_eq!(
            t,
            vec![
                DistState::Blocked,
                DistState::Scanned,
                DistState::RootOnly,
                DistState::Replicated
            ]
        );
    }
}
