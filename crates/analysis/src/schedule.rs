//! Static communication-schedule verification.
//!
//! Input: a symbolic per-rank [`Schedule`] extracted by
//! `collopt_collectives::schedule` — no payloads, just who sends what to
//! whom in which order. The verifier executes the schedule *abstractly*
//! over the machine's channel semantics (directed per-pair FIFOs,
//! non-blocking sends, blocking receives, full-machine clock barriers)
//! and proves, without running a single simulated clock tick:
//!
//! * **deadlock-freedom** — the abstract execution drains every rank to
//!   completion; a stall is diagnosed as a wait-for cycle or a barrier
//!   inconsistency (`COL008`);
//! * **match completeness** — every message sent is consumed exactly
//!   once and every receive has a live sender; orphan receives and
//!   unconsumed messages are `COL009`;
//! * **round optimality** — the measured critical-path round count must
//!   not exceed the closed form the cost model promises (an error-level
//!   `COL010`: the cost tables are lying about this lowering), and a
//!   lowering whose critical path exceeds the `⌈log₂ p⌉` influence lower
//!   bound (Träff, arXiv 2410.14234) gets a note-level `COL010` — legal,
//!   but provably suboptimal in start-ups.
//!
//! Rounds are counted on the store-and-forward critical path: a send
//! extends its rank's path by one round and stamps the message; a
//! receive joins the sender's stamped path (`max(own + 1, stamp)`); the
//! receive half of an exchange completes in the send's round
//! (`max(own, stamp)` after the push), which is what makes a butterfly
//! exchange cost one round where a send + receive pair costs two.

use std::collections::{HashMap, VecDeque};

use collopt_collectives::schedule::{
    planted_variants, shipped_variants, CollectiveKind, SchedOp, Schedule, Variant,
};
use collopt_cost::bounds::{min_rounds, BoundKind};
use collopt_machine::Json;

use crate::lint::{Diagnostic, Severity};

/// Map the registry's collective family onto the lower-bound table's.
/// (The two enums are deliberately distinct so `collopt-cost` stays
/// dependency-free.)
pub fn bound_kind(kind: CollectiveKind) -> BoundKind {
    match kind {
        CollectiveKind::Bcast => BoundKind::Bcast,
        CollectiveKind::Reduce => BoundKind::Reduce,
        CollectiveKind::AllReduce => BoundKind::AllReduce,
        CollectiveKind::Scan => BoundKind::Scan,
        CollectiveKind::ExScan => BoundKind::ExScan,
        CollectiveKind::Gather => BoundKind::Gather,
        CollectiveKind::Scatter => BoundKind::Scatter,
        CollectiveKind::AllGather => BoundKind::AllGather,
        CollectiveKind::ReduceScatter => BoundKind::ReduceScatter,
        CollectiveKind::AllToAll => BoundKind::AllToAll,
        CollectiveKind::Barrier => BoundKind::Barrier,
        CollectiveKind::Comcast => BoundKind::Comcast,
    }
}

/// The verifier's verdict on one lowering at one `(p, m)` point.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// Lowering name (from the registry).
    pub variant: &'static str,
    /// Machine size verified at.
    pub p: usize,
    /// Block size verified at.
    pub m: u64,
    /// Measured critical-path rounds (0 when the schedule stalls).
    pub rounds: u64,
    /// The closed-form round count the cost model promises.
    pub expected_rounds: u64,
    /// The `⌈log₂ p⌉` influence lower bound for this collective family.
    pub lower_bound: u64,
    /// Point-to-point messages in the schedule.
    pub messages: u64,
    /// Total words on the wire.
    pub words: u64,
    /// Findings; empty means a fully clean verification.
    pub diagnostics: Vec<Diagnostic>,
}

impl ScheduleReport {
    /// Did the schedule verify (no error-severity findings)? Notes —
    /// including the suboptimality note `COL010` — never fail a variant.
    pub fn ok(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity != Severity::Error)
    }
}

/// One rank-level micro-op after desugaring exchanges into their
/// send + receive halves on the same directed channels.
#[derive(Debug, Clone, Copy)]
enum Micro {
    Send {
        to: usize,
        words: u64,
    },
    /// `exchange_half` marks the receive that completes an exchange:
    /// its round joins the send's instead of opening a new one.
    Recv {
        from: usize,
        exchange_half: bool,
    },
    Barrier,
}

fn desugar(ops: &[SchedOp]) -> Vec<Micro> {
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        match *op {
            SchedOp::Send { to, words } => out.push(Micro::Send { to, words }),
            SchedOp::Recv { from } => out.push(Micro::Recv {
                from,
                exchange_half: false,
            }),
            SchedOp::Exchange { peer, words } => {
                out.push(Micro::Send { to: peer, words });
                out.push(Micro::Recv {
                    from: peer,
                    exchange_half: true,
                });
            }
            SchedOp::Barrier => out.push(Micro::Barrier),
        }
    }
    out
}

fn diag(code: &'static str, severity: Severity, message: String) -> Diagnostic {
    Diagnostic {
        code,
        severity,
        message,
        stage: 0,
        len: 1,
        span: None,
        suggestion: None,
    }
}

/// Abstractly execute `sched` and verify it; `name` labels diagnostics,
/// `kind` selects the lower bound, `expected_rounds` is the cost model's
/// promise.
pub fn verify_schedule(
    name: &'static str,
    kind: CollectiveKind,
    sched: &Schedule,
    expected_rounds: u64,
    m: u64,
) -> ScheduleReport {
    let p = sched.p;
    let progs: Vec<Vec<Micro>> = sched.ranks.iter().map(|ops| desugar(ops)).collect();
    let mut pc = vec![0usize; p];
    let mut depth = vec![0u64; p];
    // Directed per-(from, to) FIFO of (words, sender round stamp).
    let mut channels: HashMap<(usize, usize), VecDeque<(u64, u64)>> = HashMap::new();
    let mut diagnostics = Vec::new();

    let finished = |pc: &[usize], rank: usize| pc[rank] >= progs[rank].len();
    loop {
        let mut progressed = false;
        for rank in 0..p {
            while pc[rank] < progs[rank].len() {
                match progs[rank][pc[rank]] {
                    Micro::Send { to, words } => {
                        depth[rank] += 1;
                        channels
                            .entry((rank, to))
                            .or_default()
                            .push_back((words, depth[rank]));
                        pc[rank] += 1;
                        progressed = true;
                    }
                    Micro::Recv {
                        from,
                        exchange_half,
                    } => {
                        let Some((_, stamp)) =
                            channels.get_mut(&(from, rank)).and_then(|q| q.pop_front())
                        else {
                            break;
                        };
                        depth[rank] = if exchange_half {
                            depth[rank].max(stamp)
                        } else {
                            (depth[rank] + 1).max(stamp)
                        };
                        pc[rank] += 1;
                        progressed = true;
                    }
                    Micro::Barrier => break,
                }
            }
        }
        // The clock barrier completes only when *every* rank is at one.
        let at_barrier =
            |pc: &[usize], rank: usize| matches!(progs[rank].get(pc[rank]), Some(Micro::Barrier));
        if p > 0 && (0..p).all(|r| at_barrier(&pc, r)) {
            let sync = depth.iter().copied().max().unwrap_or(0);
            for rank in 0..p {
                depth[rank] = sync;
                pc[rank] += 1;
            }
            progressed = true;
        }
        if (0..p).all(|r| finished(&pc, r)) {
            break;
        }
        if progressed {
            continue;
        }
        // Stall: classify.
        let waiting_at_barrier: Vec<usize> = (0..p).filter(|&r| at_barrier(&pc, r)).collect();
        if !waiting_at_barrier.is_empty() {
            let absent: Vec<usize> = (0..p).filter(|&r| !at_barrier(&pc, r)).collect();
            diagnostics.push(diag(
                "COL008",
                Severity::Error,
                format!(
                    "{name}: barrier inconsistency — ranks {waiting_at_barrier:?} wait at a \
                     clock barrier that ranks {absent:?} never reach"
                ),
            ));
            return finish(name, sched, m, kind, expected_rounds, 0, diagnostics);
        }
        // Every stuck rank sits at a plain receive. If its source has
        // terminated, the receive is an orphan; otherwise every stuck
        // rank waits on another stuck rank and the wait-for graph has a
        // cycle.
        let mut waits_on: HashMap<usize, usize> = HashMap::new();
        for rank in 0..p {
            if finished(&pc, rank) {
                continue;
            }
            if let Micro::Recv { from, .. } = progs[rank][pc[rank]] {
                if finished(&pc, from) {
                    diagnostics.push(diag(
                        "COL009",
                        Severity::Error,
                        format!(
                            "{name}: orphan receive — rank {rank} waits for a message from \
                             rank {from}, which terminated without sending one"
                        ),
                    ));
                } else {
                    waits_on.insert(rank, from);
                }
            }
        }
        if diagnostics.is_empty() {
            // All waits point at blocked ranks: follow the edges from the
            // lowest blocked rank until a rank repeats — that loop is the
            // deadlock cycle.
            let start = *waits_on.keys().min().expect("a stall blocks some rank");
            let mut seen = Vec::new();
            let mut cur = start;
            while !seen.contains(&cur) {
                seen.push(cur);
                cur = waits_on[&cur];
            }
            let cycle_start = seen.iter().position(|&r| r == cur).unwrap();
            let mut cycle: Vec<usize> = seen[cycle_start..].to_vec();
            cycle.push(cur);
            let cycle_str = cycle
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(" -> ");
            diagnostics.push(diag(
                "COL008",
                Severity::Error,
                format!(
                    "{name}: deadlock — wait-for cycle {cycle_str}: every rank in the cycle \
                     blocks on a receive its predecessor can only satisfy after its own \
                     receive completes"
                ),
            ));
        }
        return finish(name, sched, m, kind, expected_rounds, 0, diagnostics);
    }

    // Drained: any message still in a channel was sent and never received.
    let mut leftovers: Vec<(usize, usize, usize)> = channels
        .iter()
        .filter(|(_, q)| !q.is_empty())
        .map(|(&(from, to), q)| (from, to, q.len()))
        .collect();
    leftovers.sort_unstable();
    for (from, to, n) in leftovers {
        diagnostics.push(diag(
            "COL009",
            Severity::Error,
            format!(
                "{name}: unconsumed message{} — rank {from} sent {n} message{} to rank {to} \
                 that rank {to} never receives",
                if n > 1 { "s" } else { "" },
                if n > 1 { "s" } else { "" },
            ),
        ));
    }

    let rounds = depth.iter().copied().max().unwrap_or(0);
    if diagnostics.is_empty() {
        if rounds > expected_rounds {
            diagnostics.push(diag(
                "COL010",
                Severity::Error,
                format!(
                    "{name}: measured critical path is {rounds} rounds but the cost model \
                     promises {expected_rounds} at p = {p}, m = {m} — the closed form \
                     under-counts this lowering"
                ),
            ));
        }
        let bound = min_rounds(bound_kind(kind), p);
        if expected_rounds.max(rounds) > bound && rounds > bound {
            diagnostics.push(diag(
                "COL010",
                Severity::Note,
                format!(
                    "{name}: {rounds} rounds where the one-ported influence bound is {bound} \
                     (Traeff 2410.14234) — correct, but provably suboptimal in start-ups"
                ),
            ));
        }
    }
    finish(name, sched, m, kind, expected_rounds, rounds, diagnostics)
}

fn finish(
    name: &'static str,
    sched: &Schedule,
    m: u64,
    kind: CollectiveKind,
    expected_rounds: u64,
    rounds: u64,
    diagnostics: Vec<Diagnostic>,
) -> ScheduleReport {
    ScheduleReport {
        variant: name,
        p: sched.p,
        m,
        rounds,
        expected_rounds,
        lower_bound: min_rounds(bound_kind(kind), sched.p),
        messages: sched.message_count(),
        words: sched.total_words(),
        diagnostics,
    }
}

/// Extract and verify one registry variant at `(p, m)`.
///
/// # Panics
/// Panics if the variant is not applicable at this point; gate on
/// `(variant.applicable)(p, m)` first.
pub fn verify_variant(v: &Variant, p: usize, m: u64) -> ScheduleReport {
    assert!(
        (v.applicable)(p, m),
        "{} is not applicable at p = {p}, m = {m}",
        v.name
    );
    let sched = (v.extract)(p, m);
    verify_schedule(v.name, v.kind, &sched, (v.expected_rounds)(p, m), m)
}

/// Verify every applicable shipped lowering at `(p, m)`.
pub fn verify_registry(p: usize, m: u64) -> Vec<ScheduleReport> {
    shipped_variants()
        .iter()
        .filter(|v| (v.applicable)(p, m))
        .map(|v| verify_variant(v, p, m))
        .collect()
}

/// Verify every applicable planted-bug lowering at `(p, m)`, pairing
/// each report with the lint code the verifier is required to raise.
pub fn verify_planted(p: usize, m: u64) -> Vec<(ScheduleReport, &'static str)> {
    planted_variants()
        .iter()
        .filter(|pv| (pv.variant.applicable)(p, m))
        .map(|pv| (verify_variant(&pv.variant, p, m), pv.expected_code))
        .collect()
}

/// Render verification reports for humans, one line per clean variant
/// and full diagnostics for dirty ones, ending with the same summary
/// line format the linter uses.
pub fn render_reports_human(reports: &[ScheduleReport]) -> String {
    let mut out = String::new();
    let (mut errors, mut warnings, mut notes) = (0usize, 0usize, 0usize);
    for r in reports {
        let verdict = if r.ok() { "ok" } else { "FAIL" };
        out.push_str(&format!(
            "{verdict:>4}  {name:<28} p={p:<3} m={m:<6} rounds={rounds} (expected {exp}, bound {lb})  msgs={msgs} words={words}\n",
            name = r.variant,
            p = r.p,
            m = r.m,
            rounds = r.rounds,
            exp = r.expected_rounds,
            lb = r.lower_bound,
            msgs = r.messages,
            words = r.words,
        ));
        for d in &r.diagnostics {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
                Severity::Note => notes += 1,
            }
            out.push_str(&format!(
                "      {}[{}]: {}\n",
                d.severity, d.code, d.message
            ));
        }
    }
    out.push_str(&format!(
        "summary: {errors} error(s), {warnings} warning(s), {notes} note(s)\n"
    ));
    out
}

/// Render verification reports as compact, byte-stable JSON.
pub fn render_reports_json(reports: &[ScheduleReport], p: usize, m: u64) -> String {
    let (mut errors, mut warnings, mut notes) = (0usize, 0usize, 0usize);
    let items: Vec<Json> = reports
        .iter()
        .map(|r| {
            let diags: Vec<Json> = r
                .diagnostics
                .iter()
                .map(|d| {
                    match d.severity {
                        Severity::Error => errors += 1,
                        Severity::Warning => warnings += 1,
                        Severity::Note => notes += 1,
                    }
                    Json::Obj(vec![
                        ("code".into(), Json::Str(d.code.to_string())),
                        ("severity".into(), Json::Str(d.severity.to_string())),
                        ("message".into(), Json::Str(d.message.clone())),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("variant".into(), Json::Str(r.variant.to_string())),
                ("ok".into(), Json::Bool(r.ok())),
                ("rounds".into(), Json::Num(r.rounds as f64)),
                (
                    "expected_rounds".into(),
                    Json::Num(r.expected_rounds as f64),
                ),
                ("lower_bound".into(), Json::Num(r.lower_bound as f64)),
                ("messages".into(), Json::Num(r.messages as f64)),
                ("words".into(), Json::Num(r.words as f64)),
                ("diagnostics".into(), Json::Arr(diags)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("version".into(), Json::Num(1.0)),
        (
            "point".into(),
            Json::Obj(vec![
                ("p".into(), Json::Num(p as f64)),
                ("m".into(), Json::Num(m as f64)),
            ]),
        ),
        ("variants".into(), Json::Arr(items)),
        (
            "summary".into(),
            Json::Obj(vec![
                ("errors".into(), Json::Num(errors as f64)),
                ("warnings".into(), Json::Num(warnings as f64)),
                ("notes".into(), Json::Num(notes as f64)),
            ]),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_variant_verifies_at_representative_points() {
        for p in [2usize, 3, 4, 6, 8, 13, 16] {
            for m in [1u64, 2, 32, 97] {
                for r in verify_registry(p, m) {
                    assert!(
                        r.ok(),
                        "{} failed at p = {p}, m = {m}:\n{}",
                        r.variant,
                        render_reports_human(std::slice::from_ref(&r))
                    );
                }
            }
        }
    }

    #[test]
    fn planted_bugs_are_rejected_with_their_expected_codes() {
        for (p, m) in [(4usize, 8u64), (5, 10), (8, 3)] {
            let rejected = verify_planted(p, m);
            assert!(!rejected.is_empty());
            for (report, code) in rejected {
                assert!(!report.ok(), "{} must fail at p = {p}", report.variant);
                assert!(
                    report.diagnostics.iter().any(|d| d.code == code),
                    "{} must raise {code}, got {:?}",
                    report.variant,
                    report.diagnostics
                );
            }
        }
    }

    #[test]
    fn butterfly_meets_the_lower_bound_exactly() {
        let v = shipped_variants()
            .into_iter()
            .find(|v| v.name == "allreduce_butterfly")
            .unwrap();
        for log in 1..=6u32 {
            let p = 1usize << log;
            let r = verify_variant(&v, p, 16);
            assert!(r.ok());
            assert_eq!(r.rounds, u64::from(log));
            assert_eq!(r.rounds, r.lower_bound);
            assert!(r.diagnostics.is_empty(), "no suboptimality note: {r:?}");
        }
    }

    #[test]
    fn ring_gets_the_suboptimality_note() {
        let v = shipped_variants()
            .into_iter()
            .find(|v| v.name == "allreduce_ring")
            .unwrap();
        let r = verify_variant(&v, 8, 64);
        assert!(r.ok());
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == "COL010" && d.severity == Severity::Note),
            "{r:?}"
        );
    }

    #[test]
    fn json_rendering_is_stable() {
        let a = render_reports_json(&verify_registry(6, 14), 6, 14);
        let b = render_reports_json(&verify_registry(6, 14), 6, 14);
        assert_eq!(a, b);
        assert!(a.contains("\"variant\":\"bcast_binomial\""));
    }
}
