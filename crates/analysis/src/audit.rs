//! The operator auditor: verify declared algebraic properties.
//!
//! The rewrite engine trusts `BinOp` *declarations* — an operator that
//! claims commutativity it does not have silently enables a wrong rule
//! (an **over-claim**, unsound), and one that omits a property it does
//! have silently forfeits a fusion (an **under-claim**, a missed
//! optimization). The auditor checks both directions for every operator:
//!
//! * **exhaustive enumeration** over a small fixed pool of domain values
//!   (every pair/triple — complete for booleans, a dense corner sweep for
//!   the numeric domains), plus
//! * **seeded randomized search** (via [`collopt_machine::rng::Rng`])
//!   over a wider bounded range,
//!
//! with counterexamples shrunk by [`RequiredLaw`]'s greedy minimizer.
//!
//! Floating-point operators are classified [`Exactness::Approximate`]:
//! their laws are checked up to the configured relative tolerance
//! (default [`collopt_core::op::FLOAT_RTOL`]) and are **never** reported
//! as exact — float associativity genuinely fails bit-for-bit, which is a
//! property of IEEE arithmetic, not a mis-declaration.
//!
//! Verification is over a *bounded* audit domain (small magnitudes; no
//! wrap-around). A law that holds on the audit domain may still fail at
//! the edges of machine arithmetic — under-claims are therefore
//! *candidates* for declaration, while over-claims (a concrete refuting
//! witness in hand) are definite bugs.

use collopt_core::op::{lib, BinOp, Counterexample, RequiredLaw, FLOAT_RTOL};
use collopt_core::value::Value;
use collopt_machine::Rng;

/// The value domain an operator is defined over; determines the sample
/// pool the auditor enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// `Value::Int` scalars.
    Int,
    /// `Value::Float` scalars (audited tolerance-approximately).
    Float,
    /// `Value::Bool` scalars (the pool is exhaustive: `{false, true}`).
    Bool,
    /// `(value, index)` integer pairs (maxloc/minloc).
    IntPair,
    /// 2×2 integer matrices as 4-tuples (mat2mul).
    IntQuad,
}

/// Whether an operator's laws are checked exactly or up to a tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exactness {
    /// Integer/boolean domains: equality is exact.
    Exact,
    /// Floating-point domains: laws hold up to the configured relative
    /// tolerance only.
    Approximate,
}

/// Auditor configuration. Deterministic for a fixed seed.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Seed for the randomized sample search.
    pub seed: u64,
    /// Number of random samples appended to the exhaustive pool.
    pub random_trials: usize,
    /// Relative tolerance for floating-point domains (see
    /// [`collopt_core::op::FLOAT_RTOL`] for the comparison semantics).
    pub tolerance: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            seed: 0x0C01_1097,
            random_trials: 6,
            tolerance: FLOAT_RTOL,
        }
    }
}

/// The value domain of a *built-in* operator, by name. Returns `None` for
/// operators the analyzer does not know — those are audited only if the
/// caller supplies a domain explicitly.
pub fn domain_of_builtin(name: &str) -> Option<Domain> {
    match name {
        "add" | "mul" | "max" | "min" | "gcd" => Some(Domain::Int),
        n if n.starts_with("add_mod") => Some(Domain::Int),
        "fadd" | "fmul" => Some(Domain::Float),
        "and" | "or" => Some(Domain::Bool),
        "maxloc" | "minloc" => Some(Domain::IntPair),
        "mat2mul" => Some(Domain::IntQuad),
        _ => None,
    }
}

/// The exactness class of a domain.
pub fn exactness_of(domain: Domain) -> Exactness {
    match domain {
        Domain::Float => Exactness::Approximate,
        _ => Exactness::Exact,
    }
}

fn pair(v: i64, i: i64) -> Value {
    Value::Tuple(vec![Value::Int(v), Value::Int(i)])
}

fn quad(a: i64, b: i64, c: i64, d: i64) -> Value {
    Value::Tuple(vec![
        Value::Int(a),
        Value::Int(b),
        Value::Int(c),
        Value::Int(d),
    ])
}

/// The sample pool for a domain: a small exhaustive core (corner cases:
/// zero, units, negatives) plus `cfg.random_trials` seeded random values
/// of bounded magnitude. Deterministic for a fixed config.
pub fn samples_for_domain(domain: Domain, cfg: &AuditConfig) -> Vec<Value> {
    let mut rng = Rng::new(cfg.seed ^ (domain as u64).wrapping_mul(0x9E37_79B9));
    let mut pool = match domain {
        Domain::Int => [-2i64, -1, 0, 1, 2, 3].map(Value::Int).to_vec(),
        Domain::Float => [-2.5f64, -1.0, 0.0, 0.5, 1.0, 3.25]
            .map(Value::Float)
            .to_vec(),
        Domain::Bool => vec![Value::Bool(false), Value::Bool(true)],
        Domain::IntPair => vec![pair(0, 0), pair(0, 1), pair(1, 0), pair(-1, 2), pair(2, 2)],
        Domain::IntQuad => vec![
            quad(1, 0, 0, 1), // identity
            quad(0, 0, 0, 0),
            quad(1, 2, 3, 4),
            quad(-1, 0, 2, 1),
        ],
    };
    for _ in 0..cfg.random_trials {
        pool.push(match domain {
            Domain::Int => Value::Int(rng.range_i64(-1_000, 1_000)),
            Domain::Float => Value::Float((rng.unit_f64() - 0.5) * 200.0),
            // The boolean pool is already exhaustive.
            Domain::Bool => break,
            Domain::IntPair => pair(rng.range_i64(-50, 50), rng.range_i64(0, 64)),
            Domain::IntQuad => quad(
                rng.range_i64(-5, 5),
                rng.range_i64(-5, 5),
                rng.range_i64(-5, 5),
                rng.range_i64(-5, 5),
            ),
        });
    }
    pool
}

/// A declared property refuted by a concrete (shrunk) witness — unsound:
/// the engine would apply a wrong rule on its strength.
#[derive(Debug, Clone)]
pub struct OverClaim {
    /// Operator whose declaration is wrong.
    pub op: String,
    /// The refuted law, e.g. `"commutativity of sub"`.
    pub law: String,
    /// The shrunk refuting witness.
    pub counterexample: Counterexample,
}

/// A property that *holds on the audit domain* but is not declared —
/// the engine forfeits every fusion gated on it.
#[derive(Debug, Clone)]
pub struct UnderClaim {
    /// Operator missing the declaration.
    pub op: String,
    /// The law that held, e.g. `"max distributes over min"`.
    pub law: String,
    /// The declaration builder call that would add it, e.g.
    /// `".distributes_over_op(\"min\")"`.
    pub declaration: String,
}

/// The audit verdict for one operator.
#[derive(Debug, Clone)]
pub struct OpAudit {
    /// Operator name.
    pub op: String,
    /// Domain the audit ran over.
    pub domain: Domain,
    /// Exact or tolerance-approximate verification.
    pub exactness: Exactness,
    /// Declared laws that verified, e.g. `["associativity of add"]`.
    pub verified: Vec<String>,
    /// Declared laws refuted with a witness.
    pub over_claims: Vec<OverClaim>,
    /// Undeclared laws that held on the audit domain.
    pub under_claims: Vec<UnderClaim>,
}

impl OpAudit {
    /// No over-claims: every declared property checked out.
    pub fn is_sound(&self) -> bool {
        self.over_claims.is_empty()
    }
}

/// Audit one operator against its declarations. `peers` is the set of
/// same-domain operators distributivity is probed against (for
/// under-claim detection); pass `&[]` to check only the declared laws.
pub fn audit_operator(op: &BinOp, domain: Domain, peers: &[BinOp], cfg: &AuditConfig) -> OpAudit {
    let samples = samples_for_domain(domain, cfg);
    let rtol = match exactness_of(domain) {
        Exactness::Approximate => cfg.tolerance,
        Exactness::Exact => 0.0,
    };
    let mut verified = Vec::new();
    let mut over_claims = Vec::new();
    let mut under_claims = Vec::new();

    let mut check = |law: RequiredLaw, declared: bool, declaration: &str| {
        let cex = law.counterexample_with(&samples, rtol);
        match (declared, cex) {
            (true, None) => verified.push(law.describe()),
            (true, Some(counterexample)) => over_claims.push(OverClaim {
                op: op.name().to_string(),
                law: law.describe(),
                counterexample,
            }),
            (false, None) => under_claims.push(UnderClaim {
                op: op.name().to_string(),
                law: law.describe(),
                declaration: declaration.to_string(),
            }),
            (false, Some(_)) => {} // correctly undeclared
        }
    };

    check(
        RequiredLaw::Associative(op.clone()),
        op.is_associative(),
        "(associativity is implied by BinOp::new)",
    );
    check(
        RequiredLaw::Commutative(op.clone()),
        op.is_commutative(),
        ".commutative()",
    );
    for peer in peers {
        check(
            RequiredLaw::DistributesOver(op.clone(), peer.clone()),
            op.distributes_over(peer),
            &format!(".distributes_over_op(\"{}\")", peer.name()),
        );
    }
    OpAudit {
        op: op.name().to_string(),
        domain,
        exactness: exactness_of(domain),
        verified,
        over_claims,
        under_claims,
    }
}

/// The built-in operator table (every `collopt_core::op::lib` operator)
/// with its audit domain.
pub fn builtin_table() -> Vec<(BinOp, Domain)> {
    vec![
        (lib::add(), Domain::Int),
        (lib::mul(), Domain::Int),
        (lib::max(), Domain::Int),
        (lib::min(), Domain::Int),
        (lib::add_tropical(), Domain::Int),
        (lib::add_mod(97), Domain::Int),
        (lib::gcd(), Domain::Int),
        (lib::and(), Domain::Bool),
        (lib::or(), Domain::Bool),
        (lib::fadd(), Domain::Float),
        (lib::fmul(), Domain::Float),
        (lib::maxloc(), Domain::IntPair),
        (lib::minloc(), Domain::IntPair),
        (lib::mat2mul(), Domain::IntQuad),
    ]
}

/// Audit every operator of the built-in table, probing distributivity
/// against all same-domain peers (including the operator itself).
pub fn audit_builtin_table(cfg: &AuditConfig) -> Vec<OpAudit> {
    let table = builtin_table();
    table
        .iter()
        .map(|(op, domain)| {
            // Dedupe peers by name: the table carries both `add` and the
            // tropical `add` (same function, richer declarations), and
            // distributivity is a property of the *name*.
            let mut seen = std::collections::HashSet::new();
            let peers: Vec<BinOp> = table
                .iter()
                .filter(|(p, d)| d == domain && seen.insert(p.name().to_string()))
                .map(|(p, _)| p.clone())
                .collect();
            audit_operator(op, *domain, &peers, cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sound_operator_audits_clean() {
        let audit = audit_operator(&lib::add(), Domain::Int, &[], &AuditConfig::default());
        assert!(audit.is_sound());
        assert_eq!(audit.exactness, Exactness::Exact);
        assert!(audit
            .verified
            .iter()
            .any(|l| l.contains("associativity of add")));
        assert!(audit
            .verified
            .iter()
            .any(|l| l.contains("commutativity of add")));
    }

    #[test]
    fn lying_operator_is_caught_with_shrunk_witness() {
        let lying = BinOp::new("sub", |a, b| Value::Int(a.as_int() - b.as_int())).commutative();
        let audit = audit_operator(&lying, Domain::Int, &[], &AuditConfig::default());
        assert!(!audit.is_sound());
        // Associativity (implied) and commutativity (declared) both fail.
        assert_eq!(audit.over_claims.len(), 2);
        for claim in &audit.over_claims {
            assert!(claim.counterexample.distinct_values() <= 3, "{claim:?}");
        }
    }

    #[test]
    fn under_claim_detected_for_missing_distributivity() {
        // mul without its distributes_over("add") declaration.
        let bare = BinOp::new("mul", |a, b| {
            Value::Int(a.as_int().wrapping_mul(b.as_int()))
        })
        .commutative();
        let audit = audit_operator(&bare, Domain::Int, &[lib::add()], &AuditConfig::default());
        assert!(audit.is_sound());
        assert!(
            audit
                .under_claims
                .iter()
                .any(|u| u.law.contains("mul distributes over add")),
            "{:?}",
            audit.under_claims
        );
    }

    #[test]
    fn float_ops_are_approximate_and_sound_at_tolerance() {
        let cfg = AuditConfig::default();
        for op in [lib::fadd(), lib::fmul()] {
            let audit = audit_operator(&op, Domain::Float, &[lib::fadd()], &cfg);
            assert_eq!(audit.exactness, Exactness::Approximate);
            assert!(audit.is_sound(), "{:?}", audit.over_claims);
        }
    }

    #[test]
    fn audit_is_deterministic_for_a_seed() {
        let cfg = AuditConfig::default();
        let a = samples_for_domain(Domain::Int, &cfg);
        let b = samples_for_domain(Domain::Int, &cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
