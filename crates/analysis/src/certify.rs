//! End-to-end validation of rewrite certificates.
//!
//! Every [`RewriteStep`] produced by the engine carries a
//! [`Certificate`]: the algebraic laws, bound to concrete operators, whose
//! truth the applied rule's correctness proof assumes. This module
//! re-checks a whole [`OptimizeResult`] after the fact:
//!
//! 1. **structure** — the certificate's rule matches the step's rule and
//!    carries every law *kind* that rule's side condition demands (a
//!    distributivity rule without a `DistributesOver` law is a forged
//!    certificate, whatever its laws say);
//! 2. **semantics** — every law is re-verified by counterexample search
//!    over a sample pool for the operators' domain.
//!
//! Validation is independent of the engine: it reconstructs nothing from
//! the programs, only judges what the certificates claim.

use collopt_core::dist::{expected_post, expected_pre, DistState};
use collopt_core::op::{Counterexample, RequiredLaw};
use collopt_core::rewrite::{Certificate, OptimizeResult, RewriteStep};
use collopt_core::rules::Rule;
use collopt_core::value::Value;

use crate::audit::{domain_of_builtin, exactness_of, samples_for_domain, AuditConfig, Exactness};

/// A defect found in a step's certificate.
#[derive(Debug, Clone)]
pub enum CertificateIssue {
    /// The certificate was issued for a different rule than the step
    /// applied.
    RuleMismatch {
        /// Index of the step in `OptimizeResult::steps`.
        step: usize,
        /// Rule the step applied.
        applied: Rule,
        /// Rule the certificate claims.
        certified: Rule,
    },
    /// The rule's side condition demands a law kind the certificate does
    /// not carry.
    MissingLaw {
        /// Index of the step in `OptimizeResult::steps`.
        step: usize,
        /// The rule in question.
        rule: Rule,
        /// The missing kind: `"associativity"`, `"commutativity"`, or
        /// `"distributivity"`.
        kind: &'static str,
    },
    /// The certificate's distribution pre/post-condition disagrees with
    /// what the rule (and the step's `rank0_only` instantiation)
    /// guarantees — a forged or stale condition.
    DistMismatch {
        /// Index of the step in `OptimizeResult::steps`.
        step: usize,
        /// The rule in question.
        rule: Rule,
        /// Which condition: `"pre"` or `"post"`.
        which: &'static str,
        /// The state the rule guarantees.
        expected: DistState,
        /// The state the certificate claims.
        certified: DistState,
    },
    /// A certified law fails on re-verification.
    LawViolated {
        /// Index of the step in `OptimizeResult::steps`.
        step: usize,
        /// The rule in question.
        rule: Rule,
        /// The violated law, e.g. `"commutativity of sub"`.
        law: String,
        /// Shrunk refuting witness.
        counterexample: Counterexample,
    },
}

impl std::fmt::Display for CertificateIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateIssue::RuleMismatch {
                step,
                applied,
                certified,
            } => write!(
                f,
                "step {step}: certificate issued for {certified} but step applied {applied}"
            ),
            CertificateIssue::MissingLaw { step, rule, kind } => {
                write!(
                    f,
                    "step {step}: {rule} requires a {kind} law, none certified"
                )
            }
            CertificateIssue::DistMismatch {
                step,
                rule,
                which,
                expected,
                certified,
            } => write!(
                f,
                "step {step}: {rule} guarantees {which}-distribution {} but the certificate \
                 claims {}",
                expected.name(),
                certified.name()
            ),
            CertificateIssue::LawViolated {
                step,
                rule,
                law,
                counterexample,
            } => write!(
                f,
                "step {step}: {rule} certified on {law}, which fails — {counterexample}"
            ),
        }
    }
}

/// The law kinds a rule's side condition demands (always at least
/// associativity; see `collopt_cost::table1::Rule::condition_str`).
pub fn required_kinds(rule: Rule) -> &'static [&'static str] {
    match rule {
        Rule::Sr2Reduction | Rule::Ss2Scan | Rule::Bss2Comcast | Rule::Bsr2Local => {
            &["associativity", "distributivity"]
        }
        Rule::SrReduction | Rule::SsScan | Rule::BssComcast | Rule::BsrLocal => {
            &["associativity", "commutativity"]
        }
        Rule::BsComcast | Rule::BrLocal | Rule::CrAlllocal => &["associativity"],
    }
}

fn kind_of(law: &RequiredLaw) -> &'static str {
    match law {
        RequiredLaw::Associative(_) => "associativity",
        RequiredLaw::Commutative(_) => "commutativity",
        RequiredLaw::DistributesOver(..) => "distributivity",
    }
}

/// The sample pool to re-verify a certificate's laws on: the common
/// builtin domain of all the operators involved, or `None` when an
/// operator is unknown or the operators mix domains (the caller must then
/// supply samples explicitly).
pub fn samples_for_certificate(cert: &Certificate, cfg: &AuditConfig) -> Option<Vec<Value>> {
    let mut domain = None;
    for law in &cert.laws {
        for name in law.op_names() {
            let d = domain_of_builtin(name)?;
            match domain {
                None => domain = Some(d),
                Some(prev) if prev == d => {}
                Some(_) => return None,
            }
        }
    }
    domain.map(|d| samples_for_domain(d, cfg))
}

/// Validate one step's certificate on the given samples (`rtol` applies
/// to float comparisons; pass `0.0` for exact domains).
pub fn validate_step(
    index: usize,
    step: &RewriteStep,
    samples: &[Value],
    rtol: f64,
) -> Vec<CertificateIssue> {
    let mut issues = Vec::new();
    let cert = &step.certificate;
    if cert.rule != step.rule {
        issues.push(CertificateIssue::RuleMismatch {
            step: index,
            applied: step.rule,
            certified: cert.rule,
        });
    }
    for kind in required_kinds(step.rule) {
        if !cert.laws.iter().any(|l| kind_of(l) == *kind) {
            issues.push(CertificateIssue::MissingLaw {
                step: index,
                rule: step.rule,
                kind,
            });
        }
    }
    let want_pre = expected_pre(step.rule);
    if cert.dist_pre != want_pre {
        issues.push(CertificateIssue::DistMismatch {
            step: index,
            rule: step.rule,
            which: "pre",
            expected: want_pre,
            certified: cert.dist_pre,
        });
    }
    let want_post = expected_post(step.rule, step.rank0_only);
    if cert.dist_post != want_post {
        issues.push(CertificateIssue::DistMismatch {
            step: index,
            rule: step.rule,
            which: "post",
            expected: want_post,
            certified: cert.dist_post,
        });
    }
    for law in &cert.laws {
        // Fused tuple-typed operators (declared width > 1 word per
        // element, e.g. `op_sr2`) appear in second-generation windows the
        // saturation search certifies; scalar sample pools cannot probe
        // them, and their laws hold by construction whenever the source
        // operators' certified laws do — only structural checks apply.
        if law.ops().iter().any(|op| op.width() > 1.0) {
            continue;
        }
        if let Some(counterexample) = law.counterexample_with(samples, rtol) {
            issues.push(CertificateIssue::LawViolated {
                step: index,
                rule: step.rule,
                law: law.describe(),
                counterexample,
            });
        }
    }
    issues
}

/// Validate every certificate of an optimization run end-to-end. Sample
/// pools are chosen per certificate from the builtin operator domains;
/// certificates over unknown operators fall back to `fallback_samples`
/// (skipping semantic re-verification when that is empty).
pub fn validate_result(
    res: &OptimizeResult,
    fallback_samples: &[Value],
    cfg: &AuditConfig,
) -> Vec<CertificateIssue> {
    let mut issues = Vec::new();
    for (index, step) in res.steps.iter().enumerate() {
        let (samples, rtol) = match samples_for_certificate(&step.certificate, cfg) {
            Some(samples) => {
                let rtol = step
                    .certificate
                    .laws
                    .first()
                    .and_then(|l| l.op_names().first().and_then(|n| domain_of_builtin(n)))
                    .map_or(0.0, |d| match exactness_of(d) {
                        Exactness::Approximate => cfg.tolerance,
                        Exactness::Exact => 0.0,
                    });
                (samples, rtol)
            }
            None => (fallback_samples.to_vec(), cfg.tolerance),
        };
        if samples.is_empty() {
            // Structural checks still run; semantic re-verification is
            // impossible without a domain.
            issues.extend(validate_step(index, step, &[], 0.0));
            continue;
        }
        issues.extend(validate_step(index, step, &samples, rtol));
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use collopt_core::op::lib;
    use collopt_core::rewrite::Rewriter;
    use collopt_core::term::Program;

    #[test]
    fn engine_output_validates_end_to_end() {
        let prog = Program::new()
            .map("f", 1.0, |v| v.clone())
            .scan(lib::mul())
            .reduce(lib::add())
            .bcast()
            .scan(lib::add());
        let res = Rewriter::exhaustive().optimize(&prog);
        assert!(!res.steps.is_empty());
        let issues = validate_result(&res, &[], &AuditConfig::default());
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn float_pipeline_validates_at_tolerance() {
        let prog = Program::new().scan(lib::fmul()).allreduce(lib::fadd());
        let res = Rewriter::exhaustive().optimize(&prog);
        assert_eq!(res.steps.len(), 1);
        let issues = validate_result(&res, &[], &AuditConfig::default());
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn forged_certificate_is_rejected() {
        let prog = Program::new().scan(lib::mul()).reduce(lib::add());
        let mut res = Rewriter::exhaustive().optimize(&prog);
        // Strip the distributivity law off the SR2 certificate.
        res.steps[0]
            .certificate
            .laws
            .retain(|l| !matches!(l, RequiredLaw::DistributesOver(..)));
        let issues = validate_result(&res, &[], &AuditConfig::default());
        assert!(issues.iter().any(|i| matches!(
            i,
            CertificateIssue::MissingLaw {
                kind: "distributivity",
                ..
            }
        )));
    }

    #[test]
    fn forged_distribution_postcondition_is_rejected() {
        let prog = Program::new().scan(lib::mul()).reduce(lib::add());
        let mut res = Rewriter::exhaustive().optimize(&prog);
        assert_eq!(res.steps.len(), 1);
        // `scan ; reduce` fuses rank0-only: the honest post-state is ⊥.
        assert!(res.steps[0].rank0_only);
        assert_eq!(res.steps[0].certificate.dist_post, DistState::Bottom);
        res.steps[0].certificate.dist_post = DistState::Replicated;
        let issues = validate_result(&res, &[], &AuditConfig::default());
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, CertificateIssue::DistMismatch { which: "post", .. })),
            "{issues:?}"
        );
    }

    fn lying_sub() -> collopt_core::op::BinOp {
        collopt_core::op::BinOp::new("sub", |a, b| Value::Int(a.as_int() - b.as_int()))
            .commutative()
    }

    #[test]
    fn lying_certificate_law_is_refuted() {
        let lying = lying_sub();
        let prog = Program::new().scan(lying.clone()).reduce(lying);
        let res = Rewriter::exhaustive().optimize(&prog);
        assert_eq!(res.steps.len(), 1, "declaration-trusting engine fuses");
        // `sub` is not a builtin: validation uses the fallback pool.
        let samples: Vec<Value> = [-3i64, 0, 1, 4].map(Value::Int).to_vec();
        let issues = validate_result(&res, &samples, &AuditConfig::default());
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, CertificateIssue::LawViolated { .. })),
            "{issues:?}"
        );
    }
}
