//! The pipeline linter: structured diagnostics over collective pipelines.
//!
//! Three families of findings, each with a stable code:
//!
//! | code     | severity | meaning                                               |
//! |----------|----------|-------------------------------------------------------|
//! | `COL001` | warning  | missed fusion: a rule applies and would save time     |
//! | `COL002` | error    | unsound declaration: a declared law fails, witness attached |
//! | `COL003` | warning  | cost regression: a rule applies but would *slow down* the pipeline on this machine |
//! | `COL004` | warning  | redundant collective (bcast after bcast/all-variant, gather;scatter round-trip) |
//! | `COL005` | note     | under-declared property: a law holds on the audit domain but is not declared |
//! | `COL006` | note     | floating-point operator: laws are tolerance-approximate |
//! | `COL007` | warning  | distribution mismatch: a stage consumes data on every rank but its producer leaves the result root-only or undefined |
//! | `COL008` | error    | schedule deadlock: a lowering's communication schedule has a wait-for cycle or barrier inconsistency (`collopt check`) |
//! | `COL009` | error    | unmatched message: an orphan receive or an unconsumed send in a schedule (`collopt check`) |
//! | `COL010` | error/note | round count above the cost model's promise (error) or above the `⌈log₂ p⌉` lower bound (note; `collopt check`) |
//! | `COL011` | warning  | divisibility hazard: a segmenting lowering wins the cost comparison but `p ∤ m` |
//! | `COL012` | warning  | a suggested rewrite narrows the final distribution to rank 0 |
//!
//! Diagnostics carry the stage index, the byte [`Span`] when the pipeline
//! came from source text ([`lint_source`] / `parse_pipeline_spanned`), and
//! a suggested rewrite where one exists. Output is available as a human
//! caret-annotated report ([`LintReport::render_human`]) and as
//! byte-stable hand-rolled JSON ([`LintReport::render_json`]), sorted by
//! `(stage, code, message)` in both forms.

use std::sync::Arc;

use collopt_core::egraph::{saturate_program, LawGate, SaturateConfig};
use collopt_core::op::BinOp;
use collopt_core::parser::{parse_pipeline_spanned, ParseError, Span};
use collopt_core::rewrite::{program_cost, RULE_PRIORITY};
use collopt_core::rules;
use collopt_core::rules::enabling::{self, Normalization};
use collopt_core::term::{Program, Stage};
use collopt_cost::MachineParams;
use collopt_machine::Json;

use crate::audit::{audit_operator, domain_of_builtin, AuditConfig, Domain, Exactness};

/// Diagnostic severity, ordered most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Soundness problem: acting on the pipeline as declared is wrong.
    Error,
    /// Performance or redundancy problem worth fixing.
    Warning,
    /// Informational finding.
    Note,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// One structured finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable code, `COL001`..`COL006`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description (machine-independent facts only live in
    /// the message; the span/stage fields carry the location).
    pub message: String,
    /// Index of the first stage the finding anchors on.
    pub stage: usize,
    /// Number of consecutive stages covered (≥ 1).
    pub len: usize,
    /// Byte span in the source text, when the pipeline was parsed.
    pub span: Option<Span>,
    /// A suggested replacement pipeline, where one exists.
    pub suggestion: Option<String>,
}

/// Linter configuration: the machine model the cost judgements use, plus
/// the audit settings for runtime law verification.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Machine parameters for cost judgements.
    pub params: MachineParams,
    /// Block size (words per processor) for cost judgements.
    pub block: f64,
    /// Operator-audit settings (seed, random trials, float tolerance).
    pub audit: AuditConfig,
    /// Domain assumed for operators the analyzer does not know by name;
    /// `None` (the default) skips runtime verification for them.
    pub fallback_domain: Option<Domain>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            params: MachineParams::new(64, 200.0, 2.0),
            block: 32.0,
            audit: AuditConfig::default(),
            fallback_domain: None,
        }
    }
}

/// The linter's result: diagnostics sorted by `(stage, code, message)`.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// The machine model the cost judgements used.
    pub params: MachineParams,
    /// Block size used.
    pub block: f64,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-severity findings.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Render a human-readable report; with `src` available, findings are
    /// caret-annotated against the pipeline text.
    pub fn render_human(&self, src: Option<&str>) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
            match (src, d.span) {
                (Some(src), Some(span)) => {
                    let (line, col) = line_col(src, span.start);
                    let line_src = src.lines().nth(line - 1).unwrap_or("");
                    let caret_len = span.slice(src).chars().count().max(1);
                    out.push_str(&format!(" --> line {line}, column {col}\n"));
                    out.push_str("  |\n");
                    out.push_str(&format!("  | {line_src}\n"));
                    out.push_str(&format!(
                        "  | {}{}\n",
                        " ".repeat(col - 1),
                        "^".repeat(caret_len)
                    ));
                }
                _ => {
                    let range = if d.len > 1 {
                        format!("stages {}..{}", d.stage, d.stage + d.len)
                    } else {
                        format!("stage {}", d.stage)
                    };
                    out.push_str(&format!(" --> {range}\n"));
                }
            }
            if let Some(s) = &d.suggestion {
                out.push_str(&format!("  = suggestion: {s}\n"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "summary: {} error(s), {} warning(s), {} note(s)\n",
            self.errors(),
            self.warnings(),
            self.notes()
        ));
        out
    }

    /// Render the report as compact JSON (hand-rolled, byte-stable for a
    /// fixed input and config).
    pub fn render_json(&self) -> String {
        let span_json = |span: Option<Span>| match span {
            Some(s) => Json::Obj(vec![
                ("start".into(), Json::Num(s.start as f64)),
                ("end".into(), Json::Num(s.end as f64)),
            ]),
            None => Json::Null,
        };
        let diags: Vec<Json> = self
            .diagnostics
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("code".into(), Json::Str(d.code.to_string())),
                    ("severity".into(), Json::Str(d.severity.to_string())),
                    ("stage".into(), Json::Num(d.stage as f64)),
                    ("len".into(), Json::Num(d.len as f64)),
                    ("span".into(), span_json(d.span)),
                    ("message".into(), Json::Str(d.message.clone())),
                    (
                        "suggestion".into(),
                        d.suggestion.clone().map_or(Json::Null, Json::Str),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("version".into(), Json::Num(1.0)),
            (
                "machine".into(),
                Json::Obj(vec![
                    ("p".into(), Json::Num(self.params.p as f64)),
                    ("ts".into(), Json::Num(self.params.ts)),
                    ("tw".into(), Json::Num(self.params.tw)),
                    ("m".into(), Json::Num(self.block)),
                ]),
            ),
            ("diagnostics".into(), Json::Arr(diags)),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("errors".into(), Json::Num(self.errors() as f64)),
                    ("warnings".into(), Json::Num(self.warnings() as f64)),
                    ("notes".into(), Json::Num(self.notes() as f64)),
                ]),
            ),
        ])
        .render()
    }
}

fn line_col(src: &str, at: usize) -> (usize, usize) {
    let prefix = &src[..at.min(src.len())];
    let line = prefix.matches('\n').count() + 1;
    let line_start = prefix.rfind('\n').map_or(0, |i| i + 1);
    (line, prefix[line_start..].chars().count() + 1)
}

fn stage_op(stage: &Stage) -> Option<&BinOp> {
    match stage {
        Stage::Scan(op) | Stage::Reduce(op) | Stage::AllReduce(op) => Some(op),
        _ => None,
    }
}

/// Span covering stages `[at, at+len)`, when stage spans are available.
fn window_span(spans: Option<&[Span]>, at: usize, len: usize) -> Option<Span> {
    let spans = spans?;
    let first = spans.get(at)?;
    let last = spans.get(at + len - 1)?;
    Some(Span::new(first.start, last.end))
}

/// Lint a parsed source pipeline: spans from the parser anchor every
/// diagnostic in the text.
pub fn lint_source(src: &str, cfg: &LintConfig) -> Result<LintReport, ParseError> {
    let (prog, spans) = parse_pipeline_spanned(src)?;
    Ok(lint_program(&prog, Some(&spans), cfg))
}

/// Lint a program term. `spans` (one per stage, as produced by
/// `parse_pipeline_spanned`) is optional; without it diagnostics anchor on
/// stage indices only.
pub fn lint_program(prog: &Program, spans: Option<&[Span]>, cfg: &LintConfig) -> LintReport {
    let mut diags = Vec::new();
    fusion_pass(prog, spans, cfg, &mut diags);
    operator_pass(prog, spans, cfg, &mut diags);
    redundancy_pass(prog, spans, &mut diags);
    crate::distflow::distflow_pass(prog, spans, cfg, &mut diags);
    diags.sort_by(|a, b| (a.stage, a.code, &a.message).cmp(&(b.stage, b.code, &b.message)));
    LintReport {
        diagnostics: diags,
        params: cfg.params,
        block: cfg.block,
    }
}

/// Verify a window's required laws at runtime where the operators'
/// domains are known. Returns `Some(true)` = verified, `Some(false)` = a
/// law fails (the declaration lies — the matching rule must not be
/// suggested), `None` = no domain available, trust the declarations.
///
/// `source_ops` names the operators declared by the pipeline under
/// analysis: `cfg.fallback_domain` applies only to those. Operators a
/// rewrite *derived* (the fused `op_sr2[..]`/`op_ss[..]` families, which
/// the exact pass encounters on second-generation windows) work over
/// tuples — probing them with scalar fallback-domain samples would be
/// ill-typed, and their laws hold by construction when the sources' do,
/// so they are trusted here and re-checked by the certificate validator.
fn window_laws_hold(
    rule: rules::Rule,
    window: &[Stage],
    cfg: &LintConfig,
    source_ops: &std::collections::BTreeSet<String>,
) -> Option<bool> {
    let laws = rules::required_laws(rule, window)?;
    let mut domain = None;
    for law in &laws {
        for name in law.op_names() {
            let fallback = cfg.fallback_domain.filter(|_| source_ops.contains(name));
            let d = domain_of_builtin(name).or(fallback)?;
            match domain {
                None => domain = Some(d),
                Some(prev) if prev == d => {}
                Some(_) => return None, // mixed domains: cannot sample
            }
        }
    }
    let domain = domain?;
    let samples = crate::audit::samples_for_domain(domain, &cfg.audit);
    let rtol = match crate::audit::exactness_of(domain) {
        Exactness::Approximate => cfg.audit.tolerance,
        Exactness::Exact => 0.0,
    };
    Some(
        laws.iter()
            .all(|l| l.counterexample_with(&samples, rtol).is_none()),
    )
}

/// Replay an [`enabling::normalize`] log onto the per-stage origin map
/// (`origins[i]` = half-open range of *original* stage indices the
/// current stage `i` descends from), so findings on the normalized
/// program anchor — and caret — on the source text.
fn apply_norm_log(origins: &mut Vec<(usize, usize)>, log: &[Normalization]) {
    for n in log {
        match n {
            Normalization::MapFuse { at, .. } => {
                let (a, b) = (origins[*at], origins[*at + 1]);
                origins[*at] = (a.0.min(b.0), a.1.max(b.1));
                origins.remove(*at + 1);
            }
            Normalization::GatherScatterElim { at } => {
                origins.drain(*at..*at + 2);
            }
            Normalization::BcastMapCommute { at, .. } => {
                origins.swap(*at, *at + 1);
            }
        }
    }
}

/// COL012: the matched rewrite is a Local rule — its fused form keeps
/// only rank 0's value, so applying the suggestion changes the
/// pipeline's final distribution state from every-rank-meaningful to
/// rank-0-only. Legal exactly when nothing downstream consumes the other
/// ranks; the linter cannot see past the pipeline's end, so it warns.
fn dist_narrowing_diag(
    rule: rules::Rule,
    window_str: &str,
    stage: usize,
    len: usize,
    spans: Option<&[Span]>,
) -> Diagnostic {
    Diagnostic {
        code: "COL012",
        severity: Severity::Warning,
        message: format!(
            "distribution narrowing: fusing `{window_str}` via {rule} leaves the result on \
             rank 0 only, while the unfused pipeline ends with every rank holding its value — \
             safe only if downstream consumers read rank 0 exclusively"
        ),
        stage,
        len,
        span: window_span(spans, stage, len),
        suggestion: None,
    }
}

/// COL001 / COL003, exact: equality saturation ([`saturate_program`])
/// finds the cost-optimal program under this machine model, and every
/// step of the replayed optimal plan becomes one COL001 anchored on the
/// original stages it rewrites. Windows the plan leaves alone are then
/// swept in the engine's priority order: a matching rule there can only
/// regress cost (else extraction would have used it), yielding COL003.
fn fusion_pass(
    prog: &Program,
    spans: Option<&[Span]>,
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) {
    if prog.is_empty() {
        return;
    }
    // A window whose declared condition fails verification is not a
    // fusion opportunity; the operator pass reports the lie.
    let source_ops: std::collections::BTreeSet<String> = prog
        .stages()
        .iter()
        .filter_map(stage_op)
        .map(|op| op.name().to_string())
        .collect();
    let gate_cfg = cfg.clone();
    let gate_ops = source_ops.clone();
    let gate: LawGate = Arc::new(move |rule, window: &[Stage]| {
        window_laws_hold(rule, window, &gate_cfg, &gate_ops) != Some(false)
    });
    let sat = SaturateConfig::new(cfg.params, cfg.block).law_gate(gate);
    let plan = saturate_program(prog, &sat).result;

    // Replay the plan over the original program, tracking which original
    // stages each current stage descends from.
    let mut covered: Vec<(usize, usize)> = Vec::new();
    let mut origins: Vec<(usize, usize)> = (0..prog.len()).map(|i| (i, i + 1)).collect();
    let (mut current, log) = enabling::normalize(prog);
    apply_norm_log(&mut origins, &log);
    for step in &plan.steps {
        let at = step.at;
        let len = rules::window_len(step.rule);
        let stages = current.stages();
        let Some(rw) = rules::try_match(step.rule, &stages[at..]) else {
            break; // replay diverged (saturation fell back): keep the sweep below
        };
        let window_str: Vec<String> = stages[at..at + len].iter().map(|s| s.describe()).collect();
        let window_str = window_str.join(" ; ");
        let candidate = current.splice(at, len, rw.stages.clone());
        let saving = program_cost(&current, &cfg.params, cfg.block)
            - program_cost(&candidate, &cfg.params, cfg.block);
        let (o_start, o_end) = origins[at..at + len]
            .iter()
            .fold((usize::MAX, 0), |(s, e), &(os, oe)| (s.min(os), e.max(oe)));
        origins.splice(
            at..at + len,
            std::iter::repeat_n((o_start, o_end), rw.stages.len()),
        );
        let (normed, log) = enabling::normalize(&candidate);
        apply_norm_log(&mut origins, &log);
        current = normed;
        let o_len = (o_end - o_start).max(1);
        diags.push(Diagnostic {
            code: "COL001",
            severity: Severity::Warning,
            message: format!(
                "missed fusion: `{window_str}` matches {}, fusing saves {saving:.1} time units",
                step.rule
            ),
            stage: o_start,
            len: o_len,
            span: window_span(spans, o_start, o_len),
            suggestion: Some(current.to_string()),
        });
        if rw.rank0_only {
            diags.push(dist_narrowing_diag(
                step.rule,
                &window_str,
                o_start,
                o_len,
                spans,
            ));
        }
        covered.push((o_start, o_end));
    }

    // Sweep the windows the plan did not touch, in the engine's matching
    // order. With the plan empty, a match here is *proof* of a regression:
    // saturation explored every ordering and still kept the original.
    let stages = prog.stages();
    let exhaustive = plan.steps.is_empty();
    let mut at = 0;
    while at < prog.len() {
        let mut advanced = false;
        for rule in RULE_PRIORITY {
            let Some(rw) = rules::try_match(rule, &stages[at..]) else {
                continue;
            };
            if window_laws_hold(rule, &stages[at..], cfg, &source_ops) == Some(false) {
                continue;
            }
            let len = rules::window_len(rule);
            if covered.iter().any(|&(s, e)| at < e && at + len > s) {
                at += len;
                advanced = true;
                break;
            }
            let candidate = prog.splice(at, len, rw.stages.clone());
            let saving = program_cost(prog, &cfg.params, cfg.block)
                - program_cost(&candidate, &cfg.params, cfg.block);
            let window_str: Vec<String> =
                stages[at..at + len].iter().map(|s| s.describe()).collect();
            let window_str = window_str.join(" ; ");
            if saving > 0.0 {
                // Unreachable unless saturation hit its node budget and
                // fell back — keep the windowed report so nothing is lost.
                diags.push(Diagnostic {
                    code: "COL001",
                    severity: Severity::Warning,
                    message: format!(
                        "missed fusion: `{window_str}` matches {rule}, fusing saves {saving:.1} time units"
                    ),
                    stage: at,
                    len,
                    span: window_span(spans, at, len),
                    suggestion: Some(candidate.to_string()),
                });
                if rw.rank0_only {
                    diags.push(dist_narrowing_diag(rule, &window_str, at, len, spans));
                }
            } else {
                let verdict = if exhaustive {
                    "exhaustive search confirms no rule ordering improves this pipeline"
                } else {
                    "apply rules cost-guided, not exhaustively"
                };
                diags.push(Diagnostic {
                    code: "COL003",
                    severity: Severity::Warning,
                    message: format!(
                        "cost regression: `{window_str}` matches {rule} but fusing costs {:.1} extra time units on this machine — {verdict}",
                        -saving
                    ),
                    stage: at,
                    len,
                    span: window_span(spans, at, len),
                    suggestion: None,
                });
            }
            at += len;
            advanced = true;
            break;
        }
        if !advanced {
            at += 1;
        }
    }
}

/// COL002 / COL005 / COL006: audit every distinct operator used by the
/// pipeline against the other same-domain operators in it.
fn operator_pass(
    prog: &Program,
    spans: Option<&[Span]>,
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let stages = prog.stages();
    let mut seen = std::collections::HashSet::new();
    for (i, stage) in stages.iter().enumerate() {
        let Some(op) = stage_op(stage) else { continue };
        if !seen.insert(op.name().to_string()) {
            continue;
        }
        let Some(domain) = domain_of_builtin(op.name()).or(cfg.fallback_domain) else {
            continue;
        };
        let span = window_span(spans, i, 1);
        if domain == Domain::Float {
            diags.push(Diagnostic {
                code: "COL006",
                severity: Severity::Note,
                message: format!(
                    "`{}` is floating-point: its laws hold only up to relative tolerance {:e} (tolerance-approximate, not exact)",
                    op.name(),
                    cfg.audit.tolerance
                ),
                stage: i,
                len: 1,
                span,
                suggestion: None,
            });
        }
        // Peers: the other distinct same-domain operators in the pipeline.
        let mut peer_seen = std::collections::HashSet::new();
        let peers: Vec<BinOp> = stages
            .iter()
            .filter_map(stage_op)
            .filter(|p| {
                domain_of_builtin(p.name()).or(cfg.fallback_domain) == Some(domain)
                    && peer_seen.insert(p.name().to_string())
            })
            .cloned()
            .collect();
        let audit = audit_operator(op, domain, &peers, &cfg.audit);
        for claim in &audit.over_claims {
            diags.push(Diagnostic {
                code: "COL002",
                severity: Severity::Error,
                message: format!(
                    "unsound declaration: `{}` declares {} but it fails — {}",
                    claim.op, claim.law, claim.counterexample
                ),
                stage: i,
                len: 1,
                span,
                suggestion: Some(format!(
                    "remove the false property declaration from `{}`",
                    claim.op
                )),
            });
        }
        for claim in &audit.under_claims {
            diags.push(Diagnostic {
                code: "COL005",
                severity: Severity::Note,
                message: format!(
                    "under-declared property: {} holds on the audit domain but `{}` does not declare it; declaring `{}` could enable more fusions",
                    claim.law, claim.op, claim.declaration
                ),
                stage: i,
                len: 1,
                span,
                suggestion: None,
            });
        }
    }
}

/// COL004: collective compositions that move data for no effect.
fn redundancy_pass(prog: &Program, spans: Option<&[Span]>, diags: &mut Vec<Diagnostic>) {
    let stages = prog.stages();
    for i in 0..stages.len().saturating_sub(1) {
        let (message, at, len) = match (&stages[i], &stages[i + 1]) {
            (Stage::Bcast, Stage::Bcast) => (
                "redundant collective: bcast after bcast re-sends already-replicated data".to_string(),
                i + 1,
                1,
            ),
            (Stage::AllReduce(_), Stage::Bcast) | (Stage::AllGather, Stage::Bcast) => (
                "redundant collective: bcast after an all-variant collective (every rank already holds the value)"
                    .to_string(),
                i + 1,
                1,
            ),
            (Stage::Gather, Stage::Scatter) => (
                "redundant collective: gather immediately followed by scatter is the identity data movement"
                    .to_string(),
                i,
                2,
            ),
            _ => continue,
        };
        diags.push(Diagnostic {
            code: "COL004",
            severity: Severity::Warning,
            message,
            stage: at,
            len,
            span: window_span(spans, at, len),
            suggestion: Some("delete the redundant stage(s)".to_string()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collopt_core::op::lib;
    use collopt_core::value::Value;

    fn cfg() -> LintConfig {
        LintConfig::default()
    }

    #[test]
    fn missed_fusion_is_reported_with_span_and_suggestion() {
        let src = "map f ; scan(mul) ; reduce(add) ; bcast";
        let report = lint_source(src, &cfg()).unwrap();
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "COL001")
            .expect("scan(mul);reduce(add) is a missed SR2 fusion");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!((d.stage, d.len), (1, 2));
        assert_eq!(d.span.unwrap().slice(src), "scan(mul) ; reduce(add)");
        assert!(d.suggestion.is_some());
        assert!(d.message.contains("SR2-Reduction"));
    }

    #[test]
    fn unprofitable_fusion_is_a_cost_regression() {
        // SS-Scan pays off iff ts > m(tw+4): at m=200, 200 < 200*6.
        let mut c = cfg();
        c.block = 200.0;
        let report = lint_source("scan(add) ; scan(add)", &c).unwrap();
        assert_eq!(report.warnings(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, "COL003");
        assert!(d.message.contains("cost regression"), "{}", d.message);
        // With an empty optimal plan the verdict is exact, not windowed.
        assert!(
            d.message.contains("exhaustive search confirms"),
            "{}",
            d.message
        );
    }

    #[test]
    fn exact_analysis_reports_the_optimal_plan_not_the_greedy_window() {
        // The greedy window walk would fuse scan;scan first (SS-Scan at
        // stage 0); the exact pass reports the globally optimal plan,
        // which keeps the first scan and fuses scan;reduce instead.
        let src = "scan(add) ; scan(add) ; reduce(add)";
        let mut c = cfg();
        c.params = MachineParams::new(64, 100.0, 2.0);
        c.block = 8.0;
        let report = lint_source(src, &c).unwrap();
        let fusions: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "COL001")
            .collect();
        assert_eq!(fusions.len(), 1, "{:#?}", report.diagnostics);
        let d = fusions[0];
        assert!(d.message.contains("SR-Reduction"), "{}", d.message);
        assert_eq!((d.stage, d.len), (1, 2));
        assert_eq!(d.span.unwrap().slice(src), "scan(add) ; reduce(add)");
        // The plan-covered region is not double-reported by the sweep.
        assert!(report.diagnostics.iter().all(|d| d.code != "COL003"));
    }

    #[test]
    fn plan_anchors_survive_normalization() {
        // bcast ; map f ; scan — the plan fires after bcast/map commute;
        // the COL001 must still anchor on the original bcast..scan text.
        let src = "bcast ; map f ; scan(add)";
        let mut c = cfg();
        c.params = MachineParams::new(64, 1000.0, 2.0);
        c.block = 4.0;
        let report = lint_source(src, &c).unwrap();
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "COL001")
            .expect("bcast;scan fuses via BS-Comcast after commuting");
        assert!(d.message.contains("BS-Comcast"), "{}", d.message);
        assert_eq!(d.stage, 0);
        assert!(d.stage + d.len >= 3, "{:#?}", d);
        assert_eq!(d.span.unwrap().slice(src), src);
    }

    #[test]
    fn redundant_collectives_are_flagged() {
        let report = lint_source("allreduce(add) ; bcast", &cfg()).unwrap();
        assert!(report.diagnostics.iter().any(|d| d.code == "COL004"));
        let report = lint_source("gather ; scatter", &cfg()).unwrap();
        assert!(report.diagnostics.iter().any(|d| d.code == "COL004"));
        let report = lint_source("bcast ; bcast", &cfg()).unwrap();
        assert!(report.diagnostics.iter().any(|d| d.code == "COL004"));
    }

    #[test]
    fn lying_operator_yields_col002_error() {
        let lying = BinOp::new("sub", |a, b| Value::Int(a.as_int() - b.as_int())).commutative();
        let prog = Program::new().scan(lying.clone()).reduce(lying);
        let mut c = cfg();
        c.fallback_domain = Some(Domain::Int);
        let report = lint_program(&prog, None, &c);
        assert!(report.errors() >= 1);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "COL002")
            .unwrap();
        assert!(d.message.contains("unsound declaration"), "{}", d.message);
        // And no fusion is suggested on the strength of the lie.
        assert!(report.diagnostics.iter().all(|d| d.code != "COL001"));
    }

    #[test]
    fn float_ops_get_tolerance_note() {
        let report = lint_source("scan(fmul) ; reduce(fadd)", &cfg()).unwrap();
        assert!(report.diagnostics.iter().any(|d| d.code == "COL006"));
    }

    #[test]
    fn under_declaration_yields_note() {
        // add distributes over max on the audit domain, but lib::add()
        // does not declare it (only the tropical variant does).
        let report = lint_source("scan(add) ; reduce(max)", &cfg()).unwrap();
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "COL005" && d.message.contains("add distributes over max")),
            "{:#?}",
            report.diagnostics
        );
    }

    #[test]
    fn clean_pipeline_is_clean() {
        let report = lint_source("map f ; reduce(add) ; map g", &cfg()).unwrap();
        assert_eq!(
            report.errors() + report.warnings(),
            0,
            "{:#?}",
            report.diagnostics
        );
    }

    #[test]
    fn json_is_stable_and_parses_back() {
        let report = lint_source("scan(mul) ; reduce(add)", &cfg()).unwrap();
        let a = report.render_json();
        let b = lint_source("scan(mul) ; reduce(add)", &cfg())
            .unwrap()
            .render_json();
        assert_eq!(a, b);
        Json::parse(&a).expect("renderer emits valid JSON");
    }

    #[test]
    fn human_render_includes_carets_and_summary() {
        let src = "scan(mul) ; reduce(add)";
        let out = lint_source(src, &cfg()).unwrap().render_human(Some(src));
        assert!(out.contains("warning[COL001]"));
        assert!(out.contains("^^^"));
        assert!(out.contains("summary:"));
    }

    #[test]
    fn report_without_spans_anchors_on_stages() {
        let prog = Program::new().scan(lib::mul()).reduce(lib::add());
        let out = lint_program(&prog, None, &cfg()).render_human(None);
        assert!(out.contains("--> stages 0..2"), "{out}");
    }
}
