//! The auditor over the built-in operator table (satellite audit).
//!
//! Every operator the parser can name is audited against its declarations,
//! with distributivity probed against every same-domain peer. The verdict
//! is pinned:
//!
//! * **zero over-claims** — no built-in declares a law it does not have.
//!   This is the soundness bar: an over-claim here means the engine
//!   mis-optimizes real pipelines.
//! * the surviving under-claims are **exactly** the documented benign set.
//!   The audit run that produced this list also found the `(max, min)`
//!   lattice distributivity genuinely missing — that one is now declared
//!   in `collopt_core::op::lib` (and exercised by the rule × operator
//!   matrix); what remains is intentionally undeclared:
//!
//!   - *self-distributivity of idempotent operators* (`max`, `min`,
//!     `gcd`, `and`, `or`, `maxloc`, `minloc` over themselves): true, but
//!     declaring it enables no new fusion — every same-operator window
//!     already fuses via the commutative rule variants, which are cheaper
//!     to certify.
//!   - *`add` over `max`/`min`*: true on the bounded audit domain but
//!     unsound at the edges of machine arithmetic (`wrapping_add` breaks
//!     monotonicity at overflow). The tropical semiring operator
//!     (`maxplus` in the parser) carries these declarations as the
//!     explicit opt-in.

use collopt_analysis::{audit_builtin_table, AuditConfig, Exactness};

#[test]
fn builtin_table_has_no_over_claims() {
    for audit in audit_builtin_table(&AuditConfig::default()) {
        assert!(
            audit.is_sound(),
            "{} over-claims: {:#?}",
            audit.op,
            audit.over_claims
        );
        assert!(
            !audit.verified.is_empty(),
            "{}: nothing verified — audit ran vacuously",
            audit.op
        );
    }
}

#[test]
fn remaining_under_claims_are_exactly_the_documented_benign_set() {
    let mut found: Vec<String> = audit_builtin_table(&AuditConfig::default())
        .iter()
        .flat_map(|a| a.under_claims.iter().map(|u| u.law.clone()))
        .collect();
    found.sort();
    found.dedup();
    let expected = [
        "add distributes over max",
        "add distributes over min",
        "and distributes over and",
        "gcd distributes over gcd",
        "max distributes over max",
        "maxloc distributes over maxloc",
        "min distributes over min",
        "minloc distributes over minloc",
        "or distributes over or",
    ];
    assert_eq!(found, expected, "under-claim set drifted — re-triage");
}

#[test]
fn lattice_distributivity_is_now_declared_and_verifies() {
    // The fix the audit motivated: max/min mutually distribute, and the
    // declarations verify (they show up as `verified`, not under-claims).
    let audits = audit_builtin_table(&AuditConfig::default());
    for (op, peer) in [("max", "min"), ("min", "max")] {
        let audit = audits.iter().find(|a| a.op == op).unwrap();
        let law = format!("{op} distributes over {peer}");
        assert!(audit.verified.contains(&law), "{op}: {:?}", audit.verified);
    }
}

#[test]
fn float_operators_audit_approximately() {
    for audit in audit_builtin_table(&AuditConfig::default()) {
        let expect = if audit.op.starts_with('f') {
            Exactness::Approximate
        } else {
            Exactness::Exact
        };
        assert_eq!(audit.exactness, expect, "{}", audit.op);
    }
}
