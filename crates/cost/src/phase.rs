//! Affine per-phase cost expressions.
//!
//! Every entry of the paper's Table 1 has the shape
//! `(α·ts + β·m·tw + γ·m) · log p`. [`PhaseCost`] captures the
//! parenthesized part symbolically, so costs can be added (sequential
//! composition of collectives), compared, evaluated, and solved for
//! crossover points exactly.

use crate::params::MachineParams;

/// A per-`log p` cost `α·ts + β·m·tw + γ·m`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseCost {
    /// Coefficient of `ts` — number of message start-ups per phase.
    pub ts: f64,
    /// Coefficient of `m·tw` — words on the wire per block word per phase.
    pub mtw: f64,
    /// Coefficient of `m` — computation operations per block word per phase.
    pub m: f64,
}

impl PhaseCost {
    /// `α·ts + β·m·tw + γ·m`.
    pub const fn new(ts: f64, mtw: f64, m: f64) -> Self {
        PhaseCost { ts, mtw, m }
    }

    /// The zero cost.
    pub const fn zero() -> Self {
        PhaseCost {
            ts: 0.0,
            mtw: 0.0,
            m: 0.0,
        }
    }

    /// Evaluate for one phase at block size `m`.
    pub fn eval_phase(&self, params: &MachineParams, m: f64) -> f64 {
        self.ts * params.ts + self.mtw * m * params.tw + self.m * m
    }

    /// Full estimate: `log p` phases at block size `m`.
    pub fn eval(&self, params: &MachineParams, m: f64) -> f64 {
        params.log_p() * self.eval_phase(params, m)
    }

    /// Symbolic difference `self − other` (still a [`PhaseCost`]).
    pub fn minus(&self, other: &PhaseCost) -> PhaseCost {
        PhaseCost {
            ts: self.ts - other.ts,
            mtw: self.mtw - other.mtw,
            m: self.m - other.m,
        }
    }

    /// Does this cost dominate `other` for *every* machine and block size
    /// (all coefficients ≥, at least one >)? This is the paper's "always"
    /// column: the rule improves independently of the machine parameters.
    pub fn always_exceeds(&self, other: &PhaseCost) -> bool {
        let d = self.minus(other);
        d.ts >= 0.0 && d.mtw >= 0.0 && d.m >= 0.0 && (d.ts > 0.0 || d.mtw > 0.0 || d.m > 0.0)
    }

    /// Render as the paper writes it, e.g. `2ts + m*(2tw + 3)`.
    pub fn render(&self) -> String {
        let fmt_c = |c: f64| {
            if (c - c.round()).abs() < 1e-12 {
                format!("{}", c.round() as i64)
            } else {
                format!("{c}")
            }
        };
        let mut parts: Vec<String> = Vec::new();
        if self.ts != 0.0 {
            parts.push(if self.ts == 1.0 {
                "ts".into()
            } else {
                format!("{}ts", fmt_c(self.ts))
            });
        }
        match (self.mtw != 0.0, self.m != 0.0) {
            (true, true) => {
                let twc = if self.mtw == 1.0 {
                    "tw".into()
                } else {
                    format!("{}tw", fmt_c(self.mtw))
                };
                parts.push(format!("m*({twc} + {})", fmt_c(self.m)));
            }
            (true, false) => {
                let twc = if self.mtw == 1.0 {
                    "tw".into()
                } else {
                    format!("{}tw", fmt_c(self.mtw))
                };
                parts.push(format!("m*{twc}"));
            }
            (false, true) => {
                parts.push(if self.m == 1.0 {
                    "m".into()
                } else {
                    format!("{}m", fmt_c(self.m))
                });
            }
            (false, false) => {}
        }
        if parts.is_empty() {
            "0".into()
        } else {
            parts.join(" + ")
        }
    }
}

impl std::ops::Add for PhaseCost {
    type Output = PhaseCost;
    fn add(self, rhs: PhaseCost) -> PhaseCost {
        PhaseCost {
            ts: self.ts + rhs.ts,
            mtw: self.mtw + rhs.mtw,
            m: self.m + rhs.m,
        }
    }
}

impl std::ops::Mul<f64> for PhaseCost {
    type Output = PhaseCost;
    fn mul(self, k: f64) -> PhaseCost {
        PhaseCost {
            ts: self.ts * k,
            mtw: self.mtw * k,
            m: self.m * k,
        }
    }
}

impl std::iter::Sum for PhaseCost {
    fn sum<I: Iterator<Item = PhaseCost>>(iter: I) -> PhaseCost {
        iter.fold(PhaseCost::zero(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_hand_computation() {
        // 2ts + m(2tw + 3) at ts=100, tw=2, m=10, p=8 (log p = 3):
        // 3 * (200 + 10*2*2 + 3*10) = 3 * 270 = 810.
        let c = PhaseCost::new(2.0, 2.0, 3.0);
        let params = MachineParams::new(8, 100.0, 2.0);
        assert_eq!(c.eval(&params, 10.0), 810.0);
    }

    #[test]
    fn addition_composes_sequential_stages() {
        let bcast = PhaseCost::new(1.0, 1.0, 0.0);
        let scan = PhaseCost::new(1.0, 1.0, 2.0);
        let both = bcast + scan;
        assert_eq!(both, PhaseCost::new(2.0, 2.0, 2.0));
    }

    #[test]
    fn always_exceeds_is_coefficientwise() {
        let before = PhaseCost::new(2.0, 2.0, 3.0);
        let after = PhaseCost::new(1.0, 2.0, 3.0);
        assert!(before.always_exceeds(&after)); // saves one ts per phase
        let worse_compute = PhaseCost::new(1.0, 2.0, 4.0);
        assert!(!before.always_exceeds(&worse_compute)); // trade-off: depends on params
        assert!(!before.always_exceeds(&before)); // no strict saving
    }

    #[test]
    fn render_matches_paper_style() {
        assert_eq!(PhaseCost::new(2.0, 2.0, 3.0).render(), "2ts + m*(2tw + 3)");
        assert_eq!(PhaseCost::new(1.0, 1.0, 0.0).render(), "ts + m*tw");
        assert_eq!(PhaseCost::new(0.0, 0.0, 1.0).render(), "m");
        assert_eq!(PhaseCost::new(0.0, 0.0, 3.0).render(), "3m");
        assert_eq!(PhaseCost::zero().render(), "0");
    }

    #[test]
    fn sum_over_iterator() {
        let total: PhaseCost = vec![PhaseCost::new(1.0, 0.0, 0.0); 3].into_iter().sum();
        assert_eq!(total.ts, 3.0);
    }

    #[test]
    fn scaling_by_constant() {
        let c = PhaseCost::new(1.0, 2.0, 3.0) * 2.0;
        assert_eq!(c, PhaseCost::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn single_processor_costs_nothing() {
        let c = PhaseCost::new(5.0, 5.0, 5.0);
        let params = MachineParams::new(1, 100.0, 2.0);
        assert_eq!(c.eval(&params, 1000.0), 0.0);
    }
}
