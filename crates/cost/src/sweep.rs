//! Parameter sweeps and recommendation reports over the rule set.
//!
//! Table 1 answers "does rule R help on machine M at block size m?" one
//! rule at a time; this module aggregates: crossover tables (at which
//! block size does each conditional rule stop paying off on a given
//! machine?), full recommendation reports for a design point, and the
//! profitable-region boundary in the `(ts/tw, m)` plane that the paper's
//! Section 4 discusses qualitatively.

use crate::collectives::{
    allreduce_butterfly_cost, allreduce_rabenseifner_cost, allreduce_ring_cost,
};
use crate::params::MachineParams;
use crate::table1::Rule;

/// One rule's entry in a crossover table.
#[derive(Debug, Clone)]
pub struct CrossoverRow {
    /// The rule.
    pub rule: Rule,
    /// The paper's condition string.
    pub condition: &'static str,
    /// Block size above which the rule stops improving, `None` for the
    /// "always" rules (profitable at every block size).
    pub crossover_m: Option<f64>,
}

/// Crossover table for a machine's `ts`/`tw`.
pub fn crossover_table(ts: f64, tw: f64) -> Vec<CrossoverRow> {
    Rule::ALL
        .iter()
        .map(|&rule| CrossoverRow {
            rule,
            condition: rule.condition_str(),
            crossover_m: rule.estimate().crossover_m(ts, tw),
        })
        .collect()
}

/// One rule's entry in a recommendation report.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The rule.
    pub rule: Rule,
    /// Does it improve at this design point?
    pub improves: bool,
    /// Predicted saving in time units (negative = slowdown).
    pub saving: f64,
    /// Saving as a fraction of the original term's cost.
    pub saving_fraction: f64,
}

/// Full per-rule report for a design point `(machine, block size)`.
pub fn recommend(params: &MachineParams, m: f64) -> Vec<Recommendation> {
    Rule::ALL
        .iter()
        .map(|&rule| {
            let est = rule.estimate();
            let before = est.before.eval(params, m);
            let saving = est.saving(params, m);
            Recommendation {
                rule,
                improves: saving > 0.0,
                saving,
                saving_fraction: if before > 0.0 { saving / before } else { 0.0 },
            }
        })
        .collect()
}

/// For a conditional rule, the boundary `ts*(m)` of its profitable region
/// at fixed `tw`, sampled over the given block sizes — the data for a
/// region plot in the `(m, ts)` plane.
pub fn profit_boundary(rule: Rule, tw: f64, blocks: &[f64]) -> Vec<(f64, Option<f64>)> {
    let est = rule.estimate();
    blocks
        .iter()
        .map(|&m| (m, est.crossover_ts(tw, m)))
        .collect()
}

/// Block size above which Rabenseifner's reduce-scatter + allgather
/// allreduce beats the butterfly on a power-of-two machine, solving
/// `log p (ts + m(tw+c)) = 2 log p·ts + m(1−1/p)(2tw+c)`:
///
/// `m* = log p·ts / (log p (tw+c) − (1−1/p)(2tw+c))`
///
/// `None` when the denominator is non-positive (only possible at
/// `p ≤ 4` with `log p (tw+c) ≤ (1−1/p)(2tw+c)`): the butterfly then
/// wins at every block size.
pub fn allreduce_crossover_m(params: &MachineParams, ops: f64) -> Option<f64> {
    let logp = params.log_p();
    if logp == 0.0 {
        return None;
    }
    let frac = 1.0 - 1.0 / params.p as f64;
    let denom = logp * (params.tw + ops) - frac * (2.0 * params.tw + ops);
    (denom > 0.0).then(|| logp * params.ts / denom)
}

/// One fused-rule RHS costed under one allreduce algorithm.
#[derive(Debug, Clone)]
pub struct FusedRhsVariant {
    /// The Table-1 rule whose right-hand side this is.
    pub rule: Rule,
    /// Algorithm executing the RHS reduction.
    pub algorithm: &'static str,
    /// Predicted makespan at the queried block size.
    pub cost: f64,
}

/// Table-1 variants: the reduction-valued right-hand sides of the fused
/// rules (SR2-AllReduction's `allreduce(op_sr2)`, SR-Reduction's
/// balanced reduction) costed under each member of the reduction family.
/// Table 1 itself assumes the butterfly — the `"butterfly"` rows
/// reproduce `rule.estimate().after` exactly — while the
/// `"reduce_scatter"` rows show what the fused RHS costs when executed
/// as halving/doubling (what the adaptive executor actually runs for
/// large blocks) and `"ring"` the fully bandwidth-optimal variant.
///
/// Both fused operators put `wf = 2` words on the wire per block word
/// (`op_sr2`'s pairs, `op_sr`'s `(t, u)` tuples) and charge 3 resp. 4
/// operations per block word; the family formulas take wire words, so
/// block size `m` maps to `2m` wire words at `c/2` operations each.
pub fn fused_rhs_allreduce_variants(params: &MachineParams, m: f64) -> Vec<FusedRhsVariant> {
    let mut out = Vec::new();
    for (rule, wf, ops) in [
        (Rule::Sr2Reduction, 2.0, 3.0),
        (Rule::SrReduction, 2.0, 4.0),
    ] {
        let wire_m = wf * m;
        let wire_ops = ops / wf;
        for (algorithm, cost) in [
            (
                "butterfly",
                allreduce_butterfly_cost(params, wire_m, wire_ops),
            ),
            (
                "reduce_scatter",
                allreduce_rabenseifner_cost(params, wire_m, wire_ops),
            ),
            ("ring", allreduce_ring_cost(params, wire_m, wire_ops)),
        ] {
            out.push(FusedRhsVariant {
                rule,
                algorithm,
                cost,
            });
        }
    }
    out
}

/// Render the fused-RHS variant table over a set of block sizes.
pub fn render_allreduce_variants(params: &MachineParams, blocks: &[f64]) -> String {
    let mut out = format!(
        "fused-rule RHS cost by allreduce algorithm (p = {}, ts = {}, tw = {})\n{:<16} {:<16}",
        params.p, params.ts, params.tw, "rule", "algorithm"
    );
    for m in blocks {
        out.push_str(&format!(" {:>12}", format!("m={m}")));
    }
    out.push('\n');
    let per_m: Vec<Vec<FusedRhsVariant>> = blocks
        .iter()
        .map(|&m| fused_rhs_allreduce_variants(params, m))
        .collect();
    for (i, first) in per_m[0].iter().enumerate() {
        out.push_str(&format!(
            "{:<16} {:<16}",
            first.rule.name(),
            first.algorithm
        ));
        for row in &per_m {
            out.push_str(&format!(" {:>12.0}", row[i].cost));
        }
        out.push('\n');
    }
    out
}

/// Render the crossover table as aligned text (for the `gen_crossovers`
/// binary and EXPERIMENTS.md).
pub fn render_crossovers(ts: f64, tw: f64) -> String {
    let mut out = format!("crossover block sizes m* at ts = {ts}, tw = {tw}\n");
    out.push_str(&format!(
        "{:<14} {:<20} {}\n",
        "rule", "condition", "profitable for"
    ));
    for row in crossover_table(ts, tw) {
        let range = match row.crossover_m {
            None => "all m".to_string(),
            Some(m) => format!("m < {m:.1}"),
        };
        out.push_str(&format!(
            "{:<14} {:<20} {}\n",
            row.rule.name(),
            row.condition,
            range
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_rules_have_no_crossover() {
        // "always" ⟹ no crossover at any machine. (The converse is
        // false: a conditional rule whose condition happens to hold for
        // all m at this ts/tw — e.g. BSS2 whenever tw > 1/2 — also has
        // none.)
        for row in crossover_table(200.0, 2.0) {
            if row.condition == "always" {
                assert!(row.crossover_m.is_none(), "{}", row.rule.name());
            }
        }
        // At a low-tw machine the conditional comcast rules do cross.
        let low = crossover_table(100.0, 0.1);
        assert!(low
            .iter()
            .find(|r| r.rule == Rule::BssComcast)
            .unwrap()
            .crossover_m
            .is_some());
        assert!(low
            .iter()
            .find(|r| r.rule == Rule::Bss2Comcast)
            .unwrap()
            .crossover_m
            .is_some());
    }

    #[test]
    fn crossovers_match_paper_conditions() {
        let table = crossover_table(200.0, 2.0);
        let get = |r: Rule| {
            table
                .iter()
                .find(|row| row.rule == r)
                .unwrap()
                .crossover_m
                .unwrap()
        };
        // SR: ts > m → m* = ts.
        assert_eq!(get(Rule::SrReduction), 200.0);
        // SS2: ts > 2m → m* = ts/2.
        assert_eq!(get(Rule::Ss2Scan), 100.0);
        // SS: ts > m(tw+4) → m* = ts/(tw+4).
        assert!((get(Rule::SsScan) - 200.0 / 6.0).abs() < 1e-9);
        // BSS2: tw + ts/m > 1/2; tw = 2 > 1/2 already → profitable for
        // all m: the difference never changes sign, so no crossover.
        assert!(table
            .iter()
            .find(|row| row.rule == Rule::Bss2Comcast)
            .unwrap()
            .crossover_m
            .is_none());
    }

    #[test]
    fn bss_rules_cross_only_on_low_bandwidth_cost_machines() {
        // tw = 2 ≥ 2: BSS-Comcast profitable for every m (condition
        // tw + ts/m > 2 holds as ts/m > 0).
        let high_tw = crossover_table(200.0, 2.5);
        assert!(high_tw
            .iter()
            .find(|r| r.rule == Rule::BssComcast)
            .unwrap()
            .crossover_m
            .is_none());
        // tw = 0.5 < 2: crossover at ts/m = 1.5 → m* = ts/1.5.
        let low_tw = crossover_table(300.0, 0.5);
        let m_star = low_tw
            .iter()
            .find(|r| r.rule == Rule::BssComcast)
            .unwrap()
            .crossover_m
            .unwrap();
        assert!((m_star - 200.0).abs() < 1e-9);
    }

    #[test]
    fn recommendations_are_consistent_with_estimates() {
        let params = MachineParams::parsytec_like(64);
        for m in [1.0, 64.0, 100_000.0] {
            for rec in recommend(&params, m) {
                let est = rec.rule.estimate();
                assert_eq!(
                    rec.improves,
                    est.improves(&params, m),
                    "{}",
                    rec.rule.name()
                );
                assert!((rec.saving - est.saving(&params, m)).abs() < 1e-9);
                if rec.improves {
                    assert!(rec.saving_fraction > 0.0 && rec.saving_fraction < 1.0);
                }
            }
        }
    }

    #[test]
    fn saving_fraction_bounded_by_one() {
        // Even the Local rules cannot save more than the whole term.
        let params = MachineParams::new(64, 1e6, 10.0);
        for rec in recommend(&params, 1.0) {
            assert!(rec.saving_fraction <= 1.0, "{}", rec.rule.name());
        }
    }

    #[test]
    fn profit_boundary_is_monotone_for_sr() {
        // SR-Reduction: ts* = m (independent of tw): boundary linear in m.
        let b = profit_boundary(Rule::SrReduction, 3.0, &[1.0, 10.0, 100.0]);
        for (m, ts_star) in b {
            assert!((ts_star.unwrap() - m).abs() < 1e-9);
        }
    }

    #[test]
    fn render_lists_every_rule() {
        let s = render_crossovers(200.0, 2.0);
        for rule in Rule::ALL {
            assert!(s.contains(rule.name()));
        }
        assert!(s.contains("all m"));
        assert!(s.contains("m <"));
    }

    #[test]
    fn allreduce_crossover_separates_the_winners() {
        let params = MachineParams::parsytec_like(16);
        let m_star = allreduce_crossover_m(&params, 1.0).unwrap();
        // m* = 4·200 / (4·3 − (15/16)·5) = 800/7.3125 ≈ 109.4.
        assert!((m_star - 800.0 / 7.3125).abs() < 1e-9);
        // Just below: butterfly cheaper; just above: Rabenseifner.
        let lo = m_star * 0.99;
        let hi = m_star * 1.01;
        assert!(
            allreduce_butterfly_cost(&params, lo, 1.0)
                < allreduce_rabenseifner_cost(&params, lo, 1.0)
        );
        assert!(
            allreduce_rabenseifner_cost(&params, hi, 1.0)
                < allreduce_butterfly_cost(&params, hi, 1.0)
        );
        // p = 2: log p (tw+c) = 3 < (1/2)·5 = 2.5 is false — denominator
        // positive, crossover exists; p = 1 has nothing to cross.
        assert!(allreduce_crossover_m(&MachineParams::new(1, 200.0, 2.0), 1.0).is_none());
    }

    #[test]
    fn fused_rhs_butterfly_rows_reproduce_table1() {
        // The "butterfly" rows must equal the rules' own Table-1 RHS
        // estimates — same formula through two different code paths.
        let params = MachineParams::parsytec_like(64);
        for m in [1.0, 64.0, 4096.0] {
            for row in fused_rhs_allreduce_variants(&params, m) {
                if row.algorithm == "butterfly" {
                    let table1 = row.rule.estimate().after.eval(&params, m);
                    assert!(
                        (row.cost - table1).abs() < 1e-9,
                        "{} at m={m}: {} vs {}",
                        row.rule.name(),
                        row.cost,
                        table1
                    );
                }
            }
        }
    }

    #[test]
    fn fused_rhs_prefers_reduce_scatter_for_large_blocks() {
        let params = MachineParams::parsytec_like(16);
        let cost_of = |m: f64, alg: &str, rule: Rule| {
            fused_rhs_allreduce_variants(&params, m)
                .into_iter()
                .find(|r| r.rule == rule && r.algorithm == alg)
                .unwrap()
                .cost
        };
        for rule in [Rule::Sr2Reduction, Rule::SrReduction] {
            assert!(cost_of(4.0, "butterfly", rule) < cost_of(4.0, "reduce_scatter", rule));
            assert!(cost_of(8192.0, "reduce_scatter", rule) < cost_of(8192.0, "butterfly", rule));
        }
    }

    #[test]
    fn variant_render_mentions_every_algorithm() {
        let s = render_allreduce_variants(&MachineParams::parsytec_like(16), &[16.0, 1024.0]);
        for needle in ["butterfly", "reduce_scatter", "ring", "m=16", "m=1024"] {
            assert!(s.contains(needle), "missing {needle}:\n{s}");
        }
    }
}
