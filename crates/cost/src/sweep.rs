//! Parameter sweeps and recommendation reports over the rule set.
//!
//! Table 1 answers "does rule R help on machine M at block size m?" one
//! rule at a time; this module aggregates: crossover tables (at which
//! block size does each conditional rule stop paying off on a given
//! machine?), full recommendation reports for a design point, and the
//! profitable-region boundary in the `(ts/tw, m)` plane that the paper's
//! Section 4 discusses qualitatively.

use serde::{Deserialize, Serialize};

use crate::params::MachineParams;
use crate::table1::Rule;

/// One rule's entry in a crossover table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossoverRow {
    /// The rule.
    pub rule: Rule,
    /// The paper's condition string.
    pub condition: &'static str,
    /// Block size above which the rule stops improving, `None` for the
    /// "always" rules (profitable at every block size).
    pub crossover_m: Option<f64>,
}

/// Crossover table for a machine's `ts`/`tw`.
pub fn crossover_table(ts: f64, tw: f64) -> Vec<CrossoverRow> {
    Rule::ALL
        .iter()
        .map(|&rule| CrossoverRow {
            rule,
            condition: rule.condition_str(),
            crossover_m: rule.estimate().crossover_m(ts, tw),
        })
        .collect()
}

/// One rule's entry in a recommendation report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recommendation {
    /// The rule.
    pub rule: Rule,
    /// Does it improve at this design point?
    pub improves: bool,
    /// Predicted saving in time units (negative = slowdown).
    pub saving: f64,
    /// Saving as a fraction of the original term's cost.
    pub saving_fraction: f64,
}

/// Full per-rule report for a design point `(machine, block size)`.
pub fn recommend(params: &MachineParams, m: f64) -> Vec<Recommendation> {
    Rule::ALL
        .iter()
        .map(|&rule| {
            let est = rule.estimate();
            let before = est.before.eval(params, m);
            let saving = est.saving(params, m);
            Recommendation {
                rule,
                improves: saving > 0.0,
                saving,
                saving_fraction: if before > 0.0 { saving / before } else { 0.0 },
            }
        })
        .collect()
}

/// For a conditional rule, the boundary `ts*(m)` of its profitable region
/// at fixed `tw`, sampled over the given block sizes — the data for a
/// region plot in the `(m, ts)` plane.
pub fn profit_boundary(rule: Rule, tw: f64, blocks: &[f64]) -> Vec<(f64, Option<f64>)> {
    let est = rule.estimate();
    blocks
        .iter()
        .map(|&m| (m, est.crossover_ts(tw, m)))
        .collect()
}

/// Render the crossover table as aligned text (for the `gen_crossovers`
/// binary and EXPERIMENTS.md).
pub fn render_crossovers(ts: f64, tw: f64) -> String {
    let mut out = format!("crossover block sizes m* at ts = {ts}, tw = {tw}\n");
    out.push_str(&format!(
        "{:<14} {:<20} {}\n",
        "rule", "condition", "profitable for"
    ));
    for row in crossover_table(ts, tw) {
        let range = match row.crossover_m {
            None => "all m".to_string(),
            Some(m) => format!("m < {m:.1}"),
        };
        out.push_str(&format!(
            "{:<14} {:<20} {}\n",
            row.rule.name(),
            row.condition,
            range
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_rules_have_no_crossover() {
        // "always" ⟹ no crossover at any machine. (The converse is
        // false: a conditional rule whose condition happens to hold for
        // all m at this ts/tw — e.g. BSS2 whenever tw > 1/2 — also has
        // none.)
        for row in crossover_table(200.0, 2.0) {
            if row.condition == "always" {
                assert!(row.crossover_m.is_none(), "{}", row.rule.name());
            }
        }
        // At a low-tw machine the conditional comcast rules do cross.
        let low = crossover_table(100.0, 0.1);
        assert!(low
            .iter()
            .find(|r| r.rule == Rule::BssComcast)
            .unwrap()
            .crossover_m
            .is_some());
        assert!(low
            .iter()
            .find(|r| r.rule == Rule::Bss2Comcast)
            .unwrap()
            .crossover_m
            .is_some());
    }

    #[test]
    fn crossovers_match_paper_conditions() {
        let table = crossover_table(200.0, 2.0);
        let get = |r: Rule| {
            table
                .iter()
                .find(|row| row.rule == r)
                .unwrap()
                .crossover_m
                .unwrap()
        };
        // SR: ts > m → m* = ts.
        assert_eq!(get(Rule::SrReduction), 200.0);
        // SS2: ts > 2m → m* = ts/2.
        assert_eq!(get(Rule::Ss2Scan), 100.0);
        // SS: ts > m(tw+4) → m* = ts/(tw+4).
        assert!((get(Rule::SsScan) - 200.0 / 6.0).abs() < 1e-9);
        // BSS2: tw + ts/m > 1/2; tw = 2 > 1/2 already → profitable for
        // all m: the difference never changes sign, so no crossover.
        assert!(table
            .iter()
            .find(|row| row.rule == Rule::Bss2Comcast)
            .unwrap()
            .crossover_m
            .is_none());
    }

    #[test]
    fn bss_rules_cross_only_on_low_bandwidth_cost_machines() {
        // tw = 2 ≥ 2: BSS-Comcast profitable for every m (condition
        // tw + ts/m > 2 holds as ts/m > 0).
        let high_tw = crossover_table(200.0, 2.5);
        assert!(high_tw
            .iter()
            .find(|r| r.rule == Rule::BssComcast)
            .unwrap()
            .crossover_m
            .is_none());
        // tw = 0.5 < 2: crossover at ts/m = 1.5 → m* = ts/1.5.
        let low_tw = crossover_table(300.0, 0.5);
        let m_star = low_tw
            .iter()
            .find(|r| r.rule == Rule::BssComcast)
            .unwrap()
            .crossover_m
            .unwrap();
        assert!((m_star - 200.0).abs() < 1e-9);
    }

    #[test]
    fn recommendations_are_consistent_with_estimates() {
        let params = MachineParams::parsytec_like(64);
        for m in [1.0, 64.0, 100_000.0] {
            for rec in recommend(&params, m) {
                let est = rec.rule.estimate();
                assert_eq!(
                    rec.improves,
                    est.improves(&params, m),
                    "{}",
                    rec.rule.name()
                );
                assert!((rec.saving - est.saving(&params, m)).abs() < 1e-9);
                if rec.improves {
                    assert!(rec.saving_fraction > 0.0 && rec.saving_fraction < 1.0);
                }
            }
        }
    }

    #[test]
    fn saving_fraction_bounded_by_one() {
        // Even the Local rules cannot save more than the whole term.
        let params = MachineParams::new(64, 1e6, 10.0);
        for rec in recommend(&params, 1.0) {
            assert!(rec.saving_fraction <= 1.0, "{}", rec.rule.name());
        }
    }

    #[test]
    fn profit_boundary_is_monotone_for_sr() {
        // SR-Reduction: ts* = m (independent of tw): boundary linear in m.
        let b = profit_boundary(Rule::SrReduction, 3.0, &[1.0, 10.0, 100.0]);
        for (m, ts_star) in b {
            assert!((ts_star.unwrap() - m).abs() < 1e-9);
        }
    }

    #[test]
    fn render_lists_every_rule() {
        let s = render_crossovers(200.0, 2.0);
        for rule in Rule::ALL {
            assert!(s.contains(rule.name()));
        }
        assert!(s.contains("all m"));
        assert!(s.contains("m <"));
    }
}
