//! The paper's Table 1: per-rule performance estimates.
//!
//! For every optimization rule the table gives the cost of the program
//! term before the rule, the cost after, and the condition under which the
//! rule improves the target performance (both sides carry a `log p`
//! factor, omitted here as in the paper):
//!
//! | Rule          | before              | after             | improved if        |
//! |---------------|---------------------|-------------------|--------------------|
//! | SR2-Reduction | 2ts + m(2tw + 3)    | ts + m(2tw + 3)   | always             |
//! | SR-Reduction  | 2ts + m(2tw + 3)    | ts + m(2tw + 4)   | ts > m             |
//! | SS2-Scan      | 2ts + m(2tw + 4)    | ts + m(2tw + 6)   | ts > 2m            |
//! | SS-Scan       | 2ts + m(2tw + 4)    | ts + m(3tw + 8)   | ts > m(tw + 4)     |
//! | BS-Comcast    | 2ts + m(2tw + 2)    | ts + m(tw + 2)    | always             |
//! | BSS2-Comcast  | 3ts + m(3tw + 4)    | ts + m(tw + 5)    | tw + ts/m > 1/2    |
//! | BSS-Comcast   | 3ts + m(3tw + 4)    | ts + m(tw + 8)    | tw + ts/m > 2      |
//! | BR-Local      | 2ts + m(2tw + 1)    | m                 | always             |
//! | BSR2-Local    | 3ts + m(3tw + 3)    | 3m                | always             |
//! | BSR-Local     | 3ts + m(3tw + 3)    | 4m                | tw + ts/m ≥ 1/3    |
//!
//! The rows are not transcribed literally: each side is *assembled* from
//! the per-collective costs of [`crate::collectives`] (broadcast, scan,
//! reduction, balanced variants, comcast, local iteration with the fused
//! operators' operation counts), and the unit tests assert that the
//! assembly reproduces the paper's printed formulas coefficient by
//! coefficient. CR-Alllocal — stated in the paper's Section 3.5 but not
//! printed in its Table 1 — is included with costs derived the same way.

use crate::collectives as coll;
use crate::params::MachineParams;
use crate::phase::PhaseCost;

/// The optimization rules of Section 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `scan(⊗); reduce(⊕)` → `reduce(op_sr2)` (⊗ distributes over ⊕).
    Sr2Reduction,
    /// `scan(⊕); reduce(⊕)` → `reduce_balanced(op_sr)` (⊕ commutative).
    SrReduction,
    /// `scan(⊗); scan(⊕)` → `scan(op_sr2)` (⊗ distributes over ⊕).
    Ss2Scan,
    /// `scan(⊕); scan(⊕)` → `scan_balanced(op_ss)` (⊕ commutative).
    SsScan,
    /// `bcast; scan(⊕)` → comcast.
    BsComcast,
    /// `bcast; scan(⊗); scan(⊕)` → comcast (distributivity).
    Bss2Comcast,
    /// `bcast; scan(⊕); scan(⊕)` → comcast (commutativity).
    BssComcast,
    /// `bcast; reduce(⊕)` → local iteration.
    BrLocal,
    /// `bcast; scan(⊗); reduce(⊕)` → local iteration (distributivity).
    Bsr2Local,
    /// `bcast; scan(⊕); reduce(⊕)` → local iteration (commutativity).
    BsrLocal,
    /// `bcast; allreduce(⊕)` → local iteration followed by a broadcast
    /// (Section 3.5's allreduce remark; not a printed Table-1 row).
    CrAlllocal,
}

impl Rule {
    /// All rules, in the paper's Table-1 order (CR-Alllocal appended).
    pub const ALL: [Rule; 11] = [
        Rule::Sr2Reduction,
        Rule::SrReduction,
        Rule::Ss2Scan,
        Rule::SsScan,
        Rule::BsComcast,
        Rule::Bss2Comcast,
        Rule::BssComcast,
        Rule::BrLocal,
        Rule::Bsr2Local,
        Rule::BsrLocal,
        Rule::CrAlllocal,
    ];

    /// The rule's name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::Sr2Reduction => "SR2-Reduction",
            Rule::SrReduction => "SR-Reduction",
            Rule::Ss2Scan => "SS2-Scan",
            Rule::SsScan => "SS-Scan",
            Rule::BsComcast => "BS-Comcast",
            Rule::Bss2Comcast => "BSS2-Comcast",
            Rule::BssComcast => "BSS-Comcast",
            Rule::BrLocal => "BR-Local",
            Rule::Bsr2Local => "BSR2-Local",
            Rule::BsrLocal => "BSR-Local",
            Rule::CrAlllocal => "CR-Alllocal",
        }
    }

    /// The full estimate row for this rule.
    pub fn estimate(&self) -> RuleEstimate {
        // Operation counts of the fused operators (per block word):
        //   op_sr2 : 3 (s1 ⊕ (r1 ⊗ s2): 2, r1 ⊗ r2: 1), pair on the wire.
        //   op_sr  : 4 (t1⊕t2⊕u1: 2, uu: 1, uu⊕uu: 1), pair on the wire.
        //   op_ss  : 8 on the upper partner (§3.3: "twelve to eight");
        //            3 of 4 components on the wire per direction.
        //   BS  o  : 2 (t⊕u, u⊕u).
        //   BSS2 o : 5 (t⊕(s⊗u): 2, t⊕(t⊗u): 2, u⊗u: 1).
        //   BSS o  : 8 (s⊕t⊕v: 2, t⊕t⊕u: 2, uu + uu⊕uu: 2, uu⊕v⊕v: 2).
        //   op_br  : 1 (s⊕s).
        //   op_bsr2: 3 (s⊕(s⊗t): 2, t⊗t: 1).
        //   op_bsr : 4 (t⊕t⊕u: 2, uu: 1, uu⊕uu: 1).
        let (before, after) = match self {
            Rule::Sr2Reduction => (
                coll::scan(1.0, 1.0) + coll::reduce(1.0, 1.0),
                coll::reduce(3.0, 2.0),
            ),
            Rule::SrReduction => (
                coll::scan(1.0, 1.0) + coll::reduce(1.0, 1.0),
                coll::reduce_balanced(4.0, 2.0),
            ),
            Rule::Ss2Scan => (
                coll::scan(1.0, 1.0) + coll::scan(1.0, 1.0),
                coll::scan(3.0, 2.0),
            ),
            Rule::SsScan => (
                coll::scan(1.0, 1.0) + coll::scan(1.0, 1.0),
                coll::scan_balanced(8.0, 3.0),
            ),
            Rule::BsComcast => (
                coll::bcast() + coll::scan(1.0, 1.0),
                coll::comcast_bcast_repeat(2.0),
            ),
            Rule::Bss2Comcast => (
                coll::bcast() + coll::scan(1.0, 1.0) + coll::scan(1.0, 1.0),
                coll::comcast_bcast_repeat(5.0),
            ),
            Rule::BssComcast => (
                coll::bcast() + coll::scan(1.0, 1.0) + coll::scan(1.0, 1.0),
                coll::comcast_bcast_repeat(8.0),
            ),
            Rule::BrLocal => (
                coll::bcast() + coll::reduce(1.0, 1.0),
                coll::local_iter(1.0),
            ),
            Rule::Bsr2Local => (
                coll::bcast() + coll::scan(1.0, 1.0) + coll::reduce(1.0, 1.0),
                coll::local_iter(3.0),
            ),
            Rule::BsrLocal => (
                coll::bcast() + coll::scan(1.0, 1.0) + coll::reduce(1.0, 1.0),
                coll::local_iter(4.0),
            ),
            Rule::CrAlllocal => {
                // bcast; allreduce — allreduce costs as reduce (eq. 16) —
                // versus iter(op_br); bcast.
                (
                    coll::bcast() + coll::reduce(1.0, 1.0),
                    coll::local_iter(1.0) + coll::bcast(),
                )
            }
        };
        RuleEstimate {
            rule: *self,
            before,
            after,
        }
    }

    /// The paper's "improved if" column, verbatim.
    pub fn condition_str(&self) -> &'static str {
        match self {
            Rule::Sr2Reduction | Rule::BsComcast | Rule::BrLocal | Rule::Bsr2Local => "always",
            Rule::SrReduction => "ts > m",
            Rule::Ss2Scan => "ts > 2m",
            Rule::SsScan => "ts > m*(tw + 4)",
            Rule::Bss2Comcast => "tw + ts/m > 1/2",
            Rule::BssComcast => "tw + ts/m > 2",
            Rule::BsrLocal => "tw + ts/m >= 1/3",
            Rule::CrAlllocal => "always",
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of Table 1: the rule, and the per-phase costs of its two sides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleEstimate {
    /// Which rule.
    pub rule: Rule,
    /// Cost of the original term, per `log p` phase.
    pub before: PhaseCost,
    /// Cost of the optimized term, per `log p` phase.
    pub after: PhaseCost,
}

impl RuleEstimate {
    /// Predicted saving `T_before − T_after` (may be negative).
    pub fn saving(&self, params: &MachineParams, m: f64) -> f64 {
        self.before.eval(params, m) - self.after.eval(params, m)
    }

    /// Does the rule improve performance on this machine at block size `m`?
    /// (Strict improvement; the degenerate `p = 1` machine, where both
    /// sides cost zero, never "improves".)
    pub fn improves(&self, params: &MachineParams, m: f64) -> bool {
        self.saving(params, m) > 0.0
    }

    /// Is the rule an unconditional win (the "always" rows)?
    pub fn always_improves(&self) -> bool {
        self.before.always_exceeds(&self.after)
    }

    /// The block size `m*` at which the saving changes sign for the given
    /// `ts`/`tw`, i.e. the solution of `Δ(m) = 0` with
    /// `Δ = a·ts + (b·tw + c)·m`. Returns `None` when the saving never
    /// changes sign for positive `m` (always- or never-profitable rules).
    pub fn crossover_m(&self, ts: f64, tw: f64) -> Option<f64> {
        let d = self.before.minus(&self.after);
        let slope = d.mtw * tw + d.m;
        let intercept = d.ts * ts;
        if slope == 0.0 {
            return None;
        }
        let m = -intercept / slope;
        (m > 0.0).then_some(m)
    }

    /// The start-up time `ts*` at which the saving changes sign for the
    /// given `tw` and `m`.
    pub fn crossover_ts(&self, tw: f64, m: f64) -> Option<f64> {
        let d = self.before.minus(&self.after);
        if d.ts == 0.0 {
            return None;
        }
        let ts = -(d.mtw * tw + d.m) * m / d.ts;
        (ts > 0.0).then_some(ts)
    }
}

/// All Table-1 rows (plus CR-Alllocal), in the paper's order.
pub fn table1_rules() -> Vec<RuleEstimate> {
    Rule::ALL.iter().map(Rule::estimate).collect()
}

/// All Table-1 rows as a constant-friendly accessor.
pub static TABLE1_RULES: [Rule; 11] = Rule::ALL;

/// Renders the table in the paper's layout (name, before, after,
/// condition), for the `gen_table1` binary and EXPERIMENTS.md.
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<22} {:<20} {}\n",
        "Rule name", "(time before) x log p", "(time after) x log p", "Improved if"
    ));
    for rule in Rule::ALL {
        let est = rule.estimate();
        out.push_str(&format!(
            "{:<14} {:<22} {:<20} {}\n",
            rule.name(),
            est.before.render(),
            est.after.render(),
            rule.condition_str()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(rule: Rule) -> RuleEstimate {
        rule.estimate()
    }

    #[test]
    fn before_costs_match_paper_literals() {
        // Table 1, "time before" column.
        assert_eq!(
            row(Rule::Sr2Reduction).before,
            PhaseCost::new(2.0, 2.0, 3.0)
        );
        assert_eq!(row(Rule::SrReduction).before, PhaseCost::new(2.0, 2.0, 3.0));
        assert_eq!(row(Rule::Ss2Scan).before, PhaseCost::new(2.0, 2.0, 4.0));
        assert_eq!(row(Rule::SsScan).before, PhaseCost::new(2.0, 2.0, 4.0));
        assert_eq!(row(Rule::BsComcast).before, PhaseCost::new(2.0, 2.0, 2.0));
        assert_eq!(row(Rule::Bss2Comcast).before, PhaseCost::new(3.0, 3.0, 4.0));
        assert_eq!(row(Rule::BssComcast).before, PhaseCost::new(3.0, 3.0, 4.0));
        assert_eq!(row(Rule::BrLocal).before, PhaseCost::new(2.0, 2.0, 1.0));
        assert_eq!(row(Rule::Bsr2Local).before, PhaseCost::new(3.0, 3.0, 3.0));
        assert_eq!(row(Rule::BsrLocal).before, PhaseCost::new(3.0, 3.0, 3.0));
    }

    #[test]
    fn after_costs_match_paper_literals() {
        // Table 1, "time after" column.
        assert_eq!(row(Rule::Sr2Reduction).after, PhaseCost::new(1.0, 2.0, 3.0));
        assert_eq!(row(Rule::SrReduction).after, PhaseCost::new(1.0, 2.0, 4.0));
        assert_eq!(row(Rule::Ss2Scan).after, PhaseCost::new(1.0, 2.0, 6.0));
        assert_eq!(row(Rule::SsScan).after, PhaseCost::new(1.0, 3.0, 8.0));
        assert_eq!(row(Rule::BsComcast).after, PhaseCost::new(1.0, 1.0, 2.0));
        assert_eq!(row(Rule::Bss2Comcast).after, PhaseCost::new(1.0, 1.0, 5.0));
        assert_eq!(row(Rule::BssComcast).after, PhaseCost::new(1.0, 1.0, 8.0));
        assert_eq!(row(Rule::BrLocal).after, PhaseCost::new(0.0, 0.0, 1.0));
        assert_eq!(row(Rule::Bsr2Local).after, PhaseCost::new(0.0, 0.0, 3.0));
        assert_eq!(row(Rule::BsrLocal).after, PhaseCost::new(0.0, 0.0, 4.0));
    }

    #[test]
    fn always_rows_match_paper() {
        let always: Vec<Rule> = Rule::ALL
            .iter()
            .copied()
            .filter(|r| r.estimate().always_improves())
            .collect();
        assert_eq!(
            always,
            vec![
                Rule::Sr2Reduction,
                Rule::BsComcast,
                Rule::BrLocal,
                Rule::Bsr2Local,
                Rule::CrAlllocal
            ]
        );
    }

    #[test]
    fn sr_reduction_condition_is_ts_greater_m() {
        // Δ = ts − m: improves iff ts > m.
        let est = row(Rule::SrReduction);
        for (ts, m, want) in [(10.0, 5.0, true), (5.0, 10.0, false), (10.0, 10.0, false)] {
            let p = MachineParams::new(8, ts, 3.0);
            assert_eq!(est.improves(&p, m), want, "ts={ts} m={m}");
        }
    }

    #[test]
    fn ss2_scan_condition_is_ts_greater_2m() {
        let est = row(Rule::Ss2Scan);
        for (ts, m, want) in [(21.0, 10.0, true), (20.0, 10.0, false), (19.0, 10.0, false)] {
            let p = MachineParams::new(8, ts, 7.0);
            assert_eq!(est.improves(&p, m), want, "ts={ts} m={m}");
        }
        // Derivation of §4.2: crossover at m* = ts/2.
        assert_eq!(est.crossover_m(100.0, 5.0), Some(50.0));
    }

    #[test]
    fn ss_scan_condition_is_ts_greater_m_tw_plus_4() {
        let est = row(Rule::SsScan);
        let tw = 3.0;
        // ts > m(tw+4) = 7m.
        for (ts, m, want) in [(71.0, 10.0, true), (70.0, 10.0, false)] {
            let p = MachineParams::new(8, ts, tw);
            assert_eq!(est.improves(&p, m), want, "ts={ts} m={m}");
        }
    }

    #[test]
    fn bss2_comcast_condition() {
        // tw + ts/m > 1/2.
        let est = row(Rule::Bss2Comcast);
        let p = MachineParams::new(8, 1.0, 0.4);
        assert!(est.improves(&p, 5.0)); // 0.4 + 0.2 = 0.6 > 0.5
        assert!(!est.improves(&p, 20.0)); // 0.4 + 0.05 = 0.45 < 0.5
    }

    #[test]
    fn bss_comcast_condition() {
        // tw + ts/m > 2.
        let est = row(Rule::BssComcast);
        let p = MachineParams::new(8, 30.0, 1.0);
        assert!(est.improves(&p, 20.0)); // 1 + 1.5 = 2.5 > 2
        assert!(!est.improves(&p, 40.0)); // 1 + 0.75 < 2
    }

    #[test]
    fn bsr_local_condition() {
        // tw + ts/m > 1/3 (paper prints ≥; strict at the boundary the
        // saving is exactly zero, so `improves` is false there).
        let est = row(Rule::BsrLocal);
        let p = MachineParams::new(8, 2.0, 0.2);
        assert!(est.improves(&p, 10.0)); // 0.2 + 0.2 = 0.4 > 1/3
        assert!(!est.improves(&p, 60.0)); // 0.2 + 1/30 < 1/3
    }

    #[test]
    fn crossover_ts_inverts_improves() {
        for rule in Rule::ALL {
            let est = rule.estimate();
            let (tw, m) = (2.0, 16.0);
            if let Some(ts_star) = est.crossover_ts(tw, m) {
                let above = MachineParams::new(8, ts_star * 1.01, tw);
                let below = MachineParams::new(8, ts_star * 0.99, tw);
                assert_ne!(
                    est.improves(&above, m),
                    est.improves(&below, m),
                    "{rule}: sign must flip at ts* = {ts_star}"
                );
            }
        }
    }

    #[test]
    fn crossover_m_inverts_improves() {
        // SS-Scan at ts=100, tw=2: m* = 100/6.
        let est = row(Rule::SsScan);
        let m_star = est.crossover_m(100.0, 2.0).unwrap();
        assert!((m_star - 100.0 / 6.0).abs() < 1e-9);
        let p = MachineParams::new(8, 100.0, 2.0);
        assert!(est.improves(&p, m_star * 0.99));
        assert!(!est.improves(&p, m_star * 1.01));
    }

    #[test]
    fn always_rules_have_no_positive_crossover() {
        for rule in [
            Rule::Sr2Reduction,
            Rule::BsComcast,
            Rule::BrLocal,
            Rule::Bsr2Local,
        ] {
            let est = rule.estimate();
            // The saving is positive for all positive ts; crossing zero
            // would need a negative m.
            assert_eq!(est.crossover_m(100.0, 2.0), None, "{rule}");
        }
    }

    #[test]
    fn parsytec_preset_enables_every_rule_for_small_blocks() {
        // Latency-dominated machine, m = 1: all rules should fire —
        // the regime the paper targets.
        let p = MachineParams::parsytec_like(64);
        for rule in Rule::ALL {
            assert!(
                rule.estimate().improves(&p, 1.0),
                "{rule} should pay off at m=1"
            );
        }
    }

    #[test]
    fn large_blocks_disable_the_conditional_rules() {
        let p = MachineParams::parsytec_like(64); // ts=200, tw=2
        let m = 1e6;
        for rule in [Rule::SrReduction, Rule::Ss2Scan, Rule::SsScan] {
            assert!(
                !rule.estimate().improves(&p, m),
                "{rule} must not pay off at huge m"
            );
        }
        for rule in [
            Rule::Sr2Reduction,
            Rule::BsComcast,
            Rule::BrLocal,
            Rule::Bsr2Local,
        ] {
            assert!(rule.estimate().improves(&p, m), "{rule} is an always-rule");
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let s = render_table1();
        for rule in Rule::ALL {
            assert!(s.contains(rule.name()), "missing {rule}");
        }
        assert!(s.contains("2ts + m*(2tw + 3)"));
        assert!(s.contains("always"));
    }

    #[test]
    fn condition_strings_agree_with_always_classification() {
        for rule in Rule::ALL {
            let is_always = rule.condition_str() == "always";
            assert_eq!(rule.estimate().always_improves(), is_always, "{rule}");
        }
    }
}
