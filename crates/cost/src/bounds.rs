//! Round lower bounds for collective schedules.
//!
//! In the fully connected, one-ported model (each processor takes part in
//! at most one message transfer per communication round — the model the
//! paper's `ts`-per-phase accounting assumes), every collective is
//! subject to the classical *influence bound*: a value that must reflect
//! contributions from `k` processors needs at least `⌈log₂ k⌉` rounds,
//! because the set of processors whose data can have influenced any one
//! location at most doubles per round. Träff (arXiv 2410.14234) sharpens
//! this for reduce-scatter and allreduce — `⌈log₂ p⌉` rounds are both
//! necessary and (with the right, non-trivial schedules) sufficient, and
//! any algorithm achieving fewer rounds is impossible regardless of how
//! much bandwidth it spends.
//!
//! The static schedule verifier compares a lowering's measured
//! critical-path round count against [`min_rounds`]: exceeding it is not
//! a bug (ring and linear schedules trade rounds for bandwidth or
//! generality) but is *provably suboptimal* in start-ups, which the
//! linter surfaces as the note `COL010`.

/// The collective families the bound table covers. Deliberately distinct
/// from any richer registry enum so this crate stays dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    /// One root's value to all ranks.
    Bcast,
    /// All ranks' values combined to one root.
    Reduce,
    /// All ranks' values combined, result everywhere.
    AllReduce,
    /// Prefix combination, rank `i` sees ranks `0..=i`.
    Scan,
    /// Exclusive prefix combination.
    ExScan,
    /// All ranks' blocks concatenated at the root.
    Gather,
    /// The root's blocks distributed, one per rank.
    Scatter,
    /// All ranks' blocks concatenated everywhere.
    AllGather,
    /// All ranks' values combined, segment `i` at rank `i`.
    ReduceScatter,
    /// Personalized block from every rank to every rank.
    AllToAll,
    /// Pure synchronization.
    Barrier,
    /// The paper's comcast pattern (broadcast-class influence).
    Comcast,
}

/// `⌈log₂ p⌉` without floats; `0` for `p ≤ 1`.
pub fn ceil_log2(p: usize) -> u64 {
    if p <= 1 {
        0
    } else {
        u64::from(usize::BITS - (p - 1).leading_zeros())
    }
}

/// Minimum number of communication rounds any correct schedule for
/// `kind` on `p` processors needs in the one-ported model.
///
/// * `Bcast`/`Scatter`/`Comcast`: after `r` rounds at most `2^r` ranks
///   can have been influenced by the root — `⌈log₂ p⌉`.
/// * `Reduce`/`Gather`/`Barrier`: the mirror argument — the root (every
///   rank, for barrier) must be influenced by all `p` inputs.
/// * `AllReduce`/`ReduceScatter`/`AllGather`/`AllToAll`: every output
///   location depends on all `p` inputs; Träff 2410.14234 shows
///   `⌈log₂ p⌉` is tight for reduce-scatter and allreduce even with
///   unlimited bandwidth.
/// * `Scan`/`ExScan`: rank `p−1` (resp. the rank after it) depends on
///   all earlier inputs, giving the same `⌈log₂ p⌉`.
pub fn min_rounds(kind: BoundKind, p: usize) -> u64 {
    match kind {
        BoundKind::Bcast
        | BoundKind::Reduce
        | BoundKind::AllReduce
        | BoundKind::Scan
        | BoundKind::ExScan
        | BoundKind::Gather
        | BoundKind::Scatter
        | BoundKind::AllGather
        | BoundKind::ReduceScatter
        | BoundKind::AllToAll
        | BoundKind::Barrier
        | BoundKind::Comcast => ceil_log2(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_matches_the_float_formula() {
        for p in 1..=1025usize {
            let expected = if p <= 1 {
                0
            } else {
                (p as f64).log2().ceil() as u64
            };
            assert_eq!(ceil_log2(p), expected, "p = {p}");
        }
    }

    #[test]
    fn bounds_are_monotone_in_p() {
        for kind in [
            BoundKind::Bcast,
            BoundKind::AllReduce,
            BoundKind::ReduceScatter,
            BoundKind::Barrier,
        ] {
            let mut prev = 0;
            for p in 1..=128 {
                let b = min_rounds(kind, p);
                assert!(b >= prev);
                prev = b;
            }
        }
    }

    #[test]
    fn butterfly_round_counts_meet_the_bound_exactly_at_powers_of_two() {
        for log in 1..=7u32 {
            let p = 1usize << log;
            assert_eq!(min_rounds(BoundKind::AllReduce, p), u64::from(log));
        }
    }
}
