//! Exact analytic costs for the collectives whose makespan does *not*
//! factor into the `(per-phase) × log p` shape of [`crate::phase`]:
//! gather/scatter (doubling message sizes along the tree), ring
//! allgather, all-to-all, the pipelined chain broadcast and the van de
//! Geijn broadcast.
//!
//! Each formula here is validated against the simulated machine to
//! machine precision (or a stated tolerance) in the workspace's
//! integration tests — the same analytic-vs-measured discipline as
//! Table 1.

use crate::params::MachineParams;

/// Binomial gather/scatter of one `m`-word block per rank: `⌈log₂ p⌉`
/// start-ups on the critical path, and the root moves `(p−1)·m` words in
/// total (message sizes double/halve along the tree).
pub fn gather_cost(params: &MachineParams, m: f64) -> f64 {
    if params.p <= 1 {
        return 0.0;
    }
    params.log_p() * params.ts + (params.p - 1) as f64 * m * params.tw
}

/// See [`gather_cost`] — the scatter tree is its time reversal.
pub fn scatter_cost(params: &MachineParams, m: f64) -> f64 {
    gather_cost(params, m)
}

/// Gather followed by a broadcast of the assembled `p·m`-word vector.
pub fn allgather_cost(params: &MachineParams, m: f64) -> f64 {
    if params.p <= 1 {
        return 0.0;
    }
    gather_cost(params, m) + params.log_p() * (params.ts + params.p as f64 * m * params.tw)
}

/// Ring allgather of one `m`-word block per rank: `p − 1` steps, each
/// costing `2(ts + m·tw)` on the store-and-forward critical path (a rank
/// serializes its send and its receive).
pub fn allgather_ring_cost(params: &MachineParams, m: f64) -> f64 {
    if params.p <= 1 {
        return 0.0;
    }
    2.0 * (params.p - 1) as f64 * (params.ts + m * params.tw)
}

/// Linear-shift all-to-all with one `m`-word block per destination:
/// `p − 1` rounds; per round a rank pays its send (eager) plus its
/// receive — `2(ts + m·tw)` on the critical path — except the middle
/// round of an even `p`, where source and destination coincide and a
/// single simultaneous exchange suffices. Hence
/// `(2(p−1) − [p even])·(ts + m·tw)`.
pub fn alltoall_cost(params: &MachineParams, m: f64) -> f64 {
    let p = params.p;
    if p <= 1 {
        return 0.0;
    }
    let rounds = 2.0 * (p - 1) as f64 - f64::from(p.is_multiple_of(2));
    rounds * (params.ts + m * params.tw)
}

/// Van de Geijn scatter+ring broadcast of an `m`-word block: the phases
/// overlap, leaving `log p` scatter start-ups plus the ring's
/// `2(p−1)` store-and-forward steps of `m/p` words.
pub fn bcast_scatter_allgather_cost(params: &MachineParams, m: f64) -> f64 {
    if params.p <= 1 {
        return 0.0;
    }
    params.log_p() * params.ts
        + 2.0 * (params.p - 1) as f64 * (params.ts + (m / params.p as f64) * params.tw)
}

/// Fold-excess commutative allreduce: one fold-in phase, the butterfly on
/// the leading power-of-two block, one result-return phase. For
/// power-of-two `p` it is just the butterfly.
pub fn allreduce_commutative_cost(params: &MachineParams, m: f64, ops: f64) -> f64 {
    let phase = params.ts + m * (params.tw + ops);
    if params.p.is_power_of_two() {
        return params.log_p() * phase;
    }
    let k_log = (params.p as f64).log2().floor();
    // Fold-in phase + butterfly on the leading 2^k block + result return.
    (params.ts + m * params.tw + m * ops) + k_log * phase + (params.ts + m * params.tw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(p: usize) -> MachineParams {
        MachineParams::new(p, 100.0, 2.0)
    }

    #[test]
    fn degenerate_single_rank_costs_nothing() {
        let one = params(1);
        assert_eq!(gather_cost(&one, 10.0), 0.0);
        assert_eq!(allgather_ring_cost(&one, 10.0), 0.0);
        assert_eq!(alltoall_cost(&one, 10.0), 0.0);
        assert_eq!(bcast_scatter_allgather_cost(&one, 10.0), 0.0);
    }

    #[test]
    fn gather_has_logp_startups_and_linear_volume() {
        let p8 = params(8);
        // 3 startups + 7 m tw.
        assert_eq!(gather_cost(&p8, 10.0), 3.0 * 100.0 + 7.0 * 20.0);
        assert_eq!(scatter_cost(&p8, 10.0), gather_cost(&p8, 10.0));
    }

    #[test]
    fn ring_and_alltoall_are_linear_in_p() {
        let m = 4.0;
        let c8 = alltoall_cost(&params(8), m);
        let c16 = alltoall_cost(&params(16), m);
        assert!(c16 / c8 > 2.0, "alltoall roughly doubles with p");
        // p = 2: a single exchange.
        assert_eq!(alltoall_cost(&params(2), m), 100.0 + 8.0);
        // p = 6 (even): 2*5 - 1 = 9 rounds-worth.
        assert_eq!(alltoall_cost(&params(6), m), 9.0 * 108.0);
        assert_eq!(allgather_ring_cost(&params(5), m), 2.0 * 4.0 * 108.0);
    }

    #[test]
    fn vdg_cost_crossover_against_binomial() {
        // For large m, vdG < binomial; for tiny m, the reverse.
        let p = params(16);
        let binomial = |m: f64| p.log_p() * (p.ts + m * p.tw);
        assert!(bcast_scatter_allgather_cost(&p, 32_000.0) < binomial(32_000.0));
        assert!(bcast_scatter_allgather_cost(&p, 4.0) > binomial(4.0));
    }
}
