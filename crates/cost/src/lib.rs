#![forbid(unsafe_code)]
//! # collopt-cost — the paper's cost calculus (Section 4)
//!
//! Analytic performance estimates for collective operations and for the
//! optimization rules, on the paper's machine model: a virtual, fully
//! connected machine, `ts` start-up time, `tw` per-word transfer time, one
//! unit per computation operation, and butterfly implementations of the
//! collectives:
//!
//! ```text
//! T_bcast  = log p · (ts + m·tw)            (eq. 15)
//! T_reduce = log p · (ts + m·(tw + 1))      (eq. 16)
//! T_scan   = log p · (ts + m·(tw + 2))      (eq. 17)
//! ```
//!
//! Every cost in this crate is a *per-`log p`-phase* affine expression
//! `α·ts + β·m·tw + γ·m` ([`PhaseCost`]); multiplying by `log p` gives the
//! full estimate. [`table1`] reproduces the paper's Table 1 — the
//! before/after cost of every optimization rule and the machine-parameter
//! condition under which the rule improves performance — and augments it
//! with exact crossover solvers.
//!
//! This crate is deliberately free of any dependency on the simulated
//! machine: the benches cross-validate its predictions against measured
//! simulated makespans, which only works if the two are independent
//! implementations of the same model.

pub mod bounds;
pub mod collectives;
pub mod exact;
pub mod params;
pub mod phase;
pub mod sweep;
pub mod table1;

pub use params::MachineParams;
pub use phase::PhaseCost;
pub use table1::{Rule, RuleEstimate, TABLE1_RULES};
