//! Machine parameters of the cost model.

/// The paper's machine description: `p` processors, start-up time `ts` and
/// per-word time `tw`, both in units of one computation operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// Number of processors.
    pub p: usize,
    /// Message start-up time.
    pub ts: f64,
    /// Per-word transfer time.
    pub tw: f64,
}

impl MachineParams {
    /// A new parameter set; `p ≥ 1`, `ts, tw ≥ 0`.
    pub fn new(p: usize, ts: f64, tw: f64) -> Self {
        assert!(p >= 1, "need at least one processor");
        assert!(ts >= 0.0 && tw >= 0.0, "ts and tw must be non-negative");
        MachineParams { p, ts, tw }
    }

    /// `⌈log₂ p⌉` — the phase count of every butterfly collective.
    pub fn log_p(&self) -> f64 {
        if self.p <= 1 {
            0.0
        } else {
            ((self.p - 1).ilog2() + 1) as f64
        }
    }

    /// The "Parsytec-like" preset used for the figure reproductions:
    /// a latency-dominated mid-90s MPP interconnect.
    pub fn parsytec_like(p: usize) -> Self {
        MachineParams::new(p, 200.0, 2.0)
    }

    /// A low-latency preset resembling shared-memory transport.
    pub fn low_latency(p: usize) -> Self {
        MachineParams::new(p, 4.0, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_p_rounds_up() {
        assert_eq!(MachineParams::new(1, 0.0, 0.0).log_p(), 0.0);
        assert_eq!(MachineParams::new(2, 0.0, 0.0).log_p(), 1.0);
        assert_eq!(MachineParams::new(6, 0.0, 0.0).log_p(), 3.0);
        assert_eq!(MachineParams::new(64, 0.0, 0.0).log_p(), 6.0);
        assert_eq!(MachineParams::new(65, 0.0, 0.0).log_p(), 7.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_processors_rejected() {
        let _ = MachineParams::new(0, 1.0, 1.0);
    }

    #[test]
    fn presets_scale_with_p() {
        let a = MachineParams::parsytec_like(64);
        assert_eq!(a.p, 64);
        assert!(a.ts > MachineParams::low_latency(64).ts);
    }

    #[test]
    fn debug_format_mentions_fields() {
        let a = MachineParams::new(8, 100.0, 2.0);
        let d = format!("{a:?}");
        assert!(d.contains("ts") && d.contains("tw") && d.contains('8'));
    }
}
