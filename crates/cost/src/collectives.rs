//! Per-phase costs of the individual collective operations, from which the
//! Table-1 rows are assembled.
//!
//! Conventions (paper §4.1): every collective runs `log p` phases; each
//! phase of a communicating collective pays one start-up `ts`; a message
//! of `f·m` words pays `f·m·tw`; computation charges per-word operation
//! counts. A *local* stage (the result of the Local rules) runs `log p`
//! iterations with no communication at all.

use crate::phase::PhaseCost;

/// Broadcast: no computation (eq. 15).
pub const fn bcast() -> PhaseCost {
    PhaseCost::new(1.0, 1.0, 0.0)
}

/// Reduction with an operator costing `ops` per word, on tuples `f` words
/// wide (eq. 16 is `reduce(1.0, 1.0)`): one combine per phase.
pub const fn reduce(ops: f64, words_factor: f64) -> PhaseCost {
    PhaseCost::new(1.0, words_factor, ops)
}

/// Scan with an operator costing `ops` per word on `f`-word tuples
/// (eq. 17 is `scan(1.0, 1.0)`): two combines per phase on the critical
/// path.
pub const fn scan(ops: f64, words_factor: f64) -> PhaseCost {
    PhaseCost::new(1.0, words_factor, 2.0 * ops)
}

/// Balanced reduction (rule SR-Reduction's target): one `op_sr`-style
/// combine per phase, tuples `f` words wide.
pub const fn reduce_balanced(ops_combine: f64, words_factor: f64) -> PhaseCost {
    PhaseCost::new(1.0, words_factor, ops_combine)
}

/// Balanced scan (rule SS-Scan's target): the critical path charges the
/// upper partner's operation count; only `words_factor` words of the tuple
/// cross the link per direction (3 of op_ss's 4 components).
pub const fn scan_balanced(ops_upper: f64, words_factor: f64) -> PhaseCost {
    PhaseCost::new(1.0, words_factor, ops_upper)
}

/// Comcast in the broadcast-then-`repeat` implementation: the broadcast's
/// `ts + m·tw` per phase plus the `o` step's operations (the heavier of
/// `e`/`o`, which dominates the critical path).
pub const fn comcast_bcast_repeat(ops_o: f64) -> PhaseCost {
    PhaseCost::new(1.0, 1.0, ops_o)
}

/// Comcast in the cost-optimal successive-doubling implementation: the
/// full auxiliary tuple (`f` words per block word) crosses the link each
/// phase, and active processors compute both `e` and `o`.
pub const fn comcast_cost_optimal(ops_e: f64, ops_o: f64, words_factor: f64) -> PhaseCost {
    PhaseCost::new(1.0, words_factor, ops_e + ops_o)
}

/// A purely local iteration (the Local rules' target): `ops` operations
/// per word per phase, no communication.
pub const fn local_iter(ops: f64) -> PhaseCost {
    PhaseCost::new(0.0, 0.0, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MachineParams;

    #[test]
    fn standard_collectives_match_eqs_15_to_17() {
        let p = MachineParams::new(64, 100.0, 2.0);
        let m = 32.0;
        // eq. 15: log p (ts + m tw) = 6 * (100 + 64) = 984.
        assert_eq!(bcast().eval(&p, m), 984.0);
        // eq. 16: log p (ts + m (tw+1)) = 6 * (100 + 96) = 1176.
        assert_eq!(reduce(1.0, 1.0).eval(&p, m), 1176.0);
        // eq. 17: log p (ts + m (tw+2)) = 6 * (100 + 128) = 1368.
        assert_eq!(scan(1.0, 1.0).eval(&p, m), 1368.0);
    }

    #[test]
    fn collective_ordering_bcast_reduce_scan() {
        // For any parameters, T_bcast ≤ T_reduce ≤ T_scan.
        for (ts, tw, m) in [(0.0, 0.0, 1.0), (100.0, 2.0, 32.0), (1.0, 50.0, 7.0)] {
            let p = MachineParams::new(16, ts, tw);
            assert!(bcast().eval(&p, m) <= reduce(1.0, 1.0).eval(&p, m));
            assert!(reduce(1.0, 1.0).eval(&p, m) <= scan(1.0, 1.0).eval(&p, m));
        }
    }

    #[test]
    fn local_iter_is_communication_free() {
        let c = local_iter(3.0);
        assert_eq!(c.ts, 0.0);
        assert_eq!(c.mtw, 0.0);
        let p = MachineParams::new(8, 1e9, 1e9);
        assert_eq!(c.eval(&p, 10.0), 3.0 * 3.0 * 10.0);
    }

    #[test]
    fn cost_optimal_comcast_is_never_cheaper_than_bcast_repeat() {
        // Same ops, wider messages and extra `e` work: §3.4's remark.
        let fast = comcast_bcast_repeat(2.0);
        let opt = comcast_cost_optimal(1.0, 2.0, 2.0);
        assert!(opt.always_exceeds(&fast));
    }
}
