//! Per-phase costs of the individual collective operations, from which the
//! Table-1 rows are assembled.
//!
//! Conventions (paper §4.1): every collective runs `log p` phases; each
//! phase of a communicating collective pays one start-up `ts`; a message
//! of `f·m` words pays `f·m·tw`; computation charges per-word operation
//! counts. A *local* stage (the result of the Local rules) runs `log p`
//! iterations with no communication at all.

use crate::params::MachineParams;
use crate::phase::PhaseCost;

/// Broadcast: no computation (eq. 15).
pub const fn bcast() -> PhaseCost {
    PhaseCost::new(1.0, 1.0, 0.0)
}

/// Reduction with an operator costing `ops` per word, on tuples `f` words
/// wide (eq. 16 is `reduce(1.0, 1.0)`): one combine per phase.
pub const fn reduce(ops: f64, words_factor: f64) -> PhaseCost {
    PhaseCost::new(1.0, words_factor, ops)
}

/// Scan with an operator costing `ops` per word on `f`-word tuples
/// (eq. 17 is `scan(1.0, 1.0)`): two combines per phase on the critical
/// path.
pub const fn scan(ops: f64, words_factor: f64) -> PhaseCost {
    PhaseCost::new(1.0, words_factor, 2.0 * ops)
}

/// Balanced reduction (rule SR-Reduction's target): one `op_sr`-style
/// combine per phase, tuples `f` words wide.
pub const fn reduce_balanced(ops_combine: f64, words_factor: f64) -> PhaseCost {
    PhaseCost::new(1.0, words_factor, ops_combine)
}

/// Balanced scan (rule SS-Scan's target): the critical path charges the
/// upper partner's operation count; only `words_factor` words of the tuple
/// cross the link per direction (3 of op_ss's 4 components).
pub const fn scan_balanced(ops_upper: f64, words_factor: f64) -> PhaseCost {
    PhaseCost::new(1.0, words_factor, ops_upper)
}

/// Comcast in the broadcast-then-`repeat` implementation: the broadcast's
/// `ts + m·tw` per phase plus the `o` step's operations (the heavier of
/// `e`/`o`, which dominates the critical path).
pub const fn comcast_bcast_repeat(ops_o: f64) -> PhaseCost {
    PhaseCost::new(1.0, 1.0, ops_o)
}

/// Comcast in the cost-optimal successive-doubling implementation: the
/// full auxiliary tuple (`f` words per block word) crosses the link each
/// phase, and active processors compute both `e` and `o`.
pub const fn comcast_cost_optimal(ops_e: f64, ops_o: f64, words_factor: f64) -> PhaseCost {
    PhaseCost::new(1.0, words_factor, ops_e + ops_o)
}

/// A purely local iteration (the Local rules' target): `ops` operations
/// per word per phase, no communication.
pub const fn local_iter(ops: f64) -> PhaseCost {
    PhaseCost::new(0.0, 0.0, ops)
}

// --- The bandwidth-optimal reduction family -------------------------------
//
// Unlike the `PhaseCost` constructors above, these makespans are not a
// uniform per-phase cost times `log p`: the segmenting algorithms move a
// different volume every round (halving/doubling) or run `p − 1` linear
// steps (ring), so they are closed forms over the whole operation. Each
// is exact on the simulated machine when `p` divides `m` and is verified
// to machine precision by the collectives crate's makespan tests, which
// implement the same formulas independently.

/// `m(1 − 1/p)` — the total volume per rank of a segmenting collective.
fn frac(params: &MachineParams) -> f64 {
    1.0 - 1.0 / params.p as f64
}

/// Butterfly allreduce (power-of-two `p`): `log p (ts + m(tw + ops))`.
/// The `PhaseCost` equivalent of `reduce(ops, 1.0)` — restated here so
/// the family can be compared through one interface.
pub fn allreduce_butterfly_cost(params: &MachineParams, m: f64, ops: f64) -> f64 {
    params.log_p() * (params.ts + m * (params.tw + ops))
}

/// Recursive-halving reduce-scatter (power-of-two `p`):
/// `log₂ p·ts + m(1−1/p)(tw + ops)` — round `j` exchanges and combines
/// only `m/2^(j+1)` words.
pub fn reduce_scatter_halving_cost(params: &MachineParams, m: f64, ops: f64) -> f64 {
    params.log_p() * params.ts + m * frac(params) * (params.tw + ops)
}

/// Recursive-doubling allgather (power-of-two `p`):
/// `log₂ p·ts + m(1−1/p)·tw`.
pub fn allgather_doubling_cost(params: &MachineParams, m: f64) -> f64 {
    params.log_p() * params.ts + m * frac(params) * params.tw
}

/// Rabenseifner's allreduce = reduce-scatter + allgather
/// (power-of-two `p`): `2 log₂ p·ts + m(1−1/p)(2tw + ops)`.
pub fn allreduce_rabenseifner_cost(params: &MachineParams, m: f64, ops: f64) -> f64 {
    reduce_scatter_halving_cost(params, m, ops) + allgather_doubling_cost(params, m)
}

/// Ring reduce-scatter (any `p`, commutative operator): `p − 1` steps of
/// `m/p`-word messages. On the half-duplex store-and-forward machine
/// each step pays a send *and* a receive:
/// `(p−1)(2(ts + (m/p)tw) + (m/p)·ops)`.
pub fn reduce_scatter_ring_cost(params: &MachineParams, m: f64, ops: f64) -> f64 {
    let steps = params.p as f64 - 1.0;
    let seg = m / params.p as f64;
    steps * (2.0 * (params.ts + seg * params.tw) + seg * ops)
}

/// Ring allreduce = ring reduce-scatter + ring allgather (any `p`,
/// commutative operator):
/// `(p−1)(2(ts + (m/p)tw) + (m/p)·ops) + 2(p−1)(ts + (m/p)tw)`.
pub fn allreduce_ring_cost(params: &MachineParams, m: f64, ops: f64) -> f64 {
    let steps = params.p as f64 - 1.0;
    let seg = m / params.p as f64;
    reduce_scatter_ring_cost(params, m, ops) + 2.0 * steps * (params.ts + seg * params.tw)
}

/// Binomial reduce + binomial broadcast — the order-safe allreduce
/// fallback for any `p`: `log p (ts + m(tw + ops)) + log p (ts + m·tw)`.
pub fn allreduce_reduce_bcast_cost(params: &MachineParams, m: f64, ops: f64) -> f64 {
    reduce(ops, 1.0).eval(params, m) + bcast().eval(params, m)
}

/// Reduce-to-root via reduce-scatter + binomial gather (power-of-two
/// `p`): the gather's critical path is rank 0 receiving `2^j` segments
/// in round `j`, i.e. `log p·ts + m(1−1/p)·tw`, giving
/// `2 log p·ts + m(1−1/p)(2tw + ops)` in total — the same closed form as
/// [`allreduce_rabenseifner_cost`].
pub fn reduce_scatter_gather_cost(params: &MachineParams, m: f64, ops: f64) -> f64 {
    reduce_scatter_halving_cost(params, m, ops)
        + (params.log_p() * params.ts + m * frac(params) * params.tw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MachineParams;

    #[test]
    fn standard_collectives_match_eqs_15_to_17() {
        let p = MachineParams::new(64, 100.0, 2.0);
        let m = 32.0;
        // eq. 15: log p (ts + m tw) = 6 * (100 + 64) = 984.
        assert_eq!(bcast().eval(&p, m), 984.0);
        // eq. 16: log p (ts + m (tw+1)) = 6 * (100 + 96) = 1176.
        assert_eq!(reduce(1.0, 1.0).eval(&p, m), 1176.0);
        // eq. 17: log p (ts + m (tw+2)) = 6 * (100 + 128) = 1368.
        assert_eq!(scan(1.0, 1.0).eval(&p, m), 1368.0);
    }

    #[test]
    fn collective_ordering_bcast_reduce_scan() {
        // For any parameters, T_bcast ≤ T_reduce ≤ T_scan.
        for (ts, tw, m) in [(0.0, 0.0, 1.0), (100.0, 2.0, 32.0), (1.0, 50.0, 7.0)] {
            let p = MachineParams::new(16, ts, tw);
            assert!(bcast().eval(&p, m) <= reduce(1.0, 1.0).eval(&p, m));
            assert!(reduce(1.0, 1.0).eval(&p, m) <= scan(1.0, 1.0).eval(&p, m));
        }
    }

    #[test]
    fn local_iter_is_communication_free() {
        let c = local_iter(3.0);
        assert_eq!(c.ts, 0.0);
        assert_eq!(c.mtw, 0.0);
        let p = MachineParams::new(8, 1e9, 1e9);
        assert_eq!(c.eval(&p, 10.0), 3.0 * 3.0 * 10.0);
    }

    #[test]
    fn cost_optimal_comcast_is_never_cheaper_than_bcast_repeat() {
        // Same ops, wider messages and extra `e` work: §3.4's remark.
        let fast = comcast_bcast_repeat(2.0);
        let opt = comcast_cost_optimal(1.0, 2.0, 2.0);
        assert!(opt.always_exceeds(&fast));
    }

    #[test]
    fn reduction_family_costs_at_a_hand_checked_point() {
        // p = 8, ts = 100, tw = 2, m = 64, ops = 1:
        let p = MachineParams::new(8, 100.0, 2.0);
        let m = 64.0;
        // butterfly: 3(100 + 64·3) = 876
        assert_eq!(allreduce_butterfly_cost(&p, m, 1.0), 876.0);
        // halving RS: 300 + 56·3 = 468
        assert_eq!(reduce_scatter_halving_cost(&p, m, 1.0), 468.0);
        // doubling AG: 300 + 56·2 = 412
        assert_eq!(allgather_doubling_cost(&p, m), 412.0);
        // rabenseifner = RS + AG = 880
        assert_eq!(allreduce_rabenseifner_cost(&p, m, 1.0), 880.0);
        // ring RS: 7·(2(100 + 16) + 8) = 7·240 = 1680
        assert_eq!(reduce_scatter_ring_cost(&p, m, 1.0), 1680.0);
        // ring allreduce: 1680 + 2·7·116 = 3304
        assert_eq!(allreduce_ring_cost(&p, m, 1.0), 3304.0);
        // RS + gather equals rabenseifner's closed form.
        assert_eq!(
            reduce_scatter_gather_cost(&p, m, 1.0),
            allreduce_rabenseifner_cost(&p, m, 1.0)
        );
    }

    #[test]
    fn rabenseifner_wins_exactly_above_the_crossover() {
        // Butterfly's log p·m(tw+c) volume term against Rabenseifner's
        // m(1−1/p)(2tw+c): the winner flips once, from butterfly (small
        // m, start-up bound) to Rabenseifner (large m, bandwidth bound).
        let p = MachineParams::parsytec_like(16);
        assert!(allreduce_butterfly_cost(&p, 4.0, 1.0) < allreduce_rabenseifner_cost(&p, 4.0, 1.0));
        assert!(
            allreduce_rabenseifner_cost(&p, 4096.0, 1.0)
                < allreduce_butterfly_cost(&p, 4096.0, 1.0)
        );
        // Asymptotically the butterfly pays log p / ((1−1/p)·(2tw+c)/(tw+c))
        // times more; at p = 16, tw = 2, c = 1 that is 4·3/(0.9375·5) ≈ 2.56.
        let huge = 1e9;
        let ratio =
            allreduce_butterfly_cost(&p, huge, 1.0) / allreduce_rabenseifner_cost(&p, huge, 1.0);
        assert!((ratio - 4.0 * 3.0 / (0.9375 * 5.0)).abs() < 1e-3);
    }

    #[test]
    fn reduce_bcast_fallback_always_loses_to_the_butterfly() {
        // On a power of two the fallback is the butterfly plus a whole
        // broadcast — the selector must never pick it there.
        for m in [1.0, 100.0, 10_000.0] {
            let p = MachineParams::new(16, 200.0, 2.0);
            assert!(allreduce_butterfly_cost(&p, m, 1.0) < allreduce_reduce_bcast_cost(&p, m, 1.0));
        }
    }
}
