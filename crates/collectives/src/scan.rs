//! Scan / parallel prefix (eq. 7): rank `i` ends with `x1 ⊕ … ⊕ x(i+1)`.
//!
//! [`scan_butterfly`] is the hypercube algorithm the paper's cost model
//! assumes (Section 4.1, after Quinn): `⌈log₂ p⌉` exchange phases; each
//! rank maintains a running *result* (prefix up to itself) and a running
//! *aggregate* (combination of its whole current block). Per phase the
//! aggregate costs one operator application and — on ranks whose partner is
//! lower — the result costs a second one, giving the paper's
//! `T_scan = log p · (ts + m·(tw + 2))` (eq. 17) on the critical path.
//!
//! The algorithm is correct for **any** rank count, not only powers of two:
//! a rank whose partner would be `≥ p` simply skips the phase. Its block
//! aggregate is then incomplete, but an incomplete block is never consumed
//! — a lower partner's block always lies entirely below a live rank and is
//! therefore complete (the same observation that makes the paper's balanced
//! scan of Figure 5 work on six processors).

use collopt_machine::topology::{butterfly_partner, butterfly_rounds};
use collopt_machine::{drive, Ctx};

use crate::op::Combine;

/// Inclusive butterfly scan: returns `x1 ⊕ … ⊕ x(rank+1)` on each rank.
pub fn scan_butterfly<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> T {
    drive(scan_butterfly_async(ctx, value, words, op))
}

/// Engine-agnostic form of [`scan_butterfly`].
pub async fn scan_butterfly_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> T {
    let p = ctx.size();
    let mut result = value.clone();
    let mut aggregate = value;
    for round in 0..butterfly_rounds(p) {
        let Some(partner) = butterfly_partner(ctx.rank(), round, p) else {
            continue;
        };
        let got: T = ctx.exchange_async(partner, aggregate.clone(), words).await;
        if partner < ctx.rank() {
            // `got` is the aggregate of the complete lower half-block.
            result = op.apply(&got, &result);
            aggregate = op.apply(&got, &aggregate);
            ctx.charge(2.0 * words as f64 * op.ops_per_word, "scan:combine2");
        } else {
            aggregate = op.apply(&aggregate, &got);
            ctx.charge(words as f64 * op.ops_per_word, "scan:combine1");
        }
    }
    result
}

/// Exclusive scan: rank `i` gets `Some(x1 ⊕ … ⊕ x(i))`, rank 0 gets `None`
/// (no identity element is assumed). Implemented as an inclusive scan
/// followed by a single shift round (each rank forwards its inclusive
/// prefix to the next rank), i.e. one extra `ts + m·tw` phase.
pub fn exscan<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> Option<T> {
    drive(exscan_async(ctx, value, words, op))
}

/// Engine-agnostic form of [`exscan`].
pub async fn exscan_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> Option<T> {
    let inclusive = scan_butterfly_async(ctx, value, words, op).await;
    let rank = ctx.rank();
    let p = ctx.size();
    if rank + 1 < p {
        ctx.send(rank + 1, inclusive, words);
    }
    if rank > 0 {
        Some(ctx.recv_async(rank - 1).await)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{ref_exscan, ref_scan};
    use collopt_machine::topology::ceil_log2;
    use collopt_machine::{ClockParams, Machine};
    use std::sync::Arc;

    fn run_scan_i64(inputs: Vec<i64>, op: fn(&i64, &i64) -> i64) -> Vec<i64> {
        let p = inputs.len();
        let shared = Arc::new(inputs);
        let m = Machine::new(p, ClockParams::free());
        let run = m.run(move |ctx| {
            let c = Combine::new(&op);
            scan_butterfly(ctx, shared[ctx.rank()], 1, &c)
        });
        run.results
    }

    #[test]
    fn scan_matches_reference_for_all_small_sizes() {
        for p in 1..=33 {
            let inputs: Vec<i64> = (0..p as i64).map(|i| i * i - 3).collect();
            let got = run_scan_i64(inputs.clone(), |a, b| a + b);
            assert_eq!(got, ref_scan(|a, b| a + b, &inputs), "p={p}");
        }
    }

    #[test]
    fn scan_paper_example_six_processors() {
        // Input of Figures 4/5.
        let got = run_scan_i64(vec![2, 5, 9, 1, 2, 6], |a, b| a + b);
        assert_eq!(got, vec![2, 7, 16, 17, 19, 25]);
    }

    #[test]
    fn scan_preserves_order_for_nonabelian_op() {
        for p in [2usize, 3, 5, 6, 8, 12, 17] {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| {
                let cat = |a: &String, b: &String| format!("{a}{b}");
                scan_butterfly(ctx, ctx.rank().to_string(), 1, &Combine::new(&cat))
            });
            for (rank, r) in run.results.iter().enumerate() {
                let expected: String = (0..=rank).map(|i| i.to_string()).collect();
                assert_eq!(r, &expected, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn scan_with_max_operator() {
        let got = run_scan_i64(vec![3, 1, 4, 1, 5, 9, 2, 6], |a, b| *a.max(b));
        assert_eq!(got, vec![3, 3, 4, 4, 5, 9, 9, 9]);
    }

    #[test]
    fn scan_makespan_matches_eq17() {
        // T_scan = log p · (ts + m·(tw + 2)), eq. (17), power-of-two p.
        for (p, mw) in [(2usize, 4u64), (8, 16), (64, 500)] {
            let params = ClockParams::new(100.0, 2.0);
            let m = Machine::new(p, params);
            let run = m.run(|ctx| {
                let add = |a: &Vec<u64>, b: &Vec<u64>| {
                    a.iter().zip(b).map(|(x, y)| x + y).collect::<Vec<u64>>()
                };
                scan_butterfly(ctx, vec![1u64; mw as usize], mw, &Combine::new(&add))
            });
            let expected = ceil_log2(p) as f64 * (params.ts + mw as f64 * (params.tw + 2.0));
            assert_eq!(run.makespan, expected, "p={p} m={mw}");
        }
    }

    #[test]
    fn scan_on_blocks_is_elementwise_prefix() {
        let p = 6;
        let m = Machine::new(p, ClockParams::free());
        let run = m.run(|ctx| {
            let add = |a: &Vec<i64>, b: &Vec<i64>| {
                a.iter().zip(b).map(|(x, y)| x + y).collect::<Vec<i64>>()
            };
            let block = vec![ctx.rank() as i64, 10 * ctx.rank() as i64];
            scan_butterfly(ctx, block, 2, &Combine::new(&add))
        });
        for rank in 0..p {
            let s: i64 = (0..=rank as i64).sum();
            assert_eq!(run.results[rank], vec![s, 10 * s]);
        }
    }

    #[test]
    fn exscan_matches_reference() {
        for p in 1..=17 {
            let inputs: Vec<i64> = (0..p as i64).map(|i| 2 * i + 1).collect();
            let shared = Arc::new(inputs.clone());
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(move |ctx| {
                let add = |a: &i64, b: &i64| a + b;
                exscan(ctx, shared[ctx.rank()], 1, &Combine::new(&add))
            });
            assert_eq!(run.results, ref_exscan(|a, b| a + b, &inputs), "p={p}");
        }
    }

    #[test]
    fn scan_random_inputs_property() {
        let mut rng = collopt_machine::Rng::new(99);
        for _ in 0..25 {
            let p = rng.range_usize(1, 30);
            let inputs: Vec<i64> = (0..p).map(|_| rng.range_i64(-1000, 1000)).collect();
            let got = run_scan_i64(inputs.clone(), |a, b| a + b);
            assert_eq!(got, ref_scan(|a, b| a + b, &inputs));
        }
    }
}
