#![forbid(unsafe_code)]
//! # collopt-collectives — collective operations on the simulated machine
//!
//! Implementations of every collective operation used by Gorlatch, Wedler &
//! Lengauer (IPPS 1999), on top of [`collopt_machine`]:
//!
//! * the *standard* collectives the paper's programs are written in —
//!   [`bcast_binomial`], [`reduce_binomial`], [`allreduce`],
//!   [`scan_butterfly`] — in the butterfly/binomial implementations the
//!   paper's cost model (Section 4.1, eqs. 15–17) assumes, plus
//!   [`gather_binomial`]/[`scatter_binomial`]/[`allgather`]/[`alltoall()`](alltoall::alltoall)
//!   for completeness;
//! * the *special* collectives the optimization rules produce —
//!   [`reduce_balanced`] (rule SR-Reduction, Figure 4), [`scan_balanced`]
//!   (rule SS-Scan, Figure 5), and both implementations of the comcast
//!   pattern in [`comcast`] (rules *-Comcast, Figure 6 and the
//!   cost-optimal variant of Section 3.4);
//! * [`Comm`] — MPI-style communicators over subgroups;
//! * two-level cluster collectives ([`hierarchical`]) and the pipelined
//!   chain broadcast ([`pipelined`]);
//! * the *bandwidth-optimal* reduction family ([`mod@reduce_scatter`]):
//!   recursive-halving and ring reduce-scatter, Rabenseifner's
//!   reduce-scatter + allgather allreduce, and the ring allreduce, plus
//!   the cost-model-driven selectors [`allreduce_auto`] / [`reduce_auto`]
//!   in [`variants`] that pick the cheapest algorithm for the machine's
//!   `(p, m, ts, tw, c)` point.
//!
//! All collectives are generic over the block type `T`, take the block size
//! in machine words explicitly (for cost accounting), and charge the
//! simulated clock exactly what the paper's model charges: `ts + m·tw` per
//! message phase and one unit per base-operation per word.
//!
//! ## Semantics
//!
//! With `x_i` the block held by rank `i` (the paper's distributed list
//! `[x1, …, xn]`):
//!
//! * `bcast`:      `[x, _, …, _] ↦ [x, x, …, x]`                   (eq. 8)
//! * `reduce ⊕`:   `[x1, …, xn] ↦ [x1 ⊕ … ⊕ xn, x2, …, xn]`        (eq. 5)
//! * `allreduce ⊕`:`[x1, …, xn] ↦ [y, …, y]`, `y = x1 ⊕ … ⊕ xn`    (eq. 6)
//! * `scan ⊕`:     `[x1, …, xn] ↦ [x1, x1 ⊕ x2, …, x1 ⊕ … ⊕ xn]`   (eq. 7)
//!
//! The module `reference` contains direct sequential
//! implementations of these equations; every distributed algorithm is
//! tested against them.

pub mod alltoall;
pub mod balanced;
pub mod bcast;
pub mod comcast;
pub mod comm;
pub mod gather;
pub mod hierarchical;
pub mod op;
pub mod pipelined;
pub mod reduce;
pub mod reduce_scatter;
pub mod reference;
pub mod scan;
pub mod schedule;
pub mod variants;

pub use alltoall::{alltoall, reduce_scatter};
pub use balanced::{
    allreduce_balanced, allreduce_balanced_async, reduce_balanced, reduce_balanced_async,
    scan_balanced, scan_balanced_async, BalancedOp, PairedOp,
};
pub use bcast::{bcast_binomial, bcast_binomial_async, bcast_linear, bcast_linear_async};
pub use comcast::{
    comcast_bcast_repeat, comcast_bcast_repeat_async, comcast_cost_optimal,
    comcast_cost_optimal_async, RepeatOp,
};
pub use comm::Comm;
pub use gather::{
    allgather, allgather_async, barrier, barrier_async, gather_binomial, gather_binomial_async,
    scatter_binomial, scatter_binomial_async,
};
pub use hierarchical::{
    allreduce_hierarchical, allreduce_two_level, bcast_hierarchical, bcast_two_level,
};
pub use op::{Combine, Splittable};
pub use pipelined::{bcast_pipelined, bcast_pipelined_async, chain_cost, optimal_segments};
pub use reduce::{
    allreduce, allreduce_async, allreduce_butterfly, allreduce_butterfly_async,
    allreduce_commutative, allreduce_commutative_async, reduce_binomial, reduce_binomial_async,
};
pub use reduce_scatter::{
    allgather_doubling, allgather_doubling_async, allreduce_balanced_halving,
    allreduce_balanced_halving_async, allreduce_rabenseifner, allreduce_rabenseifner_async,
    allreduce_ring, allreduce_ring_async, reduce_scatter_halving, reduce_scatter_halving_async,
    reduce_scatter_ring, reduce_scatter_ring_async,
};
pub use scan::{exscan, exscan_async, scan_butterfly, scan_butterfly_async};
pub use variants::{
    allgather_ring, allgather_ring_async, allreduce_auto, allreduce_auto_async,
    allreduce_model_cost, balanced_halving_wins, bcast_auto, bcast_auto_async,
    bcast_scatter_allgather, bcast_scatter_allgather_async, choose_allreduce, choose_bcast,
    choose_reduce, reduce_auto, reduce_auto_async, reduce_model_cost, scan_sklansky,
    scan_sklansky_async, AllreduceChoice, BcastChoice, ReduceChoice,
};
