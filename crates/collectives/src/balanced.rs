//! The paper's *special* collectives (Section 3.2–3.3): balanced reduction
//! and balanced scan for operators that are **not associative** — the fused
//! operators `op_sr` and `op_ss` produced by rules SR-Reduction and
//! SS-Scan.
//!
//! A non-associative operator cannot be combined in arbitrary tree shapes;
//! correctness of `op_sr`/`op_ss` depends on every combine step joining a
//! group with a *complete* (power-of-two-sized) sibling group. Two
//! structures guarantee this for any processor count:
//!
//! * [`reduce_balanced`] walks the paper's virtual **balanced tree**
//!   ([`BalancedTree`]): all leaves at depth `⌈log₂ p⌉`, the right subtree
//!   of every binary node complete, and *unary* nodes (empty left subtree)
//!   where a special one-argument variant of the operator applies —
//!   `op_sr((), (t,u)) = (t, u⊕u)` in the paper. This is Figure 4.
//! * [`scan_balanced`] runs a **butterfly** in which each exchange step
//!   applies a *paired* operator producing new values for both partners,
//!   and ranks without a partner (only possible when `p` is not a power of
//!   two) apply a solo variant. This is Figure 5.

use collopt_machine::topology::{butterfly_partner, butterfly_rounds, BalancedTree, RankAction};
use collopt_machine::{drive, Ctx};

use crate::bcast::bcast_binomial_async;

/// Operator descriptor for the balanced reduction: a binary combine for
/// binary tree nodes, a solo variant for unary nodes, and explicit cost
/// declarations.
pub struct BalancedOp<'a, Q> {
    /// Binary combine `op(left, right)`; `left` always covers the
    /// lower-ranked processors.
    pub combine: &'a (dyn Fn(&Q, &Q) -> Q + Sync),
    /// Unary variant applied at nodes whose left subtree is empty
    /// (the paper's `op((), x)` case).
    pub solo: &'a (dyn Fn(&Q) -> Q + Sync),
    /// Base operations per block word for one binary combine
    /// (4 for the paper's `op_sr`).
    pub ops_combine: f64,
    /// Base operations per block word for the solo variant.
    pub ops_solo: f64,
    /// Words on the wire per block word (2 for the pairs of `op_sr`).
    pub words_factor: u64,
}

impl<Q> std::fmt::Debug for BalancedOp<'_, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BalancedOp")
            .field("ops_combine", &self.ops_combine)
            .field("ops_solo", &self.ops_solo)
            .field("words_factor", &self.words_factor)
            .finish_non_exhaustive()
    }
}

/// Balanced-tree reduction to rank 0 (the paper's root convention).
///
/// Returns `Some(result)` on rank 0 and `None` elsewhere. The combine
/// order follows the balanced tree exactly, so the operator need not be
/// associative — only compatible with the tree's complete-right-subtree
/// invariant, as `op_sr` is.
pub fn reduce_balanced<Q: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Q,
    words: u64,
    op: &BalancedOp<'_, Q>,
) -> Option<Q> {
    drive(reduce_balanced_async(ctx, value, words, op))
}

/// Engine-agnostic form of [`reduce_balanced`].
pub async fn reduce_balanced_async<Q: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Q,
    words: u64,
    op: &BalancedOp<'_, Q>,
) -> Option<Q> {
    let tree = BalancedTree::new(ctx.size());
    let mut acc = value;
    for (_, action) in tree.rank_schedule(ctx.rank()) {
        match action {
            RankAction::RecvCombine { from } => {
                let got: Q = ctx.recv_async(from).await;
                acc = (op.combine)(&acc, &got);
                ctx.charge(words as f64 * op.ops_combine, "reduce_balanced:combine");
            }
            RankAction::SendTo { to } => {
                ctx.send(to, acc, words * op.words_factor);
                return None;
            }
            RankAction::ApplyUnary => {
                acc = (op.solo)(&acc);
                ctx.charge(words as f64 * op.ops_solo, "reduce_balanced:solo");
            }
        }
    }
    debug_assert_eq!(ctx.rank(), 0, "only the root retains a value");
    Some(acc)
}

/// Balanced allreduce: every rank gets the root's result.
///
/// For a power-of-two `p` the balanced tree "extends to a butterfly"
/// (paper, Figure 4 caption): each exchange phase both partners combine
/// `op(lower, upper)` and obtain identical values, completing in `log p`
/// phases. For other `p` the butterfly's sibling groups are not all
/// complete — which the non-associative operators cannot tolerate — so the
/// implementation falls back to a balanced reduction followed by a
/// broadcast.
pub fn allreduce_balanced<Q: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Q,
    words: u64,
    op: &BalancedOp<'_, Q>,
) -> Q {
    drive(allreduce_balanced_async(ctx, value, words, op))
}

/// Engine-agnostic form of [`allreduce_balanced`].
pub async fn allreduce_balanced_async<Q: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Q,
    words: u64,
    op: &BalancedOp<'_, Q>,
) -> Q {
    let p = ctx.size();
    if p.is_power_of_two() {
        let mut acc = value;
        for round in 0..butterfly_rounds(p) {
            let partner = ctx.rank() ^ (1usize << round);
            let got: Q = ctx
                .exchange_async(partner, acc.clone(), words * op.words_factor)
                .await;
            acc = if partner > ctx.rank() {
                (op.combine)(&acc, &got)
            } else {
                (op.combine)(&got, &acc)
            };
            ctx.charge(words as f64 * op.ops_combine, "allreduce_balanced:combine");
        }
        acc
    } else {
        let reduced = reduce_balanced_async(ctx, value, words, op).await;
        bcast_binomial_async(ctx, 0, reduced, words * op.words_factor).await
    }
}

/// Operator descriptor for the balanced scan: one *paired* combine that
/// yields the new values of both butterfly partners at once, plus a solo
/// variant for ranks without a partner.
pub struct PairedOp<'a, Q> {
    /// `combine(lower, upper) = (new_lower, new_upper)`.
    pub combine: &'a (dyn Fn(&Q, &Q) -> (Q, Q) + Sync),
    /// Applied by a rank with no partner in a phase (the paper's
    /// `op_ss(x, ()) = ((s, _, _, _), ())` case: keep what is needed).
    pub solo: &'a (dyn Fn(&Q) -> Q + Sync),
    /// Base operations per word charged on the lower partner
    /// (5 for `op_ss`: the shared `ttu`, `uu`, `uuuu`, `vv`).
    pub ops_lower: f64,
    /// Base operations per word charged on the upper partner
    /// (8 for `op_ss` — the paper's "twelve to eight" reduction).
    pub ops_upper: f64,
    /// Base operations per word for the solo variant.
    pub ops_solo: f64,
    /// Words on the wire per block word, **per direction** (3 for `op_ss`:
    /// the `s` component never crosses the link).
    pub words_factor: u64,
}

impl<Q> std::fmt::Debug for PairedOp<'_, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairedOp")
            .field("ops_lower", &self.ops_lower)
            .field("ops_upper", &self.ops_upper)
            .field("ops_solo", &self.ops_solo)
            .field("words_factor", &self.words_factor)
            .finish_non_exhaustive()
    }
}

/// Balanced butterfly scan (Figure 5): `⌈log₂ p⌉` exchange phases; in
/// phase `j`, rank `r` and `r XOR 2^j` exchange states and apply the paired
/// operator; a rank whose partner does not exist applies the solo variant.
///
/// Optionally records each phase's state in the trace via [`Ctx::mark`]
/// when `trace_states` is true and a formatter is supplied — used by the
/// tests that reproduce Figure 5 verbatim.
pub fn scan_balanced<Q: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Q,
    words: u64,
    op: &PairedOp<'_, Q>,
) -> Q {
    scan_balanced_traced(ctx, value, words, op, None::<fn(&Q) -> String>)
}

/// Engine-agnostic form of [`scan_balanced`].
pub async fn scan_balanced_async<Q: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Q,
    words: u64,
    op: &PairedOp<'_, Q>,
) -> Q {
    scan_balanced_traced_async(ctx, value, words, op, None::<fn(&Q) -> String>).await
}

/// [`scan_balanced`] with an optional per-phase state formatter for traces.
pub fn scan_balanced_traced<Q: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Q,
    words: u64,
    op: &PairedOp<'_, Q>,
    fmt: Option<impl Fn(&Q) -> String>,
) -> Q {
    drive(scan_balanced_traced_async(ctx, value, words, op, fmt))
}

/// Engine-agnostic form of [`scan_balanced_traced`].
pub async fn scan_balanced_traced_async<Q: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Q,
    words: u64,
    op: &PairedOp<'_, Q>,
    fmt: Option<impl Fn(&Q) -> String>,
) -> Q {
    let p = ctx.size();
    let mut state = value;
    if let Some(f) = &fmt {
        ctx.mark(format!("phase0:{}", f(&state)));
    }
    for round in 0..butterfly_rounds(p) {
        match butterfly_partner(ctx.rank(), round, p) {
            Some(partner) => {
                let got: Q = ctx
                    .exchange_async(partner, state.clone(), words * op.words_factor)
                    .await;
                if ctx.rank() < partner {
                    let (lower, _) = (op.combine)(&state, &got);
                    state = lower;
                    ctx.charge(words as f64 * op.ops_lower, "scan_balanced:lower");
                } else {
                    let (_, upper) = (op.combine)(&got, &state);
                    state = upper;
                    ctx.charge(words as f64 * op.ops_upper, "scan_balanced:upper");
                }
            }
            None => {
                state = (op.solo)(&state);
                ctx.charge(words as f64 * op.ops_solo, "scan_balanced:solo");
            }
        }
        if let Some(f) = &fmt {
            ctx.mark(format!("phase{}:{}", round + 1, f(&state)));
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use collopt_machine::{ClockParams, Machine};
    use std::sync::Arc;

    /// The paper's `op_sr` with ⊕ = + (rule SR-Reduction):
    /// `op_sr((t1,u1),(t2,u2)) = (t1+t2+u1, uu+uu)` with `uu = u1+u2`;
    /// `op_sr((), (t,u)) = (t, u+u)`.
    fn op_sr(a: &(i64, i64), b: &(i64, i64)) -> (i64, i64) {
        let uu = a.1 + b.1;
        (a.0 + b.0 + a.1, uu + uu)
    }
    fn op_sr_solo(x: &(i64, i64)) -> (i64, i64) {
        (x.0, x.1 + x.1)
    }

    fn sr_balanced_op<'a>() -> BalancedOp<'a, (i64, i64)> {
        BalancedOp {
            combine: &op_sr,
            solo: &op_sr_solo,
            ops_combine: 4.0,
            ops_solo: 1.0,
            words_factor: 2,
        }
    }

    /// reduce(scan(xs)) computed sequentially: the value SR-Reduction's
    /// balanced tree must reproduce.
    fn sum_of_prefix_sums(xs: &[i64]) -> i64 {
        let mut acc = 0;
        let mut prefix = 0;
        for &x in xs {
            prefix += x;
            acc += prefix;
        }
        acc
    }

    #[test]
    fn figure4_exact_final_value() {
        // Figure 4: input [2,5,9,1,2,6] with + yields (86, 200) at root.
        let inputs = Arc::new(vec![2i64, 5, 9, 1, 2, 6]);
        let m = Machine::new(6, ClockParams::free());
        let run = m.run(move |ctx| {
            let x = inputs[ctx.rank()];
            reduce_balanced(ctx, (x, x), 1, &sr_balanced_op())
        });
        assert_eq!(run.results[0], Some((86, 200)));
        assert!(run.results[1..].iter().all(Option::is_none));
    }

    #[test]
    fn balanced_reduce_computes_reduce_of_scan_for_all_sizes() {
        for p in 1..=40usize {
            let inputs: Vec<i64> = (0..p as i64).map(|i| (i * 7 + 3) % 11 - 5).collect();
            let expected = sum_of_prefix_sums(&inputs);
            let shared = Arc::new(inputs);
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(move |ctx| {
                let x = shared[ctx.rank()];
                reduce_balanced(ctx, (x, x), 1, &sr_balanced_op())
            });
            assert_eq!(run.results[0].unwrap().0, expected, "p={p}");
        }
    }

    #[test]
    fn balanced_reduce_u_component_is_two_to_depth_times_sum() {
        // Invariant behind op_sr: at the root, u = 2^depth · Σ x_i.
        for p in [3usize, 6, 9, 16, 21] {
            let inputs: Vec<i64> = (1..=p as i64).collect();
            let sum: i64 = inputs.iter().sum();
            let depth = collopt_machine::topology::ceil_log2(p);
            let shared = Arc::new(inputs);
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(move |ctx| {
                let x = shared[ctx.rank()];
                reduce_balanced(ctx, (x, x), 1, &sr_balanced_op())
            });
            assert_eq!(run.results[0].unwrap().1, (1i64 << depth) * sum, "p={p}");
        }
    }

    #[test]
    fn balanced_reduce_makespan_matches_table1_sr_row() {
        // Table 1, SR-Reduction "after": log p · (ts + m·(2tw + 4)).
        let params = ClockParams::new(100.0, 2.0);
        for (p, mw) in [(8usize, 10u64), (64, 32)] {
            let m = Machine::new(p, params);
            let run = m.run(move |ctx| {
                let x = ctx.rank() as i64;
                reduce_balanced(ctx, (x, x), mw, &sr_balanced_op())
            });
            let logp = collopt_machine::topology::ceil_log2(p) as f64;
            let expected = logp * (params.ts + mw as f64 * (2.0 * params.tw + 4.0));
            // The critical path of the tree reduction: rank 0 receives and
            // combines at every level.
            assert_eq!(run.makespan, expected, "p={p} m={mw}");
        }
    }

    #[test]
    fn allreduce_balanced_gives_everyone_the_root_value() {
        for p in [2usize, 4, 6, 8, 12, 16] {
            let inputs: Vec<i64> = (0..p as i64).map(|i| i + 1).collect();
            let expected = sum_of_prefix_sums(&inputs);
            let shared = Arc::new(inputs);
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(move |ctx| {
                let x = shared[ctx.rank()];
                allreduce_balanced(ctx, (x, x), 1, &sr_balanced_op())
            });
            for (rank, r) in run.results.iter().enumerate() {
                assert_eq!(r.0, expected, "p={p} rank={rank}");
            }
        }
    }

    /// Plain butterfly scan expressed as a paired operator, to check
    /// `scan_balanced` against ordinary prefix sums: the state is
    /// (prefix, aggregate).
    fn scan_pair(a: &(i64, i64), b: &(i64, i64)) -> ((i64, i64), (i64, i64)) {
        let agg = a.1 + b.1;
        ((a.0, agg), (a.1 + b.0, agg))
    }
    fn scan_solo(x: &(i64, i64)) -> (i64, i64) {
        *x
    }

    #[test]
    fn scan_balanced_computes_prefix_sums_for_all_sizes() {
        for p in 1..=33usize {
            let inputs: Vec<i64> = (0..p as i64).map(|i| 3 * i - 4).collect();
            let shared = Arc::new(inputs.clone());
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(move |ctx| {
                let x = shared[ctx.rank()];
                let op = PairedOp {
                    combine: &scan_pair,
                    solo: &scan_solo,
                    ops_lower: 1.0,
                    ops_upper: 2.0,
                    ops_solo: 0.0,
                    words_factor: 1,
                };
                scan_balanced(ctx, (x, x), 1, &op).0
            });
            let expected = crate::reference::ref_scan(|a, b| a + b, &inputs);
            assert_eq!(run.results, expected, "p={p}");
        }
    }

    #[test]
    fn scan_balanced_traced_records_phases() {
        let m = Machine::new(4, ClockParams::free()).with_tracing();
        let run = m.run(|ctx| {
            let x = (ctx.rank() + 1) as i64;
            let op = PairedOp {
                combine: &scan_pair,
                solo: &scan_solo,
                ops_lower: 1.0,
                ops_upper: 2.0,
                ops_solo: 0.0,
                words_factor: 1,
            };
            scan_balanced_traced(ctx, (x, x), 1, &op, Some(|q: &(i64, i64)| format!("{q:?}")))
        });
        // 4 ranks × 3 marks each (phase0..phase2).
        assert_eq!(run.trace.marks().len(), 12);
        assert!(run.trace.marks().iter().any(|s| s.starts_with("phase0:")));
        assert!(run.trace.marks().iter().any(|s| s.starts_with("phase2:")));
    }

    #[test]
    fn single_rank_balanced_ops_are_identity_like() {
        let m = Machine::new(1, ClockParams::free());
        let run = m.run(|ctx| reduce_balanced(ctx, (5i64, 5i64), 1, &sr_balanced_op()));
        assert_eq!(run.results[0], Some((5, 5)));
        let run = m.run(|ctx| {
            let op = PairedOp {
                combine: &scan_pair,
                solo: &scan_solo,
                ops_lower: 1.0,
                ops_upper: 2.0,
                ops_solo: 0.0,
                words_factor: 1,
            };
            scan_balanced(ctx, (7i64, 7i64), 1, &op)
        });
        assert_eq!(run.results[0], (7, 7));
    }
}
