//! Pipelined (segmented) broadcast — the "pipelines" implementation
//! family of the paper's Section 1 ("Solutions based on spanning trees,
//! hypercubes, pipelines, as well as hybrid schemes have been reported").
//!
//! The binomial broadcast moves the whole `m`-word block `⌈log₂ p⌉` times
//! on the critical path: `T = log p · (ts + m·tw)`. For large blocks a
//! *chain pipeline* wins: split the block into `S` segments of `m/S`
//! words and stream them down the processor line.
//!
//! On this machine an intermediate node *stores and forwards*: it cannot
//! send a segment while receiving the next (its clock serializes the two
//! transfers), so the steady-state interval at an interior node is
//! `2·u` with `u = ts + (m/S)·tw`, and the makespan is
//!
//! ```text
//! T_chain = (p − 1 + 2(S − 1)) · u     for p ≥ 3
//! T_chain = S · u                      for p = 2 (no interior node)
//! ```
//!
//! minimized at `S* = √((p−3)·m·tw / (2·ts))` ([`optimal_segments`]).
//! The crossover against the binomial tree is exactly the kind of
//! machine-dependent implementation choice the paper's cost calculus is
//! built to arbitrate — here applied one level below the algebraic rules.

use collopt_machine::{drive, Ctx};

use crate::op::Splittable;

/// The optimal segment count `S* = √((p−3)·m·tw/(2·ts))` for the
/// store-and-forward chain pipeline, clamped to `[1, m]`. With `ts = 0`
/// the model wants infinitely fine segments; we clamp to one word per
/// segment. For `p = 2` a single segment is optimal (the root streams at
/// interval `u` regardless, so splitting only adds start-ups — but the
/// receiver's completion is `S·u`, minimized at `S = 1`).
pub fn optimal_segments(p: usize, words: u64, ts: f64, tw: f64) -> u64 {
    if p <= 3 || words <= 1 {
        return 1;
    }
    if ts <= 0.0 {
        return words;
    }
    let s = ((((p - 3) as f64) * words as f64 * tw) / (2.0 * ts))
        .sqrt()
        .round() as u64;
    s.clamp(1, words)
}

/// Analytic chain-pipeline makespan under the half-duplex
/// store-and-forward model (see module docs), used by tests and the
/// ablation bench.
pub fn chain_cost(p: usize, words: u64, segments: u64, ts: f64, tw: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let seg_words = (words as f64 / segments as f64).ceil();
    let u = ts + seg_words * tw;
    if p == 2 {
        segments as f64 * u
    } else {
        ((p - 1) as f64 + 2.0 * (segments as f64 - 1.0)) * u
    }
}

/// Chain-pipelined broadcast of a block of elements. The block is split
/// into `segments` nearly equal chunks; rank `r` receives each chunk from
/// `r − 1` and immediately forwards it to `r + 1` (the root is rank 0 in
/// the chain ordering `(rank − root) mod p`). `words_per_elem` sizes the
/// cost charge.
pub fn bcast_pipelined<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    root: usize,
    value: Option<Vec<T>>,
    words_per_elem: u64,
    segments: u64,
) -> Vec<T> {
    drive(bcast_pipelined_async(
        ctx,
        root,
        value,
        words_per_elem,
        segments,
    ))
}

/// Engine-agnostic form of [`bcast_pipelined`].
pub async fn bcast_pipelined_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    root: usize,
    value: Option<Vec<T>>,
    words_per_elem: u64,
    segments: u64,
) -> Vec<T> {
    let p = ctx.size();
    let v = (ctx.rank() + p - root) % p; // position in the chain
    let segments = segments.max(1) as usize;

    if v == 0 {
        let data = value.expect("root must supply the broadcast block");
        if p == 1 {
            return data;
        }
        let next = (ctx.rank() + 1) % p;
        // Exactly `segments` chunks (possibly empty ones when the block
        // is shorter than the segment count), so sender and receivers
        // always agree on the message count.
        let chunks = data.split_into(segments);
        for chunk in chunks {
            let words = chunk.len() as u64 * words_per_elem;
            ctx.send(next, chunk, words);
        }
        data
    } else {
        assert!(value.is_none(), "non-root must not supply a block");
        let prev = (ctx.rank() + p - 1) % p;
        let forward = v + 1 < p;
        let next = (ctx.rank() + 1) % p;
        let mut data = Vec::new();
        for _ in 0..segments {
            let chunk: Vec<T> = ctx.recv_async(prev).await;
            if forward {
                let words = chunk.len() as u64 * words_per_elem;
                ctx.send(next, chunk.clone(), words);
            }
            data.extend(chunk);
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcast::bcast_binomial;
    use collopt_machine::{ClockParams, Machine};

    #[test]
    fn pipelined_bcast_delivers_the_block_everywhere() {
        for p in 1..=12usize {
            for segments in [1u64, 2, 3, 7] {
                let m = Machine::new(p, ClockParams::free());
                let run = m.run(move |ctx| {
                    let value = (ctx.rank() == 0).then(|| (0..23i64).collect::<Vec<i64>>());
                    bcast_pipelined(ctx, 0, value, 1, segments)
                });
                let expected: Vec<i64> = (0..23).collect();
                for (rank, r) in run.results.iter().enumerate() {
                    assert_eq!(r, &expected, "p={p} segments={segments} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn pipelined_bcast_with_nonzero_root() {
        let p = 6;
        let m = Machine::new(p, ClockParams::free());
        let run = m.run(|ctx| {
            let value = (ctx.rank() == 2).then(|| vec![9u8, 8, 7]);
            bcast_pipelined(ctx, 2, value, 1, 2)
        });
        assert!(run.results.iter().all(|r| r == &vec![9, 8, 7]));
    }

    #[test]
    fn more_segments_than_elements_is_fine() {
        let m = Machine::new(3, ClockParams::free());
        let run = m.run(|ctx| {
            let value = (ctx.rank() == 0).then(|| vec![1i64, 2]);
            bcast_pipelined(ctx, 0, value, 1, 64)
        });
        assert!(run.results.iter().all(|r| r == &vec![1, 2]));
    }

    #[test]
    fn chain_beats_binomial_for_large_blocks() {
        // Latency-dominated preset, big block: the pipeline wins.
        let (p, mw) = (8usize, 32_000usize);
        let clock = ClockParams::parsytec_like();
        let segments = optimal_segments(p, mw as u64, clock.ts, clock.tw);
        assert!(segments > 1);

        let m = Machine::new(p, clock);
        let tree = m.run(move |ctx| {
            let value = (ctx.rank() == 0).then(|| vec![1u8; mw]);
            bcast_binomial(ctx, 0, value, mw as u64).len()
        });
        let chain = m.run(move |ctx| {
            let value = (ctx.rank() == 0).then(|| vec![1u8; mw]);
            bcast_pipelined(ctx, 0, value, 1, segments).len()
        });
        assert!(
            chain.makespan < tree.makespan,
            "pipelined {} should beat binomial {} at m={mw}",
            chain.makespan,
            tree.makespan
        );
    }

    #[test]
    fn binomial_beats_chain_for_small_blocks() {
        // Tiny block: the chain pays p-2 extra start-ups and loses.
        let (p, mw) = (16usize, 4usize);
        let clock = ClockParams::parsytec_like();
        let m = Machine::new(p, clock);
        let tree = m.run(move |ctx| {
            let value = (ctx.rank() == 0).then(|| vec![1u8; mw]);
            bcast_binomial(ctx, 0, value, mw as u64).len()
        });
        let chain = m.run(move |ctx| {
            let value = (ctx.rank() == 0).then(|| vec![1u8; mw]);
            bcast_pipelined(ctx, 0, value, 1, 1).len()
        });
        assert!(tree.makespan < chain.makespan);
    }

    #[test]
    fn measured_chain_time_matches_the_analytic_model_exactly() {
        for (p, mw, segments) in [
            (6usize, 1200u64, 4u64),
            (2, 600, 3),
            (3, 900, 5),
            (10, 4000, 8),
        ] {
            let (ts, tw) = (100.0, 2.0);
            let m = Machine::new(p, ClockParams::new(ts, tw));
            let run = m.run(move |ctx| {
                let value = (ctx.rank() == 0).then(|| vec![1u8; mw as usize]);
                bcast_pipelined(ctx, 0, value, 1, segments).len()
            });
            let predicted = chain_cost(p, mw, segments, ts, tw);
            assert_eq!(
                run.makespan, predicted,
                "p={p} m={mw} S={segments}: measured vs model"
            );
        }
    }

    #[test]
    fn optimal_segments_formula() {
        // S* = sqrt((p-3) m tw / (2 ts)).
        assert_eq!(optimal_segments(8, 32_000, 200.0, 2.0), 28); // sqrt(5*64000/400)=28.3
        assert_eq!(optimal_segments(2, 1000, 1.0, 1.0), 1);
        assert_eq!(optimal_segments(8, 1, 1.0, 1.0), 1);
        assert_eq!(optimal_segments(8, 100, 0.0, 1.0), 100);
        // Monotone in block size.
        assert!(optimal_segments(8, 64_000, 200.0, 2.0) > optimal_segments(8, 16_000, 200.0, 2.0));
        // The chosen S really is (near-)optimal: no neighbour is better.
        let (p, mw, ts, tw) = (8usize, 32_000u64, 200.0, 2.0);
        let s = optimal_segments(p, mw, ts, tw);
        let best = chain_cost(p, mw, s, ts, tw);
        for cand in [s.saturating_sub(2), s + 2, 1, mw] {
            if cand >= 1 {
                assert!(
                    chain_cost(p, mw, cand, ts, tw) >= best * 0.999,
                    "S={cand} should not beat S*={s}"
                );
            }
        }
    }
}
