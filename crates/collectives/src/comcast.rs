//! Comcast — *compute after broadcast* (Section 3.4).
//!
//! The target pattern of the *-Comcast rules: if the root holds `b`, then
//! processor `i` ends with `g^i b` — function `g` applied `i` times.
//! The paper gives two implementations and the surprising verdict that the
//! asymptotically wasteful one is faster in practice:
//!
//! * [`comcast_bcast_repeat`] — broadcast `b`, then every processor locally
//!   runs [`repeat_apply`] over the binary digits of its own rank: digit 0
//!   applies `e`, digit 1 applies `o` (Figure 6; the square-and-multiply
//!   idea of Knuth §4.6.3). Logarithmic time, redundant computation.
//! * [`comcast_cost_optimal`] — successive doubling: processor 0 computes
//!   `e`/`o` on the seed and ships `o`'s result to processor 1; the step
//!   repeats with 2, 4, … active processors. Cost-optimal in total work
//!   but *slower* in time because the auxiliary tuple components must
//!   travel with every message (the paper's closing remark of Section 3.4,
//!   visible as the top curve of Figures 7–8).
//!
//! Both are generic in a *repeat operator* ([`RepeatOp`]): the state type
//! `S` is the auxiliary tuple (pair/triple/quadruple depending on the
//! rule), `inject` builds it from the broadcast value and `project`
//! extracts the final component (the paper's `pair`/`triple`/`quadruple`
//! and `π1` adjustment functions).

use collopt_machine::topology::ceil_log2;
use collopt_machine::{drive, Ctx};

use crate::bcast::bcast_binomial_async;

/// The `e`/`o` step functions of the paper's `repeat` schema (eq. 14),
/// with their per-word costs.
pub struct RepeatOp<'a, S> {
    /// Applied for a 0 digit. Must preserve the projected component.
    pub e: &'a (dyn Fn(&S) -> S + Sync),
    /// Applied for a 1 digit.
    pub o: &'a (dyn Fn(&S) -> S + Sync),
    /// Base operations per word for `e` (1 for BS-Comcast's `e`).
    pub ops_e: f64,
    /// Base operations per word for `o` (2 for BS-Comcast's `o`).
    pub ops_o: f64,
}

impl<S> std::fmt::Debug for RepeatOp<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepeatOp")
            .field("ops_e", &self.ops_e)
            .field("ops_o", &self.ops_o)
            .finish_non_exhaustive()
    }
}

/// Pure `repeat(e,o) k` over exactly `rounds` binary digits of `k`, least
/// significant first (eq. 14, made SPMD-uniform as in Figure 6: every
/// processor performs the same number of steps; `e` at exhausted digit
/// positions leaves the projected component untouched).
pub fn repeat_apply<S>(mut state: S, k: usize, rounds: u32, op: &RepeatOp<'_, S>) -> S {
    for j in 0..rounds {
        state = if (k >> j) & 1 == 0 {
            (op.e)(&state)
        } else {
            (op.o)(&state)
        };
    }
    state
}

/// Comcast via broadcast + local `repeat` (the fast variant, Figure 6).
///
/// `inject` is the pre-adjustment (`pair`, `triple`, `quadruple`),
/// `project` the post-adjustment (`π1`). Non-root ranks pass `None`.
pub fn comcast_bcast_repeat<B, S>(
    ctx: &mut Ctx,
    root: usize,
    value: Option<B>,
    words: u64,
    inject: &(dyn Fn(&B) -> S + Sync),
    project: &(dyn Fn(&S) -> B + Sync),
    op: &RepeatOp<'_, S>,
) -> B
where
    B: Clone + Send + 'static,
{
    drive(comcast_bcast_repeat_async(
        ctx, root, value, words, inject, project, op,
    ))
}

/// Engine-agnostic form of [`comcast_bcast_repeat`].
pub async fn comcast_bcast_repeat_async<B, S>(
    ctx: &mut Ctx,
    root: usize,
    value: Option<B>,
    words: u64,
    inject: &(dyn Fn(&B) -> S + Sync),
    project: &(dyn Fn(&S) -> B + Sync),
    op: &RepeatOp<'_, S>,
) -> B
where
    B: Clone + Send + 'static,
{
    let b = bcast_binomial_async(ctx, root, value, words).await;
    let k = (ctx.rank() + ctx.size() - root) % ctx.size();
    let rounds = ceil_log2(ctx.size());
    let mut state = inject(&b);
    for j in 0..rounds {
        if (k >> j) & 1 == 0 {
            state = (op.e)(&state);
            ctx.charge(words as f64 * op.ops_e, "comcast:e");
        } else {
            state = (op.o)(&state);
            ctx.charge(words as f64 * op.ops_o, "comcast:o");
        }
    }
    project(&state)
}

/// [`comcast_bcast_repeat`] recording the state after each repeat step via
/// [`Ctx::mark`] — used to reproduce Figure 6 verbatim.
#[allow(clippy::too_many_arguments)]
pub fn comcast_bcast_repeat_traced<B, S>(
    ctx: &mut Ctx,
    root: usize,
    value: Option<B>,
    words: u64,
    inject: &(dyn Fn(&B) -> S + Sync),
    project: &(dyn Fn(&S) -> B + Sync),
    op: &RepeatOp<'_, S>,
    fmt: impl Fn(&S) -> String,
) -> B
where
    B: Clone + Send + 'static,
{
    drive(comcast_bcast_repeat_traced_async(
        ctx, root, value, words, inject, project, op, fmt,
    ))
}

/// Engine-agnostic form of [`comcast_bcast_repeat_traced`].
#[allow(clippy::too_many_arguments)]
pub async fn comcast_bcast_repeat_traced_async<B, S>(
    ctx: &mut Ctx,
    root: usize,
    value: Option<B>,
    words: u64,
    inject: &(dyn Fn(&B) -> S + Sync),
    project: &(dyn Fn(&S) -> B + Sync),
    op: &RepeatOp<'_, S>,
    fmt: impl Fn(&S) -> String,
) -> B
where
    B: Clone + Send + 'static,
{
    let b = bcast_binomial_async(ctx, root, value, words).await;
    let k = (ctx.rank() + ctx.size() - root) % ctx.size();
    let rounds = ceil_log2(ctx.size());
    let mut state = inject(&b);
    ctx.mark(format!("step0:{}", fmt(&state)));
    for j in 0..rounds {
        if (k >> j) & 1 == 0 {
            state = (op.e)(&state);
            ctx.charge(words as f64 * op.ops_e, "comcast:e");
        } else {
            state = (op.o)(&state);
            ctx.charge(words as f64 * op.ops_o, "comcast:o");
        }
        ctx.mark(format!("step{}:{}", j + 1, fmt(&state)));
    }
    project(&state)
}

/// Cost-optimal comcast via successive doubling (Section 3.4's alternative).
///
/// Round `j`: every active processor `v < 2^j` computes `o(s)` — the state
/// for index `v + 2^j` — sends it to that processor (full auxiliary tuple
/// on the wire, `words · words_factor` words), and keeps `e(s)` to stay
/// current for later rounds. Total work is O(p) operator applications, but
/// the critical path pays `log p · (ts + f·m·tw + (ops_e + ops_o)·m)`,
/// which loses to [`comcast_bcast_repeat`]'s
/// `log p · (ts + m·tw + ops_o·m)` whenever the auxiliary factor `f > 1` —
/// the paper's observation that the cost-optimal version is slower.
#[allow(clippy::too_many_arguments)]
pub fn comcast_cost_optimal<B, S>(
    ctx: &mut Ctx,
    root: usize,
    value: Option<B>,
    words: u64,
    inject: &(dyn Fn(&B) -> S + Sync),
    project: &(dyn Fn(&S) -> B + Sync),
    op: &RepeatOp<'_, S>,
    words_factor: u64,
) -> B
where
    B: Clone + Send + 'static,
    S: Clone + Send + 'static,
{
    drive(comcast_cost_optimal_async(
        ctx,
        root,
        value,
        words,
        inject,
        project,
        op,
        words_factor,
    ))
}

/// Engine-agnostic form of [`comcast_cost_optimal`].
#[allow(clippy::too_many_arguments)]
pub async fn comcast_cost_optimal_async<B, S>(
    ctx: &mut Ctx,
    root: usize,
    value: Option<B>,
    words: u64,
    inject: &(dyn Fn(&B) -> S + Sync),
    project: &(dyn Fn(&S) -> B + Sync),
    op: &RepeatOp<'_, S>,
    words_factor: u64,
) -> B
where
    B: Clone + Send + 'static,
    S: Clone + Send + 'static,
{
    let p = ctx.size();
    let v = (ctx.rank() + p - root) % p;
    let rounds = ceil_log2(p);
    let mut state: Option<S> = if v == 0 {
        Some(inject(&value.expect("root must supply the comcast seed")))
    } else {
        assert!(
            value.is_none(),
            "non-root rank must not supply a comcast seed"
        );
        None
    };
    for j in 0..rounds {
        let bit = 1usize << j;
        match &state {
            Some(s) => {
                let target = v + bit;
                if target < p {
                    let shipped = (op.o)(s);
                    ctx.charge(words as f64 * op.ops_o, "comcast_opt:o");
                    ctx.send((target + root) % p, shipped, words * words_factor);
                }
                state = Some((op.e)(s));
                ctx.charge(words as f64 * op.ops_e, "comcast_opt:e");
            }
            None => {
                if v >= bit && v < 2 * bit {
                    let src = ((v - bit) + root) % p;
                    state = Some(ctx.recv_async(src).await);
                }
            }
        }
    }
    project(&state.expect("every rank is reached within ceil_log2(p) rounds"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ref_comcast;
    use collopt_machine::{ClockParams, Machine};

    /// BS-Comcast's repeat operator with ⊕ = + (Figure 6):
    /// `e(t,u) = (t, u+u)`, `o(t,u) = (t+u, u+u)`.
    fn e(s: &(i64, i64)) -> (i64, i64) {
        (s.0, s.1 + s.1)
    }
    fn o(s: &(i64, i64)) -> (i64, i64) {
        (s.0 + s.1, s.1 + s.1)
    }
    fn pair(b: &i64) -> (i64, i64) {
        (*b, *b)
    }
    fn pi1(s: &(i64, i64)) -> i64 {
        s.0
    }
    fn bs_op<'a>() -> RepeatOp<'a, (i64, i64)> {
        RepeatOp {
            e: &e,
            o: &o,
            ops_e: 1.0,
            ops_o: 2.0,
        }
    }

    #[test]
    fn repeat_apply_computes_k_plus_one_times_b() {
        // With the BS operator, π1(repeat k (b,b)) = (k+1)·b.
        for k in 0..64usize {
            let rounds = 6;
            let got = repeat_apply(pair(&2), k, rounds, &bs_op());
            assert_eq!(got.0, 2 * (k as i64 + 1), "k={k}");
        }
    }

    #[test]
    fn repeat_apply_zero_rounds_is_identity() {
        assert_eq!(repeat_apply(pair(&9), 0, 0, &bs_op()), (9, 9));
    }

    #[test]
    fn figure6_exact_result_on_six_processors() {
        // Figure 6: b = 2, six processors, result [2,4,6,8,10,12].
        let m = Machine::new(6, ClockParams::free());
        let run = m.run(|ctx| {
            let value = (ctx.rank() == 0).then_some(2i64);
            comcast_bcast_repeat(ctx, 0, value, 1, &pair, &pi1, &bs_op())
        });
        assert_eq!(run.results, vec![2, 4, 6, 8, 10, 12]);
    }

    #[test]
    fn figure6_intermediate_states_match_paper() {
        // Figure 6's table for processor 3: (2,2) → (4,4) → (8,8) → (8,16).
        let m = Machine::new(6, ClockParams::free()).with_tracing();
        let run = m.run(|ctx| {
            let value = (ctx.rank() == 0).then_some(2i64);
            comcast_bcast_repeat_traced(ctx, 0, value, 1, &pair, &pi1, &bs_op(), |s| {
                format!("{},{}", s.0, s.1)
            })
        });
        assert_eq!(run.results, vec![2, 4, 6, 8, 10, 12]);
        let marks = run.trace.marks();
        // Proc 0 (k=0, digits 0,0,0): (2,2) → (2,4) → (2,8) → (2,16).
        for want in ["step0:2,2", "step1:2,4", "step2:2,8", "step3:2,16"] {
            assert!(marks.contains(&want), "missing {want}; got {marks:?}");
        }
        // Proc 3 (k=3, digits 1,1,0): (2,2) → (4,4) → (8,8) → (8,16).
        for want in ["step1:4,4", "step2:8,8", "step3:8,16"] {
            assert!(marks.contains(&want), "missing {want}; got {marks:?}");
        }
        // Proc 5 (k=5, digits 1,0,1): (2,2) → (4,4) → (4,8) → (12,16).
        for want in ["step2:4,8", "step3:12,16"] {
            assert!(marks.contains(&want), "missing {want}; got {marks:?}");
        }
    }

    #[test]
    fn both_variants_agree_with_reference_for_all_sizes() {
        for p in 1..=24usize {
            let seed = 3i64;
            let expect: Vec<i64> = {
                let mut xs = vec![seed; p];
                xs[0] = seed;
                ref_comcast(|x| x + seed, &xs)
            };
            let m = Machine::new(p, ClockParams::free());
            let run_fast = m.run(|ctx| {
                let value = (ctx.rank() == 0).then_some(seed);
                comcast_bcast_repeat(ctx, 0, value, 1, &pair, &pi1, &bs_op())
            });
            assert_eq!(run_fast.results, expect, "bcast_repeat p={p}");
            let run_opt = m.run(|ctx| {
                let value = (ctx.rank() == 0).then_some(seed);
                comcast_cost_optimal(ctx, 0, value, 1, &pair, &pi1, &bs_op(), 2)
            });
            assert_eq!(run_opt.results, expect, "cost_optimal p={p}");
        }
    }

    #[test]
    fn cost_optimal_is_slower_than_bcast_repeat() {
        // The paper's Section 3.4 remark, and the ordering of the curves in
        // Figures 7–8: comcast (cost-optimal) > bcast;repeat.
        let params = ClockParams::new(100.0, 2.0);
        let mw = 64u64;
        for p in [8usize, 16, 64] {
            let m = Machine::new(p, params);
            let fast = m.run(|ctx| {
                let value = (ctx.rank() == 0).then_some(1i64);
                comcast_bcast_repeat(ctx, 0, value, mw, &pair, &pi1, &bs_op())
            });
            let opt = m.run(|ctx| {
                let value = (ctx.rank() == 0).then_some(1i64);
                comcast_cost_optimal(ctx, 0, value, mw, &pair, &pi1, &bs_op(), 2)
            });
            assert!(
                opt.makespan > fast.makespan,
                "p={p}: cost-optimal {} should exceed bcast;repeat {}",
                opt.makespan,
                fast.makespan
            );
        }
    }

    #[test]
    fn bcast_repeat_makespan_matches_table1_bs_row() {
        // Table 1, BS-Comcast "after": log p · (ts + m·(tw + 2)).
        let params = ClockParams::new(100.0, 2.0);
        for (p, mw) in [(8usize, 10u64), (64, 32)] {
            let m = Machine::new(p, params);
            let run = m.run(move |ctx| {
                let value = (ctx.rank() == 0).then_some(1i64);
                comcast_bcast_repeat(ctx, 0, value, mw, &pair, &pi1, &bs_op())
            });
            let logp = collopt_machine::topology::ceil_log2(p) as f64;
            let expected = logp * (params.ts + mw as f64 * (params.tw + 2.0));
            assert_eq!(run.makespan, expected, "p={p} m={mw}");
        }
    }

    #[test]
    fn nonzero_root_rotates_the_pattern() {
        let m = Machine::new(5, ClockParams::free());
        let run = m.run(|ctx| {
            let value = (ctx.rank() == 2).then_some(10i64);
            comcast_bcast_repeat(ctx, 2, value, 1, &pair, &pi1, &bs_op())
        });
        // Virtual index of rank r is (r - 2) mod 5.
        assert_eq!(run.results, vec![40, 50, 10, 20, 30]);
    }
}
