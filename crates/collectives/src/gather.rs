//! Gather, scatter, allgather and barrier-style helpers.
//!
//! The paper's rules only manipulate broadcast, reduction and scan, but its
//! programming model (Section 1) names scatter among the collective
//! operations, and realistic programs built on this library need the full
//! family. All three use binomial trees with message sizes that double
//! (gather) or halve (scatter) along the tree, the standard
//! `log p` -round algorithms.

use collopt_machine::topology::ceil_log2;
use collopt_machine::{drive, Ctx};

use crate::bcast::bcast_binomial_async;

/// Gather every rank's block to rank 0, in rank order.
///
/// Along the binomial tree, the subtree of virtual rank `v` at round `j`
/// covers ranks `v..v+2^j`, so each merge concatenates contiguous,
/// rank-ordered segments. Returns `Some(blocks)` on rank 0 (index `i` =
/// rank `i`'s block), `None` elsewhere. `words` is the size of one block.
pub fn gather_binomial<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
) -> Option<Vec<T>> {
    drive(gather_binomial_async(ctx, value, words))
}

/// Engine-agnostic form of [`gather_binomial`].
pub async fn gather_binomial_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
) -> Option<Vec<T>> {
    let p = ctx.size();
    let rank = ctx.rank();
    let mut acc: Vec<T> = vec![value];
    for round in 0..ceil_log2(p) {
        let bit = 1usize << round;
        if rank & bit != 0 {
            let sz = acc.len() as u64;
            ctx.send(rank - bit, acc, words * sz);
            return None;
        }
        let src = rank + bit;
        if src < p {
            let got: Vec<T> = ctx.recv_async(src).await;
            acc.extend(got);
        }
    }
    debug_assert_eq!(acc.len(), p);
    Some(acc)
}

/// Scatter rank 0's vector of blocks (`blocks[i]` for rank `i`) across all
/// ranks. The inverse of [`gather_binomial`]: message sizes halve along the
/// tree. `words` is the size of one block.
pub fn scatter_binomial<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    blocks: Option<Vec<T>>,
    words: u64,
) -> T {
    drive(scatter_binomial_async(ctx, blocks, words))
}

/// Engine-agnostic form of [`scatter_binomial`].
pub async fn scatter_binomial_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    blocks: Option<Vec<T>>,
    words: u64,
) -> T {
    let p = ctx.size();
    let rank = ctx.rank();
    let rounds = ceil_log2(p);
    // Time reversal of the gather tree: rank r obtains the segment
    // [r, r + 2^tz(r)) ∩ [0, p) from r - 2^tz(r), then repeatedly splits
    // off and forwards the upper half of whatever it holds.
    let mut held: Vec<T>;
    let first_round;
    if rank == 0 {
        held = blocks.expect("rank 0 must supply the blocks to scatter");
        assert_eq!(held.len(), p, "need exactly one block per rank");
        first_round = 0;
    } else {
        assert!(blocks.is_none(), "non-root ranks must not supply blocks");
        let j = rank.trailing_zeros();
        held = ctx.recv_async(rank - (1usize << j)).await;
        first_round = rounds - j;
    }
    for round in first_round..rounds {
        let bit = 1usize << (rounds - 1 - round);
        if bit < held.len() {
            let upper: Vec<T> = held.split_off(bit);
            let sz = upper.len() as u64;
            ctx.send(rank + bit, upper, words * sz);
        }
    }
    held.into_iter().next().expect("own block remains")
}

/// Allgather: every rank ends with every rank's block, in rank order.
/// Implemented as a binomial gather followed by a binomial broadcast of the
/// assembled vector (`2 log p` rounds).
pub fn allgather<T: Clone + Send + 'static>(ctx: &mut Ctx, value: T, words: u64) -> Vec<T> {
    drive(allgather_async(ctx, value, words))
}

/// Engine-agnostic form of [`allgather`].
pub async fn allgather_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
) -> Vec<T> {
    let p = ctx.size() as u64;
    let gathered = gather_binomial_async(ctx, value, words).await;
    bcast_binomial_async(ctx, 0, gathered, words * p).await
}

/// MPI_Barrier over the whole machine: a dissemination barrier of empty
/// messages, `⌈log₂ p⌉` rounds. Unlike [`collopt_machine::Ctx::barrier`]
/// (which also aligns the simulated clocks to the global maximum), this
/// one is a pure message-passing construct whose cost is visible in the
/// makespan, like a real MPI barrier.
pub fn barrier(ctx: &mut Ctx) {
    drive(barrier_async(ctx))
}

/// Engine-agnostic form of [`barrier`].
pub async fn barrier_async(ctx: &mut Ctx) {
    let p = ctx.size();
    for round in 0..ceil_log2(p) {
        let dist = 1usize << round;
        let to = (ctx.rank() + dist) % p;
        let from = (ctx.rank() + p - dist) % p;
        if to == from {
            if to != ctx.rank() {
                ctx.exchange_async(to, (), 0).await;
            }
            continue;
        }
        ctx.send(to, (), 0);
        let () = ctx.recv_async(from).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collopt_machine::{ClockParams, Machine};

    #[test]
    fn gather_assembles_in_rank_order() {
        for p in 1..=20usize {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| gather_binomial(ctx, ctx.rank() * 10, 1));
            let expected: Vec<usize> = (0..p).map(|r| r * 10).collect();
            assert_eq!(run.results[0], Some(expected), "p={p}");
            assert!(run.results[1..].iter().all(Option::is_none));
        }
    }

    #[test]
    fn scatter_delivers_each_block_to_its_rank() {
        for p in 1..=20usize {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(move |ctx| {
                let blocks =
                    (ctx.rank() == 0).then(|| (0..ctx.size()).map(|r| r * 7 + 1).collect());
                scatter_binomial(ctx, blocks, 1)
            });
            let expected: Vec<usize> = (0..p).map(|r| r * 7 + 1).collect();
            assert_eq!(run.results, expected, "p={p}");
        }
    }

    #[test]
    fn scatter_then_gather_roundtrips() {
        for p in [1usize, 3, 6, 8, 13] {
            let original: Vec<String> = (0..p).map(|r| format!("block{r}")).collect();
            let orig2 = std::sync::Arc::new(original.clone());
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(move |ctx| {
                let blocks = (ctx.rank() == 0).then(|| orig2.as_ref().clone());
                let mine = scatter_binomial(ctx, blocks, 4);
                gather_binomial(ctx, mine, 4)
            });
            assert_eq!(run.results[0], Some(original), "p={p}");
        }
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        for p in [1usize, 2, 5, 8, 11] {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| allgather(ctx, ctx.rank() as i64, 1));
            let expected: Vec<i64> = (0..p as i64).collect();
            for (rank, r) in run.results.iter().enumerate() {
                assert_eq!(r, &expected, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn barrier_completes_and_costs_log_p_startups() {
        for p in [1usize, 2, 3, 6, 8, 13] {
            let params = ClockParams::new(50.0, 1.0);
            let m = Machine::new(p, params);
            let run = m.run(|ctx| {
                barrier(ctx);
                ctx.time()
            });
            if p == 1 {
                assert_eq!(run.makespan, 0.0);
            } else {
                // At least log p rounds of start-ups; dissemination skew
                // can add a bounded factor on the store-and-forward model.
                let logp = collopt_machine::topology::ceil_log2(p) as f64;
                assert!(run.makespan >= logp * 50.0, "p={p}: {}", run.makespan);
                assert!(run.makespan <= 3.0 * logp * 50.0, "p={p}: {}", run.makespan);
            }
        }
    }

    #[test]
    fn barrier_actually_synchronizes() {
        // A rank that races ahead must wait for the slowest rank's round.
        let m = Machine::new(4, ClockParams::new(10.0, 0.0));
        let run = m.run(|ctx| {
            if ctx.rank() == 2 {
                ctx.charge(500.0, "slow");
            }
            barrier(ctx);
            ctx.time()
        });
        for (rank, &t) in run.finish_times.iter().enumerate() {
            assert!(
                t >= 500.0,
                "rank {rank} left the barrier before the straggler: {t}"
            );
        }
    }

    #[test]
    fn gather_charges_no_compute() {
        let m = Machine::new(8, ClockParams::new(10.0, 1.0));
        let run = m.run(|ctx| gather_binomial(ctx, ctx.rank(), 2));
        assert!(run.compute_ops.iter().all(|&c| c == 0.0));
        assert!(run.makespan > 0.0);
    }
}
