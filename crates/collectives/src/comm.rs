//! MPI-flavored communicators: collective operations over *subgroups* of
//! the machine.
//!
//! The paper assumes "all collective operations in a program take place on
//! the same group of processors" (Section 2.2) — this module removes that
//! assumption the way MPI does, with communicators. A [`Comm`] names an
//! ordered subset of the machine's ranks; every member calls the same
//! collective on it, and rank arithmetic (binomial trees, butterflies)
//! happens in *group coordinates*, translated to machine ranks only at the
//! send/recv boundary.
//!
//! All communicator collectives are implemented over point-to-point
//! messages only (no global barrier), so disjoint communicators can run
//! collectives concurrently — e.g. the row- and column-communicators of a
//! 2-D processor grid, the standard pattern in PLAPACK-style libraries
//! the paper cites.

use collopt_machine::topology::{butterfly_partner, butterfly_rounds, ceil_log2};
use collopt_machine::Ctx;

use crate::op::Combine;

/// An ordered process group bound to one rank's [`Ctx`].
///
/// `ranks[i]` is the machine rank of group member `i`; the calling rank
/// must be a member. Ordering matters: collectives combine in group-rank
/// order, exactly as the paper's distributed lists are indexed.
pub struct Comm<'a> {
    ctx: &'a mut Ctx,
    ranks: Vec<usize>,
    my_index: usize,
}

impl<'a> Comm<'a> {
    /// The world communicator: all machine ranks in order.
    pub fn world(ctx: &'a mut Ctx) -> Self {
        let ranks: Vec<usize> = (0..ctx.size()).collect();
        Comm::new(ctx, ranks)
    }

    /// A communicator over an explicit ordered rank list. Panics if the
    /// calling rank is not a member or a rank is invalid/duplicated.
    pub fn new(ctx: &'a mut Ctx, ranks: Vec<usize>) -> Self {
        assert!(
            !ranks.is_empty(),
            "a communicator needs at least one member"
        );
        let mut seen = vec![false; ctx.size()];
        for &r in &ranks {
            assert!(r < ctx.size(), "rank {r} out of range");
            assert!(!seen[r], "duplicate rank {r} in communicator");
            seen[r] = true;
        }
        let me = ctx.rank();
        let my_index = ranks
            .iter()
            .position(|&r| r == me)
            .unwrap_or_else(|| panic!("rank {me} is not a member of this communicator"));
        Comm {
            ctx,
            ranks,
            my_index,
        }
    }

    /// MPI_Comm_split: all ranks with the same `color` form one
    /// communicator, ordered by machine rank. Every machine rank must
    /// call this with its own color; `color_of` maps machine rank →
    /// color, evaluated locally (no communication, like a split with a
    /// globally known coloring).
    pub fn split(ctx: &'a mut Ctx, color_of: impl Fn(usize) -> u64) -> Self {
        let my_color = color_of(ctx.rank());
        let ranks: Vec<usize> = (0..ctx.size())
            .filter(|&r| color_of(r) == my_color)
            .collect();
        Comm::new(ctx, ranks)
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// This member's group rank.
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Machine rank of group member `index`.
    pub fn translate(&self, index: usize) -> usize {
        self.ranks[index]
    }

    /// Point-to-point send to a *group* rank.
    pub fn send<T: Send + 'static>(&mut self, to: usize, value: T, words: u64) {
        let dst = self.ranks[to];
        self.ctx.send(dst, value, words);
    }

    /// Point-to-point receive from a *group* rank.
    pub fn recv<T: Send + 'static>(&mut self, from: usize) -> T {
        let src = self.ranks[from];
        self.ctx.recv(src)
    }

    /// Simultaneous exchange with a group rank.
    pub fn exchange<T: Send + 'static>(&mut self, partner: usize, value: T, words: u64) -> T {
        let peer = self.ranks[partner];
        self.ctx.exchange(peer, value, words)
    }

    /// Group barrier: a butterfly of empty exchanges (`⌈log₂ n⌉` rounds,
    /// stragglers handled by the dissemination pattern), independent of
    /// other communicators.
    pub fn barrier(&mut self) {
        let n = self.size();
        // Dissemination barrier: round k, member i pairs with i±2^k.
        let rounds = ceil_log2(n);
        for round in 0..rounds {
            let dist = 1usize << round;
            let to = (self.my_index + dist) % n;
            let from = (self.my_index + n - dist) % n;
            let to_rank = self.ranks[to];
            let from_rank = self.ranks[from];
            if to_rank == from_rank {
                if to_rank != self.ranks[self.my_index] {
                    self.ctx.exchange(to_rank, (), 0);
                }
                continue;
            }
            self.ctx.send(to_rank, (), 0);
            let () = self.ctx.recv(from_rank);
        }
    }

    /// MPI_Bcast over the group (binomial tree rooted at group rank
    /// `root`).
    pub fn bcast<T: Clone + Send + 'static>(
        &mut self,
        root: usize,
        value: Option<T>,
        words: u64,
    ) -> T {
        let n = self.size();
        assert!(root < n);
        let v = (self.my_index + n - root) % n; // virtual group rank
        let held: T = if v == 0 {
            value.expect("root must supply the broadcast value")
        } else {
            assert!(value.is_none(), "non-root must not supply a value");
            let j = collopt_machine::topology::floor_log2(v);
            let src_v = v - (1usize << j);
            let src = self.ranks[(src_v + root) % n];
            self.ctx.recv(src)
        };
        let first_round = if v == 0 {
            0
        } else {
            collopt_machine::topology::floor_log2(v) + 1
        };
        for round in first_round..ceil_log2(n) {
            let dst_v = v + (1usize << round);
            if dst_v < n && v < (1usize << round) {
                let dst = self.ranks[(dst_v + root) % n];
                self.ctx.send(dst, held.clone(), words);
            }
        }
        held
    }

    /// MPI_Reduce over the group to group rank 0, combining in group-rank
    /// order (safe for any associative operator).
    pub fn reduce<T: Clone + Send + 'static>(
        &mut self,
        value: T,
        words: u64,
        op: &Combine<'_, T>,
    ) -> Option<T> {
        let n = self.size();
        let v = self.my_index;
        let mut acc = value;
        for round in 0..ceil_log2(n) {
            let bit = 1usize << round;
            if v & bit != 0 {
                let dst = self.ranks[v - bit];
                self.ctx.send(dst, acc, words);
                return None;
            }
            let src_v = v + bit;
            if src_v < n {
                let got: T = self.ctx.recv(self.ranks[src_v]);
                acc = op.apply(&acc, &got);
                self.ctx
                    .charge(words as f64 * op.ops_per_word, "comm.reduce:combine");
            }
        }
        Some(acc)
    }

    /// MPI_Allreduce over the group: butterfly for power-of-two group
    /// sizes, reduce + bcast otherwise.
    pub fn allreduce<T: Clone + Send + 'static>(
        &mut self,
        value: T,
        words: u64,
        op: &Combine<'_, T>,
    ) -> T {
        let n = self.size();
        if n.is_power_of_two() {
            let mut acc = value;
            for round in 0..butterfly_rounds(n) {
                let partner = self.my_index ^ (1usize << round);
                let got: T = self.ctx.exchange(self.ranks[partner], acc.clone(), words);
                acc = if partner > self.my_index {
                    op.apply(&acc, &got)
                } else {
                    op.apply(&got, &acc)
                };
                self.ctx
                    .charge(words as f64 * op.ops_per_word, "comm.allreduce:combine");
            }
            acc
        } else {
            let reduced = self.reduce(value, words, op);
            self.bcast(0, reduced, words)
        }
    }

    /// MPI_Scan (inclusive) over the group, any group size.
    pub fn scan<T: Clone + Send + 'static>(
        &mut self,
        value: T,
        words: u64,
        op: &Combine<'_, T>,
    ) -> T {
        let n = self.size();
        let mut result = value.clone();
        let mut aggregate = value;
        for round in 0..butterfly_rounds(n) {
            let Some(partner) = butterfly_partner(self.my_index, round, n) else {
                continue;
            };
            let got: T = self
                .ctx
                .exchange(self.ranks[partner], aggregate.clone(), words);
            if partner < self.my_index {
                result = op.apply(&got, &result);
                aggregate = op.apply(&got, &aggregate);
                self.ctx
                    .charge(2.0 * words as f64 * op.ops_per_word, "comm.scan:combine2");
            } else {
                aggregate = op.apply(&aggregate, &got);
                self.ctx
                    .charge(words as f64 * op.ops_per_word, "comm.scan:combine1");
            }
        }
        result
    }

    /// MPI_Gather over the group to group rank 0, in group-rank order.
    pub fn gather<T: Clone + Send + 'static>(&mut self, value: T, words: u64) -> Option<Vec<T>> {
        let n = self.size();
        let v = self.my_index;
        let mut acc: Vec<T> = vec![value];
        for round in 0..ceil_log2(n) {
            let bit = 1usize << round;
            if v & bit != 0 {
                let sz = acc.len() as u64;
                let dst = self.ranks[v - bit];
                self.ctx.send(dst, acc, words * sz);
                return None;
            }
            let src_v = v + bit;
            if src_v < n {
                let got: Vec<T> = self.ctx.recv(self.ranks[src_v]);
                acc.extend(got);
            }
        }
        Some(acc)
    }

    /// MPI_Allgather over the group (gather + bcast).
    pub fn allgather<T: Clone + Send + 'static>(&mut self, value: T, words: u64) -> Vec<T> {
        let n = self.size() as u64;
        let gathered = self.gather(value, words);
        self.bcast(0, gathered, words * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collopt_machine::{ClockParams, Machine};

    #[test]
    fn world_comm_matches_plain_collectives() {
        let m = Machine::new(7, ClockParams::free());
        let run = m.run(|ctx| {
            let rank = ctx.rank();
            let mut comm = Comm::world(ctx);
            assert_eq!(comm.rank(), rank);
            let add = |a: &i64, b: &i64| a + b;
            comm.scan(rank as i64 + 1, 1, &Combine::new(&add))
        });
        assert_eq!(run.results, vec![1, 3, 6, 10, 15, 21, 28]);
    }

    #[test]
    fn split_into_even_and_odd_groups() {
        let m = Machine::new(8, ClockParams::free());
        let run = m.run(|ctx| {
            let mut comm = Comm::split(ctx, |r| (r % 2) as u64);
            assert_eq!(comm.size(), 4);
            let add = |a: &i64, b: &i64| a + b;
            let mine = comm.translate(comm.rank()) as i64; // = machine rank
            comm.allreduce(mine, 1, &Combine::new(&add))
        });
        // Evens sum to 0+2+4+6 = 12, odds to 1+3+5+7 = 16.
        for r in 0..8 {
            assert_eq!(run.results[r], if r % 2 == 0 { 12 } else { 16 }, "rank {r}");
        }
    }

    #[test]
    fn grid_rows_and_columns() {
        // A 3x4 grid: row communicators then column communicators — the
        // PLAPACK pattern. Row-sum then column-max of the row sums.
        let (rows, cols) = (3usize, 4usize);
        let m = Machine::new(rows * cols, ClockParams::free());
        let run = m.run(move |ctx| {
            let rank = ctx.rank();
            let (r, _c) = (rank / cols, rank % cols);
            let add = |a: &i64, b: &i64| a + b;
            let max = |a: &i64, b: &i64| *a.max(b);
            let row_sum = {
                let mut row_comm = Comm::split(ctx, |mr| (mr / cols) as u64);
                assert_eq!(row_comm.size(), cols);
                row_comm.allreduce(rank as i64, 1, &Combine::new(&add))
            };
            // Row r holds Σ of ranks in that row.
            let expected_row_sum: i64 = (0..cols).map(|c| (r * cols + c) as i64).sum();
            assert_eq!(row_sum, expected_row_sum);
            let mut col_comm = Comm::split(ctx, |mr| (mr % cols) as u64);
            assert_eq!(col_comm.size(), rows);
            col_comm.allreduce(row_sum, 1, &Combine::new(&max))
        });
        // Max row sum = last row: 8+9+10+11 = 38.
        assert!(run.results.iter().all(|&v| v == 38));
    }

    #[test]
    fn bcast_from_nonzero_group_root() {
        let m = Machine::new(9, ClockParams::free());
        let run = m.run(|ctx| {
            // Evens form a 5-member group {0,2,4,6,8}; odds {1,3,5,7}.
            // Root is group rank 3 (machine rank 6 / 7 respectively).
            let mut comm = Comm::split(ctx, |r| (r % 2) as u64);
            let value = (comm.rank() == 3).then(|| comm.translate(3) as i64);
            Some(comm.bcast(3, value, 1))
        });
        for (r, out) in run.results.iter().enumerate() {
            let expected = if r % 2 == 0 { 6 } else { 7 };
            assert_eq!(out.unwrap(), expected, "rank {r}");
        }
    }

    #[test]
    fn reduce_preserves_group_order_for_nonabelian_op() {
        let m = Machine::new(6, ClockParams::free());
        let run = m.run(|ctx| {
            // Group: ranks in reverse order 5,4,3,2,1,0.
            let ranks: Vec<usize> = (0..ctx.size()).rev().collect();
            let mut comm = Comm::new(ctx, ranks);
            let cat = |a: &String, b: &String| format!("{a}{b}");
            let mine = comm.translate(comm.rank()).to_string();
            comm.reduce(mine, 1, &Combine::new(&cat))
        });
        // Group rank 0 = machine rank 5; combined in group order 5..0.
        assert_eq!(run.results[5], Some("543210".to_string()));
        assert!(run.results[..5].iter().all(Option::is_none));
    }

    #[test]
    fn gather_and_allgather_on_subgroup() {
        let m = Machine::new(10, ClockParams::free());
        let run = m.run(|ctx| {
            let mut comm = Comm::split(ctx, |r| u64::from(r >= 5));
            comm.allgather(comm.translate(comm.rank()), 1)
        });
        for r in 0..10 {
            let expected: Vec<usize> = if r < 5 {
                (0..5).collect()
            } else {
                (5..10).collect()
            };
            assert_eq!(run.results[r], expected, "rank {r}");
        }
    }

    #[test]
    fn disjoint_communicators_run_concurrently() {
        // Two halves each do a long chain of collectives; no cross-talk.
        let m = Machine::new(8, ClockParams::free());
        let run = m.run(|ctx| {
            let mut comm = Comm::split(ctx, |r| u64::from(r >= 4));
            let add = |a: &i64, b: &i64| a + b;
            let mut v = comm.rank() as i64;
            for _ in 0..10 {
                v = comm.allreduce(v, 1, &Combine::new(&add));
                v %= 1000;
                comm.barrier();
            }
            v
        });
        // Both halves compute the same recurrence (same group ranks 0..3).
        assert_eq!(run.results[0..4], run.results[4..8]);
    }

    #[test]
    fn barrier_synchronizes_group_clocks_only() {
        let m = Machine::new(4, ClockParams::new(10.0, 1.0));
        let run = m.run(|ctx| {
            if ctx.rank() < 2 {
                ctx.charge(1000.0, "slow-half");
                let mut comm = Comm::split(ctx, |r| u64::from(r < 2));
                comm.barrier();
            } else {
                let mut comm = Comm::split(ctx, |r| u64::from(r < 2));
                comm.barrier();
            }
            ctx.time()
        });
        // Fast half's barrier is independent: finishes well before 1000.
        assert!(run.results[2] < 1000.0);
        assert!(run.results[0] >= 1000.0);
    }

    #[test]
    fn singleton_communicator_is_trivial() {
        let m = Machine::new(3, ClockParams::free());
        let run = m.run(|ctx| {
            let rank = ctx.rank();
            let mut comm = Comm::split(ctx, |r| r as u64); // each alone
            assert_eq!(comm.size(), 1);
            comm.barrier();
            let add = |a: &i64, b: &i64| a + b;
            let s = comm.scan(rank as i64, 1, &Combine::new(&add));
            let r = comm.allreduce(s, 1, &Combine::new(&add));
            comm.bcast(0, Some(r), 1)
        });
        assert_eq!(run.results, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn non_member_construction_panics() {
        let m = Machine::new(3, ClockParams::free());
        m.run(|ctx| {
            // Rank 2 is not in the list and must panic at construction.
            let _ = Comm::new(ctx, vec![0, 1]);
        });
    }
}
