//! Operator descriptors carried into collectives.
//!
//! The paper charges local computation at one unit per base-operation per
//! word. A collective cannot know how many base operations one application
//! of a user operator performs — `+` on a block is one per word, the fused
//! `op_sr2` is three per word — so the descriptor carries the charge
//! explicitly alongside the combine function.

/// A binary combine operator on blocks of type `T`, with its computational
/// cost declared in base operations per block word.
pub struct Combine<'a, T> {
    /// The combine function. Must be associative for the standard
    /// collectives (`reduce`, `allreduce`, `scan`) to be well-defined.
    pub f: &'a (dyn Fn(&T, &T) -> T + Sync),
    /// Base operations charged per word of the block for one application.
    pub ops_per_word: f64,
    /// Declared commutative. Gates the operand-reordering algorithms
    /// (ring reduce-scatter, fold-excess allreduce); a false declaration
    /// makes those algorithms produce wrong results, so it is an explicit
    /// opt-in, never inferred.
    pub commutative: bool,
}

impl<'a, T> Combine<'a, T> {
    /// A combine with the default charge of one base operation per word
    /// (a plain scalar operator like `+` applied elementwise).
    pub fn new(f: &'a (dyn Fn(&T, &T) -> T + Sync)) -> Self {
        Combine {
            f,
            ops_per_word: 1.0,
            commutative: false,
        }
    }

    /// A combine with an explicit per-word charge (fused tuple operators).
    pub fn with_cost(f: &'a (dyn Fn(&T, &T) -> T + Sync), ops_per_word: f64) -> Self {
        assert!(ops_per_word >= 0.0);
        Combine {
            f,
            ops_per_word,
            commutative: false,
        }
    }

    /// Declare the operator commutative, unlocking the algorithms that
    /// combine operands out of rank order.
    pub fn assume_commutative(mut self) -> Self {
        self.commutative = true;
        self
    }

    /// Apply the operator.
    #[inline]
    pub fn apply(&self, a: &T, b: &T) -> T {
        (self.f)(a, b)
    }
}

impl<T> std::fmt::Debug for Combine<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Combine")
            .field("ops_per_word", &self.ops_per_word)
            .field("commutative", &self.commutative)
            .finish_non_exhaustive()
    }
}

/// A block value that can be cut into contiguous segments and reassembled
/// — the mechanism behind every segmenting algorithm in this crate
/// (reduce-scatter, Rabenseifner allreduce, the pipelined chain
/// broadcast, van de Geijn's scatter+allgather).
///
/// The contract, checked by the collectives that rely on it:
///
/// * [`split_into(n)`](Splittable::split_into) returns exactly `n` parts
///   (possibly empty ones when the block is shorter than `n`), with
///   nearly equal lengths — part `i` gets `len/n` units plus one extra
///   when `i < len % n` — so that two SPMD peers splitting equal-length
///   blocks agree on every part length without communicating;
/// * [`concat`](Splittable::concat) of the parts, in order, restores the
///   original block;
/// * `unit_len` is additive under both.
pub trait Splittable: Sized {
    /// Block length in combinable units (elements for a `Vec`).
    fn unit_len(&self) -> usize;

    /// Cut into exactly `parts` contiguous, nearly equal segments.
    fn split_into(&self, parts: usize) -> Vec<Self>;

    /// Reassemble segments (in order) into one block.
    fn concat(parts: Vec<Self>) -> Self;
}

impl<T: Clone> Splittable for Vec<T> {
    fn unit_len(&self) -> usize {
        self.len()
    }

    fn split_into(&self, parts: usize) -> Vec<Self> {
        assert!(parts > 0, "cannot split into zero parts");
        let n = self.len();
        let base = n / parts;
        let extra = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut at = 0;
        for i in 0..parts {
            let len = base + usize::from(i < extra);
            out.push(self[at..at + len].to_vec());
            at += len;
        }
        debug_assert_eq!(at, n);
        out
    }

    fn concat(parts: Vec<Self>) -> Self {
        parts.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cost_is_one_op_per_word() {
        let add = |a: &i64, b: &i64| a + b;
        let c = Combine::new(&add);
        assert_eq!(c.ops_per_word, 1.0);
        assert_eq!(c.apply(&2, &3), 5);
    }

    #[test]
    fn explicit_cost_is_kept() {
        let f = |a: &(i64, i64), b: &(i64, i64)| (a.0 + b.0, a.1 * b.1);
        let c = Combine::with_cost(&f, 2.0);
        assert_eq!(c.ops_per_word, 2.0);
        assert_eq!(c.apply(&(1, 2), &(3, 4)), (4, 8));
    }

    #[test]
    #[should_panic]
    fn negative_cost_rejected() {
        let add = |a: &i64, b: &i64| a + b;
        let _ = Combine::with_cost(&add, -1.0);
    }

    #[test]
    fn commutativity_is_an_explicit_opt_in() {
        let add = |a: &i64, b: &i64| a + b;
        assert!(!Combine::new(&add).commutative);
        assert!(Combine::new(&add).assume_commutative().commutative);
        assert!(!Combine::with_cost(&add, 2.0).commutative);
    }

    #[test]
    fn split_concat_roundtrips_for_every_part_count() {
        for n in 0..17usize {
            let block: Vec<i64> = (0..n as i64).collect();
            for parts in 1..=9 {
                let segs = block.split_into(parts);
                assert_eq!(segs.len(), parts, "n={n} parts={parts}");
                // Nearly equal: lengths differ by at most one, longer
                // segments first.
                let lens: Vec<usize> = segs.iter().map(Vec::len).collect();
                assert!(lens.windows(2).all(|w| w[0] >= w[1] && w[0] - w[1] <= 1));
                assert_eq!(Vec::concat(segs), block, "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn split_lengths_are_spmd_deterministic() {
        // Two peers splitting equal-length blocks agree on every part
        // length without communicating.
        let a: Vec<u8> = vec![0; 11];
        let b: Vec<u32> = vec![9; 11];
        let la: Vec<usize> = a.split_into(4).iter().map(Vec::len).collect();
        let lb: Vec<usize> = b.split_into(4).iter().map(Vec::len).collect();
        assert_eq!(la, lb);
        assert_eq!(la, vec![3, 3, 3, 2]);
    }
}
