//! Operator descriptors carried into collectives.
//!
//! The paper charges local computation at one unit per base-operation per
//! word. A collective cannot know how many base operations one application
//! of a user operator performs — `+` on a block is one per word, the fused
//! `op_sr2` is three per word — so the descriptor carries the charge
//! explicitly alongside the combine function.

/// A binary combine operator on blocks of type `T`, with its computational
/// cost declared in base operations per block word.
pub struct Combine<'a, T> {
    /// The combine function. Must be associative for the standard
    /// collectives (`reduce`, `allreduce`, `scan`) to be well-defined.
    pub f: &'a (dyn Fn(&T, &T) -> T + Sync),
    /// Base operations charged per word of the block for one application.
    pub ops_per_word: f64,
}

impl<'a, T> Combine<'a, T> {
    /// A combine with the default charge of one base operation per word
    /// (a plain scalar operator like `+` applied elementwise).
    pub fn new(f: &'a (dyn Fn(&T, &T) -> T + Sync)) -> Self {
        Combine {
            f,
            ops_per_word: 1.0,
        }
    }

    /// A combine with an explicit per-word charge (fused tuple operators).
    pub fn with_cost(f: &'a (dyn Fn(&T, &T) -> T + Sync), ops_per_word: f64) -> Self {
        assert!(ops_per_word >= 0.0);
        Combine { f, ops_per_word }
    }

    /// Apply the operator.
    #[inline]
    pub fn apply(&self, a: &T, b: &T) -> T {
        (self.f)(a, b)
    }
}

impl<T> std::fmt::Debug for Combine<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Combine")
            .field("ops_per_word", &self.ops_per_word)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cost_is_one_op_per_word() {
        let add = |a: &i64, b: &i64| a + b;
        let c = Combine::new(&add);
        assert_eq!(c.ops_per_word, 1.0);
        assert_eq!(c.apply(&2, &3), 5);
    }

    #[test]
    fn explicit_cost_is_kept() {
        let f = |a: &(i64, i64), b: &(i64, i64)| (a.0 + b.0, a.1 * b.1);
        let c = Combine::with_cost(&f, 2.0);
        assert_eq!(c.ops_per_word, 2.0);
        assert_eq!(c.apply(&(1, 2), &(3, 4)), (4, 8));
    }

    #[test]
    #[should_panic]
    fn negative_cost_rejected() {
        let add = |a: &i64, b: &i64| a + b;
        let _ = Combine::with_cost(&add, -1.0);
    }
}
