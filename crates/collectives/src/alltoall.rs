//! All-to-all personalized exchange and reduce-scatter.
//!
//! Rounding out the MPI collective family on the simulated machine:
//!
//! * [`alltoall`] — every rank holds one block *per destination*; after
//!   the exchange every rank holds one block *per source*, in source
//!   order. Implemented with the linear-shift schedule (`p − 1` rounds of
//!   simultaneous pairwise exchanges, round `r` pairing rank `i` with
//!   `i XOR`-free partners `(i + r) mod p` / `(i − r) mod p`), which works
//!   for any `p` and keeps every link busy.
//! * [`reduce_scatter`] — block-wise reduction with scattered results:
//!   rank `i` ends with `block_i(x₀) ⊕ … ⊕ block_i(x_{p−1})`. Implemented
//!   as a binomial reduction of the full block vector followed by a
//!   binomial scatter; the classic recursive-halving algorithm is
//!   equivalent in cost for power-of-two `p` but unsound for
//!   non-commutative operators on other sizes, so the simple composition
//!   is the default.

use collopt_machine::Ctx;

use crate::gather::scatter_binomial;
use crate::op::Combine;
use crate::reduce::reduce_binomial;

/// All-to-all: `blocks[d]` is this rank's block destined for rank `d`;
/// returns the received blocks indexed by source rank. `words` is the
/// size of one block.
pub fn alltoall<T: Clone + Send + 'static>(ctx: &mut Ctx, blocks: Vec<T>, words: u64) -> Vec<T> {
    let p = ctx.size();
    assert_eq!(blocks.len(), p, "need exactly one block per destination");
    let rank = ctx.rank();
    let mut out: Vec<Option<T>> = vec![None; p];
    out[rank] = Some(blocks[rank].clone());
    for round in 1..p {
        let dst = (rank + round) % p;
        let src = (rank + p - round) % p;
        let payload = blocks[dst].clone();
        if dst == src {
            // p = 2k and round = k: a true pairwise exchange.
            let got: T = ctx.exchange(dst, payload, words);
            out[src] = Some(got);
        } else {
            ctx.send(dst, payload, words);
            let got: T = ctx.recv(src);
            out[src] = Some(got);
        }
    }
    out.into_iter()
        .map(|o| o.expect("every source delivers exactly once"))
        .collect()
}

/// Reduce-scatter: `blocks[i]` is this rank's contribution to rank `i`'s
/// result; rank `i` returns the rank-order reduction of all `blocks[i]`.
/// `words` is the size of one block.
pub fn reduce_scatter<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    blocks: Vec<T>,
    words: u64,
    op: &Combine<'_, T>,
) -> T {
    let p = ctx.size();
    assert_eq!(blocks.len(), p, "need exactly one block per destination");
    // Reduce the whole vector elementwise to rank 0 …
    let total_words = words * p as u64;
    let vec_op = {
        let f = move |a: &Vec<T>, b: &Vec<T>| -> Vec<T> {
            a.iter().zip(b).map(|(x, y)| op.apply(x, y)).collect()
        };
        f
    };
    let combine = Combine::with_cost(&vec_op, op.ops_per_word);
    let reduced = reduce_binomial(ctx, 0, blocks, total_words, &combine);
    // … then scatter one block to each rank.
    scatter_binomial(ctx, reduced, words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use collopt_machine::{ClockParams, Machine};

    #[test]
    fn alltoall_transposes_the_block_matrix() {
        for p in 1..=12usize {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| {
                // Block for destination d: (my_rank, d).
                let blocks: Vec<(usize, usize)> =
                    (0..ctx.size()).map(|d| (ctx.rank(), d)).collect();
                alltoall(ctx, blocks, 2)
            });
            for (rank, received) in run.results.iter().enumerate() {
                let expected: Vec<(usize, usize)> = (0..p).map(|src| (src, rank)).collect();
                assert_eq!(received, &expected, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn alltoall_twice_restores_the_transpose() {
        let p = 7;
        let m = Machine::new(p, ClockParams::free());
        let run = m.run(|ctx| {
            let blocks: Vec<usize> = (0..ctx.size()).map(|d| ctx.rank() * 100 + d).collect();
            let once = alltoall(ctx, blocks.clone(), 1);
            let twice = alltoall(ctx, once, 1);
            (blocks, twice)
        });
        for (blocks, twice) in run.results {
            // alltoall is the transpose of the (rank, dest) matrix;
            // applying it twice restores each rank's original row — with
            // indices swapped back.
            let original: Vec<usize> = blocks;
            let roundtrip: Vec<usize> = twice;
            assert_eq!(original, roundtrip);
        }
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_column_sum() {
        for p in 1..=10usize {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| {
                let add = |a: &i64, b: &i64| a + b;
                // Contribution of rank r to destination d: r * 10 + d.
                let blocks: Vec<i64> = (0..ctx.size())
                    .map(|d| (ctx.rank() * 10 + d) as i64)
                    .collect();
                reduce_scatter(ctx, blocks, 1, &Combine::new(&add))
            });
            for (rank, &got) in run.results.iter().enumerate() {
                let expected: i64 = (0..p).map(|r| (r * 10 + rank) as i64).sum();
                assert_eq!(got, expected, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn reduce_scatter_preserves_rank_order() {
        let p = 6;
        let m = Machine::new(p, ClockParams::free());
        let run = m.run(|ctx| {
            let cat = |a: &String, b: &String| format!("{a}{b}");
            let blocks: Vec<String> = (0..ctx.size()).map(|_| ctx.rank().to_string()).collect();
            reduce_scatter(ctx, blocks, 1, &Combine::new(&cat))
        });
        for got in run.results {
            assert_eq!(got, "012345");
        }
    }

    #[test]
    fn alltoall_costs_scale_with_p() {
        let params = ClockParams::new(50.0, 1.0);
        let mk = |p: usize| {
            let m = Machine::new(p, params);
            m.run(|ctx| {
                let blocks: Vec<u64> = vec![0; ctx.size()];
                alltoall(ctx, blocks, 8)
            })
            .makespan
        };
        // p-1 rounds: cost grows roughly linearly with p, unlike the
        // log-p collectives.
        let t4 = mk(4);
        let t8 = mk(8);
        assert!(t8 > 1.5 * t4, "alltoall is linear in p: {t4} -> {t8}");
    }
}
