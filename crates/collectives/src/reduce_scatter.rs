//! The bandwidth-optimal reduction family: reduce-scatter, allgather and
//! the composed allreduce algorithms built from them.
//!
//! The butterfly allreduce ships the **full** `m`-word block in every one
//! of its `log p` rounds — `log p·(ts + m·(tw + c))`. The classic fix
//! (Rabenseifner; see Träff, arXiv:2410.14234, and Jocksch et al.,
//! arXiv:2006.13112) splits the block into `p` segments
//! ([`Splittable`]), reduces *segment-wise* so each round moves only the
//! half of the data still in flight, and reassembles with an allgather:
//!
//! * [`reduce_scatter_halving`] — recursive halving for power-of-two `p`:
//!   `log₂ p·ts + m(1−1/p)(tw + c)`. Rounds go **low bit first** (round
//!   `j` pairs rank `r` with `r XOR 2^j`), so every partial covers a
//!   contiguous, `2^j`-aligned rank group and combines join complete
//!   sibling groups in rank order — safe for any associative operator
//!   (and for the paper's balanced fused operators, whose correctness
//!   needs exactly that complete-sibling-group invariant). The classic
//!   high-bit-first halving does not have this property.
//! * [`allgather_doubling`] — recursive doubling, the inverse pattern:
//!   `log₂ p·ts + m(1−1/p)·tw`.
//! * [`reduce_scatter_ring`] — `p − 1` ring steps of `m/p`-word
//!   messages, any `p`: `(p−1)(2(ts + (m/p)tw) + (m/p)c)` on this
//!   machine's half-duplex store-and-forward nodes. Partials accumulate
//!   in *cyclic* rank order (a rotation of `0..p`), so the operator must
//!   be declared commutative ([`Combine::assume_commutative`]).
//! * [`allreduce_rabenseifner`] — reduce-scatter + allgather:
//!   `2 log₂ p·ts + m(1−1/p)(2tw + c)` for power-of-two `p`; the ring
//!   pair for other `p` when the operator commutes; the order-safe
//!   reduce + broadcast otherwise.
//! * [`allreduce_ring`] — ring reduce-scatter + ring allgather, the
//!   fully bandwidth-optimal choice when start-ups are cheap.
//! * [`allreduce_balanced_halving`] — the same halving/doubling pair for
//!   the fused [`BalancedOp`] operators (rule SR-Reduction's RHS), whose
//!   pair-tuples cost `words_factor` wire words per block word.
//!
//! All formulas are exact on the simulated machine when `p` divides the
//! block length; the tests assert them to machine precision.

use collopt_machine::topology::butterfly_rounds;
use collopt_machine::{drive, Ctx};

use crate::balanced::BalancedOp;
use crate::op::{Combine, Splittable};
use crate::reduce::allreduce_async;
use crate::variants::allgather_ring_async;

/// Shared implementation of low-bit-first recursive halving: after round
/// `j`, rank `r` holds, for every segment index `s` agreeing with `r` on
/// bits `0..=j`, the combination of that segment over `r`'s aligned
/// `2^(j+1)`-rank group. After `log₂ p` rounds only segment `rank`
/// remains, fully reduced. `combine(left, right)` is always called with
/// `left` covering the lower-ranked group.
async fn halving_core<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    wire_words_per_unit: u64,
    ops_per_word: f64,
    combine: &dyn Fn(&S, &S) -> S,
    label: &str,
) -> S {
    let p = ctx.size();
    assert!(
        p.is_power_of_two(),
        "recursive halving needs a power-of-two rank count, got {p}"
    );
    let rank = ctx.rank();
    let mut segs: Vec<Option<S>> = value.split_into(p).into_iter().map(Some).collect();
    for round in 0..butterfly_rounds(p) {
        let bit = 1usize << round;
        let partner = rank ^ bit;
        // Segments whose bit `round` disagrees with ours belong to the
        // partner's half; everything else stays and gets the partner's
        // matching partial.
        let mut outgoing: Vec<S> = Vec::new();
        let mut out_words = 0u64;
        for (s, slot) in segs.iter_mut().enumerate() {
            if (s ^ rank) & bit == 0 {
                continue;
            }
            if let Some(seg) = slot.take() {
                out_words += seg.unit_len() as u64 * wire_words_per_unit;
                outgoing.push(seg);
            }
        }
        let got: Vec<S> = ctx.exchange_async(partner, outgoing, out_words).await;
        // Both sides enumerate kept indices in increasing order, so the
        // received partials line up one-to-one with ours.
        let mut received = got.into_iter();
        let mut kept_units = 0usize;
        for slot in segs.iter_mut() {
            if let Some(mine) = slot.take() {
                let theirs = received
                    .next()
                    .expect("partner sends one partial per kept segment");
                kept_units += mine.unit_len();
                // Rank order: the lower-ranked group's partial is the
                // left operand (rank < partner ⟺ our group is lower).
                *slot = Some(if rank < partner {
                    combine(&mine, &theirs)
                } else {
                    combine(&theirs, &mine)
                });
            }
        }
        ctx.charge(
            kept_units as f64 * wire_words_per_unit as f64 * ops_per_word,
            label,
        );
    }
    segs[rank].take().expect("own segment survives every round")
}

/// Recursive-doubling allgather of per-rank segments back into the full
/// block. `wire_words_per_unit` sizes the cost charge of one segment
/// unit on the wire.
async fn doubling_core<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    segment: S,
    wire_words_per_unit: u64,
) -> S {
    let p = ctx.size();
    assert!(
        p.is_power_of_two(),
        "recursive doubling needs a power-of-two rank count, got {p}"
    );
    let rank = ctx.rank();
    let mut acc = segment;
    for round in 0..butterfly_rounds(p) {
        let bit = 1usize << round;
        let partner = rank ^ bit;
        let words = acc.unit_len() as u64 * wire_words_per_unit;
        let got: S = ctx.exchange_async(partner, acc.clone(), words).await;
        // Before round `j` both sides hold the contiguous segment run of
        // their aligned 2^j-rank group; the partner's run sits directly
        // below or above ours depending on bit `j`.
        acc = if partner < rank {
            S::concat(vec![got, acc])
        } else {
            S::concat(vec![acc, got])
        };
    }
    acc
}

/// Recursive-halving reduce-scatter (power-of-two `p`): rank `r` returns
/// segment `r` of the rank-order reduction of all blocks. Safe for any
/// associative operator — see the module docs for why low-bit-first
/// rounds preserve operand order. Makespan
/// `log₂ p·ts + m(1−1/p)(tw + c)` (exact when `p` divides the block
/// length).
pub fn reduce_scatter_halving<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &Combine<'_, S>,
) -> S {
    drive(reduce_scatter_halving_async(ctx, value, words_per_unit, op))
}

/// Engine-agnostic form of [`reduce_scatter_halving`].
pub async fn reduce_scatter_halving_async<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &Combine<'_, S>,
) -> S {
    halving_core(
        ctx,
        value,
        words_per_unit,
        op.ops_per_word,
        &|a, b| op.apply(a, b),
        "reduce_scatter:combine",
    )
    .await
}

/// Recursive-doubling allgather (power-of-two `p`): the inverse of
/// [`reduce_scatter_halving`] — every rank contributes its segment and
/// returns the full block, in rank order. Makespan
/// `log₂ p·ts + m(1−1/p)·tw`.
pub fn allgather_doubling<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    segment: S,
    words_per_unit: u64,
) -> S {
    drive(allgather_doubling_async(ctx, segment, words_per_unit))
}

/// Engine-agnostic form of [`allgather_doubling`].
pub async fn allgather_doubling_async<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    segment: S,
    words_per_unit: u64,
) -> S {
    doubling_core(ctx, segment, words_per_unit).await
}

/// Ring reduce-scatter for any `p`: `p − 1` steps around the ring, each
/// moving one `≈ m/p`-word partial to the successor. Partials accumulate
/// in cyclic rank order — a rotation of `0..p` — so the operator must be
/// declared commutative. Makespan `(p−1)(2(ts + (m/p)tw) + (m/p)c)`.
pub fn reduce_scatter_ring<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &Combine<'_, S>,
) -> S {
    drive(reduce_scatter_ring_async(ctx, value, words_per_unit, op))
}

/// Engine-agnostic form of [`reduce_scatter_ring`].
pub async fn reduce_scatter_ring_async<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &Combine<'_, S>,
) -> S {
    let p = ctx.size();
    if p == 1 {
        return value;
    }
    assert!(
        op.commutative,
        "ring reduce-scatter combines operands in cyclic order; \
         the operator must be declared commutative"
    );
    let rank = ctx.rank();
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    let mut segs: Vec<Option<S>> = value.split_into(p).into_iter().map(Some).collect();
    for step in 0..p - 1 {
        // Step k: pass on the partial for segment (rank − 1 − k) mod p,
        // receive and fold the one for segment (rank − 2 − k) mod p.
        let send_idx = (rank + p - 1 - step) % p;
        let recv_idx = (rank + p - 2 - step) % p;
        let outgoing = segs[send_idx]
            .take()
            .expect("each partial leaves exactly once");
        let words = outgoing.unit_len() as u64 * words_per_unit;
        let got: S = if p == 2 {
            // Two ranks: a single pairwise exchange.
            ctx.exchange_async(next, outgoing, words).await
        } else {
            ctx.send(next, outgoing, words);
            ctx.recv_async(prev).await
        };
        let mine = segs[recv_idx]
            .take()
            .expect("own contribution still unfolded");
        let units = mine.unit_len();
        segs[recv_idx] = Some(op.apply(&got, &mine));
        ctx.charge(
            units as f64 * words_per_unit as f64 * op.ops_per_word,
            "reduce_scatter_ring:combine",
        );
    }
    segs[rank].take().expect("own segment fully reduced")
}

/// Rabenseifner's allreduce: reduce-scatter, then allgather.
///
/// * power-of-two `p`: recursive halving + recursive doubling —
///   `2 log₂ p·ts + m(1−1/p)(2tw + c)`, any associative operator;
/// * other `p`, commutative operator: ring reduce-scatter + ring
///   allgather (see [`allreduce_ring`]);
/// * other `p`, non-commutative: the order-safe binomial
///   reduce + broadcast fallback of [`allreduce`](crate::allreduce).
pub fn allreduce_rabenseifner<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &Combine<'_, S>,
) -> S {
    drive(allreduce_rabenseifner_async(ctx, value, words_per_unit, op))
}

/// Engine-agnostic form of [`allreduce_rabenseifner`].
pub async fn allreduce_rabenseifner_async<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &Combine<'_, S>,
) -> S {
    let p = ctx.size();
    if p == 1 {
        return value;
    }
    if p.is_power_of_two() {
        let seg = reduce_scatter_halving_async(ctx, value, words_per_unit, op).await;
        allgather_doubling_async(ctx, seg, words_per_unit).await
    } else if op.commutative {
        allreduce_ring_async(ctx, value, words_per_unit, op).await
    } else {
        let words = (value.unit_len() as u64 * words_per_unit).max(1);
        allreduce_async(ctx, value, words, op).await
    }
}

/// Bandwidth-optimal ring allreduce for any `p` and a commutative
/// operator: ring reduce-scatter followed by a ring allgather of the
/// reduced segments. Makespan
/// `(p−1)(2(ts + (m/p)tw) + (m/p)c) + 2(p−1)(ts + (m/p)tw)` — only
/// `≈ 2m·tw` total volume per link, at the price of `2(p−1)` start-ups.
pub fn allreduce_ring<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &Combine<'_, S>,
) -> S {
    drive(allreduce_ring_async(ctx, value, words_per_unit, op))
}

/// Engine-agnostic form of [`allreduce_ring`].
pub async fn allreduce_ring_async<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &Combine<'_, S>,
) -> S {
    let p = ctx.size();
    if p == 1 {
        return value;
    }
    let seg = reduce_scatter_ring_async(ctx, value, words_per_unit, op).await;
    let words = seg.unit_len() as u64 * words_per_unit;
    S::concat(allgather_ring_async(ctx, seg, words).await)
}

/// The halving/doubling allreduce for the fused balanced operators (rule
/// SR-Reduction's RHS). Power-of-two `p` only: there the halving rounds
/// join exactly the complete `2^j`-aligned sibling groups the balanced
/// tree requires, so the non-associative `op_sr`-style operators stay
/// correct (the solo variant is never needed). Wire words are scaled by
/// the operator's `words_factor` (2 for `op_sr`'s pairs); makespan
/// `2 log₂ p·ts + m(1−1/p)(2·wf·tw + c)`.
pub fn allreduce_balanced_halving<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &BalancedOp<'_, S>,
) -> S {
    drive(allreduce_balanced_halving_async(
        ctx,
        value,
        words_per_unit,
        op,
    ))
}

/// Engine-agnostic form of [`allreduce_balanced_halving`].
pub async fn allreduce_balanced_halving_async<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &BalancedOp<'_, S>,
) -> S {
    let p = ctx.size();
    if p == 1 {
        return value;
    }
    let wire = words_per_unit * op.words_factor;
    let seg = halving_core(
        ctx,
        value,
        wire,
        // `ops_combine` is declared per block word, but `halving_core`
        // charges per *wire* word; undo the words_factor scaling.
        op.ops_combine / op.words_factor as f64,
        op.combine,
        "allreduce_balanced_halving:combine",
    )
    .await;
    doubling_core(ctx, seg, wire).await
}

#[cfg(test)]
// The operator helpers must match `dyn Fn(&Vec<T>, &Vec<T>) -> Vec<T>`,
// so `&[T]` parameters are not an option here.
#[allow(clippy::ptr_arg)]
mod tests {
    use super::*;
    use crate::reference::ref_allreduce;
    use collopt_machine::topology::ceil_log2;
    use collopt_machine::{ClockParams, Machine};
    use std::sync::Arc;

    fn add_blocks(a: &Vec<i64>, b: &Vec<i64>) -> Vec<i64> {
        a.iter().zip(b).map(|(x, y)| x + y).collect()
    }

    fn cat_blocks(a: &Vec<String>, b: &Vec<String>) -> Vec<String> {
        a.iter().zip(b).map(|(x, y)| format!("{x}{y}")).collect()
    }

    /// Rank r's test block: element e is r*1000 + e.
    fn block_of(rank: usize, n: usize) -> Vec<i64> {
        (0..n as i64).map(|e| rank as i64 * 1000 + e).collect()
    }

    /// Elementwise sum of all ranks' test blocks.
    fn summed(p: usize, n: usize) -> Vec<i64> {
        (0..n as i64)
            .map(|e| (0..p as i64).map(|r| r * 1000 + e).sum())
            .collect()
    }

    #[test]
    fn halving_gives_each_rank_its_reduced_segment() {
        for p in [1usize, 2, 4, 8, 16] {
            for n in [p, 3 * p, 37, 5] {
                let m = Machine::new(p, ClockParams::free());
                let run = m.run(move |ctx| {
                    let block = block_of(ctx.rank(), n);
                    reduce_scatter_halving(ctx, block, 1, &Combine::new(&add_blocks))
                });
                let expected = summed(p, n).split_into(p);
                for (rank, got) in run.results.iter().enumerate() {
                    assert_eq!(got, &expected[rank], "p={p} n={n} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn halving_preserves_rank_order_for_nonabelian_op() {
        // Element e of rank r's block is the letter for r; after the
        // reduce-scatter each element must read "abc…" in rank order.
        for p in [2usize, 4, 8, 16] {
            let n = 11usize;
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(move |ctx| {
                let letter = char::from(b'a' + ctx.rank() as u8).to_string();
                let block: Vec<String> = vec![letter; n];
                reduce_scatter_halving(ctx, block, 1, &Combine::new(&cat_blocks))
            });
            let word: String = (0..p).map(|r| char::from(b'a' + r as u8)).collect();
            for (rank, got) in run.results.iter().enumerate() {
                assert!(got.iter().all(|s| s == &word), "p={p} rank={rank}: {got:?}");
            }
        }
    }

    #[test]
    fn doubling_reassembles_the_block_in_rank_order() {
        for p in [1usize, 2, 4, 8, 16] {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| allgather_doubling(ctx, vec![ctx.rank(); 3], 1));
            let expected: Vec<usize> = (0..p).flat_map(|r| vec![r; 3]).collect();
            for (rank, got) in run.results.iter().enumerate() {
                assert_eq!(got, &expected, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn ring_reduce_scatter_matches_halving_for_commutative_ops() {
        for p in [1usize, 2, 3, 5, 6, 7, 9, 12] {
            for n in [2 * p, 23] {
                let m = Machine::new(p, ClockParams::free());
                let run = m.run(move |ctx| {
                    let block = block_of(ctx.rank(), n);
                    let op = Combine::new(&add_blocks).assume_commutative();
                    reduce_scatter_ring(ctx, block, 1, &op)
                });
                let expected = summed(p, n).split_into(p);
                for (rank, got) in run.results.iter().enumerate() {
                    assert_eq!(got, &expected[rank], "p={p} n={n} rank={rank}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "commutative")]
    fn ring_reduce_scatter_rejects_undeclared_operators() {
        let m = Machine::new(4, ClockParams::free());
        m.run(|ctx| {
            let block = block_of(ctx.rank(), 8);
            reduce_scatter_ring(ctx, block, 1, &Combine::new(&add_blocks))
        });
    }

    #[test]
    fn rabenseifner_matches_reference_for_every_size() {
        for p in 1..=12usize {
            let n = 17usize;
            let machine = Machine::new(p, ClockParams::free());
            let run = machine.run(move |ctx| {
                let block = block_of(ctx.rank(), n);
                let op = Combine::new(&add_blocks).assume_commutative();
                allreduce_rabenseifner(ctx, block, 1, &op)
            });
            let inputs: Vec<Vec<i64>> = (0..p).map(|r| block_of(r, n)).collect();
            let expected = ref_allreduce(add_blocks, &inputs);
            assert_eq!(run.results, expected, "p={p}");
        }
    }

    #[test]
    fn rabenseifner_preserves_rank_order_on_powers_of_two() {
        for p in [2usize, 4, 8, 16] {
            let n = 9usize;
            let machine = Machine::new(p, ClockParams::free());
            let run = machine.run(move |ctx| {
                let letter = char::from(b'a' + ctx.rank() as u8).to_string();
                allreduce_rabenseifner(ctx, vec![letter; n], 1, &Combine::new(&cat_blocks))
            });
            let word: String = (0..p).map(|r| char::from(b'a' + r as u8)).collect();
            for (rank, got) in run.results.iter().enumerate() {
                assert!(got.iter().all(|s| s == &word), "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn rabenseifner_falls_back_safely_for_nonabelian_odd_sizes() {
        // Non-power-of-two and non-commutative: the order-safe fallback
        // must still produce the rank-order result.
        for p in [3usize, 5, 6, 7, 9] {
            let machine = Machine::new(p, ClockParams::free());
            let run = machine.run(|ctx| {
                let letter = char::from(b'a' + ctx.rank() as u8).to_string();
                allreduce_rabenseifner(ctx, vec![letter; 4], 1, &Combine::new(&cat_blocks))
            });
            let word: String = (0..p).map(|r| char::from(b'a' + r as u8)).collect();
            for (rank, got) in run.results.iter().enumerate() {
                assert!(got.iter().all(|s| s == &word), "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn ring_allreduce_is_correct_for_any_size() {
        for p in 1..=11usize {
            let n = 3 * p.max(1);
            let machine = Machine::new(p, ClockParams::free());
            let run = machine.run(move |ctx| {
                let block = block_of(ctx.rank(), n);
                let op = Combine::new(&add_blocks).assume_commutative();
                allreduce_ring(ctx, block, 1, &op)
            });
            let expected = summed(p, n);
            for (rank, got) in run.results.iter().enumerate() {
                assert_eq!(got, &expected, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn halving_makespan_matches_the_closed_form() {
        // log₂ p·ts + m(1−1/p)(tw + c), exact when p | m.
        let (ts, tw) = (100.0, 2.0);
        for (p, mw) in [(2usize, 64usize), (8, 64), (16, 1600)] {
            let machine = Machine::new(p, ClockParams::new(ts, tw));
            let run = machine.run(move |ctx| {
                let block = block_of(ctx.rank(), mw);
                reduce_scatter_halving(ctx, block, 1, &Combine::new(&add_blocks))
            });
            let frac = 1.0 - 1.0 / p as f64;
            let expected = ceil_log2(p) as f64 * ts + mw as f64 * frac * (tw + 1.0);
            assert_eq!(run.makespan, expected, "p={p} m={mw}");
        }
    }

    #[test]
    fn doubling_makespan_matches_the_closed_form() {
        // log₂ p·ts + m(1−1/p)·tw, exact when p | m.
        let (ts, tw) = (100.0, 2.0);
        for (p, mw) in [(4usize, 64usize), (16, 1600)] {
            let machine = Machine::new(p, ClockParams::new(ts, tw));
            let run = machine.run(move |ctx| {
                let seg = vec![ctx.rank() as i64; mw / ctx.size()];
                allgather_doubling(ctx, seg, 1)
            });
            let frac = 1.0 - 1.0 / p as f64;
            let expected = ceil_log2(p) as f64 * ts + mw as f64 * frac * tw;
            assert_eq!(run.makespan, expected, "p={p} m={mw}");
        }
    }

    #[test]
    fn rabenseifner_makespan_matches_the_closed_form() {
        // 2 log₂ p·ts + m(1−1/p)(2tw + c), exact when p | m.
        let (ts, tw) = (100.0, 2.0);
        for (p, mw) in [(4usize, 64usize), (8, 640), (16, 1600)] {
            let machine = Machine::new(p, ClockParams::new(ts, tw));
            let run = machine.run(move |ctx| {
                let block = block_of(ctx.rank(), mw);
                allreduce_rabenseifner(ctx, block, 1, &Combine::new(&add_blocks))
            });
            let frac = 1.0 - 1.0 / p as f64;
            let expected = 2.0 * ceil_log2(p) as f64 * ts + mw as f64 * frac * (2.0 * tw + 1.0);
            assert_eq!(run.makespan, expected, "p={p} m={mw}");
        }
    }

    #[test]
    fn ring_allreduce_makespan_matches_the_closed_form() {
        // (p−1)(2(ts + (m/p)tw) + (m/p)c) + 2(p−1)(ts + (m/p)tw),
        // exact when p | m (and p > 2: the two-rank ring degenerates to
        // single exchanges).
        let (ts, tw) = (100.0, 2.0);
        for (p, mw) in [(4usize, 64usize), (5, 100), (8, 640)] {
            let machine = Machine::new(p, ClockParams::new(ts, tw));
            let run = machine.run(move |ctx| {
                let block = block_of(ctx.rank(), mw);
                let op = Combine::new(&add_blocks).assume_commutative();
                allreduce_ring(ctx, block, 1, &op)
            });
            let seg = mw as f64 / p as f64;
            let steps = (p - 1) as f64;
            let expected = steps * (2.0 * (ts + seg * tw) + seg) + 2.0 * steps * (ts + seg * tw);
            assert_eq!(run.makespan, expected, "p={p} m={mw}");
        }
    }

    #[test]
    fn rabenseifner_beats_butterfly_for_large_blocks() {
        let (p, mw) = (16usize, 32_000usize);
        let clock = ClockParams::parsytec_like();
        let machine = Machine::new(p, clock);
        let butterfly = machine.run(move |ctx| {
            let block = block_of(ctx.rank(), mw);
            crate::reduce::allreduce_butterfly(ctx, block, mw as u64, &Combine::new(&add_blocks))
        });
        let raben = machine.run(move |ctx| {
            let block = block_of(ctx.rank(), mw);
            allreduce_rabenseifner(ctx, block, 1, &Combine::new(&add_blocks))
        });
        assert_eq!(butterfly.results, raben.results);
        assert!(
            raben.makespan < butterfly.makespan,
            "rabenseifner {} must beat butterfly {} at m={mw}",
            raben.makespan,
            butterfly.makespan
        );
    }

    #[test]
    fn butterfly_beats_rabenseifner_for_tiny_blocks() {
        let (p, mw) = (16usize, 4usize);
        let clock = ClockParams::parsytec_like();
        let machine = Machine::new(p, clock);
        let butterfly = machine.run(move |ctx| {
            let block = block_of(ctx.rank(), mw);
            crate::reduce::allreduce_butterfly(ctx, block, mw as u64, &Combine::new(&add_blocks))
        });
        let raben = machine.run(move |ctx| {
            let block = block_of(ctx.rank(), mw);
            allreduce_rabenseifner(ctx, block, 1, &Combine::new(&add_blocks))
        });
        assert!(butterfly.makespan < raben.makespan);
    }

    #[test]
    fn balanced_halving_matches_the_balanced_butterfly() {
        // The paper's op_sr (⊕ = +) applied elementwise to pair blocks:
        // the halving/doubling allreduce must agree with
        // allreduce_balanced on every rank, for every power of two.
        fn op_sr(a: &(i64, i64), b: &(i64, i64)) -> (i64, i64) {
            let uu = a.1 + b.1;
            (a.0 + b.0 + a.1, uu + uu)
        }
        fn combine(a: &Vec<(i64, i64)>, b: &Vec<(i64, i64)>) -> Vec<(i64, i64)> {
            a.iter().zip(b).map(|(x, y)| op_sr(x, y)).collect()
        }
        fn solo(x: &Vec<(i64, i64)>) -> Vec<(i64, i64)> {
            x.iter().map(|(t, u)| (*t, u + u)).collect()
        }
        let balanced_op = || BalancedOp {
            combine: &combine,
            solo: &solo,
            ops_combine: 4.0,
            ops_solo: 1.0,
            words_factor: 2,
        };
        for p in [2usize, 4, 8, 16] {
            let n = 6usize;
            let machine = Machine::new(p, ClockParams::free());
            let block = move |rank: usize| -> Vec<(i64, i64)> {
                (0..n as i64)
                    .map(|e| {
                        let x = rank as i64 + e;
                        (x, x)
                    })
                    .collect()
            };
            let butterfly = machine.run(move |ctx| {
                crate::balanced::allreduce_balanced(
                    ctx,
                    block(ctx.rank()),
                    n as u64,
                    &balanced_op(),
                )
            });
            let halving = machine.run(move |ctx| {
                allreduce_balanced_halving(ctx, block(ctx.rank()), 1, &balanced_op())
            });
            assert_eq!(butterfly.results, halving.results, "p={p}");
        }
    }

    #[test]
    fn balanced_halving_makespan_matches_the_closed_form() {
        // 2 log₂ p·ts + m(1−1/p)(2·wf·tw + c) with wf = 2, c = 4.
        fn combine(a: &Vec<(i64, i64)>, b: &Vec<(i64, i64)>) -> Vec<(i64, i64)> {
            a.iter()
                .zip(b)
                .map(|(x, y)| {
                    let uu = x.1 + y.1;
                    (x.0 + y.0 + x.1, uu + uu)
                })
                .collect()
        }
        fn solo(x: &Vec<(i64, i64)>) -> Vec<(i64, i64)> {
            x.clone()
        }
        let (ts, tw) = (100.0, 2.0);
        let (p, mw) = (8usize, 64usize);
        let machine = Machine::new(p, ClockParams::new(ts, tw));
        let run = machine.run(move |ctx| {
            let block: Vec<(i64, i64)> = vec![(1, 1); mw];
            let op = BalancedOp {
                combine: &combine,
                solo: &solo,
                ops_combine: 4.0,
                ops_solo: 1.0,
                words_factor: 2,
            };
            allreduce_balanced_halving(ctx, block, 1, &op)
        });
        let frac = 1.0 - 1.0 / p as f64;
        let expected = 2.0 * ceil_log2(p) as f64 * ts + mw as f64 * frac * (2.0 * 2.0 * tw + 4.0);
        assert_eq!(run.makespan, expected);
    }

    #[test]
    fn blocks_shorter_than_p_still_work() {
        // Empty segments travel as zero-word messages.
        for p in [4usize, 8] {
            let n = 3usize; // fewer elements than ranks
            let machine = Machine::new(p, ClockParams::free());
            let run = machine.run(move |ctx| {
                let block = block_of(ctx.rank(), n);
                allreduce_rabenseifner(ctx, block, 1, &Combine::new(&add_blocks))
            });
            let expected = summed(p, n);
            for got in &run.results {
                assert_eq!(got, &expected);
            }
        }
    }

    #[test]
    fn random_inputs_agree_with_the_reference() {
        let mut rng = collopt_machine::Rng::new(0x5CA7);
        for _ in 0..24 {
            let p = rng.range_usize(1, 13);
            let n = rng.range_usize(1, 40);
            let inputs: Vec<Vec<i64>> = (0..p)
                .map(|_| (0..n).map(|_| rng.range_i64(-50, 50)).collect())
                .collect();
            let shared = Arc::new(inputs.clone());
            let machine = Machine::new(p, ClockParams::free());
            let run = machine.run(move |ctx| {
                let op = Combine::new(&add_blocks).assume_commutative();
                allreduce_rabenseifner(ctx, shared[ctx.rank()].clone(), 1, &op)
            });
            let expected = ref_allreduce(add_blocks, &inputs);
            assert_eq!(run.results, expected, "p={p} n={n}");
        }
    }
}
