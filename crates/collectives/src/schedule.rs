//! Symbolic communication-schedule extraction.
//!
//! Every collective in this crate is an ordinary Rust function whose
//! communication pattern is a pure function of `(p, m)` — the payloads
//! decide *values*, never *who talks to whom*. This module exploits that:
//! for each lowering it re-derives the exact per-rank sequence of
//! [`SchedOp`]s (sends, receives, pairwise exchanges, barriers) **without
//! executing any payload code**, by walking the same topology helpers and
//! control flow as the runtime implementation.
//!
//! The extracted [`Schedule`] is the input to the static verifier in
//! `collopt-analysis`, which proves deadlock-freedom, message-match
//! completeness and round optimality before a single simulated clock
//! tick. The [`shipped_variants`] registry enumerates every lowering with
//! its applicability predicate and closed-form expected round count; the
//! [`planted_variants`] registry enumerates deliberately broken lowerings
//! (also runnable, see [`planted`]) that serve as ground truth for the
//! verifier's reject path.
//!
//! Fidelity is pinned by tests that run each lowering on the traced
//! machine and compare the extracted schedule, op by op, against the
//! recorded trace events.

use collopt_machine::topology::{
    binomial_bcast_rank_plan, butterfly_partner, butterfly_rounds, ceil_log2, floor_log2,
    BalancedTree, RankAction,
};
use collopt_machine::Ctx;

/// One abstract communication action of a single rank, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedOp {
    /// Post a message of `words` words to rank `to` (non-blocking).
    Send {
        /// Destination rank.
        to: usize,
        /// Message size in words.
        words: u64,
    },
    /// Block until a message from rank `from` arrives.
    Recv {
        /// Source rank.
        from: usize,
    },
    /// Pairwise exchange with `peer`: on the machine this desugars to a
    /// send of `words` words followed by a receive on the same channel
    /// pair, completing in a single rendezvous round.
    Exchange {
        /// Partner rank.
        peer: usize,
        /// Outgoing message size in words.
        words: u64,
    },
    /// Full-machine clock barrier ([`Ctx::barrier`]): every rank must
    /// reach it.
    Barrier,
}

/// The complete communication schedule of one collective at one `(p, m)`:
/// `ranks[r]` is rank `r`'s action sequence in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Number of ranks.
    pub p: usize,
    /// Per-rank op sequences.
    pub ranks: Vec<Vec<SchedOp>>,
}

impl Schedule {
    /// An empty schedule over `p` ranks.
    pub fn new(p: usize) -> Self {
        Schedule {
            p,
            ranks: vec![Vec::new(); p],
        }
    }

    /// Total number of point-to-point messages (each exchange counts as
    /// one message per direction, matching the machine's channel model).
    pub fn message_count(&self) -> u64 {
        self.ranks
            .iter()
            .flatten()
            .map(|op| match op {
                SchedOp::Send { .. } | SchedOp::Exchange { .. } => 1,
                _ => 0,
            })
            .sum()
    }

    /// Total words put on the wire (exchanges count their outgoing side;
    /// the incoming side is the partner's own exchange).
    pub fn total_words(&self) -> u64 {
        self.ranks
            .iter()
            .flatten()
            .map(|op| match op {
                SchedOp::Send { words, .. } | SchedOp::Exchange { words, .. } => *words,
                _ => 0,
            })
            .sum()
    }
}

/// The collective family a schedule implements — the key into the round
/// lower-bound table of `collopt-cost`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// One root's block to all ranks.
    Bcast,
    /// All ranks' blocks combined to one root.
    Reduce,
    /// All ranks' blocks combined, result everywhere.
    AllReduce,
    /// Inclusive prefix combination.
    Scan,
    /// Exclusive prefix combination.
    ExScan,
    /// All blocks concatenated at the root.
    Gather,
    /// The root's blocks distributed, one per rank.
    Scatter,
    /// All blocks concatenated everywhere.
    AllGather,
    /// Combined blocks, segment `i` at rank `i`.
    ReduceScatter,
    /// Personalized block from every rank to every rank.
    AllToAll,
    /// Pure synchronization.
    Barrier,
    /// The paper's compute-after-broadcast pattern.
    Comcast,
}

/// A lowering in the verification registry: how to symbolically extract
/// its schedule and what round count its cost closed form promises.
#[derive(Clone, Copy)]
pub struct Variant {
    /// Stable lowercase name (matches the implementing function).
    pub name: &'static str,
    /// Collective family, for the lower-bound oracle.
    pub kind: CollectiveKind,
    /// Whether the lowering supports this `(p, m)` point (e.g. the
    /// butterfly needs a power of two).
    pub applicable: fn(p: usize, m: u64) -> bool,
    /// Symbolic schedule extractor.
    pub extract: fn(p: usize, m: u64) -> Schedule,
    /// Closed-form critical-path round count the cost model promises;
    /// the verifier errors if the measured count exceeds it.
    pub expected_rounds: fn(p: usize, m: u64) -> u64,
}

impl std::fmt::Debug for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Variant")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

/// A deliberately broken lowering used as ground truth for the
/// verifier's reject path: `expected_code` is the lint code the static
/// checker must raise, and the runnable twin in [`planted`] demonstrates
/// the same defect dynamically (DES deadlock).
#[derive(Debug, Clone, Copy)]
pub struct PlantedVariant {
    /// The broken lowering's extractor and metadata.
    pub variant: Variant,
    /// The lint code the verifier must emit (`"COL008"` / `"COL009"`).
    pub expected_code: &'static str,
}

/// `m` units split into `n` nearly equal parts, matching
/// [`crate::op::Splittable::split_into`]: part `i` gets one extra unit
/// when `i < m mod n`.
pub fn split_lens(m: u64, n: usize) -> Vec<u64> {
    let n64 = n as u64;
    (0..n64).map(|i| m / n64 + u64::from(i < m % n64)).collect()
}

// ---------------------------------------------------------------------------
// Per-lowering extractors. Each mirrors the control flow of the runtime
// implementation exactly; comments reference the implementing function.
// ---------------------------------------------------------------------------

/// [`crate::bcast::bcast_binomial`] rooted at `root`.
fn bcast_binomial_into(s: &mut Schedule, root: usize, words: u64) {
    for rank in 0..s.p {
        let plan = binomial_bcast_rank_plan(s.p, root, rank);
        if let Some((_, src)) = plan.recv {
            s.ranks[rank].push(SchedOp::Recv { from: src });
        }
        for (_, dst) in plan.sends {
            s.ranks[rank].push(SchedOp::Send { to: dst, words });
        }
    }
}

fn x_bcast_binomial(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    bcast_binomial_into(&mut s, 0, m);
    s
}

/// [`crate::bcast::bcast_linear`]: the root sends to every rank in turn.
fn x_bcast_linear(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    for dst in 1..p {
        s.ranks[0].push(SchedOp::Send { to: dst, words: m });
        s.ranks[dst].push(SchedOp::Recv { from: 0 });
    }
    s
}

/// [`crate::pipelined::bcast_pipelined`] with `segments` chunks of the
/// `m`-word block, rooted at 0.
fn bcast_pipelined_into(s: &mut Schedule, m: u64, segments: u64) {
    let p = s.p;
    if p <= 1 {
        return;
    }
    let chunks = split_lens(m, segments.max(1) as usize);
    for (v, ops) in s.ranks.iter_mut().enumerate() {
        let next = (v + 1) % p;
        let prev = (v + p - 1) % p;
        if v == 0 {
            for &c in &chunks {
                ops.push(SchedOp::Send { to: next, words: c });
            }
        } else {
            let forward = v + 1 < p;
            for &c in &chunks {
                ops.push(SchedOp::Recv { from: prev });
                if forward {
                    ops.push(SchedOp::Send { to: next, words: c });
                }
            }
        }
    }
}

/// Segment count the registry pins for the pipelined broadcast: the
/// model-optimal `S*` at the default lint machine (`ts = 100`, `tw = 2`).
pub fn pipelined_segments(p: usize, m: u64) -> u64 {
    crate::pipelined::optimal_segments(p, m, 100.0, 2.0)
}

fn x_bcast_pipelined(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    bcast_pipelined_into(&mut s, m, pipelined_segments(p, m));
    s
}

/// [`crate::gather::gather_binomial`]: message sizes double up the tree.
/// `words` is the size of one block; returns each rank's final
/// accumulated block count (rank 0 ends with `p`).
fn gather_binomial_into(s: &mut Schedule, words: u64) -> Vec<u64> {
    let p = s.p;
    let mut len = vec![1u64; p];
    let mut done = vec![false; p];
    for round in 0..ceil_log2(p) {
        let bit = 1usize << round;
        // Senders post first (the runtime send is non-blocking), then
        // receivers absorb the sender's pre-send length.
        let snapshot = len.clone();
        for rank in 0..p {
            if done[rank] {
                continue;
            }
            if rank & bit != 0 {
                s.ranks[rank].push(SchedOp::Send {
                    to: rank - bit,
                    words: words * snapshot[rank],
                });
                done[rank] = true;
            } else if rank + bit < p {
                s.ranks[rank].push(SchedOp::Recv { from: rank + bit });
                len[rank] += snapshot[rank + bit];
            }
        }
    }
    len
}

fn x_gather_binomial(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    gather_binomial_into(&mut s, m);
    s
}

/// [`crate::gather::scatter_binomial`] with a caller-supplied per-block
/// length table (`block_lens[i]` blocks... in the uniform case every
/// entry is 1 and `words` is the per-block size). Messages carry
/// `words × (number of blocks forwarded)`.
fn scatter_binomial_into(s: &mut Schedule, words: u64) {
    let p = s.p;
    let rounds = ceil_log2(p);
    for rank in 0..p {
        // Blocks held on arrival: rank 0 starts with all p; rank r ≠ 0
        // receives the segment [r, min(r + 2^tz(r), p)).
        let (mut held, first_round) = if rank == 0 {
            (p, 0)
        } else {
            let j = rank.trailing_zeros();
            s.ranks[rank].push(SchedOp::Recv {
                from: rank - (1usize << j),
            });
            ((rank + (1usize << j)).min(p) - rank, rounds - j)
        };
        for round in first_round..rounds {
            let bit = 1usize << (rounds - 1 - round);
            if bit < held {
                let upper = held - bit;
                s.ranks[rank].push(SchedOp::Send {
                    to: rank + bit,
                    words: words * upper as u64,
                });
                held = bit;
            }
        }
    }
}

fn x_scatter_binomial(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    scatter_binomial_into(&mut s, m);
    s
}

/// [`crate::gather::allgather`]: binomial gather + binomial broadcast of
/// the assembled `p`-block vector.
fn x_allgather_binomial(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    gather_binomial_into(&mut s, m);
    bcast_binomial_into(&mut s, 0, m * p as u64);
    s
}

/// [`crate::variants::allgather_ring`] where rank `r` always forwards
/// with its own declared block size `per_rank[r]`.
fn allgather_ring_into(s: &mut Schedule, per_rank: &[u64]) {
    let p = s.p;
    if p <= 1 {
        return;
    }
    for (rank, ops) in s.ranks.iter_mut().enumerate() {
        let next = (rank + 1) % p;
        let prev = (rank + p - 1) % p;
        for _step in 0..p - 1 {
            if p == 2 {
                ops.push(SchedOp::Exchange {
                    peer: next,
                    words: per_rank[rank],
                });
            } else {
                ops.push(SchedOp::Send {
                    to: next,
                    words: per_rank[rank],
                });
                ops.push(SchedOp::Recv { from: prev });
            }
        }
    }
}

fn x_allgather_ring(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    allgather_ring_into(&mut s, &vec![m; p]);
    s
}

/// [`crate::variants::bcast_scatter_allgather`]: binomial scatter of the
/// `p` pieces (each piece charged `words_per_elem = 1` on the wire, as
/// the runtime does) followed by a ring allgather of the pieces, where
/// rank `r` forwards with its own piece size `max(len_r, 1)`.
fn x_bcast_scatter_allgather(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    if p <= 1 {
        return s;
    }
    scatter_binomial_into(&mut s, 1);
    let lens = split_lens(m, p);
    let per_rank: Vec<u64> = lens.iter().map(|&l| l.max(1)).collect();
    allgather_ring_into(&mut s, &per_rank);
    s
}

/// [`crate::gather::barrier`]: the dissemination barrier of empty
/// messages (distinct from the clock barrier [`SchedOp::Barrier`]).
fn x_barrier_dissemination(p: usize, _m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    for rank in 0..p {
        for round in 0..ceil_log2(p) {
            let dist = 1usize << round;
            let to = (rank + dist) % p;
            let from = (rank + p - dist) % p;
            if to == from {
                if to != rank {
                    s.ranks[rank].push(SchedOp::Exchange { peer: to, words: 0 });
                }
                continue;
            }
            s.ranks[rank].push(SchedOp::Send { to, words: 0 });
            s.ranks[rank].push(SchedOp::Recv { from });
        }
    }
    s
}

/// [`crate::reduce::reduce_binomial`] rooted at `root`.
fn reduce_binomial_into(s: &mut Schedule, root: usize, words: u64) {
    let p = s.p;
    for rank in 0..p {
        let v = (rank + p - root) % p;
        for round in 0..ceil_log2(p) {
            let bit = 1usize << round;
            if v & bit != 0 {
                s.ranks[rank].push(SchedOp::Send {
                    to: ((v - bit) + root) % p,
                    words,
                });
                break;
            }
            if v + bit < p {
                s.ranks[rank].push(SchedOp::Recv {
                    from: ((v + bit) + root) % p,
                });
            }
        }
    }
}

fn x_reduce_binomial(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    reduce_binomial_into(&mut s, 0, m);
    s
}

/// [`crate::reduce::allreduce_butterfly`] (power-of-two `p`): `words`
/// per exchange, every round.
fn butterfly_into(s: &mut Schedule, words: u64) {
    let p = s.p;
    for rank in 0..p {
        for round in 0..butterfly_rounds(p) {
            let partner = rank ^ (1usize << round);
            s.ranks[rank].push(SchedOp::Exchange {
                peer: partner,
                words,
            });
        }
    }
}

fn x_allreduce_butterfly(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    butterfly_into(&mut s, m);
    s
}

/// [`crate::reduce::allreduce`]: butterfly for powers of two, otherwise
/// binomial reduce to 0 + binomial broadcast.
fn x_allreduce_generic(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    if p.is_power_of_two() {
        butterfly_into(&mut s, m);
    } else {
        reduce_binomial_into(&mut s, 0, m);
        bcast_binomial_into(&mut s, 0, m);
    }
    s
}

/// [`crate::reduce::allreduce_commutative`]: fold the excess ranks into
/// the leading power-of-two block, butterfly there, ship results back.
fn x_allreduce_commutative(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    if p.is_power_of_two() {
        butterfly_into(&mut s, m);
        return s;
    }
    let k = 1usize << floor_log2(p);
    for rank in 0..p {
        if rank >= k {
            s.ranks[rank].push(SchedOp::Send {
                to: rank - k,
                words: m,
            });
            s.ranks[rank].push(SchedOp::Recv { from: rank - k });
            continue;
        }
        if rank + k < p {
            s.ranks[rank].push(SchedOp::Recv { from: rank + k });
        }
        for round in 0..butterfly_rounds(k) {
            s.ranks[rank].push(SchedOp::Exchange {
                peer: rank ^ (1usize << round),
                words: m,
            });
        }
        if rank + k < p {
            s.ranks[rank].push(SchedOp::Send {
                to: rank + k,
                words: m,
            });
        }
    }
    s
}

/// Recursive-halving core of [`crate::reduce_scatter`]: per round each
/// rank ships the segments whose indices disagree with its own rank on
/// the round bit. Returns each rank's surviving segment length.
fn halving_core_into(s: &mut Schedule, m: u64, wire: u64) -> Vec<u64> {
    let p = s.p;
    let lens = split_lens(m, p);
    for rank in 0..p {
        let mut live: Vec<usize> = (0..p).collect();
        for round in 0..butterfly_rounds(p) {
            let bit = 1usize << round;
            let partner = rank ^ bit;
            let out: u64 = live
                .iter()
                .filter(|&&seg| (seg ^ rank) & bit != 0)
                .map(|&seg| lens[seg] * wire)
                .sum();
            s.ranks[rank].push(SchedOp::Exchange {
                peer: partner,
                words: out,
            });
            live.retain(|&seg| (seg ^ rank) & bit == 0);
        }
        debug_assert_eq!(live, vec![rank]);
    }
    lens
}

/// Recursive-doubling core of [`crate::reduce_scatter`]: accumulated
/// block sizes double per round; each rank sends its own current size.
fn doubling_core_into(s: &mut Schedule, start: &[u64], wire: u64) {
    let p = s.p;
    let mut len = start.to_vec();
    for round in 0..butterfly_rounds(p) {
        let snapshot = len.clone();
        for rank in 0..p {
            let partner = rank ^ (1usize << round);
            s.ranks[rank].push(SchedOp::Exchange {
                peer: partner,
                words: snapshot[rank] * wire,
            });
            len[rank] = snapshot[rank] + snapshot[partner];
        }
    }
}

fn x_reduce_scatter_halving(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    halving_core_into(&mut s, m, 1);
    s
}

/// Ring reduce-scatter of [`crate::reduce_scatter`]: `p − 1` steps, step
/// `k` shipping segment `(rank − 1 − k) mod p`.
fn ring_reduce_scatter_into(s: &mut Schedule, m: u64, wire: u64) -> Vec<u64> {
    let p = s.p;
    let lens = split_lens(m, p);
    if p <= 1 {
        return lens;
    }
    for rank in 0..p {
        let next = (rank + 1) % p;
        let prev = (rank + p - 1) % p;
        for step in 0..p - 1 {
            let send_idx = (rank + p - 1 - step) % p;
            let words = lens[send_idx] * wire;
            if p == 2 {
                s.ranks[rank].push(SchedOp::Exchange { peer: next, words });
            } else {
                s.ranks[rank].push(SchedOp::Send { to: next, words });
                s.ranks[rank].push(SchedOp::Recv { from: prev });
            }
        }
    }
    lens
}

fn x_reduce_scatter_ring(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    ring_reduce_scatter_into(&mut s, m, 1);
    s
}

/// [`crate::reduce_scatter::allreduce_ring`]: ring reduce-scatter, then
/// ring allgather of the reduced segments.
fn x_allreduce_ring(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    if p <= 1 {
        return s;
    }
    let lens = ring_reduce_scatter_into(&mut s, m, 1);
    allgather_ring_into(&mut s, &lens);
    s
}

/// [`crate::reduce_scatter::allreduce_rabenseifner`]: halving+doubling
/// for powers of two; the commutative ring otherwise (`p = 1` is a
/// no-op; the registry models the commutative-operator instantiation).
fn x_allreduce_rabenseifner(p: usize, m: u64) -> Schedule {
    if p.is_power_of_two() {
        let mut s = Schedule::new(p);
        let lens = halving_core_into(&mut s, m, 1);
        doubling_core_into(&mut s, &lens, 1);
        s
    } else {
        x_allreduce_ring(p, m)
    }
}

/// [`crate::reduce_scatter::allreduce_balanced_halving`]: the fused
/// SR-Reduction operator on the halving/doubling pair — `op_sr` puts
/// `words_factor = 2` words on the wire per block word.
fn x_allreduce_balanced_halving(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    let lens = halving_core_into(&mut s, m, 2);
    doubling_core_into(&mut s, &lens, 2);
    s
}

/// [`crate::scan::scan_butterfly`]: exchange with the butterfly partner
/// where one exists (any `p`).
fn scan_butterfly_into(s: &mut Schedule, words: u64) {
    let p = s.p;
    for rank in 0..p {
        for round in 0..butterfly_rounds(p) {
            if let Some(partner) = butterfly_partner(rank, round, p) {
                s.ranks[rank].push(SchedOp::Exchange {
                    peer: partner,
                    words,
                });
            }
        }
    }
}

fn x_scan_butterfly(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    scan_butterfly_into(&mut s, m);
    s
}

/// [`crate::scan::exscan`]: inclusive scan + one shift round.
fn x_exscan(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    scan_butterfly_into(&mut s, m);
    for rank in 0..p {
        if rank + 1 < p {
            s.ranks[rank].push(SchedOp::Send {
                to: rank + 1,
                words: m,
            });
        }
        if rank > 0 {
            s.ranks[rank].push(SchedOp::Recv { from: rank - 1 });
        }
    }
    s
}

/// [`crate::variants::scan_sklansky`]: fan-based scan; the block leader
/// serializes up to `2^j` sends in round `j` (one-ported model).
fn x_scan_sklansky(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    for rank in 0..p {
        for round in 0..butterfly_rounds(p) {
            let bit = 1usize << round;
            if rank & bit != 0 {
                let src = (rank & !(bit * 2 - 1)) | (bit - 1);
                s.ranks[rank].push(SchedOp::Recv { from: src });
            } else if (rank | (bit - 1)) == rank {
                for dst in (rank + 1)..=(rank + bit).min(p.saturating_sub(1)) {
                    s.ranks[rank].push(SchedOp::Send { to: dst, words: m });
                }
            }
        }
    }
    s
}

/// [`crate::balanced::scan_balanced`] with `op_ss` (`words_factor = 3`).
fn x_scan_balanced(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    scan_butterfly_into(&mut s, m * 3);
    s
}

/// [`crate::balanced::reduce_balanced`] with `op_sr`
/// (`words_factor = 2`): the paper's balanced tree (Figure 4).
fn reduce_balanced_into(s: &mut Schedule, words: u64) {
    let tree = BalancedTree::new(s.p);
    for rank in 0..s.p {
        for (_, action) in tree.rank_schedule(rank) {
            match action {
                RankAction::RecvCombine { from } => {
                    s.ranks[rank].push(SchedOp::Recv { from });
                }
                RankAction::SendTo { to } => {
                    s.ranks[rank].push(SchedOp::Send {
                        to,
                        words: words * 2,
                    });
                    break;
                }
                RankAction::ApplyUnary => {}
            }
        }
    }
}

fn x_reduce_balanced(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    reduce_balanced_into(&mut s, m);
    s
}

/// [`crate::balanced::allreduce_balanced`] with `op_sr`: butterfly of
/// doubled words for powers of two, balanced reduce + broadcast
/// otherwise.
fn x_allreduce_balanced(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    if p.is_power_of_two() {
        butterfly_into(&mut s, m * 2);
    } else {
        reduce_balanced_into(&mut s, m);
        bcast_binomial_into(&mut s, 0, m * 2);
    }
    s
}

/// [`crate::comcast::comcast_bcast_repeat`] rooted at 0: all
/// communication is the broadcast; `repeat` is local.
fn x_comcast_bcast_repeat(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    bcast_binomial_into(&mut s, 0, m);
    s
}

/// [`crate::comcast::comcast_cost_optimal`] rooted at 0 with the pair
/// tuple (`words_factor = 2`): successive doubling of the informed set.
fn x_comcast_cost_optimal(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    for v in 0..p {
        let mut informed = v == 0;
        for j in 0..ceil_log2(p) {
            let bit = 1usize << j;
            if informed {
                if v + bit < p {
                    s.ranks[v].push(SchedOp::Send {
                        to: v + bit,
                        words: m * 2,
                    });
                }
            } else if v >= bit && v < 2 * bit {
                s.ranks[v].push(SchedOp::Recv { from: v - bit });
                informed = true;
            }
        }
    }
    s
}

/// [`crate::alltoall::alltoall`]: the linear-shift schedule, `p − 1`
/// rounds of simultaneous pairwise traffic.
fn x_alltoall(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    for rank in 0..p {
        for round in 1..p {
            let dst = (rank + round) % p;
            let src = (rank + p - round) % p;
            if dst == src {
                s.ranks[rank].push(SchedOp::Exchange {
                    peer: dst,
                    words: m,
                });
            } else {
                s.ranks[rank].push(SchedOp::Send { to: dst, words: m });
                s.ranks[rank].push(SchedOp::Recv { from: src });
            }
        }
    }
    s
}

/// [`crate::alltoall::reduce_scatter`]: binomial reduction of the whole
/// `p·m`-word block vector to rank 0, then a binomial scatter.
fn x_reduce_scatter_binomial(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    reduce_binomial_into(&mut s, 0, m * p as u64);
    scatter_binomial_into(&mut s, m);
    s
}

// ---------------------------------------------------------------------------
// Expected-round closed forms (critical-path communication rounds on the
// half-duplex store-and-forward machine; see DESIGN.md §14).
// ---------------------------------------------------------------------------

fn any_p(_p: usize, _m: u64) -> bool {
    true
}

fn pow2_only(p: usize, _m: u64) -> bool {
    p.is_power_of_two()
}

fn r_log(p: usize, _m: u64) -> u64 {
    ceil_log2(p) as u64
}

fn r_2log(p: usize, _m: u64) -> u64 {
    2 * ceil_log2(p) as u64
}

fn r_linear(p: usize, _m: u64) -> u64 {
    p.saturating_sub(1) as u64
}

fn r_ring(p: usize, _m: u64) -> u64 {
    // p − 1 steps; for p > 2 each step is a send and a store-and-forward
    // receive (two rounds), for p = 2 a single exchange.
    match p {
        0 | 1 => 0,
        2 => 1,
        _ => 2 * (p as u64 - 1),
    }
}

fn r_double_ring(p: usize, m: u64) -> u64 {
    2 * r_ring(p, m)
}

fn r_allreduce_generic(p: usize, m: u64) -> u64 {
    if p.is_power_of_two() {
        r_log(p, m)
    } else {
        r_2log(p, m)
    }
}

fn r_allreduce_commutative(p: usize, m: u64) -> u64 {
    if p.is_power_of_two() {
        r_log(p, m)
    } else {
        floor_log2(p) as u64 + 2
    }
}

fn r_rabenseifner(p: usize, m: u64) -> u64 {
    if p.is_power_of_two() {
        r_2log(p, m)
    } else {
        r_double_ring(p, m)
    }
}

fn r_exscan(p: usize, m: u64) -> u64 {
    match p {
        0 | 1 => 0,
        2 => 2,
        _ => r_log(p, m) + 2,
    }
}

fn r_barrier_dissemination(p: usize, m: u64) -> u64 {
    // Each send+recv round costs two store-and-forward rounds; the final
    // round of a power of two collapses to a single exchange.
    match p {
        0 | 1 => 0,
        _ if p.is_power_of_two() => 2 * r_log(p, m) - 1,
        _ => 2 * r_log(p, m),
    }
}

fn r_alltoall(p: usize, _m: u64) -> u64 {
    // p − 1 shift rounds; the self-paired middle round of an even p is a
    // single exchange instead of a send + receive.
    match p {
        0 | 1 => 0,
        _ if p.is_multiple_of(2) => 2 * p as u64 - 3,
        _ => 2 * (p as u64 - 1),
    }
}

fn r_vdg(p: usize, m: u64) -> u64 {
    // Scatter start-ups, then the ring's 2(p − 1) forwarding rounds.
    match p {
        0 | 1 => 0,
        2 => 2,
        _ => r_log(p, m) + 2 * (p as u64 - 1),
    }
}

fn r_pipelined(p: usize, m: u64) -> u64 {
    let s = pipelined_segments(p, m);
    match p {
        0 | 1 => 0,
        2 => s,
        _ => (p as u64 - 1) + 2 * (s - 1),
    }
}

/// Every shipped lowering with its extractor, applicability predicate
/// and promised round count.
pub fn shipped_variants() -> Vec<Variant> {
    use CollectiveKind as K;
    vec![
        Variant {
            name: "bcast_binomial",
            kind: K::Bcast,
            applicable: any_p,
            extract: x_bcast_binomial,
            expected_rounds: r_log,
        },
        Variant {
            name: "bcast_linear",
            kind: K::Bcast,
            applicable: any_p,
            extract: x_bcast_linear,
            expected_rounds: r_linear,
        },
        Variant {
            name: "bcast_pipelined",
            kind: K::Bcast,
            applicable: any_p,
            extract: x_bcast_pipelined,
            expected_rounds: r_pipelined,
        },
        Variant {
            name: "bcast_scatter_allgather",
            kind: K::Bcast,
            applicable: any_p,
            extract: x_bcast_scatter_allgather,
            expected_rounds: r_vdg,
        },
        Variant {
            name: "gather_binomial",
            kind: K::Gather,
            applicable: any_p,
            extract: x_gather_binomial,
            expected_rounds: r_log,
        },
        Variant {
            name: "scatter_binomial",
            kind: K::Scatter,
            applicable: any_p,
            extract: x_scatter_binomial,
            expected_rounds: r_log,
        },
        Variant {
            name: "allgather_binomial",
            kind: K::AllGather,
            applicable: any_p,
            extract: x_allgather_binomial,
            expected_rounds: r_2log,
        },
        Variant {
            name: "allgather_ring",
            kind: K::AllGather,
            applicable: any_p,
            extract: x_allgather_ring,
            expected_rounds: r_ring,
        },
        Variant {
            name: "barrier_dissemination",
            kind: K::Barrier,
            applicable: any_p,
            extract: x_barrier_dissemination,
            expected_rounds: r_barrier_dissemination,
        },
        Variant {
            name: "reduce_binomial",
            kind: K::Reduce,
            applicable: any_p,
            extract: x_reduce_binomial,
            expected_rounds: r_log,
        },
        Variant {
            name: "reduce_balanced",
            kind: K::Reduce,
            applicable: any_p,
            extract: x_reduce_balanced,
            expected_rounds: r_log,
        },
        Variant {
            name: "allreduce_butterfly",
            kind: K::AllReduce,
            applicable: pow2_only,
            extract: x_allreduce_butterfly,
            expected_rounds: r_log,
        },
        Variant {
            name: "allreduce",
            kind: K::AllReduce,
            applicable: any_p,
            extract: x_allreduce_generic,
            expected_rounds: r_allreduce_generic,
        },
        Variant {
            name: "allreduce_commutative",
            kind: K::AllReduce,
            applicable: any_p,
            extract: x_allreduce_commutative,
            expected_rounds: r_allreduce_commutative,
        },
        Variant {
            name: "allreduce_rabenseifner",
            kind: K::AllReduce,
            applicable: any_p,
            extract: x_allreduce_rabenseifner,
            expected_rounds: r_rabenseifner,
        },
        Variant {
            name: "allreduce_ring",
            kind: K::AllReduce,
            applicable: any_p,
            extract: x_allreduce_ring,
            expected_rounds: r_double_ring,
        },
        Variant {
            name: "allreduce_balanced",
            kind: K::AllReduce,
            applicable: any_p,
            extract: x_allreduce_balanced,
            expected_rounds: r_allreduce_generic,
        },
        Variant {
            name: "allreduce_balanced_halving",
            kind: K::AllReduce,
            applicable: pow2_only,
            extract: x_allreduce_balanced_halving,
            expected_rounds: r_2log,
        },
        Variant {
            name: "reduce_scatter_halving",
            kind: K::ReduceScatter,
            applicable: pow2_only,
            extract: x_reduce_scatter_halving,
            expected_rounds: r_log,
        },
        Variant {
            name: "reduce_scatter_ring",
            kind: K::ReduceScatter,
            applicable: any_p,
            extract: x_reduce_scatter_ring,
            expected_rounds: r_ring,
        },
        Variant {
            name: "reduce_scatter_binomial",
            kind: K::ReduceScatter,
            applicable: any_p,
            extract: x_reduce_scatter_binomial,
            expected_rounds: r_2log,
        },
        Variant {
            name: "scan_butterfly",
            kind: K::Scan,
            applicable: any_p,
            extract: x_scan_butterfly,
            expected_rounds: r_log,
        },
        Variant {
            name: "scan_balanced",
            kind: K::Scan,
            applicable: any_p,
            extract: x_scan_balanced,
            expected_rounds: r_log,
        },
        Variant {
            name: "scan_sklansky",
            kind: K::Scan,
            applicable: any_p,
            extract: x_scan_sklansky,
            expected_rounds: r_linear,
        },
        Variant {
            name: "exscan",
            kind: K::ExScan,
            applicable: any_p,
            extract: x_exscan,
            expected_rounds: r_exscan,
        },
        Variant {
            name: "comcast_bcast_repeat",
            kind: K::Comcast,
            applicable: any_p,
            extract: x_comcast_bcast_repeat,
            expected_rounds: r_log,
        },
        Variant {
            name: "comcast_cost_optimal",
            kind: K::Comcast,
            applicable: any_p,
            extract: x_comcast_cost_optimal,
            expected_rounds: r_log,
        },
        Variant {
            name: "alltoall",
            kind: K::AllToAll,
            applicable: any_p,
            extract: x_alltoall,
            expected_rounds: r_alltoall,
        },
    ]
}

// ---------------------------------------------------------------------------
// Planted-bug lowerings: extractors + runnable twins.
// ---------------------------------------------------------------------------

/// Planted bug 1: the ring reduce-scatter with send and receive swapped
/// — every rank posts its receive first, so the ring never moves.
fn x_planted_swapped_ring(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    let lens = split_lens(m, p);
    for rank in 0..p {
        let next = (rank + 1) % p;
        let prev = (rank + p - 1) % p;
        for step in 0..p - 1 {
            let send_idx = (rank + p - 1 - step) % p;
            s.ranks[rank].push(SchedOp::Recv { from: prev });
            s.ranks[rank].push(SchedOp::Send {
                to: next,
                words: lens[send_idx],
            });
        }
    }
    s
}

/// Planted bug 2: every rank except 0 enters the clock barrier.
fn x_planted_dropped_barrier(p: usize, _m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    for rank in 1..p {
        s.ranks[rank].push(SchedOp::Barrier);
    }
    s
}

/// Planted bug 3: a binomial broadcast whose sends all land one rank too
/// high (where a higher rank exists).
fn x_planted_off_by_one_bcast(p: usize, m: u64) -> Schedule {
    let mut s = Schedule::new(p);
    for rank in 0..p {
        let plan = binomial_bcast_rank_plan(p, 0, rank);
        if let Some((_, src)) = plan.recv {
            s.ranks[rank].push(SchedOp::Recv { from: src });
        }
        for (_, dst) in plan.sends {
            let dst = if dst + 1 < p { dst + 1 } else { dst };
            s.ranks[rank].push(SchedOp::Send { to: dst, words: m });
        }
    }
    s
}

/// The planted-bug registry: each entry is statically rejectable with
/// `expected_code` and dynamically deadlocks (see [`planted`]).
pub fn planted_variants() -> Vec<PlantedVariant> {
    vec![
        PlantedVariant {
            variant: Variant {
                name: "planted_swapped_ring_reduce_scatter",
                kind: CollectiveKind::ReduceScatter,
                applicable: |p, _| p >= 3,
                extract: x_planted_swapped_ring,
                expected_rounds: r_ring,
            },
            expected_code: "COL008",
        },
        PlantedVariant {
            variant: Variant {
                name: "planted_dropped_barrier",
                kind: CollectiveKind::Barrier,
                applicable: |p, _| p >= 2,
                extract: x_planted_dropped_barrier,
                expected_rounds: |_, _| 0,
            },
            expected_code: "COL008",
        },
        PlantedVariant {
            variant: Variant {
                name: "planted_off_by_one_bcast",
                kind: CollectiveKind::Bcast,
                applicable: |p, _| p >= 3,
                extract: x_planted_off_by_one_bcast,
                expected_rounds: r_log,
            },
            expected_code: "COL009",
        },
    ]
}

/// Runnable twins of the planted-bug schedules — real lowerings with the
/// same defects, used to demonstrate that what the static verifier
/// rejects also fails dynamically (the DES engine detects the deadlock
/// and panics; the thread engines would hang).
pub mod planted {
    use super::*;
    use crate::op::Splittable;

    /// The ring reduce-scatter of
    /// [`crate::reduce_scatter::reduce_scatter_ring`] with the receive
    /// posted *before* the send: for `p ≥ 3` every rank blocks on its
    /// predecessor before anything is on the wire — a classic wait-for
    /// cycle.
    pub async fn swapped_ring_reduce_scatter_async(ctx: &mut Ctx, block: Vec<i64>) -> Vec<i64> {
        let p = ctx.size();
        assert!(p >= 3, "the planted ring needs at least three ranks");
        let rank = ctx.rank();
        let next = (rank + 1) % p;
        let prev = (rank + p - 1) % p;
        let mut segs: Vec<Vec<i64>> = block.split_into(p);
        for step in 0..p - 1 {
            let send_idx = (rank + p - 1 - step) % p;
            let recv_idx = (rank + p - 2 - step) % p;
            let words = segs[send_idx].len() as u64;
            // BUG (planted): receive before send — the ring never moves.
            let got: Vec<i64> = ctx.recv_async(prev).await;
            ctx.send(next, segs[send_idx].clone(), words);
            segs[recv_idx] = got
                .iter()
                .zip(&segs[recv_idx])
                .map(|(a, b)| a + b)
                .collect();
        }
        segs[rank].clone()
    }

    /// A computation phase that skips the clock barrier on rank 0 only:
    /// every other rank waits forever at a barrier rank 0 never reaches.
    pub async fn dropped_barrier_async(ctx: &mut Ctx) -> usize {
        if ctx.rank() != 0 {
            // BUG (planted): rank 0 took an early-out path around this.
            ctx.barrier_async().await;
        }
        ctx.rank()
    }

    /// The binomial broadcast of [`crate::bcast::bcast_binomial`] with
    /// every send landing one rank too high: the skipped ranks block on
    /// a message that goes elsewhere.
    pub async fn off_by_one_bcast_async(
        ctx: &mut Ctx,
        value: Option<Vec<i64>>,
        words: u64,
    ) -> Vec<i64> {
        let p = ctx.size();
        assert!(p >= 3, "the planted broadcast needs at least three ranks");
        let plan = binomial_bcast_rank_plan(p, 0, ctx.rank());
        let v: Vec<i64> = match (plan.recv, value) {
            (None, Some(v)) => v,
            (Some((_, src)), None) => ctx.recv_async(src).await,
            _ => panic!("exactly the root supplies the broadcast value"),
        };
        for (_, dst) in plan.sends {
            // BUG (planted): off-by-one destination.
            let dst = if dst + 1 < p { dst + 1 } else { dst };
            ctx.send(dst, v.clone(), words);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collopt_machine::{ClockParams, EventKind, Machine};

    /// Extraction is a pure function of `(p, m)`.
    #[test]
    fn extraction_is_deterministic() {
        for v in shipped_variants() {
            for (p, m) in [(5usize, 17u64), (8, 32), (13, 7)] {
                if (v.applicable)(p, m) {
                    assert_eq!((v.extract)(p, m), (v.extract)(p, m), "{}", v.name);
                }
            }
        }
    }

    /// A communication event reduced to what the schedule predicts:
    /// kind, peer, and (where the schedule pins one) word count.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum CommEv {
        Send(usize, u64),
        /// Receive from a rank; the payload size is the sender's
        /// business, so it is not compared here.
        Recv(usize),
        /// Exchange with a peer carrying `max(out, in)` words, which is
        /// what the trace records.
        Exchange(usize, u64),
        Barrier,
    }

    /// Replay a traced run and compare the per-rank event sequence
    /// against the extracted schedule: same op kinds, same peers, same
    /// word counts. Compute/mark/stage events are cost bookkeeping, not
    /// communication, and are skipped.
    fn assert_schedule_matches_trace<T: Send>(
        sched: &Schedule,
        run: impl Fn(&mut Ctx) -> T + Sync,
        name: &str,
    ) {
        let p = sched.p;
        let machine = Machine::new(p, ClockParams::free()).with_tracing();
        let result = machine.run(run);
        let mut per_rank: Vec<Vec<CommEv>> = vec![Vec::new(); p];
        for ev in result.trace.events() {
            let simplified = match &ev.kind {
                EventKind::Send { to, words } => CommEv::Send(*to, *words),
                EventKind::Recv { from, .. } => CommEv::Recv(*from),
                EventKind::Exchange { partner, words, .. } => CommEv::Exchange(*partner, *words),
                EventKind::Barrier => CommEv::Barrier,
                _ => continue,
            };
            per_rank[ev.rank].push(simplified);
        }
        for (rank, traced) in per_rank.iter().enumerate() {
            // Ranks can exchange with the same peer repeatedly (halving
            // then doubling), so the n-th exchange with a peer pairs with
            // that peer's n-th exchange back.
            let mut seen: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            let expected: Vec<CommEv> = sched.ranks[rank]
                .iter()
                .map(|op| match *op {
                    SchedOp::Send { to, words } => CommEv::Send(to, words),
                    SchedOp::Recv { from } => CommEv::Recv(from),
                    SchedOp::Exchange { peer, words } => {
                        let nth = seen.entry(peer).or_insert(0);
                        // The trace records max(out_words, in_words).
                        let theirs = sched.ranks[peer]
                            .iter()
                            .filter_map(|o| match *o {
                                SchedOp::Exchange { peer: q, words: w } if q == rank => Some(w),
                                _ => None,
                            })
                            .nth(*nth)
                            .unwrap_or(0);
                        *nth += 1;
                        CommEv::Exchange(peer, words.max(theirs))
                    }
                    SchedOp::Barrier => CommEv::Barrier,
                })
                .collect();
            assert_eq!(
                *traced, expected,
                "{name} rank {rank}: traced events (left) diverge from the extracted schedule (right)"
            );
        }
    }

    #[test]
    fn bcast_binomial_schedule_matches_trace() {
        for p in [2usize, 3, 6, 8] {
            let m = 5u64;
            assert_schedule_matches_trace(
                &x_bcast_binomial(p, m),
                move |ctx| {
                    let v = (ctx.rank() == 0).then(|| vec![1i64; m as usize]);
                    crate::bcast::bcast_binomial(ctx, 0, v, m)
                },
                "bcast_binomial",
            );
        }
    }

    #[test]
    fn gather_and_scatter_schedules_match_trace() {
        for p in [2usize, 5, 8, 11] {
            let m = 3u64;
            assert_schedule_matches_trace(
                &x_gather_binomial(p, m),
                move |ctx| crate::gather::gather_binomial(ctx, ctx.rank(), m),
                "gather_binomial",
            );
            assert_schedule_matches_trace(
                &x_scatter_binomial(p, m),
                move |ctx| {
                    let blocks = (ctx.rank() == 0).then(|| (0..ctx.size()).collect::<Vec<_>>());
                    crate::gather::scatter_binomial(ctx, blocks, m)
                },
                "scatter_binomial",
            );
        }
    }

    #[test]
    fn reduce_and_allreduce_schedules_match_trace() {
        for p in [2usize, 4, 6, 8, 13] {
            let m = 2u64;
            assert_schedule_matches_trace(
                &x_reduce_binomial(p, m),
                move |ctx| {
                    let add = |a: &i64, b: &i64| a + b;
                    crate::reduce::reduce_binomial(
                        ctx,
                        0,
                        ctx.rank() as i64,
                        m,
                        &crate::op::Combine::new(&add),
                    )
                },
                "reduce_binomial",
            );
            assert_schedule_matches_trace(
                &x_allreduce_generic(p, m),
                move |ctx| {
                    let add = |a: &i64, b: &i64| a + b;
                    crate::reduce::allreduce(
                        ctx,
                        ctx.rank() as i64,
                        m,
                        &crate::op::Combine::new(&add),
                    )
                },
                "allreduce",
            );
            assert_schedule_matches_trace(
                &x_allreduce_commutative(p, m),
                move |ctx| {
                    let add = |a: &i64, b: &i64| a + b;
                    crate::reduce::allreduce_commutative(
                        ctx,
                        ctx.rank() as i64,
                        m,
                        &crate::op::Combine::new(&add),
                    )
                },
                "allreduce_commutative",
            );
        }
    }

    #[allow(clippy::ptr_arg)]
    fn add_blocks(a: &Vec<i64>, b: &Vec<i64>) -> Vec<i64> {
        a.iter().zip(b).map(|(x, y)| x + y).collect()
    }

    #[test]
    fn segmenting_allreduce_schedules_match_trace() {
        // Divisible and non-divisible block lengths, including m < p.
        for (p, m) in [(4usize, 8u64), (8, 21), (4, 3), (6, 14), (5, 2)] {
            if p.is_power_of_two() {
                assert_schedule_matches_trace(
                    &x_reduce_scatter_halving(p, m),
                    move |ctx| {
                        let block: Vec<i64> = (0..m as i64).collect();
                        let op = crate::op::Combine::new(&add_blocks);
                        crate::reduce_scatter::reduce_scatter_halving(ctx, block, 1, &op)
                    },
                    "reduce_scatter_halving",
                );
            }
            assert_schedule_matches_trace(
                &x_allreduce_rabenseifner(p, m),
                move |ctx| {
                    let block: Vec<i64> = (0..m as i64).collect();
                    let op = crate::op::Combine::new(&add_blocks).assume_commutative();
                    crate::reduce_scatter::allreduce_rabenseifner(ctx, block, 1, &op)
                },
                "allreduce_rabenseifner",
            );
            if p >= 2 {
                assert_schedule_matches_trace(
                    &x_reduce_scatter_ring(p, m),
                    move |ctx| {
                        let block: Vec<i64> = (0..m as i64).collect();
                        let op = crate::op::Combine::new(&add_blocks).assume_commutative();
                        crate::reduce_scatter::reduce_scatter_ring(ctx, block, 1, &op)
                    },
                    "reduce_scatter_ring",
                );
            }
        }
    }

    #[test]
    fn scan_family_schedules_match_trace() {
        for p in [2usize, 4, 6, 8, 11] {
            let m = 1u64;
            assert_schedule_matches_trace(
                &x_scan_butterfly(p, m),
                move |ctx| {
                    let add = |a: &i64, b: &i64| a + b;
                    crate::scan::scan_butterfly(
                        ctx,
                        ctx.rank() as i64,
                        m,
                        &crate::op::Combine::new(&add),
                    )
                },
                "scan_butterfly",
            );
            assert_schedule_matches_trace(
                &x_exscan(p, m),
                move |ctx| {
                    let add = |a: &i64, b: &i64| a + b;
                    crate::scan::exscan(ctx, ctx.rank() as i64, m, &crate::op::Combine::new(&add))
                },
                "exscan",
            );
            assert_schedule_matches_trace(
                &x_scan_sklansky(p, m),
                move |ctx| {
                    let add = |a: &i64, b: &i64| a + b;
                    crate::variants::scan_sklansky(
                        ctx,
                        ctx.rank() as i64,
                        m,
                        &crate::op::Combine::new(&add),
                    )
                },
                "scan_sklansky",
            );
        }
    }

    #[test]
    fn ring_and_vdg_schedules_match_trace() {
        for (p, m) in [(2usize, 4u64), (3, 7), (6, 25), (8, 8)] {
            assert_schedule_matches_trace(
                &x_allgather_ring(p, m),
                move |ctx| crate::variants::allgather_ring(ctx, ctx.rank(), m),
                "allgather_ring",
            );
            assert_schedule_matches_trace(
                &x_bcast_scatter_allgather(p, m),
                move |ctx| {
                    let v = (ctx.rank() == 0).then(|| (0..m as i64).collect::<Vec<i64>>());
                    crate::variants::bcast_scatter_allgather(ctx, v, 1)
                },
                "bcast_scatter_allgather",
            );
        }
    }

    #[test]
    fn balanced_and_comcast_schedules_match_trace() {
        for p in [2usize, 4, 6, 9] {
            let m = 1u64;
            assert_schedule_matches_trace(
                &x_reduce_balanced(p, m),
                move |ctx| {
                    let op = crate::balanced::BalancedOp {
                        combine: &|a: &(i64, i64), b: &(i64, i64)| {
                            let uu = a.1 + b.1;
                            (a.0 + b.0 + a.1, uu + uu)
                        },
                        solo: &|x: &(i64, i64)| (x.0, x.1 + x.1),
                        ops_combine: 4.0,
                        ops_solo: 1.0,
                        words_factor: 2,
                    };
                    let x = ctx.rank() as i64;
                    crate::balanced::reduce_balanced(ctx, (x, x), m, &op)
                },
                "reduce_balanced",
            );
            assert_schedule_matches_trace(
                &x_comcast_cost_optimal(p, m),
                move |ctx| {
                    let op = crate::comcast::RepeatOp {
                        e: &|s: &(i64, i64)| (s.0, s.1 + s.1),
                        o: &|s: &(i64, i64)| (s.0 + s.1, s.1 + s.1),
                        ops_e: 1.0,
                        ops_o: 2.0,
                    };
                    let v = (ctx.rank() == 0).then_some(2i64);
                    crate::comcast::comcast_cost_optimal(
                        ctx,
                        0,
                        v,
                        m,
                        &|b: &i64| (*b, *b),
                        &|s: &(i64, i64)| s.0,
                        &op,
                        2,
                    )
                },
                "comcast_cost_optimal",
            );
        }
    }

    #[test]
    fn alltoall_and_barrier_schedules_match_trace() {
        for p in [2usize, 4, 5, 8] {
            let m = 2u64;
            assert_schedule_matches_trace(
                &x_alltoall(p, m),
                move |ctx| {
                    let blocks: Vec<usize> = (0..ctx.size()).collect();
                    crate::alltoall::alltoall(ctx, blocks, m)
                },
                "alltoall",
            );
            assert_schedule_matches_trace(
                &x_barrier_dissemination(p, m),
                crate::gather::barrier,
                "barrier_dissemination",
            );
        }
    }

    #[test]
    fn pipelined_schedule_matches_trace() {
        for (p, m) in [(2usize, 10u64), (4, 10), (6, 37)] {
            assert_schedule_matches_trace(
                &x_bcast_pipelined(p, m),
                move |ctx| {
                    let v = (ctx.rank() == 0).then(|| (0..m as i64).collect::<Vec<i64>>());
                    crate::pipelined::bcast_pipelined(ctx, 0, v, 1, pipelined_segments(p, m))
                },
                "bcast_pipelined",
            );
        }
    }

    #[test]
    fn planted_registry_entries_are_extractable() {
        for pv in planted_variants() {
            assert!((pv.variant.applicable)(4, 8), "{}", pv.variant.name);
            let s = (pv.variant.extract)(4, 8);
            assert_eq!(s.p, 4);
            assert!(
                pv.expected_code == "COL008" || pv.expected_code == "COL009",
                "{}",
                pv.variant.name
            );
        }
    }
}
