//! Alternative collective algorithms and model-driven selection.
//!
//! The paper's reference \[17\] (van de Geijn, *On global combine
//! operations*) is the classic source for large-message collective
//! algorithms; this module implements the main ones next to the binomial
//! and butterfly defaults, plus a selector that picks per call using the
//! same `ts`/`tw` calculus the optimization rules use — performance-
//! directed programming applied one level below the algebraic rules:
//!
//! * [`allgather_ring`] — bandwidth-optimal ring allgather:
//!   `(p−1)·(ts + m·tw)` total, each link carrying each block once;
//! * [`bcast_scatter_allgather`] — van de Geijn's large-message
//!   broadcast: scatter the block (`≈ log p·ts + m·tw` with halving
//!   segments), then ring-allgather the pieces. On this machine's
//!   half-duplex store-and-forward nodes one ring step costs
//!   `2(ts + (m/p)·tw)` (send and receive serialize on a rank's clock),
//!   so the allgather phase is `≈ 2(p−1)(ts + (m/p)·tw)` — still
//!   `≈ 3m·tw` total volume versus the binomial tree's `log p · m·tw`,
//!   a win once `log p > 3`, at the price of `p`-proportional start-ups;
//! * [`scan_sklansky`] — minimum-depth fan-based inclusive scan
//!   (`⌈log₂ p⌉` rounds; half the ranks idle per round but the combining
//!   work per rank is one application per round, vs two for the
//!   butterfly);
//! * [`bcast_auto`] — evaluates the analytic cost of binomial, chain
//!   pipeline and scatter+allgather for the actual `(p, m, ts, tw)` and
//!   runs the predicted winner;
//! * [`allreduce_auto`] / [`reduce_auto`] — the same idea for the
//!   reduction family of [`reduce_scatter`](mod@crate::reduce_scatter):
//!   [`choose_allreduce`] compares the butterfly
//!   (`log p (ts + m(tw + c))`), Rabenseifner's halving+doubling pair
//!   (`2 log p·ts + m(1−1/p)(2tw + c)`, power-of-two `p`), the ring
//!   (commutative operators, any `p`) and the reduce+bcast fallback; the
//!   butterfly wins small blocks and large `ts`, Rabenseifner wins once
//!   `m > log p·ts / (log p(tw+c) − (1−1/p)(2tw+c))` — e.g. `m ≳ 110`
//!   words on the Parsytec-like machine at `p = 16`. All formulas live
//!   in [`allreduce_model_cost`] / [`reduce_model_cost`] so callers can
//!   report predicted-vs-measured makespans.

use collopt_machine::topology::{butterfly_rounds, ceil_log2};
use collopt_machine::{drive, ClockParams, Ctx};

use crate::bcast::bcast_binomial_async;
use crate::gather::{gather_binomial_async, scatter_binomial_async};
use crate::op::{Combine, Splittable};
use crate::pipelined::{bcast_pipelined_async, chain_cost, optimal_segments};
use crate::reduce::{allreduce_async, allreduce_butterfly_async, reduce_binomial_async};
use crate::reduce_scatter::{
    allreduce_rabenseifner_async, allreduce_ring_async, reduce_scatter_halving_async,
};

/// Ring allgather: rank `r` starts with its own block; in step `k` it
/// sends the block it received in step `k−1` to `r+1` and receives a new
/// one from `r−1`. After `p−1` steps everyone holds all blocks, in rank
/// order. `words` is the size of one block.
pub fn allgather_ring<T: Clone + Send + 'static>(ctx: &mut Ctx, value: T, words: u64) -> Vec<T> {
    drive(allgather_ring_async(ctx, value, words))
}

/// Engine-agnostic form of [`allgather_ring`].
pub async fn allgather_ring_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
) -> Vec<T> {
    let p = ctx.size();
    let rank = ctx.rank();
    let mut out: Vec<Option<T>> = vec![None; p];
    out[rank] = Some(value.clone());
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    let mut carry = value;
    for step in 0..p.saturating_sub(1) {
        let incoming: T = if next == prev && p == 2 {
            // Two ranks: a single pairwise exchange.
            ctx.exchange_async(next, carry.clone(), words).await
        } else {
            ctx.send(next, carry, words);
            ctx.recv_async(prev).await
        };
        // The block received in step k originated at rank r - k - 1.
        let origin = (rank + p - step - 1) % p;
        out[origin] = Some(incoming.clone());
        carry = incoming;
    }
    out.into_iter()
        .map(|o| o.expect("ring delivers every block"))
        .collect()
}

/// Van de Geijn broadcast: scatter the root's block into `p` pieces, then
/// ring-allgather the pieces. The block is a `Vec<T>`; `words_per_elem`
/// sizes the cost charges. Efficient for large blocks; for tiny ones the
/// extra start-ups lose to the binomial tree (see [`bcast_auto`]).
pub fn bcast_scatter_allgather<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Option<Vec<T>>,
    words_per_elem: u64,
) -> Vec<T> {
    drive(bcast_scatter_allgather_async(ctx, value, words_per_elem))
}

/// Engine-agnostic form of [`bcast_scatter_allgather`].
pub async fn bcast_scatter_allgather_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Option<Vec<T>>,
    words_per_elem: u64,
) -> Vec<T> {
    let p = ctx.size();
    if p == 1 {
        return value.expect("root must supply the block");
    }
    // Split the root's block into p nearly-equal pieces.
    let pieces: Option<Vec<Vec<T>>> = value.map(|data| data.split_into(p));
    let piece_words = |piece: &Vec<T>| piece.len() as u64 * words_per_elem;
    let mine = scatter_binomial_async(ctx, pieces, words_per_elem).await;
    let w = piece_words(&mine).max(1);
    let all = allgather_ring_async(ctx, mine, w).await;
    all.into_iter().flatten().collect()
}

/// Sklansky-style inclusive scan: in round `j`, the ranks whose bit `j`
/// is set receive the prefix of their `2^j`-aligned left neighbour block
/// and fold it in. `⌈log₂ p⌉` rounds, one combine per receiving rank per
/// round (the butterfly pays two).
pub fn scan_sklansky<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> T {
    drive(scan_sklansky_async(ctx, value, words, op))
}

/// Engine-agnostic form of [`scan_sklansky`].
pub async fn scan_sklansky_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> T {
    let p = ctx.size();
    let rank = ctx.rank();
    let mut acc = value;
    for round in 0..butterfly_rounds(p) {
        let bit = 1usize << round;
        if rank & bit != 0 {
            // Receive the full prefix of the left half-block from its
            // last member.
            let src = (rank & !(bit * 2 - 1)) | (bit - 1);
            let got: T = ctx.recv_async(src).await;
            acc = op.apply(&got, &acc);
            ctx.charge(words as f64 * op.ops_per_word, "sklansky:combine");
        } else if (rank | (bit - 1)) == rank {
            // rank ends a complete left half-block: send its prefix to
            // every member of the right half-block that exists.
            for dst in (rank + 1)..=(rank + bit).min(p - 1) {
                ctx.send(dst, acc.clone(), words);
            }
        }
    }
    acc
}

/// Which broadcast algorithm [`bcast_auto`] predicts to win.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcastChoice {
    /// Binomial tree: `log p (ts + m tw)`.
    Binomial,
    /// Chain pipeline with the optimal segment count.
    ChainPipeline,
    /// Van de Geijn scatter + ring allgather.
    ScatterAllgather,
}

/// Predict the cheapest broadcast algorithm for `(p, m)` under `params`.
pub fn choose_bcast(p: usize, words: u64, params: &ClockParams) -> BcastChoice {
    if p <= 2 {
        return BcastChoice::Binomial;
    }
    let (ts, tw) = (params.ts, params.tw);
    let m = words as f64;
    let logp = ceil_log2(p) as f64;
    let binomial = logp * (ts + m * tw);
    let segments = optimal_segments(p, words, ts, tw);
    let chain = chain_cost(p, words, segments, ts, tw);
    // Scatter + ring allgather. The two phases overlap: ranks that
    // receive their piece early enter the ring early, so the composed
    // critical path is the ring's 2(p−1) store-and-forward steps of
    // m/p-word messages plus the scatter's log p start-ups (validated
    // against the machine to <0.1% in the variants tests).
    let ring = 2.0 * (p as f64 - 1.0) * (ts + (m / p as f64) * tw);
    let vdg = logp * ts + ring;
    let best = binomial.min(chain).min(vdg);
    if best == binomial {
        BcastChoice::Binomial
    } else if best == chain {
        BcastChoice::ChainPipeline
    } else {
        BcastChoice::ScatterAllgather
    }
}

/// Cost-model-driven broadcast: run whichever algorithm [`choose_bcast`]
/// predicts to be fastest for this machine and block size.
pub fn bcast_auto<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Option<Vec<T>>,
    words_per_elem: u64,
) -> Vec<T> {
    drive(bcast_auto_async(ctx, value, words_per_elem))
}

/// Engine-agnostic form of [`bcast_auto`].
pub async fn bcast_auto_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: Option<Vec<T>>,
    words_per_elem: u64,
) -> Vec<T> {
    let p = ctx.size();
    // All ranks must agree on the choice without communicating: derive it
    // from the machine parameters and the (SPMD-uniform) block size. The
    // root's length is what matters; non-roots must be told. To keep the
    // collective self-contained we use a tiny pre-broadcast of the length
    // (1 word), which is negligible against any real block.
    let len = bcast_binomial_async(ctx, 0, value.as_ref().map(|v| v.len() as u64), 1).await;
    let params = ctx.params();
    match choose_bcast(p, len.max(1) * words_per_elem, &params) {
        BcastChoice::Binomial => {
            bcast_binomial_async(ctx, 0, value, len.max(1) * words_per_elem).await
        }
        BcastChoice::ChainPipeline => {
            let segments = optimal_segments(p, len * words_per_elem, params.ts, params.tw);
            bcast_pipelined_async(ctx, 0, value, words_per_elem, segments).await
        }
        BcastChoice::ScatterAllgather => {
            bcast_scatter_allgather_async(ctx, value, words_per_elem).await
        }
    }
}

/// Which allreduce algorithm [`allreduce_auto`] predicts to win.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceChoice {
    /// Butterfly: `log p (ts + m(tw + c))`. Latency-optimal; best for
    /// small blocks.
    Butterfly,
    /// Rabenseifner (recursive-halving reduce-scatter + recursive-
    /// doubling allgather): `2 log p·ts + m(1−1/p)(2tw + c)`.
    /// Bandwidth-optimal for power-of-two `p`; best for large blocks.
    Rabenseifner,
    /// Ring reduce-scatter + ring allgather; needs a commutative
    /// operator, works for any `p`.
    Ring,
    /// Binomial reduce to rank 0 + binomial broadcast — the order-safe
    /// fallback for non-power-of-two `p`.
    ReduceBcast,
}

impl AllreduceChoice {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AllreduceChoice::Butterfly => "butterfly",
            AllreduceChoice::Rabenseifner => "rabenseifner",
            AllreduceChoice::Ring => "ring",
            AllreduceChoice::ReduceBcast => "reduce_bcast",
        }
    }
}

/// Analytic makespan of one allreduce algorithm at `(p, m, ts, tw, c)` —
/// the exact formulas the makespan tests in
/// [`reduce_scatter`](mod@crate::reduce_scatter) verify against the machine.
/// Infeasible combinations (butterfly or Rabenseifner's halving pair on a
/// non-power-of-two `p`) cost infinity. Exact when `p` divides `m`
/// (and, for [`Ring`](AllreduceChoice::Ring), `p > 2`; the selector
/// never offers the ring below three ranks).
pub fn allreduce_model_cost(
    choice: AllreduceChoice,
    p: usize,
    words: u64,
    ops_per_word: f64,
    params: &ClockParams,
) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let (ts, tw) = (params.ts, params.tw);
    let m = words as f64;
    let c = ops_per_word;
    let logp = ceil_log2(p) as f64;
    let frac = 1.0 - 1.0 / p as f64;
    let seg = m / p as f64;
    match choice {
        AllreduceChoice::Butterfly if p.is_power_of_two() => logp * (ts + m * (tw + c)),
        AllreduceChoice::Rabenseifner if p.is_power_of_two() => {
            2.0 * logp * ts + m * frac * (2.0 * tw + c)
        }
        AllreduceChoice::Butterfly | AllreduceChoice::Rabenseifner => f64::INFINITY,
        AllreduceChoice::Ring => {
            // Half-duplex store-and-forward ring: each of the p−1 steps
            // of either phase costs a send AND a receive on every rank.
            let step = 2.0 * (ts + seg * tw);
            (p as f64 - 1.0) * (step + seg * c) + (p as f64 - 1.0) * step
        }
        AllreduceChoice::ReduceBcast => logp * (ts + m * (tw + c)) + logp * (ts + m * tw),
    }
}

/// Predict the cheapest allreduce algorithm for `(p, m)` under `params`.
/// `commutative` gates the ring (it folds operands in cyclic order).
pub fn choose_allreduce(
    p: usize,
    words: u64,
    ops_per_word: f64,
    commutative: bool,
    params: &ClockParams,
) -> AllreduceChoice {
    let mut candidates: Vec<AllreduceChoice> = Vec::new();
    if p.is_power_of_two() {
        candidates.push(AllreduceChoice::Butterfly);
        candidates.push(AllreduceChoice::Rabenseifner);
    } else {
        candidates.push(AllreduceChoice::ReduceBcast);
    }
    if commutative && p > 2 {
        candidates.push(AllreduceChoice::Ring);
    }
    // Stable argmin: ties keep the earlier (lower start-up) candidate.
    candidates
        .into_iter()
        .min_by(|a, b| {
            allreduce_model_cost(*a, p, words, ops_per_word, params)
                .total_cmp(&allreduce_model_cost(*b, p, words, ops_per_word, params))
        })
        .expect("candidate list is never empty")
}

/// Cost-model-driven allreduce: run whichever algorithm
/// [`choose_allreduce`] predicts to be fastest for this machine, block
/// size and operator. Unlike [`bcast_auto`] no length pre-broadcast is
/// needed: allreduce combines blocks elementwise, so every rank already
/// holds a block of the (SPMD-uniform) common length and all ranks reach
/// the same choice independently.
pub fn allreduce_auto<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &Combine<'_, S>,
) -> S {
    drive(allreduce_auto_async(ctx, value, words_per_unit, op))
}

/// Engine-agnostic form of [`allreduce_auto`].
pub async fn allreduce_auto_async<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &Combine<'_, S>,
) -> S {
    let p = ctx.size();
    if p == 1 {
        return value;
    }
    let words = (value.unit_len() as u64 * words_per_unit).max(1);
    let params = ctx.params();
    match choose_allreduce(p, words, op.ops_per_word, op.commutative, &params) {
        AllreduceChoice::Butterfly => allreduce_butterfly_async(ctx, value, words, op).await,
        AllreduceChoice::Rabenseifner => {
            allreduce_rabenseifner_async(ctx, value, words_per_unit, op).await
        }
        AllreduceChoice::Ring => allreduce_ring_async(ctx, value, words_per_unit, op).await,
        AllreduceChoice::ReduceBcast => allreduce_async(ctx, value, words, op).await,
    }
}

/// Which reduce-to-root algorithm [`reduce_auto`] predicts to win.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceChoice {
    /// Binomial tree: `log p (ts + m(tw + c))`.
    Binomial,
    /// Recursive-halving reduce-scatter + binomial gather of the reduced
    /// segments: `2 log p·ts + m(1−1/p)(2tw + c)`. Power-of-two `p`
    /// only; order-safe for any associative operator.
    ScatterGather,
}

/// Analytic makespan of one reduce algorithm; exact when `p | m`.
pub fn reduce_model_cost(
    choice: ReduceChoice,
    p: usize,
    words: u64,
    ops_per_word: f64,
    params: &ClockParams,
) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let (ts, tw) = (params.ts, params.tw);
    let m = words as f64;
    let c = ops_per_word;
    let logp = ceil_log2(p) as f64;
    let frac = 1.0 - 1.0 / p as f64;
    match choice {
        ReduceChoice::Binomial => logp * (ts + m * (tw + c)),
        ReduceChoice::ScatterGather if p.is_power_of_two() => {
            // Halving reduce-scatter + gather: the gather's critical path
            // is rank 0 receiving 2^j segments in round j, i.e.
            // log p·ts + (p−1)(m/p)·tw = log p·ts + m(1−1/p)·tw.
            (logp * ts + m * frac * (tw + c)) + (logp * ts + m * frac * tw)
        }
        ReduceChoice::ScatterGather => f64::INFINITY,
    }
}

/// Predict the cheapest reduce-to-root algorithm for `(p, m)`.
pub fn choose_reduce(
    p: usize,
    words: u64,
    ops_per_word: f64,
    params: &ClockParams,
) -> ReduceChoice {
    let binomial = reduce_model_cost(ReduceChoice::Binomial, p, words, ops_per_word, params);
    let rsg = reduce_model_cost(ReduceChoice::ScatterGather, p, words, ops_per_word, params);
    if rsg < binomial {
        ReduceChoice::ScatterGather
    } else {
        ReduceChoice::Binomial
    }
}

/// Cost-model-driven reduction to rank 0: `Some(result)` on rank 0,
/// `None` elsewhere. For large blocks on a power-of-two machine the
/// reduce-scatter + gather route halves the bandwidth term of the
/// binomial tree while staying order-safe for non-commutative operators.
pub fn reduce_auto<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &Combine<'_, S>,
) -> Option<S> {
    drive(reduce_auto_async(ctx, value, words_per_unit, op))
}

/// Engine-agnostic form of [`reduce_auto`].
pub async fn reduce_auto_async<S: Splittable + Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: S,
    words_per_unit: u64,
    op: &Combine<'_, S>,
) -> Option<S> {
    let p = ctx.size();
    let words = (value.unit_len() as u64 * words_per_unit).max(1);
    match choose_reduce(p, words, op.ops_per_word, &ctx.params()) {
        ReduceChoice::Binomial => reduce_binomial_async(ctx, 0, value, words, op).await,
        ReduceChoice::ScatterGather => {
            let seg = reduce_scatter_halving_async(ctx, value, words_per_unit, op).await;
            let seg_words = (seg.unit_len() as u64 * words_per_unit).max(1);
            gather_binomial_async(ctx, seg, seg_words)
                .await
                .map(S::concat)
        }
    }
}

/// Should the fused balanced allreduce (rule SR-Reduction's RHS) run as
/// halving/doubling instead of the balanced butterfly? Compares
/// `log p (ts + m(wf·tw + c))` against `2 log p·ts + m(1−1/p)(2·wf·tw + c)`;
/// the halving pair needs a power of two.
pub fn balanced_halving_wins(
    p: usize,
    words: u64,
    words_factor: u64,
    ops_combine: f64,
    params: &ClockParams,
) -> bool {
    if p <= 1 || !p.is_power_of_two() {
        return false;
    }
    let (ts, tw) = (params.ts, params.tw);
    let m = words as f64;
    let wf = words_factor as f64;
    let logp = ceil_log2(p) as f64;
    let frac = 1.0 - 1.0 / p as f64;
    let butterfly = logp * (ts + m * (wf * tw + ops_combine));
    let halving = 2.0 * logp * ts + m * frac * (2.0 * wf * tw + ops_combine);
    halving < butterfly
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcast::bcast_binomial;
    use crate::reduce::allreduce_butterfly;
    use crate::reference::ref_scan;
    use crate::scan::scan_butterfly;
    use collopt_machine::Machine;
    use std::sync::Arc;

    #[test]
    fn ring_allgather_is_correct_for_all_sizes() {
        for p in 1..=13usize {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| allgather_ring(ctx, ctx.rank() * 3, 1));
            let expected: Vec<usize> = (0..p).map(|r| r * 3).collect();
            for (rank, r) in run.results.iter().enumerate() {
                assert_eq!(r, &expected, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn scatter_allgather_bcast_is_correct() {
        for p in 1..=12usize {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(move |ctx| {
                let value = (ctx.rank() == 0).then(|| (0..25i64).collect::<Vec<i64>>());
                bcast_scatter_allgather(ctx, value, 1)
            });
            let expected: Vec<i64> = (0..25).collect();
            for (rank, r) in run.results.iter().enumerate() {
                assert_eq!(r, &expected, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn scatter_allgather_beats_binomial_for_large_blocks() {
        let (p, mw) = (16usize, 32_000usize);
        let clock = ClockParams::parsytec_like();
        let machine = Machine::new(p, clock);
        let tree = machine.run(move |ctx| {
            let v = (ctx.rank() == 0).then(|| vec![1u8; mw]);
            bcast_binomial(ctx, 0, v, mw as u64).len()
        });
        let vdg = machine.run(move |ctx| {
            let v = (ctx.rank() == 0).then(|| vec![1u8; mw]);
            bcast_scatter_allgather(ctx, v, 1).len()
        });
        assert!(
            vdg.makespan < tree.makespan,
            "van de Geijn {} must beat binomial {} at m={mw}",
            vdg.makespan,
            tree.makespan
        );
    }

    #[test]
    fn binomial_beats_scatter_allgather_for_tiny_blocks() {
        let (p, mw) = (16usize, 4usize);
        let clock = ClockParams::parsytec_like();
        let machine = Machine::new(p, clock);
        let tree = machine.run(move |ctx| {
            let v = (ctx.rank() == 0).then(|| vec![1u8; mw]);
            bcast_binomial(ctx, 0, v, mw as u64).len()
        });
        let vdg = machine.run(move |ctx| {
            let v = (ctx.rank() == 0).then(|| vec![1u8; mw]);
            bcast_scatter_allgather(ctx, v, 1).len()
        });
        assert!(tree.makespan < vdg.makespan);
    }

    #[test]
    fn sklansky_scan_matches_reference() {
        for p in 1..=17usize {
            let inputs: Vec<i64> = (0..p as i64).map(|i| 2 * i - 3).collect();
            let shared = Arc::new(inputs.clone());
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(move |ctx| {
                let add = |a: &i64, b: &i64| a + b;
                scan_sklansky(ctx, shared[ctx.rank()], 1, &Combine::new(&add))
            });
            assert_eq!(run.results, ref_scan(|a, b| a + b, &inputs), "p={p}");
        }
    }

    #[test]
    fn sklansky_preserves_order_for_nonabelian_op() {
        for p in [2usize, 5, 8, 11] {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| {
                let cat = |a: &String, b: &String| format!("{a}{b}");
                scan_sklansky(ctx, ctx.rank().to_string(), 1, &Combine::new(&cat))
            });
            for (rank, r) in run.results.iter().enumerate() {
                let expected: String = (0..=rank).map(|i| i.to_string()).collect();
                assert_eq!(r, &expected, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn sklansky_charges_less_compute_than_butterfly() {
        let p = 16usize;
        let clock = ClockParams::free();
        let machine = Machine::new(p, clock);
        let butterfly = machine.run(|ctx| {
            let add = |a: &i64, b: &i64| a + b;
            scan_butterfly(ctx, 1i64, 1, &Combine::new(&add))
        });
        let sklansky = machine.run(|ctx| {
            let add = |a: &i64, b: &i64| a + b;
            scan_sklansky(ctx, 1i64, 1, &Combine::new(&add))
        });
        assert_eq!(butterfly.results, sklansky.results);
        let bf: f64 = butterfly.compute_ops.iter().sum();
        let sk: f64 = sklansky.compute_ops.iter().sum();
        assert!(sk < bf, "sklansky {sk} ops must undercut butterfly {bf}");
    }

    #[test]
    fn vdg_cost_model_matches_the_machine() {
        // The composed scatter+ring model: log p·ts + 2(p−1)(ts + (m/p)tw).
        let clock = ClockParams::parsytec_like();
        for (p, mw) in [(16usize, 32_000usize), (16, 8000), (8, 4000)] {
            let machine = Machine::new(p, clock);
            let run = machine.run(move |ctx| {
                let v = (ctx.rank() == 0).then(|| vec![1u8; mw]);
                bcast_scatter_allgather(ctx, v, 1).len()
            });
            let logp = ceil_log2(p) as f64;
            let predicted = logp * clock.ts
                + 2.0 * (p as f64 - 1.0) * (clock.ts + (mw as f64 / p as f64) * clock.tw);
            let err = (run.makespan - predicted).abs() / predicted;
            assert!(
                err < 0.01,
                "p={p} m={mw}: measured {} vs model {predicted}",
                run.makespan
            );
        }
    }

    #[test]
    fn auto_bcast_picks_the_winner_per_regime() {
        let params = ClockParams::parsytec_like();
        // Tiny block: binomial.
        assert_eq!(choose_bcast(16, 4, &params), BcastChoice::Binomial);
        // Huge block: a bandwidth-friendly algorithm (chain or vdG, both
        // move ~2m·tw or less; the model decides).
        let big = choose_bcast(16, 64_000, &params);
        assert_ne!(big, BcastChoice::Binomial);
    }

    #[test]
    fn auto_bcast_is_correct_and_never_worse_than_the_alternatives() {
        let clock = ClockParams::parsytec_like();
        for (p, mw) in [(8usize, 8usize), (8, 2000), (16, 32_000)] {
            let machine = Machine::new(p, clock);
            let auto = machine.run(move |ctx| {
                let v = (ctx.rank() == 0).then(|| (0..mw as i64).collect::<Vec<i64>>());
                bcast_auto(ctx, v, 1)
            });
            let expected: Vec<i64> = (0..mw as i64).collect();
            assert!(auto.results.iter().all(|r| r == &expected), "p={p} m={mw}");

            // Compare against both fixed strategies (+ the tiny length
            // pre-broadcast the auto version pays).
            let tree = machine.run(move |ctx| {
                let v = (ctx.rank() == 0).then(|| vec![0i64; mw]);
                bcast_binomial(ctx, 0, v, mw as u64).len()
            });
            let vdg = machine.run(move |ctx| {
                let v = (ctx.rank() == 0).then(|| vec![0i64; mw]);
                bcast_scatter_allgather(ctx, v, 1).len()
            });
            let preamble = collopt_machine::topology::ceil_log2(p) as f64 * (clock.ts + clock.tw);
            assert!(
                auto.makespan <= tree.makespan.min(vdg.makespan) + preamble + 1.0,
                "p={p} m={mw}: auto {} vs tree {} vdg {}",
                auto.makespan,
                tree.makespan,
                vdg.makespan
            );
        }
    }

    #[allow(clippy::ptr_arg)]
    fn add_blocks(a: &Vec<i64>, b: &Vec<i64>) -> Vec<i64> {
        a.iter().zip(b).map(|(x, y)| x + y).collect()
    }

    #[test]
    fn auto_allreduce_picks_the_winner_per_regime() {
        let parsytec = ClockParams::parsytec_like();
        // Small blocks: the butterfly's log p start-ups win.
        assert_eq!(
            choose_allreduce(16, 4, 1.0, false, &parsytec),
            AllreduceChoice::Butterfly
        );
        // Large blocks: Rabenseifner's bandwidth term wins.
        assert_eq!(
            choose_allreduce(16, 32_768, 1.0, false, &parsytec),
            AllreduceChoice::Rabenseifner
        );
        // Cheap start-ups shift the crossover far left: Rabenseifner
        // already wins modest blocks.
        let low_ts = ClockParams::new(4.0, 0.5);
        assert_eq!(
            choose_allreduce(16, 64, 1.0, false, &low_ts),
            AllreduceChoice::Rabenseifner
        );
        // Non-power-of-two, non-commutative: only the fallback is sound.
        assert_eq!(
            choose_allreduce(6, 32_768, 1.0, false, &parsytec),
            AllreduceChoice::ReduceBcast
        );
        // Non-power-of-two + commutative + large block: the ring's
        // bandwidth optimality beats reduce+bcast's log p volume.
        assert_eq!(
            choose_allreduce(12, 32_768, 1.0, true, &parsytec),
            AllreduceChoice::Ring
        );
    }

    #[test]
    fn auto_allreduce_is_correct_for_every_size() {
        for p in 1..=12usize {
            for mw in [3usize, 40] {
                let machine = Machine::new(p, ClockParams::parsytec_like());
                let run = machine.run(move |ctx| {
                    let block: Vec<i64> = (0..mw as i64).map(|e| ctx.rank() as i64 + e).collect();
                    let op = Combine::new(&add_blocks).assume_commutative();
                    allreduce_auto(ctx, block, 1, &op)
                });
                let expected: Vec<i64> = (0..mw as i64)
                    .map(|e| (0..p as i64).map(|r| r + e).sum())
                    .collect();
                for (rank, got) in run.results.iter().enumerate() {
                    assert_eq!(got, &expected, "p={p} m={mw} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn auto_allreduce_measured_makespan_tracks_the_model_within_10_percent() {
        // The acceptance sweep: for every (p, m) point, run the algorithm
        // the selector picked and compare the measured simulated makespan
        // against the analytic prediction for that same algorithm.
        for params in [ClockParams::parsytec_like(), ClockParams::new(4.0, 0.5)] {
            for p in [4usize, 5, 6, 8, 12, 16] {
                for mult in [1u64, 64, 512] {
                    let mw = p as u64 * mult;
                    let choice = choose_allreduce(p, mw, 1.0, true, &params);
                    let predicted = allreduce_model_cost(choice, p, mw, 1.0, &params);
                    let machine = Machine::new(p, params);
                    let run = machine.run(move |ctx| {
                        let block: Vec<i64> =
                            (0..mw as i64).map(|e| ctx.rank() as i64 + e).collect();
                        let op = Combine::new(&add_blocks).assume_commutative();
                        allreduce_auto(ctx, block, 1, &op)
                    });
                    let err = (run.makespan - predicted).abs() / predicted;
                    assert!(
                        err <= 0.10,
                        "p={p} m={mw} {}: measured {} vs predicted {predicted} (err {err:.3})",
                        choice.name(),
                        run.makespan
                    );
                }
            }
        }
    }

    #[test]
    fn auto_allreduce_never_loses_to_the_fixed_butterfly() {
        let params = ClockParams::parsytec_like();
        for mw in [8usize, 1024, 16_384] {
            let machine = Machine::new(8, params);
            let auto = machine.run(move |ctx| {
                let block: Vec<i64> = (0..mw as i64).collect();
                allreduce_auto(ctx, block, 1, &Combine::new(&add_blocks))
            });
            let fixed = machine.run(move |ctx| {
                let block: Vec<i64> = (0..mw as i64).collect();
                allreduce_butterfly(ctx, block, mw as u64, &Combine::new(&add_blocks))
            });
            assert_eq!(auto.results, fixed.results);
            assert!(
                auto.makespan <= fixed.makespan + 1e-9,
                "m={mw}: auto {} vs butterfly {}",
                auto.makespan,
                fixed.makespan
            );
        }
    }

    #[test]
    fn auto_reduce_routes_large_blocks_through_reduce_scatter() {
        let params = ClockParams::parsytec_like();
        assert_eq!(choose_reduce(16, 4, 1.0, &params), ReduceChoice::Binomial);
        assert_eq!(
            choose_reduce(16, 32_768, 1.0, &params),
            ReduceChoice::ScatterGather
        );
        // Non-powers of two always take the binomial tree.
        assert_eq!(
            choose_reduce(12, 32_768, 1.0, &params),
            ReduceChoice::Binomial
        );

        // Correctness on both routes, including a non-commutative
        // operator on the scatter+gather route.
        for p in [4usize, 6, 8] {
            for mw in [4usize, 4096] {
                let machine = Machine::new(p, params);
                let run = machine.run(move |ctx| {
                    let letter = char::from(b'a' + ctx.rank() as u8).to_string();
                    let cat = |a: &Vec<String>, b: &Vec<String>| -> Vec<String> {
                        a.iter().zip(b).map(|(x, y)| format!("{x}{y}")).collect()
                    };
                    reduce_auto(ctx, vec![letter; mw], 1, &Combine::new(&cat))
                });
                let word: String = (0..p).map(|r| char::from(b'a' + r as u8)).collect();
                assert!(
                    run.results[0]
                        .as_ref()
                        .is_some_and(|v| v.len() == mw && v.iter().all(|s| s == &word)),
                    "p={p} m={mw}"
                );
                assert!(run.results[1..].iter().all(Option::is_none));
            }
        }
    }

    #[test]
    fn auto_reduce_makespan_tracks_the_model_within_10_percent() {
        for params in [ClockParams::parsytec_like(), ClockParams::new(4.0, 0.5)] {
            for p in [4usize, 8, 16] {
                for mult in [1u64, 64, 512] {
                    let mw = p as u64 * mult;
                    let choice = choose_reduce(p, mw, 1.0, &params);
                    let predicted = reduce_model_cost(choice, p, mw, 1.0, &params);
                    let machine = Machine::new(p, params);
                    let run = machine.run(move |ctx| {
                        let block: Vec<i64> =
                            (0..mw as i64).map(|e| ctx.rank() as i64 + e).collect();
                        reduce_auto(ctx, block, 1, &Combine::new(&add_blocks))
                    });
                    let err = (run.makespan - predicted).abs() / predicted;
                    assert!(
                        err <= 0.10,
                        "p={p} m={mw} {choice:?}: measured {} vs predicted {predicted}",
                        run.makespan
                    );
                }
            }
        }
    }

    #[test]
    fn balanced_halving_chooser_flips_with_block_size() {
        let params = ClockParams::parsytec_like();
        // op_sr's parameters: 2 words on the wire and 4 ops per word.
        assert!(!balanced_halving_wins(16, 4, 2, 4.0, &params));
        assert!(balanced_halving_wins(16, 16_384, 2, 4.0, &params));
        assert!(!balanced_halving_wins(12, 16_384, 2, 4.0, &params));
    }
}
