//! Reduction (eqs. 5–6): combine the blocks of all ranks with an
//! associative operator.
//!
//! * [`reduce_binomial`] — reduce to a root along the binomial tree;
//!   makespan `log p · (ts + m·(tw + c))` for an operator charging `c`
//!   ops/word (eq. 16 with `c = 1`).
//! * [`allreduce_butterfly`] — every rank gets the result; the butterfly
//!   exchange the paper's cost model assumes, `log p` phases. Requires `p`
//!   to be a power of two (each phase pairs every rank).
//! * [`allreduce`] — allreduce for any `p` and any associative operator:
//!   the butterfly when `p` is a power of two, otherwise a binomial reduce
//!   followed by a binomial broadcast (the standard fold-excess trick would
//!   reorder operands, which is unsound for non-commutative operators).

use collopt_machine::topology::{butterfly_rounds, ceil_log2};
use collopt_machine::{drive, Ctx};

use crate::bcast::bcast_binomial_async;
use crate::op::Combine;

/// Binomial-tree reduction of each rank's `value` to rank `root`.
///
/// Returns `Some(result)` on the root and `None` elsewhere. Operands are
/// combined in rank order **relative to the root** (virtual rank
/// `(rank - root) mod p`); with `root = 0` — the paper's convention that
/// the root is the first processor of the group — this is exactly
/// `x1 ⊕ x2 ⊕ … ⊕ xn`, so any associative operator is safe.
pub fn reduce_binomial<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    root: usize,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> Option<T> {
    drive(reduce_binomial_async(ctx, root, value, words, op))
}

/// Engine-agnostic form of [`reduce_binomial`].
pub async fn reduce_binomial_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    root: usize,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> Option<T> {
    let p = ctx.size();
    assert!(root < p, "root {root} out of range");
    let v = (ctx.rank() + p - root) % p; // virtual rank
    let mut acc = value;
    for round in 0..ceil_log2(p) {
        let bit = 1usize << round;
        if v & bit != 0 {
            // Send the accumulated value of [v, v + bit) to the left
            // neighbour block and drop out.
            let dst = ((v - bit) + root) % p;
            ctx.send(dst, acc, words);
            return None;
        }
        let src_v = v + bit;
        if src_v < p {
            let got: T = ctx.recv_async((src_v + root) % p).await;
            // `acc` covers lower virtual ranks: it is the left operand.
            acc = op.apply(&acc, &got);
            ctx.charge(words as f64 * op.ops_per_word, "reduce:combine");
        }
    }
    Some(acc)
}

/// Butterfly allreduce: `log p` exchange phases; in phase `j` rank `r`
/// exchanges partial results with `r XOR 2^j` and both combine in rank
/// order. Requires `p` to be a power of two.
pub fn allreduce_butterfly<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> T {
    drive(allreduce_butterfly_async(ctx, value, words, op))
}

/// Engine-agnostic form of [`allreduce_butterfly`].
pub async fn allreduce_butterfly_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> T {
    let p = ctx.size();
    assert!(
        p.is_power_of_two(),
        "butterfly allreduce needs a power-of-two rank count, got {p}"
    );
    let mut acc = value;
    for round in 0..butterfly_rounds(p) {
        let partner = ctx.rank() ^ (1usize << round);
        let got: T = ctx.exchange_async(partner, acc.clone(), words).await;
        // Combine in rank order so non-commutative associative operators
        // still see x1 ⊕ … ⊕ xn.
        acc = if partner > ctx.rank() {
            op.apply(&acc, &got)
        } else {
            op.apply(&got, &acc)
        };
        ctx.charge(words as f64 * op.ops_per_word, "allreduce:combine");
    }
    acc
}

/// Allreduce for any `p`: the butterfly when `p` is a power of two,
/// otherwise binomial reduce to rank 0 followed by a binomial broadcast.
pub fn allreduce<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> T {
    drive(allreduce_async(ctx, value, words, op))
}

/// Engine-agnostic form of [`allreduce`].
pub async fn allreduce_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> T {
    if ctx.size().is_power_of_two() {
        allreduce_butterfly_async(ctx, value, words, op).await
    } else {
        let reduced = reduce_binomial_async(ctx, 0, value, words, op).await;
        bcast_binomial_async(ctx, 0, reduced, words).await
    }
}

/// Allreduce for any `p` and a **commutative** operator, via the standard
/// fold-excess trick: the `r = p − 2^k` excess ranks pre-combine into the
/// leading power-of-two block, the block runs the butterfly, and the
/// results are sent back — `log p + 2` phases instead of the `2·log p` of
/// reduce-plus-broadcast. The pre-combine pairs rank `2^k + i` with rank
/// `i`, which permutes operands — hence the commutativity requirement,
/// asserted here against the operator-free contract by the caller.
pub fn allreduce_commutative<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> T {
    drive(allreduce_commutative_async(ctx, value, words, op))
}

/// Engine-agnostic form of [`allreduce_commutative`].
pub async fn allreduce_commutative_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    value: T,
    words: u64,
    op: &Combine<'_, T>,
) -> T {
    let p = ctx.size();
    if p.is_power_of_two() {
        return allreduce_butterfly_async(ctx, value, words, op).await;
    }
    let k = 1usize << collopt_machine::topology::floor_log2(p);
    let rank = ctx.rank();
    if rank >= k {
        // Excess rank: hand the value down, wait for the result.
        ctx.send(rank - k, value, words);
        return ctx.recv_async(rank - k).await;
    }
    let mut acc = value;
    if rank + k < p {
        let got: T = ctx.recv_async(rank + k).await;
        acc = op.apply(&acc, &got);
        ctx.charge(words as f64 * op.ops_per_word, "allreduce_comm:fold");
    }
    // Butterfly among the leading 2^k ranks, in their own sub-world.
    for round in 0..collopt_machine::topology::butterfly_rounds(k) {
        let partner = rank ^ (1usize << round);
        let got: T = ctx.exchange_async(partner, acc.clone(), words).await;
        acc = if partner > rank {
            op.apply(&acc, &got)
        } else {
            op.apply(&got, &acc)
        };
        ctx.charge(words as f64 * op.ops_per_word, "allreduce_comm:combine");
    }
    if rank + k < p {
        ctx.send(rank + k, acc.clone(), words);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{ref_allreduce, ref_reduce_value};
    use collopt_machine::topology::ceil_log2;
    use collopt_machine::{ClockParams, Machine};

    #[test]
    fn reduce_sums_to_root_zero() {
        for p in [1, 2, 3, 5, 6, 8, 11, 16, 27] {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| {
                let add = |a: &u64, b: &u64| a + b;
                reduce_binomial(ctx, 0, ctx.rank() as u64 + 1, 1, &Combine::new(&add))
            });
            let expected: u64 = (1..=p as u64).sum();
            assert_eq!(run.results[0], Some(expected), "p={p}");
            assert!(run.results[1..].iter().all(Option::is_none));
        }
    }

    #[test]
    fn reduce_preserves_operand_order_for_nonabelian_op() {
        // String concatenation is associative but not commutative: the
        // result must be "abcdef..." in rank order.
        for p in [2, 3, 6, 7, 12] {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| {
                let cat = |a: &String, b: &String| format!("{a}{b}");
                let mine = char::from(b'a' + ctx.rank() as u8).to_string();
                reduce_binomial(ctx, 0, mine, 1, &Combine::new(&cat))
            });
            let expected: String = (0..p).map(|i| char::from(b'a' + i as u8)).collect();
            assert_eq!(run.results[0], Some(expected), "p={p}");
        }
    }

    #[test]
    fn reduce_to_nonzero_root_rotates_order() {
        let m = Machine::new(4, ClockParams::free());
        let run = m.run(|ctx| {
            let cat = |a: &String, b: &String| format!("{a}{b}");
            reduce_binomial(ctx, 2, ctx.rank().to_string(), 1, &Combine::new(&cat))
        });
        // Virtual order starting at root 2: ranks 2,3,0,1.
        assert_eq!(run.results[2], Some("2301".to_string()));
    }

    #[test]
    fn reduce_to_every_root_combines_in_virtual_rank_order() {
        // The binomial tree runs on virtual ranks (r − root) mod p, so a
        // non-commutative operator must see the cyclic order
        // root, root+1, …, root−1 — for every root and every p, power of
        // two or not.
        for p in 2..=9usize {
            for root in 0..p {
                let m = Machine::new(p, ClockParams::free());
                let run = m.run(move |ctx| {
                    let cat = |a: &String, b: &String| format!("{a}{b}");
                    let mine = char::from(b'a' + ctx.rank() as u8).to_string();
                    reduce_binomial(ctx, root, mine, 1, &Combine::new(&cat))
                });
                let expected: String = (0..p)
                    .map(|v| char::from(b'a' + ((root + v) % p) as u8))
                    .collect();
                for (rank, got) in run.results.iter().enumerate() {
                    if rank == root {
                        assert_eq!(got, &Some(expected.clone()), "p={p} root={root}");
                    } else {
                        assert_eq!(got, &None, "p={p} root={root} rank={rank}");
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_makespan_matches_eq16() {
        // T_reduce = log p · (ts + m·(tw + 1)), eq. (16).
        for (p, mw) in [(2usize, 4u64), (8, 16), (64, 1000)] {
            let params = ClockParams::new(100.0, 2.0);
            let m = Machine::new(p, params);
            let run = m.run(|ctx| {
                let add = |a: &Vec<u64>, b: &Vec<u64>| {
                    a.iter().zip(b).map(|(x, y)| x + y).collect::<Vec<u64>>()
                };
                let block = vec![ctx.rank() as u64; mw as usize];
                reduce_binomial(ctx, 0, block, mw, &Combine::new(&add))
            });
            let expected = ceil_log2(p) as f64 * (params.ts + mw as f64 * (params.tw + 1.0));
            assert_eq!(run.makespan, expected, "p={p} m={mw}");
        }
    }

    #[test]
    fn butterfly_allreduce_agrees_with_reference() {
        for p in [1usize, 2, 4, 8, 16, 32] {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| {
                let mul = |a: &u128, b: &u128| a * b;
                allreduce_butterfly(ctx, ctx.rank() as u128 + 2, 1, &Combine::new(&mul))
            });
            let input: Vec<u128> = (0..p as u128).map(|r| r + 2).collect();
            let expected = ref_allreduce(|a, b| a * b, &input);
            assert_eq!(run.results, expected, "p={p}");
        }
    }

    #[test]
    fn butterfly_allreduce_preserves_rank_order() {
        for p in [2usize, 4, 8, 16] {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| {
                let cat = |a: &String, b: &String| format!("{a}{b}");
                allreduce_butterfly(ctx, ctx.rank().to_string(), 1, &Combine::new(&cat))
            });
            let expected: String = (0..p).map(|i| i.to_string()).collect();
            assert!(run.results.iter().all(|r| r == &expected), "p={p}");
        }
    }

    #[test]
    fn generic_allreduce_handles_any_size() {
        for p in 1..20 {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| {
                let cat = |a: &String, b: &String| format!("{a}{b}");
                allreduce(ctx, ctx.rank().to_string(), 1, &Combine::new(&cat))
            });
            let expected: String = (0..p).map(|i| i.to_string()).collect();
            assert!(run.results.iter().all(|r| r == &expected), "p={p}");
        }
    }

    #[test]
    fn commutative_allreduce_is_correct_for_any_size() {
        for p in 1..=20usize {
            let m = Machine::new(p, ClockParams::free());
            let run = m.run(|ctx| {
                let add = |a: &i64, b: &i64| a + b;
                allreduce_commutative(ctx, ctx.rank() as i64 + 1, 1, &Combine::new(&add))
            });
            let expected: i64 = (1..=p as i64).sum();
            assert!(
                run.results.iter().all(|&v| v == expected),
                "p={p}: {:?}",
                run.results
            );
        }
    }

    #[test]
    fn commutative_allreduce_beats_reduce_plus_bcast_for_odd_sizes() {
        // The fold-excess variant saves nearly half the phases for
        // non-powers-of-two on latency-bound machines.
        let p = 13usize;
        let params = ClockParams::parsytec_like();
        let m = Machine::new(p, params);
        let add = |a: &i64, b: &i64| a + b;
        let generic = m.run(move |ctx| allreduce(ctx, 1i64, 8, &Combine::new(&add)));
        let comm = m.run(move |ctx| allreduce_commutative(ctx, 1i64, 8, &Combine::new(&add)));
        assert_eq!(generic.results, comm.results);
        assert!(
            comm.makespan < generic.makespan,
            "fold-excess {} must beat reduce+bcast {}",
            comm.makespan,
            generic.makespan
        );
    }

    #[test]
    fn butterfly_allreduce_makespan_is_logp_phases() {
        let params = ClockParams::new(50.0, 1.0);
        let p = 16;
        let mw = 10u64;
        let m = Machine::new(p, params);
        let run = m.run(|ctx| {
            let add = |a: &Vec<u64>, b: &Vec<u64>| {
                a.iter().zip(b).map(|(x, y)| x + y).collect::<Vec<u64>>()
            };
            allreduce_butterfly(ctx, vec![1u64; mw as usize], mw, &Combine::new(&add))
        });
        let expected = 4.0 * (50.0 + 10.0 * 1.0 + 10.0);
        assert_eq!(run.makespan, expected);
        // Every rank holds the same value and finished at the same time.
        assert!(run.finish_times.iter().all(|&t| t == expected));
    }

    #[test]
    fn reduce_with_random_inputs_matches_reference() {
        let mut rng = collopt_machine::Rng::new(7);
        for _ in 0..20 {
            let p = rng.range_usize(1, 24);
            let inputs: Vec<i64> = (0..p).map(|_| rng.range_i64(-100, 100)).collect();
            let expected = ref_reduce_value(|a, b| a + b, &inputs);
            let shared = std::sync::Arc::new(inputs);
            let m = Machine::new(p, ClockParams::free());
            let inputs2 = shared.clone();
            let run = m.run(move |ctx| {
                let add = |a: &i64, b: &i64| a + b;
                reduce_binomial(ctx, 0, inputs2[ctx.rank()], 1, &Combine::new(&add))
            });
            assert_eq!(run.results[0], Some(expected));
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn butterfly_rejects_non_power_of_two() {
        let m = Machine::new(6, ClockParams::free());
        m.run(|ctx| {
            let add = |a: &i64, b: &i64| a + b;
            allreduce_butterfly(ctx, 1i64, 1, &Combine::new(&add))
        });
    }
}
