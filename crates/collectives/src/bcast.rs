//! Broadcast (eq. 8): the block of the root reaches every rank.
//!
//! Two implementations:
//!
//! * [`bcast_binomial`] — the recursive-doubling binomial tree the paper's
//!   cost model assumes: `⌈log₂ p⌉` rounds, makespan
//!   `log p · (ts + m·tw)` (eq. 15);
//! * [`bcast_linear`] — the naive root-sends-to-everyone baseline
//!   (`(p-1)·(ts + m·tw)` on the root's clock), kept for the ablation
//!   benches.

use collopt_machine::topology::binomial_bcast_rank_plan;
use collopt_machine::{drive, Ctx};

/// Binomial-tree broadcast. Ranks other than `root` pass `None` for
/// `value`; every rank returns the root's block.
///
/// # Panics
/// Panics if the root passes `None` or a non-root passes `Some`.
pub fn bcast_binomial<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    root: usize,
    value: Option<T>,
    words: u64,
) -> T {
    drive(bcast_binomial_async(ctx, root, value, words))
}

/// Engine-agnostic form of [`bcast_binomial`] (runs on any engine,
/// including DES).
pub async fn bcast_binomial_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    root: usize,
    value: Option<T>,
    words: u64,
) -> T {
    let plan = binomial_bcast_rank_plan(ctx.size(), root, ctx.rank());
    let v: T = match (plan.recv, value) {
        (None, Some(v)) => v,
        (Some((_, src)), None) => ctx.recv_async(src).await,
        (None, None) => panic!("root rank {} must supply the broadcast value", ctx.rank()),
        (Some(_), Some(_)) => {
            panic!(
                "non-root rank {} must not supply a broadcast value",
                ctx.rank()
            )
        }
    };
    for (_, dst) in plan.sends {
        ctx.send(dst, v.clone(), words);
    }
    v
}

/// Linear broadcast: the root sends to every other rank in turn.
pub fn bcast_linear<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    root: usize,
    value: Option<T>,
    words: u64,
) -> T {
    drive(bcast_linear_async(ctx, root, value, words))
}

/// Engine-agnostic form of [`bcast_linear`].
pub async fn bcast_linear_async<T: Clone + Send + 'static>(
    ctx: &mut Ctx,
    root: usize,
    value: Option<T>,
    words: u64,
) -> T {
    if ctx.rank() == root {
        let v = value.expect("root must supply the broadcast value");
        for dst in 0..ctx.size() {
            if dst != root {
                ctx.send(dst, v.clone(), words);
            }
        }
        v
    } else {
        assert!(
            value.is_none(),
            "non-root rank must not supply a broadcast value"
        );
        ctx.recv_async(root).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collopt_machine::topology::ceil_log2;
    use collopt_machine::{ClockParams, Machine};

    fn run_bcast(p: usize, root: usize, params: ClockParams) -> (Vec<Vec<u64>>, f64) {
        let m = Machine::new(p, params);
        let run = m.run(|ctx| {
            let value = (ctx.rank() == root).then(|| vec![42u64, 7, root as u64]);
            bcast_binomial(ctx, root, value, 3)
        });
        (run.results, run.makespan)
    }

    #[test]
    fn everyone_receives_the_root_block() {
        for p in [1, 2, 3, 4, 5, 6, 7, 8, 13, 16, 31] {
            for root in [0, p / 2, p - 1] {
                let (results, _) = run_bcast(p, root, ClockParams::free());
                for (rank, r) in results.iter().enumerate() {
                    assert_eq!(
                        r,
                        &vec![42u64, 7, root as u64],
                        "p={p} root={root} rank={rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn binomial_makespan_matches_eq15() {
        // T_bcast = log p · (ts + m·tw), eq. (15), for p a power of two.
        for (p, m) in [(2usize, 1u64), (4, 8), (8, 32), (64, 1000)] {
            let params = ClockParams::new(100.0, 2.0);
            let machine = Machine::new(p, params);
            let run = machine.run(|ctx| {
                let value = (ctx.rank() == 0).then(|| vec![1u8; m as usize]);
                bcast_binomial(ctx, 0, value, m)
            });
            let expected = ceil_log2(p) as f64 * (params.ts + m as f64 * params.tw);
            assert_eq!(run.makespan, expected, "p={p} m={m}");
        }
    }

    #[test]
    fn linear_bcast_is_correct_but_slower() {
        let params = ClockParams::new(100.0, 1.0);
        let p = 8;
        let m = Machine::new(p, params);
        let run_lin = m.run(|ctx| {
            let value = (ctx.rank() == 0).then_some(11u32);
            bcast_linear(ctx, 0, value, 4)
        });
        assert!(run_lin.results.iter().all(|&v| v == 11));
        let run_tree = m.run(|ctx| {
            let value = (ctx.rank() == 0).then_some(11u32);
            bcast_binomial(ctx, 0, value, 4)
        });
        assert!(
            run_lin.makespan > run_tree.makespan,
            "linear {} should exceed binomial {}",
            run_lin.makespan,
            run_tree.makespan
        );
        // Root performs p-1 sequential sends.
        assert_eq!(run_lin.makespan, (p - 1) as f64 * (100.0 + 4.0));
    }

    #[test]
    fn bcast_charges_no_compute() {
        let m = Machine::new(8, ClockParams::new(10.0, 1.0));
        let run = m.run(|ctx| {
            let value = (ctx.rank() == 0).then_some(1.5f64);
            bcast_binomial(ctx, 0, value, 1)
        });
        assert!(run.compute_ops.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn single_rank_bcast_is_identity() {
        let m = Machine::new(1, ClockParams::parsytec_like());
        let run = m.run(|ctx| bcast_binomial(ctx, 0, Some(99u8), 1));
        assert_eq!(run.results, vec![99]);
        assert_eq!(run.makespan, 0.0);
    }

    #[test]
    #[should_panic(expected = "root rank")]
    fn missing_root_value_panics() {
        let m = Machine::new(2, ClockParams::free());
        m.run(|ctx| bcast_binomial::<u8>(ctx, 0, None, 1));
    }
}
